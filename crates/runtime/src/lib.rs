//! The Uintah-style DAG task runtime.
//!
//! Uintah keeps a strict separation between *applications* (which declare
//! tasks with their data dependencies) and the *runtime system* (which
//! compiles the declarations into a distributed task graph, generates the
//! MPI messages, and executes tasks out of order from per-rank worker
//! threads). That separation is what let the paper fix scalability purely
//! inside the runtime. This crate reproduces the runtime:
//!
//! * [`task`] — task declarations: `requires` (own-patch, ghost-halo, or
//!   **whole-level** — the "infinite ghost cells" of the coarse radiation
//!   meshes), `computes` (patch variables or coarse-level windows), CPU/GPU
//!   placement;
//! * [`dw`] — the OnDemand DataWarehouse: per-patch variables, foreign ghost
//!   windows received from other ranks, and per-level replica accumulators;
//! * [`graph`] — compilation of declarations + grid + patch distribution
//!   into a per-rank [`graph::CompiledGraph`]: task instances, dependency
//!   edges, send specifications and expected receives;
//! * [`scheduler`] — the hybrid threaded scheduler: workers self-select
//!   ready tasks, perform their own sends/receives through `uintah-comm`
//!   (`MPI_THREAD_MULTIPLE` style) against a pluggable [`RequestStore`],
//!   and execute out of order as dependencies resolve;
//! * [`executor`] — the persistent timestep executor: caches the compiled
//!   graph across timesteps (phase re-stamped at post time), retires
//!   warehouse storage into recyclers, and keeps GPU level replicas
//!   device-resident between steps;
//! * [`regrid`] — ownership migration after a load-balancer regrid: lost
//!   patches' warehouse contents move to their new owners over the fabric
//!   under a reserved tag namespace ([`PersistentExecutor::regrid`]);
//! * [`driver`] — a harness running all ranks of a world in one process;
//! * [`calibrate`] — the measured-calibration snapshot: per-step
//!   [`ExecStats`] fold into one serializable [`CalibrationSnapshot`] that
//!   `titan-sim` consumes as the single source of machine rates.
//!
//! [`RequestStore`]: uintah_comm::RequestStore

pub mod archive;
pub mod calibrate;
pub mod codec;
pub mod driver;
pub mod dw;
pub mod executor;
pub mod graph;
pub mod regrid;
pub mod scheduler;
pub mod task;

pub use archive::{ArchiveError, DataArchive};
pub use calibrate::{CalibrationSnapshot, DeviceCalibration};
pub use driver::{run_world, WorldConfig, WorldResult};
pub use dw::DataWarehouse;
pub use executor::PersistentExecutor;
pub use graph::{graph_signature, CompiledGraph, GraphCache, GraphCacheStats, GraphStats};
pub use regrid::RegridEvent;
pub use scheduler::{DeviceStepStats, ExecStats, Scheduler, StoreKind};
pub use task::{Computes, Requirement, TaskContext, TaskDecl, TaskFn, TaskKind};
