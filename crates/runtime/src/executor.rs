//! Persistent timestep executor: compile the task graph once, run it every
//! step.
//!
//! RMCRT's task graph is identical from one radiation solve to the next:
//! the same declarations over the same grid and distribution produce the
//! same instances, edges and message schedule — only the 8-bit *phase* byte
//! in the message tags distinguishes step N's messages from step N+1's.
//! The original driver nevertheless recompiled the graph every timestep
//! (and Uintah itself historically did, until task-graph reuse became a
//! scalability requirement at full-machine scale). [`PersistentExecutor`]
//! owns the per-rank execution state across timesteps:
//!
//! * the compiled graph, cached under a [`graph_signature`] of everything
//!   compilation reads (grid shape, declarations, distribution, rank,
//!   aggregation flag). A matching signature reuses the cached graph and
//!   [`Scheduler::execute_phase`] re-stamps tags with the step's phase
//!   byte; a mismatch — regrid, rebalance, changed task list — recompiles.
//!   [`PersistentExecutor::invalidate`] forces the same from outside (the
//!   hook an AMR regrid would call);
//! * the host [`DataWarehouse`], whose step boundary retires field storage
//!   into recyclers instead of freeing it ([`DataWarehouse::begin_timestep`]);
//! * the GPU warehouse, whose level database persists device-resident
//!   coarse replicas across steps and re-uploads only changed bytes
//!   (`GpuDataWarehouse::begin_timestep` + `ensure_level_fresh`).
//!
//! [`graph_signature`]: crate::graph::graph_signature

use crate::dw::DataWarehouse;
use crate::graph::{self, CompiledGraph, GraphCache};
use crate::regrid::{self, RegridEvent};
use crate::scheduler::{ExecStats, Scheduler};
use crate::task::TaskDecl;
use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah_gpu::GpuDataWarehouse;
use uintah_grid::{Grid, PatchDistribution, PatchId};

/// Per-rank executor that persists graphs, warehouse storage and GPU
/// residency across timesteps. One instance per rank, stepped in lockstep
/// with the other ranks of the world.
pub struct PersistentExecutor {
    grid: Arc<Grid>,
    decls: Arc<Vec<TaskDecl>>,
    dist: Arc<PatchDistribution>,
    sched: Scheduler,
    dw: Arc<DataWarehouse>,
    gpu: Option<Arc<GpuDataWarehouse>>,
    aggregate_level_windows: bool,
    /// Cached compiled graph keyed by its input signature.
    cached: Option<(u64, Arc<CompiledGraph>)>,
    /// Optional cross-executor graph cache (the multi-tenant server's
    /// shared tier): consulted on a local miss before compiling, fed after
    /// every compile.
    shared_cache: Option<Arc<GraphCache>>,
    /// Graphs adopted from the shared cache instead of compiled locally.
    shared_graph_hits: u64,
    /// Job/run identifier stamped into every [`ExecStats`] this executor
    /// produces, so interleaved multi-job logs stay attributable.
    run_id: Option<Arc<str>>,
    step: u64,
    compiles: usize,
    /// Regrid cost accumulated since the last step, folded into the next
    /// step's stats (a regrid between steps N and N+1 is charged to N+1,
    /// the first step that runs under the new distribution).
    pending_regrid: Option<RegridEvent>,
}

impl PersistentExecutor {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: Arc<Grid>,
        decls: Arc<Vec<TaskDecl>>,
        dist: Arc<PatchDistribution>,
        sched: Scheduler,
        dw: Arc<DataWarehouse>,
        gpu: Option<Arc<GpuDataWarehouse>>,
        aggregate_level_windows: bool,
    ) -> Self {
        Self {
            grid,
            decls,
            dist,
            sched,
            dw,
            gpu,
            aggregate_level_windows,
            cached: None,
            shared_cache: None,
            shared_graph_hits: 0,
            run_id: None,
            step: 0,
            compiles: 0,
            pending_regrid: None,
        }
    }

    /// Attach a cross-executor [`GraphCache`]: on a local signature miss
    /// the executor adopts a matching shared graph instead of compiling,
    /// and feeds the cache after every compile it does perform.
    pub fn set_graph_cache(&mut self, cache: Arc<GraphCache>) {
        self.shared_cache = Some(cache);
    }

    /// Swap the task declarations (a new job on a reused executor). The
    /// cached graph is *not* dropped: [`graph_signature`] hashes the
    /// declarations' shape (names, levels, requirements, computes), so a
    /// job whose declarations differ only in captured parameters — ray
    /// counts, thresholds, seeds — keeps the compiled graph, while any
    /// structural change perturbs the signature and recompiles on the
    /// next [`Self::step`].
    pub fn set_decls(&mut self, decls: Arc<Vec<TaskDecl>>) {
        self.decls = decls;
    }

    /// Stamp subsequent steps' [`ExecStats`] with a job/run identifier
    /// (`None` clears it). Interleaved multi-job logs key lines by it.
    pub fn set_run_id(&mut self, run_id: Option<Arc<str>>) {
        self.run_id = run_id;
    }

    /// Graphs adopted from the shared cache instead of compiled locally.
    #[inline]
    pub fn shared_graph_hits(&self) -> u64 {
        self.shared_graph_hits
    }

    /// Execute the next timestep. Opens the step (epoch bump + storage
    /// retirement on host and device), reuses or recompiles the graph, and
    /// runs it under this step's phase byte. `graph_compile` in the
    /// returned stats is zero whenever the cache hit.
    pub fn step(&mut self) -> ExecStats {
        if self.step > 0 {
            self.dw.begin_timestep();
            if let Some(g) = &self.gpu {
                // Level replicas stay device-resident (stale, revalidated on
                // first use); per-patch staging is transient by design.
                g.begin_timestep();
                g.clear_patch_db();
            }
        }
        let sig = graph::graph_signature(
            &self.grid,
            &self.dist,
            &self.decls,
            self.sched.rank(),
            self.aggregate_level_windows,
        );
        let mut compile_time = Duration::ZERO;
        if !matches!(&self.cached, Some((s, _)) if *s == sig) {
            if let Some(shared) = self.shared_cache.as_ref().and_then(|c| c.lookup(sig)) {
                self.shared_graph_hits += 1;
                self.cached = Some((sig, shared));
            } else {
                let t0 = Instant::now();
                let g = Arc::new(graph::compile_opts(
                    &self.grid,
                    &self.dist,
                    &self.decls,
                    self.sched.rank(),
                    0,
                    self.aggregate_level_windows,
                ));
                compile_time = t0.elapsed();
                self.compiles += 1;
                if let Some(cache) = &self.shared_cache {
                    cache.insert(sig, Arc::clone(&g));
                }
                self.cached = Some((sig, g));
            }
        }
        let (_, cg) = self.cached.as_ref().expect("graph just ensured");
        let cg: &CompiledGraph = cg.as_ref();
        let phase = (self.step % 256) as u8;
        let mut stats =
            self.sched
                .execute_phase(&self.grid, &self.decls, cg, &self.dw, self.gpu.as_deref(), phase);
        stats.graph_compile = compile_time;
        stats.run_id = self.run_id.clone();
        if let Some(ev) = self.pending_regrid.take() {
            stats.regrids = 1;
            stats.regrid_compile = compile_time;
            stats.migrated_bytes = ev.migrated_bytes;
            stats.migrate_wall = ev.migrate_wall;
        }
        self.step += 1;
        stats
    }

    /// Adopt a new patch distribution between timesteps: settle in-flight
    /// D2H traffic, migrate the warehouse contents of every patch whose
    /// owner changed (symmetric — every rank of the world must call this
    /// with the same distribution), evict GPU state whose residency keying
    /// assumed the old ownership, and invalidate the cached graph. Returns
    /// `None` (and does nothing) when ownership is unchanged.
    ///
    /// Must be called between [`Self::step`]s, in lockstep across ranks.
    /// The regrid's cost is folded into the next step's stats.
    pub fn regrid(&mut self, new: Arc<PatchDistribution>) -> Option<RegridEvent> {
        assert_eq!(new.nranks(), self.dist.nranks(), "regrid cannot change the world size");
        assert_eq!(
            new.rank_map().len(),
            self.grid.num_patches(),
            "distribution does not cover the grid"
        );
        if new.rank_map() == self.dist.rank_map() {
            return None;
        }
        let t0 = Instant::now();
        // 1. Settle the copy engines (every fleet device): every parked D2H
        //    handle materializes (or is retired) before ownership moves, so
        //    migration reads complete host data and no drain lands under a
        //    recycled id.
        let drained_d2h = self.dw.drain_pending_d2h();
        if let Some(g) = &self.gpu {
            g.sync_d2h_all();
        }
        // 2. Open the new distribution generation: pending slots and pooled
        //    buffers from the old ownership can no longer satisfy requests.
        let generation = self.dw.begin_regrid();
        // 3. Move lost patches' data to their new owners (collective).
        let labels = regrid::label_map(&self.decls);
        let (patches_out, patches_in, migrated_bytes) = regrid::migrate_patch_vars(
            self.sched.comm(),
            &self.dw,
            &self.dist,
            &new,
            &labels,
            generation,
        );
        // 4. Evict device state — but only on the fleet devices that are
        //    home to a patch whose owner changed: per-patch staging and
        //    level replicas on those devices keyed freshness by content
        //    under the old ownership, while untouched devices keep their
        //    resident replicas (revalidated by epoch + diff on first
        //    post-regrid use anyway).
        let affected_devices: Vec<usize> = self
            .gpu
            .as_ref()
            .map(|g| {
                let mut devs = std::collections::BTreeSet::new();
                for (i, (old_r, new_r)) in
                    self.dist.rank_map().iter().zip(new.rank_map()).enumerate()
                {
                    if old_r != new_r {
                        devs.insert(g.device_for_patch(PatchId(i as u32)));
                    }
                }
                devs.into_iter().collect()
            })
            .unwrap_or_default();
        let (gpu_patch_evicted, gpu_level_evicted) = self
            .gpu
            .as_ref()
            .map(|g| g.invalidate_for_regrid_on(&affected_devices))
            .unwrap_or((0, 0));
        // 5. Adopt the distribution and force a recompile.
        self.dist = new;
        self.invalidate();
        let ev = RegridEvent {
            generation,
            patches_out,
            patches_in,
            migrated_bytes,
            migrate_wall: t0.elapsed(),
            drained_d2h,
            gpu_patch_evicted,
            gpu_level_evicted,
            gpu_devices_evicted: affected_devices.len(),
        };
        self.pending_regrid = Some(ev.clone());
        Some(ev)
    }

    /// Drop the cached graph; the next [`Self::step`] recompiles. The hook
    /// a regrid/rebalance calls when invalidation must not wait for the
    /// signature check (or when task closures changed behind the same
    /// declaration shape).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// Timesteps executed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Graph compilations performed so far (1 in steady state).
    #[inline]
    pub fn compiles(&self) -> usize {
        self.compiles
    }

    #[inline]
    pub fn dw(&self) -> &Arc<DataWarehouse> {
        &self.dw
    }

    /// The distribution currently executing (post-regrid once
    /// [`Self::regrid`] adopts a new one).
    #[inline]
    pub fn dist(&self) -> &Arc<PatchDistribution> {
        &self.dist
    }

    #[inline]
    pub fn gpu(&self) -> Option<&Arc<GpuDataWarehouse>> {
        self.gpu.as_ref()
    }
}
