//! Task declarations and the execution context handed to task functions.

use crate::dw::DataWarehouse;
use std::sync::Arc;
use uintah_exec::ExecSpace;
use uintah_grid::{CcVariable, FieldData, Grid, LevelIndex, Patch, Region, VarLabel};
use uintah_gpu::{GpuDataWarehouse, PendingD2H};

/// Where a task's kernel runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    Cpu,
    /// Staged through the GPU DataWarehouse; per-level inputs go through the
    /// level database, outputs come back over the (metered) PCIe model.
    Gpu,
}

/// A data requirement of a task instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Requirement {
    /// The variable computed on the task's own patch by an earlier task.
    OwnPatch(VarLabel),
    /// The variable on the task's own level within `g` ghost cells of the
    /// patch — satisfied by neighbouring patches (possibly remote).
    Ghost(VarLabel, i32),
    /// The whole-level replica of `label` on level `li` — Uintah's
    /// "infinite ghost cells" / global halo, the all-to-all requirement of
    /// the coarse radiation meshes.
    WholeLevel(VarLabel, LevelIndex),
}

impl Requirement {
    pub fn label(&self) -> VarLabel {
        match *self {
            Requirement::OwnPatch(l) | Requirement::Ghost(l, _) | Requirement::WholeLevel(l, _) => l,
        }
    }
}

/// A product of a task instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Computes {
    /// A variable on the task's own patch.
    PatchVar(VarLabel),
    /// This task (running on a fine patch) produces the restriction window
    /// of its patch onto coarse level `li` — the building block of the
    /// whole-level replicas.
    LevelWindow(VarLabel, LevelIndex),
}

/// The function body of a task, invoked once per owned patch.
pub type TaskFn = Arc<dyn Fn(&mut TaskContext<'_>) + Send + Sync>;

/// A task declaration: Uintah's `Task` with its requires/computes lists.
#[derive(Clone)]
pub struct TaskDecl {
    pub name: &'static str,
    /// Which level's patches this task runs on.
    pub level: LevelIndex,
    pub kind: TaskKind,
    pub requires: Vec<Requirement>,
    pub computes: Vec<Computes>,
    pub func: TaskFn,
}

impl TaskDecl {
    pub fn new(name: &'static str, level: LevelIndex, func: TaskFn) -> Self {
        Self {
            name,
            level,
            kind: TaskKind::Cpu,
            requires: Vec::new(),
            computes: Vec::new(),
            func,
        }
    }

    pub fn on_gpu(mut self) -> Self {
        self.kind = TaskKind::Gpu;
        self
    }

    pub fn requires(mut self, r: Requirement) -> Self {
        self.requires.push(r);
        self
    }

    pub fn computes(mut self, c: Computes) -> Self {
        self.computes.push(c);
        self
    }
}

impl std::fmt::Debug for TaskDecl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskDecl")
            .field("name", &self.name)
            .field("level", &self.level)
            .field("kind", &self.kind)
            .field("requires", &self.requires)
            .field("computes", &self.computes)
            .finish()
    }
}

/// Everything a task body may touch. The data-warehouse accessors enforce
/// the declared dependencies at debug time (a requirement the runtime has
/// already satisfied is guaranteed present).
pub struct TaskContext<'a> {
    pub(crate) grid: &'a Grid,
    pub(crate) patch: &'a Patch,
    pub(crate) dw: &'a DataWarehouse,
    pub(crate) gpu: Option<&'a GpuDataWarehouse>,
    pub(crate) rank: usize,
    pub(crate) space: ExecSpace,
}

impl<'a> TaskContext<'a> {
    #[inline]
    pub fn grid(&self) -> &Grid {
        self.grid
    }

    #[inline]
    pub fn patch(&self) -> &Patch {
        self.patch
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The execution space the scheduler picked for this task (GPU tasks
    /// get the rank's metered `Device` space, CPU tasks a host space).
    /// Task bodies dispatch every cell-region kernel through this.
    #[inline]
    pub fn exec_space(&self) -> &ExecSpace {
        &self.space
    }

    /// The GPU data warehouse, when executing on a GPU-capable rank.
    #[inline]
    pub fn gpu(&self) -> Option<&GpuDataWarehouse> {
        self.gpu
    }

    /// The fleet device this task was scheduled on (0 for host tasks and
    /// single-device ranks). GPU task bodies pass this to the warehouse's
    /// `_on` staging APIs so level replicas land on the device their
    /// kernels dispatch to.
    #[inline]
    pub fn device_id(&self) -> usize {
        self.space.device_index().unwrap_or(0)
    }

    /// Own-patch variable (no ghosts).
    pub fn get_f64(&self, label: VarLabel) -> Arc<FieldData> {
        self.dw
            .get_patch(label, self.patch.id())
            .unwrap_or_else(|| panic!("task input {label} missing on {:?}", self.patch.id()))
    }

    /// Assemble the variable over `patch + g` ghosts from local patches and
    /// received foreign windows.
    pub fn get_ghosted_f64(&self, label: VarLabel, g: i32) -> CcVariable<f64> {
        self.dw
            .assemble_ghosted_f64(label, self.patch, g)
    }

    pub fn get_ghosted_u8(&self, label: VarLabel, g: i32) -> CcVariable<u8> {
        self.dw.assemble_ghosted_u8(label, self.patch, g)
    }

    /// The sealed whole-level replica (available once the level gather for
    /// this rank completed).
    pub fn get_level(&self, label: VarLabel, level: LevelIndex) -> Arc<FieldData> {
        self.dw
            .get_sealed_level(label, level)
            .unwrap_or_else(|| panic!("level replica {label} L{level} not sealed"))
    }

    /// Publish a computed own-patch variable.
    pub fn put(&self, label: VarLabel, data: impl Into<FieldData>) {
        let data = data.into();
        debug_assert!(
            data.region().contains_region(&self.patch.interior()),
            "{label}: computed region does not cover the patch interior"
        );
        self.dw.put_patch(label, self.patch.id(), data);
    }

    /// Publish a computed own-patch variable whose device→host drain is
    /// still in flight on the GPU copy engine (the handle from
    /// [`GpuDataWarehouse::take_patch_to_host_async`]). The task returns
    /// immediately and the scheduler keeps executing ready work; the first
    /// downstream consumer blocks only for the un-hidden remainder of the
    /// drain. Region coverage is asserted by the GPU warehouse at staging
    /// time, so no host-side check is possible (or needed) here.
    pub fn put_pending(&self, label: VarLabel, pending: PendingD2H) {
        self.dw.put_patch_pending(label, self.patch.id(), pending);
    }

    /// Deposit this patch's restriction window into the coarse level
    /// accumulator (the local half of the all-to-all).
    pub fn put_level_window(&self, label: VarLabel, level: LevelIndex, window: Region, data: FieldData) {
        self.dw.deposit_level_window(label, level, window, &data);
    }

    /// A zeroed scratch `f64` variable over `region`, drawn from the
    /// warehouse's step recycler. Prefer this over `CcVariable::new` in
    /// task bodies: retired storage from earlier steps is reused instead of
    /// re-allocated.
    pub fn alloc_f64(&self, region: Region) -> CcVariable<f64> {
        self.dw.alloc_f64(region)
    }

    pub fn alloc_u8(&self, region: Region) -> CcVariable<u8> {
        self.dw.alloc_u8(region)
    }

    /// Hand a transient variable back to the recycler (e.g. a ghosted
    /// assembly the kernel has finished with).
    pub fn recycle(&self, data: impl Into<FieldData>) {
        self.dw.recycle(data.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        const A: VarLabel = VarLabel::new("a", 0);
        const B: VarLabel = VarLabel::new("b", 1);
        let t = TaskDecl::new("t", 1, Arc::new(|_ctx: &mut TaskContext| {}))
            .on_gpu()
            .requires(Requirement::Ghost(A, 2))
            .requires(Requirement::WholeLevel(B, 0))
            .computes(Computes::PatchVar(B));
        assert_eq!(t.kind, TaskKind::Gpu);
        assert_eq!(t.requires.len(), 2);
        assert_eq!(t.requires[0].label(), A);
        assert_eq!(t.computes, vec![Computes::PatchVar(B)]);
        assert_eq!(t.level, 1);
    }
}
