//! Multi-rank world driver: runs every rank of a simulated job in one
//! process, each with its own data warehouse, scheduler and (optionally)
//! GPU data warehouse.

use crate::dw::DataWarehouse;
use crate::executor::PersistentExecutor;
use crate::graph;
use crate::scheduler::{ExecStats, Scheduler, StoreKind};
use crate::task::TaskDecl;
use std::sync::Arc;
use std::time::Instant;
use uintah_comm::{AllReduceVec, CommWorld};
use uintah_gpu::{lpt_assign, DeviceFleet, GpuAffinity, GpuDataWarehouse};
use uintah_grid::{
    DistributionPolicy, Grid, PatchCosts, PatchDistribution, RebalancePolicy, Regridder,
};

/// Configuration of a simulated job.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    pub nranks: usize,
    /// Worker threads per rank (the paper runs 16 per Titan node).
    pub nthreads: usize,
    pub policy: DistributionPolicy,
    pub store: StoreKind,
    pub timesteps: usize,
    /// Attach a simulated GPU fleet with this capacity *per device*;
    /// `None` runs CPU-only.
    pub gpu_capacity: Option<usize>,
    /// Devices per rank (1 = the paper's Titan node, 6 = Summit-style).
    /// Each device gets its own capacity meter, copy-engine timelines, and
    /// per-level replica DB.
    pub gpus_per_rank: usize,
    /// How GPU patch tasks are assigned to fleet devices: `Sticky`
    /// (deterministic patch-id hash) or `CostBalanced` (LPT over measured
    /// per-patch costs, refreshed after every step).
    pub gpu_affinity: GpuAffinity,
    /// Keep one shared per-level copy on the GPU (the paper's level DB).
    pub gpu_level_db: bool,
    /// Post device→host drains to the copy engine asynchronously so the
    /// scheduler overlaps them with remaining compute (the paper's
    /// transfer/kernel pipelining). `false` drains inline inside task
    /// bodies — the synchronous baseline; results are bit-identical.
    pub gpu_async_d2h: bool,
    /// Post host→device uploads (staged prefetch bursts, spill re-uploads,
    /// cross-step level revalidations) to the H2D copy engine so the first
    /// consumer materializes a finished transfer instead of uploading
    /// inline. `false` completes every posted upload at post time — the
    /// synchronous baseline; results are bit-identical.
    pub gpu_async_h2d: bool,
    /// Evict LRU device-DB entries (spilling patch data to host) when an
    /// allocation fails, instead of surfacing OOM — the oversubscription
    /// path. `false` fails hard at capacity (the ablation baseline);
    /// results are bit-identical either way, only wall time and the
    /// eviction/spill counters differ.
    pub gpu_eviction: bool,
    /// Bundle all whole-level windows per (producer instance, destination
    /// rank) into one message (Uintah's rank-pair message packing).
    pub aggregate_level_windows: bool,
    /// Persist execution state across timesteps (cached task graph, recycled
    /// warehouse storage, device-resident level replicas) via
    /// [`PersistentExecutor`]. `false` rebuilds everything each step — the
    /// pre-optimization baseline, kept as the control for equivalence tests
    /// and the `timestep_loop` benchmark.
    pub persistent: bool,
    /// Rebalance ownership every `k` timesteps from measured per-patch
    /// costs: all ranks exchange their cost vectors (an all-reduce), run
    /// the deterministic [`Regridder`] and adopt the agreed distribution —
    /// migrating warehouse contents and recompiling the graph on the
    /// persistent path. `None` keeps the initial distribution for the whole
    /// run.
    pub regrid_interval: Option<usize>,
    /// Which rebalance policy the regridder applies at each interval.
    pub regrid_policy: RebalancePolicy,
    /// Job/run identifier stamped into every rank's [`ExecStats`] as
    /// `<run_id>/r<rank>`, so logs from concurrently running jobs stay
    /// attributable line by line. `None` keeps bare summaries.
    pub run_id: Option<String>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            nranks: 1,
            nthreads: 1,
            policy: DistributionPolicy::MortonSfc,
            store: StoreKind::WaitFree,
            timesteps: 1,
            gpu_capacity: None,
            gpus_per_rank: 1,
            gpu_affinity: GpuAffinity::Sticky,
            gpu_level_db: true,
            gpu_async_d2h: true,
            gpu_async_h2d: true,
            gpu_eviction: true,
            aggregate_level_windows: false,
            persistent: true,
            regrid_interval: None,
            regrid_policy: RebalancePolicy::CostedSfc,
            run_id: None,
        }
    }
}

/// Result of one rank.
pub struct RankResult {
    pub rank: usize,
    /// Stats per timestep.
    pub stats: Vec<ExecStats>,
    /// The rank's data warehouse after the final timestep.
    pub dw: Arc<DataWarehouse>,
    /// The rank's GPU data warehouse, if any.
    pub gpu: Option<Arc<GpuDataWarehouse>>,
    /// The distribution this rank finished under (differs from the initial
    /// one when regrids ran; identical across ranks by construction).
    pub dist: Arc<PatchDistribution>,
}

/// Result of the whole job.
pub struct WorldResult {
    /// The distribution the final timestep ran under.
    pub dist: Arc<PatchDistribution>,
    pub ranks: Vec<RankResult>,
}

impl WorldResult {
    /// Total messages sent across all ranks and timesteps.
    pub fn total_messages(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|r| r.stats.iter())
            .map(|s| s.messages_sent)
            .sum()
    }

    /// Total payload bytes across all ranks and timesteps.
    pub fn total_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .flat_map(|r| r.stats.iter())
            .map(|s| s.bytes_sent)
            .sum()
    }
}

/// Run `decls` for `cfg.timesteps` timesteps across `cfg.nranks` ranks.
///
/// Every rank runs on its own OS thread with `cfg.nthreads` workers; the
/// result carries each rank's final data warehouse so callers can inspect
/// computed variables (e.g. `divQ`).
pub fn run_world(grid: Arc<Grid>, decls: Arc<Vec<TaskDecl>>, cfg: WorldConfig) -> WorldResult {
    let world = CommWorld::new(cfg.nranks);
    let dist = Arc::new(PatchDistribution::new(&grid, cfg.nranks, cfg.policy));
    // The pre-rebalance cost exchange: each rank contributes measured
    // per-patch task time (zeros for patches it does not own) and reads back
    // the identical global vector, so every rank runs the deterministic
    // regridder on the same input and all agree on the new ownership.
    let cost_reduce = cfg.regrid_interval.map(|_| AllReduceVec::new(cfg.nranks));

    let mut handles = Vec::with_capacity(cfg.nranks);
    for rank in 0..cfg.nranks {
        let world = world.clone();
        let grid = Arc::clone(&grid);
        let decls = Arc::clone(&decls);
        let dist = Arc::clone(&dist);
        let cfg = cfg.clone();
        let cost_reduce = cost_reduce.clone();
        handles.push(std::thread::spawn(move || {
            let comm = world.communicator(rank);
            let dw = Arc::new(DataWarehouse::new(Arc::clone(&grid)));
            let gpu = cfg.gpu_capacity.map(|cap| {
                Arc::new(GpuDataWarehouse::with_fleet_full(
                    DeviceFleet::with_capacity(cfg.gpus_per_rank.max(1), "K20X-sim", cap),
                    cfg.gpu_level_db,
                    cfg.gpu_async_d2h,
                    cfg.gpu_async_h2d,
                    cfg.gpu_eviction,
                ))
            });
            // Cost-balanced affinity: after each step, re-home patches to
            // devices with an LPT pass over the measured per-patch costs
            // (the intra-node mirror of the regrid rebalance). Safe between
            // steps only — per-patch device state is transient in a step.
            let refresh_affinity = |s: &ExecStats| {
                if cfg.gpu_affinity != GpuAffinity::CostBalanced {
                    return;
                }
                if let Some(g) = &gpu {
                    if g.num_devices() > 1 && !s.per_patch.is_empty() {
                        g.set_affinity(&lpt_assign(&s.per_patch, g.num_devices()));
                    }
                }
            };
            let sched = Scheduler::new(comm, cfg.nthreads, cfg.store);
            let mut stats = Vec::with_capacity(cfg.timesteps);
            let regridder = Regridder::new(cfg.regrid_policy);
            // Measured per-patch cost since the last rebalance (seconds in
            // task bodies; zeros for patches this rank does not own).
            let mut step_cost = vec![0.0f64; grid.num_patches()];
            // Returns the agreed post-exchange distribution for step `ts`,
            // or `None` when no rebalance is due. Collective: every rank
            // calls it at the same steps, so the all-reduce can't skew.
            let agree_on_rebalance =
                |ts: usize, step_cost: &mut Vec<f64>, current: &PatchDistribution| {
                    let (Some(k), Some(reduce)) = (cfg.regrid_interval, &cost_reduce) else {
                        return None;
                    };
                    if ts == 0 || !ts.is_multiple_of(k) {
                        return None;
                    }
                    let global = reduce.sum(step_cost);
                    let costs = if global.iter().sum::<f64>() > 0.0 {
                        PatchCosts::from_values((*global).clone())
                    } else {
                        // Degenerate timing (all-zero measurements): fall
                        // back to cell counts so the decision stays sound.
                        PatchCosts::from_cells(&grid)
                    };
                    step_cost.fill(0.0);
                    Some(Arc::new(regridder.rebalance(&grid, &costs, current)))
                };
            // Per-rank run id: `<job>/r<rank>` keys every summary line.
            let rank_run_id: Option<Arc<str>> =
                cfg.run_id.as_ref().map(|id| Arc::from(format!("{id}/r{rank}").as_str()));
            let final_dist;
            if cfg.persistent {
                let mut exec = PersistentExecutor::new(
                    Arc::clone(&grid),
                    Arc::clone(&decls),
                    Arc::clone(&dist),
                    sched,
                    Arc::clone(&dw),
                    gpu.clone(),
                    cfg.aggregate_level_windows,
                );
                exec.set_run_id(rank_run_id.clone());
                for ts in 0..cfg.timesteps {
                    if let Some(next) = agree_on_rebalance(ts, &mut step_cost, exec.dist()) {
                        exec.regrid(next);
                    }
                    let s = exec.step();
                    for &(pid, d) in &s.per_patch {
                        step_cost[pid.index()] += d.as_secs_f64();
                    }
                    refresh_affinity(&s);
                    stats.push(s);
                }
                final_dist = Arc::clone(exec.dist());
            } else {
                // Rebuild-everything baseline: fresh graph, cold warehouse
                // and cold GPU level DB every step. A rebalance here is just
                // a distribution swap — no migration, nothing persists.
                let mut dist = dist;
                for ts in 0..cfg.timesteps {
                    if let Some(next) = agree_on_rebalance(ts, &mut step_cost, &dist) {
                        dist = next;
                    }
                    if ts > 0 {
                        dw.clear();
                        if let Some(g) = &gpu {
                            g.clear_level_db();
                            g.clear_patch_db();
                        }
                    }
                    let t0 = Instant::now();
                    let cg = graph::compile_opts(
                        &grid,
                        &dist,
                        &decls,
                        rank,
                        (ts % 256) as u8,
                        cfg.aggregate_level_windows,
                    );
                    let compile_time = t0.elapsed();
                    let mut s = sched.execute(&grid, &decls, &cg, &dw, gpu.as_deref());
                    s.graph_compile = compile_time;
                    s.run_id = rank_run_id.clone();
                    for &(pid, d) in &s.per_patch {
                        step_cost[pid.index()] += d.as_secs_f64();
                    }
                    refresh_affinity(&s);
                    stats.push(s);
                }
                final_dist = dist;
            }
            RankResult {
                rank,
                stats,
                dw,
                gpu,
                dist: final_dist,
            }
        }));
    }
    let ranks: Vec<RankResult> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect();
    // Every rank finishes under the same distribution (the regridder is
    // deterministic on the all-reduced costs); report it as the world's.
    let dist = ranks.first().map(|r| Arc::clone(&r.dist)).unwrap_or(dist);
    WorldResult { dist, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Computes, Requirement, TaskContext};
    use uintah_grid::{CcVariable, FieldData, IntVector, VarLabel};

    const SRC: VarLabel = VarLabel::new("src", 0);
    const OUT: VarLabel = VarLabel::new("out", 1);

    /// A 7-point-stencil pipeline: producer fills each patch with a cell
    /// function; consumer sums the 6 face neighbours + itself. Ground truth
    /// is computable analytically, so any rank count must agree.
    fn stencil_decls() -> Arc<Vec<TaskDecl>> {
        let produce = TaskDecl::new(
            "produce",
            0,
            Arc::new(|ctx: &mut TaskContext| {
                let mut v = CcVariable::<f64>::new(ctx.patch().interior());
                v.fill_with(|c| (c.x + 10 * c.y + 100 * c.z) as f64);
                ctx.put(SRC, FieldData::F64(v));
            }),
        )
        .computes(Computes::PatchVar(SRC));
        let consume = TaskDecl::new(
            "stencil",
            0,
            Arc::new(|ctx: &mut TaskContext| {
                let src = ctx.get_ghosted_f64(SRC, 1);
                let region = ctx.patch().interior();
                let mut out = CcVariable::<f64>::new(region);
                let dirs = [
                    IntVector::new(1, 0, 0),
                    IntVector::new(-1, 0, 0),
                    IntVector::new(0, 1, 0),
                    IntVector::new(0, -1, 0),
                    IntVector::new(0, 0, 1),
                    IntVector::new(0, 0, -1),
                ];
                for c in region.cells() {
                    let mut sum = src[c];
                    for d in dirs {
                        if let Some(&v) = src.get(c + d) {
                            sum += v;
                        }
                    }
                    out[c] = sum;
                }
                ctx.put(OUT, FieldData::F64(out));
            }),
        )
        .requires(Requirement::Ghost(SRC, 1))
        .computes(Computes::PatchVar(OUT));
        Arc::new(vec![produce, consume])
    }

    fn stencil_truth(c: IntVector, n: i32) -> f64 {
        let f = |c: IntVector| (c.x + 10 * c.y + 100 * c.z) as f64;
        let mut sum = f(c);
        let dirs = [
            IntVector::new(1, 0, 0),
            IntVector::new(-1, 0, 0),
            IntVector::new(0, 1, 0),
            IntVector::new(0, -1, 0),
            IntVector::new(0, 0, 1),
            IntVector::new(0, 0, -1),
        ];
        let domain = uintah_grid::Region::cube(n);
        for d in dirs {
            if domain.contains(c + d) {
                sum += f(c + d);
            }
        }
        sum
    }

    fn grid1(n: i32, p: i32) -> Arc<Grid> {
        Arc::new(
            Grid::builder()
                .fine_cells(IntVector::splat(n))
                .num_levels(1)
                .fine_patch_size(IntVector::splat(p))
                .build(),
        )
    }

    fn check_stencil_result(result: &WorldResult, grid: &Grid, n: i32) {
        for rr in &result.ranks {
            for &pid in result.dist.owned_by(rr.rank) {
                let patch = grid.patch(pid);
                let out = rr.dw.get_patch(OUT, pid).expect("output computed");
                for c in patch.interior().cells() {
                    assert_eq!(out.as_f64()[c], stencil_truth(c, n), "cell {c:?}");
                }
            }
        }
    }

    #[test]
    fn single_rank_single_thread() {
        let grid = grid1(16, 8);
        let result = run_world(grid.clone(), stencil_decls(), WorldConfig::default());
        check_stencil_result(&result, &grid, 16);
        assert_eq!(result.total_messages(), 0);
    }

    #[test]
    fn multi_rank_matches_single_rank() {
        let grid = grid1(16, 8);
        for nranks in [2, 4] {
            let cfg = WorldConfig {
                nranks,
                nthreads: 2,
                ..WorldConfig::default()
            };
            let result = run_world(grid.clone(), stencil_decls(), cfg);
            check_stencil_result(&result, &grid, 16);
            assert!(result.total_messages() > 0, "ranks must exchange halos");
        }
    }

    #[test]
    fn all_store_kinds_give_identical_results() {
        let grid = grid1(16, 4);
        for store in [StoreKind::WaitFree, StoreKind::Mutex, StoreKind::Racy] {
            let cfg = WorldConfig {
                nranks: 3,
                nthreads: 2,
                store,
                ..WorldConfig::default()
            };
            let result = run_world(grid.clone(), stencil_decls(), cfg);
            check_stencil_result(&result, &grid, 16);
        }
    }

    #[test]
    fn multiple_timesteps_rerun_cleanly() {
        let grid = grid1(8, 4);
        let cfg = WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: 3,
            ..WorldConfig::default()
        };
        let result = run_world(grid.clone(), stencil_decls(), cfg);
        check_stencil_result(&result, &grid, 8);
        for r in &result.ranks {
            assert_eq!(r.stats.len(), 3);
        }
    }

    #[test]
    fn per_task_breakdown_reported() {
        let grid = grid1(8, 4);
        let result = run_world(grid, stencil_decls(), WorldConfig::default());
        let stats = &result.ranks[0].stats[0];
        assert_eq!(stats.per_task.len(), 2);
        let (name0, count0, _) = stats.per_task[0];
        let (name1, count1, _) = stats.per_task[1];
        assert_eq!(name0, "produce");
        assert_eq!(name1, "stencil");
        assert_eq!(count0, 8, "one produce per patch");
        assert_eq!(count1, 8, "one stencil per patch");
        assert_eq!(stats.tasks_executed, 16);
    }

    #[test]
    fn round_robin_distribution_also_correct() {
        let grid = grid1(16, 4);
        let cfg = WorldConfig {
            nranks: 4,
            nthreads: 1,
            policy: DistributionPolicy::RoundRobin,
            ..WorldConfig::default()
        };
        let result = run_world(grid.clone(), stencil_decls(), cfg);
        check_stencil_result(&result, &grid, 16);
    }
}
