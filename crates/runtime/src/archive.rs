//! Data archiver: Uintah's UDA-style on-disk output.
//!
//! Production Uintah writes each timestep's grid variables into a "UDA"
//! directory (one subdirectory per timestep, an index, and per-patch
//! binary payloads) that post-processing and visualization (VisIt) read.
//! This module provides the same shape at a miniature scale: a
//! [`DataArchive`] directory containing a plain-text index plus one binary
//! file per saved field, written/read with the same little-endian codec the
//! message layer uses.

use crate::codec;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use uintah_grid::{FieldData, Region, VarLabel};

/// A directory of saved timesteps.
pub struct DataArchive {
    root: PathBuf,
}

/// An error from archive I/O.
#[derive(Debug)]
pub enum ArchiveError {
    Io(std::io::Error),
    /// The index or a payload was malformed.
    Corrupt(String),
    /// The requested field is not in the archive.
    NotFound(String),
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::Corrupt(s) => write!(f, "corrupt archive: {s}"),
            ArchiveError::NotFound(s) => write!(f, "not in archive: {s}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl DataArchive {
    /// Create (or open) an archive rooted at `root`.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, ArchiveError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Open an existing archive.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ArchiveError> {
        let root = root.into();
        if !root.is_dir() {
            return Err(ArchiveError::NotFound(root.display().to_string()));
        }
        Ok(Self { root })
    }

    #[inline]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn timestep_dir(&self, ts: u32) -> PathBuf {
        self.root.join(format!("t{ts:05}"))
    }

    fn field_file(&self, ts: u32, label: VarLabel, piece: u32) -> PathBuf {
        self.timestep_dir(ts).join(format!("{}_{piece:05}.fld", label.name()))
    }

    /// Save one field (or one patch's piece of it) for a timestep. `piece`
    /// distinguishes per-patch payloads (use the patch id).
    pub fn save_field(
        &self,
        ts: u32,
        label: VarLabel,
        piece: u32,
        data: &FieldData,
    ) -> Result<(), ArchiveError> {
        fs::create_dir_all(self.timestep_dir(ts))?;
        let payload = codec::encode_window(data, &data.region());
        let path = self.field_file(ts, label, piece);
        let mut f = fs::File::create(&path)?;
        f.write_all(&payload)?;
        // Append to the timestep index (idempotent enough for our use: the
        // reader dedups).
        let mut idx = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.timestep_dir(ts).join("index.txt"))?;
        writeln!(
            idx,
            "{} {} {} {}",
            label.name(),
            label.id(),
            piece,
            path.file_name().unwrap().to_string_lossy()
        )?;
        Ok(())
    }

    /// Load one piece of a field.
    pub fn load_field(&self, ts: u32, label: VarLabel, piece: u32) -> Result<(Region, FieldData), ArchiveError> {
        let path = self.field_file(ts, label, piece);
        let mut buf = Vec::new();
        fs::File::open(&path)
            .map_err(|_| ArchiveError::NotFound(path.display().to_string()))?
            .read_to_end(&mut buf)?;
        if buf.len() < 25 {
            return Err(ArchiveError::Corrupt(path.display().to_string()));
        }
        Ok(codec::decode_window(&buf))
    }

    /// Timesteps present in the archive, ascending.
    pub fn timesteps(&self) -> Result<Vec<u32>, ArchiveError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(ts) = name.strip_prefix('t').and_then(|s| s.parse::<u32>().ok()) {
                out.push(ts);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Pieces saved for `(ts, label)` according to the index.
    pub fn pieces(&self, ts: u32, label: VarLabel) -> Result<Vec<u32>, ArchiveError> {
        let idx = self.timestep_dir(ts).join("index.txt");
        let text = fs::read_to_string(&idx)
            .map_err(|_| ArchiveError::NotFound(idx.display().to_string()))?;
        let mut out: Vec<u32> = text
            .lines()
            .filter_map(|l| {
                let mut parts = l.split_whitespace();
                let name = parts.next()?;
                let _id = parts.next()?;
                let piece: u32 = parts.next()?.parse().ok()?;
                (name == label.name()).then_some(piece)
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::{CcVariable, IntVector};

    const DIVQ: VarLabel = VarLabel::new("divQ", 4);
    const CT: VarLabel = VarLabel::new("cellType", 3);

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rmcrt_archive_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_f64_field() {
        let dir = tmpdir("f64");
        let ar = DataArchive::create(&dir).unwrap();
        let region = Region::new(IntVector::new(8, 0, 4), IntVector::new(12, 6, 9));
        let mut v = CcVariable::<f64>::new(region);
        v.fill_with(|c| c.x as f64 * 0.5 - c.z as f64);
        ar.save_field(3, DIVQ, 7, &FieldData::F64(v.clone())).unwrap();
        let (r, data) = ar.load_field(3, DIVQ, 7).unwrap();
        assert_eq!(r, region);
        for c in region.cells() {
            assert_eq!(data.as_f64()[c], v[c]);
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn roundtrip_u8_field_and_index() {
        let dir = tmpdir("u8");
        let ar = DataArchive::create(&dir).unwrap();
        let v = CcVariable::<u8>::filled(Region::cube(4), 2u8);
        ar.save_field(0, CT, 0, &FieldData::U8(v.clone())).unwrap();
        ar.save_field(0, CT, 1, &FieldData::U8(v.clone())).unwrap();
        ar.save_field(1, CT, 0, &FieldData::U8(v)).unwrap();
        assert_eq!(ar.timesteps().unwrap(), vec![0, 1]);
        assert_eq!(ar.pieces(0, CT).unwrap(), vec![0, 1]);
        assert_eq!(ar.pieces(1, CT).unwrap(), vec![0]);
        assert_eq!(ar.pieces(1, DIVQ).unwrap(), Vec::<u32>::new());
        let (_, data) = ar.load_field(0, CT, 1).unwrap();
        assert_eq!(data.as_u8()[IntVector::ZERO], 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_field_is_not_found() {
        let dir = tmpdir("missing");
        let ar = DataArchive::create(&dir).unwrap();
        assert!(matches!(
            ar.load_field(9, DIVQ, 0),
            Err(ArchiveError::NotFound(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reopen_existing_archive() {
        let dir = tmpdir("reopen");
        {
            let ar = DataArchive::create(&dir).unwrap();
            ar.save_field(2, DIVQ, 0, &FieldData::F64(CcVariable::filled(Region::cube(2), 1.0)))
                .unwrap();
        }
        let ar = DataArchive::open(&dir).unwrap();
        assert_eq!(ar.timesteps().unwrap(), vec![2]);
        assert!(DataArchive::open(dir.join("nope")).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}
