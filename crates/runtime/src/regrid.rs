//! Ownership migration after a regrid/rebalance.
//!
//! When the load balancer produces a new [`PatchDistribution`], every rank
//! compares old and new ownership and moves the current-epoch warehouse
//! contents of every patch it lost to the patch's new owner — Uintah's
//! data-migration phase after `Regridder::regrid`. The wire protocol reuses
//! the ghost-exchange codec: one [bundle](crate::codec::encode_bundle) per
//! migrated patch carrying every per-patch variable, sent under a reserved
//! tag namespace so migration traffic can never match graph receives.
//!
//! The protocol is deadlock-free on the eager fabric: every rank posts all
//! of its sends first (`isend` completes at post time; unexpected messages
//! queue at the receiver), then polls its receives. Payload decode on the
//! receive side draws destination storage from the warehouse recyclers, so
//! a migration does not cold-allocate what the next step would have pooled.

use crate::dw::DataWarehouse;
use crate::task::TaskDecl;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use uintah_comm::{Communicator, RecvRequest, Tag};
use uintah_grid::{PatchDistribution, PatchId, VarLabel};

/// Reserved var-id for migration bundles (graph tags use real label ids,
/// which are application-assigned small integers; 0xFF is the level-bundle
/// marker).
pub(crate) const MIGRATE_VAR_ID: u8 = 0xFE;

/// Reserved destination-patch marker for migration tags, disjoint from the
/// graph's level-window (0xFF_FF00) and bundle (0xFF_FE00) namespaces.
pub(crate) const MIGRATE_DST_MARKER: u32 = 0xFF_FD00;

/// The tag carrying patch `pid`'s migration bundle. The distribution
/// generation rides in the phase byte so a migration can never match a
/// stale receive from an earlier regrid.
pub(crate) fn migrate_tag(pid: PatchId, generation: u64) -> Tag {
    Tag::compose(MIGRATE_VAR_ID, pid.0, MIGRATE_DST_MARKER, (generation % 256) as u8)
}

/// What one regrid did on one rank, folded into the next step's
/// [`ExecStats`](crate::scheduler::ExecStats) by the persistent executor.
#[derive(Clone, Debug, Default)]
pub struct RegridEvent {
    /// Distribution generation this regrid opened.
    pub generation: u64,
    /// Patches this rank owned before and handed away.
    pub patches_out: usize,
    /// Patches this rank gained and received data for.
    pub patches_in: usize,
    /// Total migration payload bytes this rank sent.
    pub migrated_bytes: u64,
    /// Wall time of the migration exchange (serialize + send + receive +
    /// install).
    pub migrate_wall: Duration,
    /// In-flight async D2H transfers settled before the migration.
    pub drained_d2h: usize,
    /// GPU per-patch staging entries evicted.
    pub gpu_patch_evicted: usize,
    /// GPU device-resident level replicas evicted (re-uploaded in full on
    /// first post-regrid use).
    pub gpu_level_evicted: usize,
    /// Fleet devices the eviction touched (only devices home to a patch
    /// whose owner changed; the rest keep their resident replicas).
    pub gpu_devices_evicted: usize,
}

/// Var-id → label map over every label the task list can publish — the
/// receive side of self-describing bundles (graph level-bundles and
/// migration bundles alike).
pub(crate) fn label_map(decls: &[TaskDecl]) -> HashMap<u8, VarLabel> {
    let mut map = HashMap::new();
    for d in decls {
        for c in &d.computes {
            let l = match *c {
                crate::task::Computes::PatchVar(l) => l,
                crate::task::Computes::LevelWindow(l, _) => l,
            };
            map.insert(l.id(), l);
        }
        for r in &d.requires {
            let l = r.label();
            map.insert(l.id(), l);
        }
    }
    map
}

/// Move the current-epoch per-patch contents of every patch whose owner
/// changed between `old` and `new`. Symmetric: every rank of the world must
/// call this with the same `(old, new, generation)`. Returns
/// `(patches_out, patches_in, bytes_sent)`.
pub(crate) fn migrate_patch_vars(
    comm: &Communicator,
    dw: &DataWarehouse,
    old: &PatchDistribution,
    new: &PatchDistribution,
    labels: &HashMap<u8, VarLabel>,
    generation: u64,
) -> (usize, usize, u64) {
    let me = comm.rank();

    // Sends first: eager isend means every outbound bundle completes at
    // post time, so no rank can block another's send phase.
    let mut patches_out = 0usize;
    let mut bytes_out = 0u64;
    for &pid in old.owned_by(me) {
        let dst = new.rank_of(pid);
        if dst == me {
            continue;
        }
        patches_out += 1;
        let entries = dw.take_patch_entries(pid);
        let wire: Vec<(u8, u8, bytes::Bytes)> = entries
            .iter()
            .map(|(l, data)| (l.id(), 0u8, crate::codec::encode_window(data, &data.region())))
            .collect();
        // An empty bundle is still sent: the new owner posts exactly one
        // receive per gained patch and must not hang on a patch that had
        // nothing published this epoch.
        let payload = crate::codec::encode_bundle(&wire);
        bytes_out += payload.len() as u64;
        comm.isend(dst, migrate_tag(pid, generation), payload);
        // The serialized copies are on the wire; retire the originals into
        // the recyclers (they are sole-owner once the wire entries drop).
        drop(wire);
        for (_, data) in entries {
            if let Ok(d) = Arc::try_unwrap(data) {
                dw.recycle(d);
            }
        }
    }

    // Then receive everything we gained, installing under the current epoch
    // as each bundle lands.
    let mut gained: Vec<(PatchId, RecvRequest)> = new
        .owned_by(me)
        .iter()
        .filter(|&&pid| old.rank_of(pid) != me)
        .map(|&pid| (pid, comm.irecv(old.rank_of(pid), migrate_tag(pid, generation))))
        .collect();
    let patches_in = gained.len();
    while !gained.is_empty() {
        let before = gained.len();
        gained.retain(|(pid, req)| {
            let Some(msg) = req.take() else { return true };
            for (var_id, _level, _region, data) in crate::codec::decode_bundle_with_buffers(
                &msg.payload,
                |n| dw.acquire_f64(n),
                |n| dw.acquire_u8(n),
            ) {
                let label = *labels
                    .get(&var_id)
                    .expect("migrated var id unknown to the task list");
                dw.put_patch(label, *pid, data);
            }
            false
        });
        if gained.len() == before {
            std::thread::yield_now();
        }
    }

    (patches_out, patches_in, bytes_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::{CcVariable, FieldData, Grid, IntVector, Region};

    const KAPPA: VarLabel = VarLabel::new("abskg", 0);
    const CELLTYPE: VarLabel = VarLabel::new("cellType", 2);

    fn grid1() -> Arc<Grid> {
        Arc::new(
            Grid::builder()
                .fine_cells(IntVector::splat(16))
                .num_levels(1)
                .fine_patch_size(IntVector::splat(8))
                .build(),
        )
    }

    fn test_labels() -> HashMap<u8, VarLabel> {
        HashMap::from([(KAPPA.id(), KAPPA), (CELLTYPE.id(), CELLTYPE)])
    }

    #[test]
    fn migrate_tags_disjoint_from_graph_namespaces() {
        let t = migrate_tag(PatchId(3), 1);
        assert_eq!(t.phase(), 1);
        // Distinct from itself under a different generation and a
        // different patch.
        assert_ne!(t, migrate_tag(PatchId(3), 2));
        assert_ne!(t, migrate_tag(PatchId(4), 1));
    }

    #[test]
    fn two_rank_flip_moves_patch_data_bit_identically() {
        let grid = grid1();
        let n = grid.num_patches();
        let old = Arc::new(PatchDistribution::from_rank_of(
            2,
            (0..n).map(|i| (i % 2) as u32).collect(),
        ));
        let new = Arc::new(PatchDistribution::from_rank_of(
            2,
            (0..n).map(|i| ((i + 1) % 2) as u32).collect(),
        ));
        let world = uintah_comm::CommWorld::new(2);
        let mut handles = Vec::new();
        for rank in 0..2usize {
            let world = world.clone();
            let grid = Arc::clone(&grid);
            let (old, new) = (Arc::clone(&old), Arc::clone(&new));
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank);
                let dw = DataWarehouse::new(Arc::clone(&grid));
                for &pid in old.owned_by(rank) {
                    let patch = grid.patch(pid);
                    let mut v = CcVariable::<f64>::new(patch.interior());
                    v.fill_with(|c| (pid.0 * 1000) as f64 + (c.x + 10 * c.y + 100 * c.z) as f64);
                    dw.put_patch(KAPPA, pid, FieldData::F64(v));
                    dw.put_patch(
                        CELLTYPE,
                        pid,
                        FieldData::U8(CcVariable::filled(patch.interior(), pid.0 as u8)),
                    );
                }
                let (out, inn, bytes) =
                    migrate_patch_vars(&comm, &dw, &old, &new, &test_labels(), 1);
                assert_eq!(out, old.owned_by(rank).len());
                assert_eq!(inn, new.owned_by(rank).len());
                assert!(bytes > 0);
                // Every gained patch now holds the producer's exact values.
                for &pid in new.owned_by(rank) {
                    let patch = grid.patch(pid);
                    let k = dw.get_patch(KAPPA, pid).expect("migrated kappa");
                    for c in patch.interior().cells() {
                        assert_eq!(
                            k.as_f64()[c],
                            (pid.0 * 1000) as f64 + (c.x + 10 * c.y + 100 * c.z) as f64
                        );
                    }
                    let ct = dw.get_patch(CELLTYPE, pid).expect("migrated cellType");
                    assert_eq!(ct.as_u8()[patch.interior().lo()], pid.0 as u8);
                }
                // And lost patches are gone from this rank.
                for &pid in old.owned_by(rank) {
                    assert!(dw.get_patch(KAPPA, pid).is_none());
                }
                assert_eq!(dw.stale_hits(), 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn patch_with_no_published_vars_sends_empty_bundle() {
        let grid = grid1();
        let n = grid.num_patches();
        let old = Arc::new(PatchDistribution::from_rank_of(2, vec![0; n]));
        let new = Arc::new(PatchDistribution::from_rank_of(2, vec![1; n]));
        let world = uintah_comm::CommWorld::new(2);
        let mut handles = Vec::new();
        for rank in 0..2usize {
            let world = world.clone();
            let grid = Arc::clone(&grid);
            let (old, new) = (Arc::clone(&old), Arc::clone(&new));
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank);
                let dw = DataWarehouse::new(Arc::clone(&grid));
                // Nothing published anywhere: receiver must still unblock.
                let (out, inn, _) =
                    migrate_patch_vars(&comm, &dw, &old, &new, &test_labels(), 1);
                if rank == 0 {
                    assert_eq!((out, inn), (grid.num_patches(), 0));
                } else {
                    assert_eq!((out, inn), (0, grid.num_patches()));
                    for &pid in new.owned_by(rank) {
                        assert!(dw.get_patch(KAPPA, pid).is_none());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn migration_install_reuses_recycler_storage() {
        // Single "world" with two ranks on one thread each; the receiving
        // rank pre-seeds its recycler with a buffer of the payload's size
        // and must reuse it for the install.
        let grid = grid1();
        let n = grid.num_patches();
        let mut rank_of = vec![1u32; n];
        rank_of[0] = 0;
        let old = Arc::new(PatchDistribution::from_rank_of(2, rank_of.clone()));
        let mut rank_of_new = rank_of;
        rank_of_new[0] = 1;
        let new = Arc::new(PatchDistribution::from_rank_of(2, rank_of_new));
        let world = uintah_comm::CommWorld::new(2);
        let mut handles = Vec::new();
        for rank in 0..2usize {
            let world = world.clone();
            let grid = Arc::clone(&grid);
            let (old, new) = (Arc::clone(&old), Arc::clone(&new));
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank);
                let dw = DataWarehouse::new(Arc::clone(&grid));
                let pid = PatchId(0);
                let region = grid.patch(pid).interior();
                if rank == 0 {
                    dw.put_patch(KAPPA, pid, FieldData::F64(CcVariable::filled(region, 2.5)));
                } else {
                    dw.recycle(FieldData::F64(CcVariable::filled(region, 9.0)));
                }
                let hits_before = dw.recycle_hits();
                migrate_patch_vars(&comm, &dw, &old, &new, &test_labels(), 1);
                if rank == 1 {
                    assert_eq!(dw.recycle_hits(), hits_before + 1, "decode drew from the pool");
                    let k = dw.get_patch(KAPPA, pid).unwrap();
                    assert_eq!(k.as_f64()[Region::cube(1).lo()], 2.5);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
