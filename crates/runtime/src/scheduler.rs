//! The hybrid threaded scheduler.
//!
//! Uintah's runtime executes the task graph with decentralized worker
//! threads: "each CPU core requesting work itself and performing its own
//! MPI" (MPI_THREAD_MULTIPLE). Workers pull ready tasks from a shared
//! queue, execute them out of order as dependencies resolve, post the
//! resulting sends themselves, and — when no task is ready — process
//! incoming messages through the pluggable [`RequestStore`] (the wait-free
//! pool or the mutex-vector baseline; the choice is the paper's Fig. 1 /
//! Table I experiment).
//!
//! An idle worker does not busy-spin: after a bounded number of empty
//! polls it parks on the rank's [`WorkSignal`](uintah_comm::WorkSignal)
//! with exponentially backed-off timed waits, woken by inbound messages
//! (the fabric notifies on `isend`) or by peers pushing ready work. Parked
//! time and park counts are reported in [`ExecStats`].
//!
//! [`Scheduler::execute_phase`] executes a *cached* graph under any
//! timestep phase: tags are re-stamped with the phase byte at post time
//! ([`Tag::with_phase`]), which is what makes compiled graphs reusable
//! across timesteps.

use crate::dw::DataWarehouse;
use crate::graph::{CompiledGraph, RecvAction, SendPayload};
use crate::task::{TaskContext, TaskDecl, TaskKind};
use crossbeam::queue::SegQueue;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah_comm::{
    Communicator, Message, MutexRequestVec, RacyRequestVec, RequestStore, Tag, WaitFreeRequestStore,
};
use uintah_exec::{DeviceSpace, ExecSpace, KernelStats};
use uintah_gpu::GpuDataWarehouse;
use uintah_grid::Grid;

/// Which request-store implementation the workers share.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreKind {
    /// The paper's Algorithm 1 (wait-free pool). The "after".
    WaitFree,
    /// Lock-protected vector with Testsome-style sweeps. The "before".
    Mutex,
    /// The racy read-lock variant that reproduces the §IV-A leak.
    Racy,
}

impl StoreKind {
    fn build(self) -> Arc<dyn RequestStore> {
        match self {
            StoreKind::WaitFree => Arc::new(WaitFreeRequestStore::new()),
            StoreKind::Mutex => Arc::new(MutexRequestVec::new()),
            StoreKind::Racy => Arc::new(RacyRequestVec::new()),
        }
    }
}

/// One fleet device's share of a step: its kernel metering plus the
/// per-step deltas of its copy-engine counters and its (absolute)
/// memory high-water mark.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceStepStats {
    /// Fleet device index.
    pub device: usize,
    /// Kernels dispatched on this device this step.
    pub kernel_stats: KernelStats,
    /// Host→device bytes this step.
    pub h2d_bytes: u64,
    /// Device→host bytes this step.
    pub d2h_bytes: u64,
    /// H2D engine occupancy this step, in nanoseconds.
    pub h2d_busy_ns: u64,
    /// D2H engine occupancy this step, in nanoseconds.
    pub d2h_busy_ns: u64,
    /// Consumer stall on posted uploads this step, in nanoseconds: the
    /// residual wait materializing a staged burst on the async path, the
    /// full inline upload wall on the synchronous fallback.
    pub h2d_wait_ns: u64,
    /// Posted-upload wall hidden behind other work this step, in
    /// nanoseconds (burst minus wait; zero on the synchronous fallback).
    pub h2d_overlap_ns: u64,
    /// The device's memory high-water mark (absolute, not a delta — the
    /// capacity-meter number that must stay under the 6 GB budget).
    pub peak_bytes: u64,
    /// LRU evictions this step (oversubscription pressure; 0 when the
    /// problem fits).
    pub evictions: u64,
    /// Bytes spilled device→host by evictions this step.
    pub spilled_bytes: u64,
    /// Bytes transparently re-uploaded from the host spill map this step.
    pub reuploaded_bytes: u64,
}

/// Execution statistics for one `execute` call on one rank.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Job/run identifier of the step these stats describe (e.g.
    /// `job-17/r0`). When set, every [`Self::summary`] line is prefixed
    /// with `[<run_id>]` so interleaved multi-job logs stay attributable
    /// to their tenant; `None` (single-job runs) keeps the bare format.
    pub run_id: Option<Arc<str>>,
    pub tasks_executed: usize,
    pub gathers_executed: usize,
    pub messages_sent: usize,
    pub bytes_sent: u64,
    pub messages_received: usize,
    /// Time spent in local communication: posting sends and sweeping /
    /// processing receives (the quantity of Fig. 1 / Table I).
    pub local_comm: Duration,
    /// Time inside task bodies.
    pub task_time: Duration,
    pub wall: Duration,
    /// Time workers spent parked on the rank's work signal (idle, not
    /// burning a core — the complement of the old `yield_now` spin).
    pub idle: Duration,
    /// Number of timed parks taken by idle workers.
    pub parks: usize,
    /// Time spent compiling the task graph for this step; zero when a
    /// cached graph was reused (set by the persistent executor/driver, not
    /// by `execute` itself).
    pub graph_compile: Duration,
    /// Host→device bytes transferred during this step (delta of the GPU
    /// device counter across the call; 0 without a GPU warehouse).
    pub gpu_h2d_bytes: u64,
    /// Device→host bytes transferred during this step (delta of the GPU
    /// device counter; 0 without a GPU warehouse).
    pub gpu_d2h_bytes: u64,
    /// Wall time consumers spent blocked on in-flight D2H drains this step
    /// (the un-hidden part of the copies).
    pub gpu_d2h_wait: Duration,
    /// D2H drain wall time hidden behind task execution this step — the
    /// overlap won by posting drains to the copy engine instead of blocking
    /// the worker inside the task body. Zero on the synchronous path.
    pub gpu_d2h_overlap: Duration,
    /// Wall time consumers spent blocked on posted H2D uploads this step —
    /// the un-hidden part of the staged bursts on the async path, the full
    /// inline upload wall on the synchronous fallback.
    pub gpu_h2d_wait: Duration,
    /// Posted-upload wall hidden behind other work this step — the overlap
    /// won by staging uploads onto the H2D copy engine (prefetch, spill
    /// re-uploads, coalesced level refreshes). Zero on the synchronous
    /// fallback.
    pub gpu_h2d_overlap: Duration,
    /// LRU evictions across the fleet this step (delta of the device
    /// counters; nonzero only when the problem oversubscribes a device).
    pub gpu_evictions: u64,
    /// Bytes spilled device→host by evictions across the fleet this step.
    pub gpu_spill_bytes: u64,
    /// Bytes re-uploaded from host spill maps across the fleet this step.
    pub gpu_reupload_bytes: u64,
    /// Kernel metering summed over this step's `Device` execution spaces:
    /// launches, cell invocations, logical bytes and wall time inside
    /// device dispatches (all zero without a GPU warehouse). Feeds the
    /// titan-sim cost-model calibration.
    pub kernel_stats: KernelStats,
    /// Per-device breakdown of the fleet's step: one entry per device in
    /// fleet order (kernel stats, copy-engine byte/busy deltas, peak
    /// memory). Empty without a GPU warehouse; `kernel_stats` and the
    /// `gpu_*_bytes` fields are the sums of these entries.
    pub per_device: Vec<DeviceStepStats>,
    /// Regrids folded into this step (the persistent executor charges a
    /// regrid to the step that runs under the new distribution).
    pub regrids: usize,
    /// Graph recompile time attributable to a regrid this step (equals
    /// `graph_compile` when `regrids > 0`; zero otherwise).
    pub regrid_compile: Duration,
    /// Migration payload bytes this rank sent during regrids this step.
    pub migrated_bytes: u64,
    /// Wall time of the migration exchange(s) this step.
    pub migrate_wall: Duration,
    /// Per-declaration breakdown: (task name, executions, time in body).
    pub per_task: Vec<(&'static str, usize, Duration)>,
    /// Per-patch time in task bodies this step — the measured cost vector
    /// the load balancer's cost exchange feeds on. Only patches that ran
    /// tasks on this rank appear.
    pub per_patch: Vec<(uintah_grid::PatchId, Duration)>,
}

impl ExecStats {
    /// Multi-line human-readable report: the wall-time breakdown (task,
    /// local comm, idle/parked, graph compile), message and H2D traffic,
    /// and the per-task lines. Used by the bench binaries (`fig1_table1`)
    /// and handy from tests/examples.
    ///
    /// When [`Self::run_id`] is set, **every** line carries a `[<run_id>]`
    /// prefix — a multi-tenant server interleaves summaries from many jobs
    /// into one log, and a bare per-step line would be unattributable.
    pub fn summary(&self) -> String {
        let body = self.summary_body();
        match &self.run_id {
            Some(id) => {
                let mut out = String::with_capacity(body.len() + (id.len() + 3) * 16);
                for line in body.lines() {
                    out.push('[');
                    out.push_str(id);
                    out.push_str("] ");
                    out.push_str(line);
                    out.push('\n');
                }
                out
            }
            None => body,
        }
    }

    fn summary_body(&self) -> String {
        use std::fmt::Write as _;
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall {:.3} ms | task {:.3} ms  comm {:.3} ms  idle {:.3} ms ({} parks)  compile {:.3} ms",
            ms(self.wall),
            ms(self.task_time),
            ms(self.local_comm),
            ms(self.idle),
            self.parks,
            ms(self.graph_compile),
        );
        let _ = writeln!(
            out,
            "tasks {} (+{} gathers) | msgs {} sent / {} recv, {} B | h2d {} B | d2h {} B (wait {:.3} ms, overlap {:.3} ms)",
            self.tasks_executed,
            self.gathers_executed,
            self.messages_sent,
            self.messages_received,
            self.bytes_sent,
            self.gpu_h2d_bytes,
            self.gpu_d2h_bytes,
            ms(self.gpu_d2h_wait),
            ms(self.gpu_d2h_overlap),
        );
        if self.regrids > 0 {
            let _ = writeln!(
                out,
                "regrids {} | recompile {:.3} ms | migrated {} B in {:.3} ms",
                self.regrids,
                ms(self.regrid_compile),
                self.migrated_bytes,
                ms(self.migrate_wall),
            );
        }
        if self.gpu_h2d_wait > Duration::ZERO || self.gpu_h2d_overlap > Duration::ZERO {
            let _ = writeln!(
                out,
                "gpu h2d: {} B (wait {:.3} ms, overlap {:.3} ms)",
                self.gpu_h2d_bytes,
                ms(self.gpu_h2d_wait),
                ms(self.gpu_h2d_overlap),
            );
        }
        if self.gpu_evictions > 0 || self.gpu_reupload_bytes > 0 {
            let _ = writeln!(
                out,
                "gpu oversub: {} evictions | spilled {} B | reuploaded {} B",
                self.gpu_evictions,
                self.gpu_spill_bytes,
                self.gpu_reupload_bytes,
            );
        }
        if !self.per_device.is_empty() {
            // One line per fleet device: its launches, PCIe traffic, and
            // engine occupancy — the aggregate is recoverable by summing.
            for d in &self.per_device {
                let _ = writeln!(
                    out,
                    "gpu[{}] {} launches | {} cells | {:.3} ms in kernels | h2d {} B ({} ns busy)  d2h {} B ({} ns busy) | peak {} B",
                    d.device,
                    d.kernel_stats.launches,
                    d.kernel_stats.invocations,
                    ms(d.kernel_stats.wall()),
                    d.h2d_bytes,
                    d.h2d_busy_ns,
                    d.d2h_bytes,
                    d.d2h_busy_ns,
                    d.peak_bytes,
                );
                if d.evictions > 0 || d.reuploaded_bytes > 0 {
                    let _ = writeln!(
                        out,
                        "gpu[{}]   evictions {} | spilled {} B | reuploaded {} B",
                        d.device, d.evictions, d.spilled_bytes, d.reuploaded_bytes,
                    );
                }
            }
        } else if self.kernel_stats.launches > 0 {
            // Hand-built stats without a per-device breakdown.
            let ks = &self.kernel_stats;
            let _ = writeln!(
                out,
                "device kernels {} launches | {} cells | {:.3} ms in kernels",
                ks.launches,
                ks.invocations,
                ms(ks.wall()),
            );
        }
        for (name, count, time) in &self.per_task {
            let _ = writeln!(out, "  {name:<24} {count:>6}x {:>10.3} ms", ms(*time));
        }
        out
    }
}

/// A per-rank scheduler bound to a communicator.
pub struct Scheduler {
    comm: Communicator,
    nthreads: usize,
    store_kind: StoreKind,
}

impl Scheduler {
    pub fn new(comm: Communicator, nthreads: usize, store_kind: StoreKind) -> Self {
        assert!(nthreads >= 1);
        Self {
            comm,
            nthreads,
            store_kind,
        }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The rank's communicator (the migration path posts its own traffic).
    #[inline]
    pub(crate) fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Execute one compiled graph to completion under its own phase byte.
    pub fn execute(
        &self,
        grid: &Arc<Grid>,
        decls: &[TaskDecl],
        graph: &CompiledGraph,
        dw: &DataWarehouse,
        gpu: Option<&GpuDataWarehouse>,
    ) -> ExecStats {
        self.execute_phase(grid, decls, graph, dw, gpu, graph.phase)
    }

    /// Execute a compiled graph under an arbitrary timestep `phase`.
    ///
    /// The phase byte is the only per-timestep component of a message tag,
    /// so a graph compiled once can run every step: each posted receive and
    /// send re-stamps its tag with [`Tag::with_phase`] here. Distinct phase
    /// bytes keep concurrent/adjacent timesteps' messages from matching
    /// each other, exactly as with per-step recompilation.
    pub fn execute_phase(
        &self,
        grid: &Arc<Grid>,
        decls: &[TaskDecl],
        graph: &CompiledGraph,
        dw: &DataWarehouse,
        gpu: Option<&GpuDataWarehouse>,
        phase: u8,
    ) -> ExecStats {
        let t_start = Instant::now();
        let counters_before = gpu.map(|g| g.counters_per_device()).unwrap_or_default();
        let d2h_wait_before = dw.d2h_wait();
        let d2h_overlap_before = dw.d2h_overlap();
        // The step's execution spaces: one shared, metered Device space
        // *per fleet device* (kernel stats aggregate across workers but
        // stay per-device), and a host space for CPU tasks. Each GPU task
        // is dispatched on its patch's home device — the same device the
        // warehouse stages that patch's variables on — so kernel launches
        // and copy-engine drains on different devices overlap freely.
        let device_spaces: Vec<DeviceSpace> = gpu
            .map(|g| {
                (0..g.num_devices())
                    .map(|i| DeviceSpace::with_index(g.device_at(i).clone(), i))
                    .collect()
            })
            .unwrap_or_default();
        let n = graph.instances.len();
        let deps: Vec<AtomicUsize> = graph
            .instances
            .iter()
            .map(|t| AtomicUsize::new(t.num_deps_in))
            .collect();
        // Multi-stage ready queues (the [6] design): GPU tasks drain from a
        // dedicated high-priority queue so the device stays fed while CPU
        // work and gathers fill the remaining lanes.
        let ready = SegQueue::<usize>::new();
        let ready_gpu = SegQueue::<usize>::new();
        // The rank's work signal: notified by the fabric on inbound sends,
        // and by us whenever ready work appears, so parked peers wake.
        let signal = Arc::clone(self.comm.signal());
        let push_ready = |i: usize| {
            let is_gpu = graph.instances[i]
                .decl
                .map(|d| decls[d].kind == TaskKind::Gpu)
                .unwrap_or(false);
            if is_gpu {
                ready_gpu.push(i);
            } else {
                ready.push(i);
            }
            signal.notify();
        };
        for &i in &graph.initial_ready {
            push_ready(i);
        }
        let remaining = AtomicUsize::new(n);

        // Post every expected receive up front and index them by (src, tag),
        // re-stamped with the executing phase.
        let store = self.store_kind.build();
        let mut recv_map: HashMap<(usize, Tag), usize> = HashMap::new();
        for (ri, r) in graph.recvs.iter().enumerate() {
            let tag = r.tag.with_phase(phase);
            recv_map.insert((r.src_rank, tag), ri);
            store.add(self.comm.irecv(r.src_rank, tag));
        }
        let recv_map = &recv_map;

        // Var-id → label map for self-describing bundle entries.
        let label_map = crate::regrid::label_map(decls);
        let label_map = &label_map;

        // Aggregated counters (nanoseconds for the durations).
        let tasks_executed = AtomicUsize::new(0);
        let gathers_executed = AtomicUsize::new(0);
        let messages_sent = AtomicUsize::new(0);
        let bytes_sent = AtomicU64::new(0);
        let messages_received = AtomicUsize::new(0);
        let comm_ns = AtomicU64::new(0);
        let task_ns = AtomicU64::new(0);
        let idle_ns = AtomicU64::new(0);
        let parks = AtomicUsize::new(0);
        let per_decl_count: Vec<AtomicUsize> = decls.iter().map(|_| AtomicUsize::new(0)).collect();
        let per_decl_ns: Vec<AtomicU64> = decls.iter().map(|_| AtomicU64::new(0)).collect();
        // Per-patch task time: the measured cost vector the load balancer
        // exchanges before a rebalance (Uintah's forecaster input).
        let per_patch_ns: Vec<AtomicU64> =
            (0..grid.num_patches()).map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|scope| {
            for _ in 0..self.nthreads {
                let store = Arc::clone(&store);
                let ready = &ready;
                let ready_gpu = &ready_gpu;
                let push_ready = &push_ready;
                let deps = &deps;
                let remaining = &remaining;
                let tasks_executed = &tasks_executed;
                let gathers_executed = &gathers_executed;
                let messages_sent = &messages_sent;
                let bytes_sent = &bytes_sent;
                let messages_received = &messages_received;
                let comm_ns = &comm_ns;
                let task_ns = &task_ns;
                let idle_ns = &idle_ns;
                let parks = &parks;
                let signal = &signal;
                let per_decl_count = &per_decl_count;
                let per_decl_ns = &per_decl_ns;
                let per_patch_ns = &per_patch_ns;
                let device_spaces = &device_spaces;
                let comm = self.comm.clone();
                scope.spawn(move || {
                    let notify = |ids: &[usize]| {
                        for &j in ids {
                            if deps[j].fetch_sub(1, Ordering::AcqRel) == 1 {
                                push_ready(j);
                            }
                        }
                    };
                    let mut handle_msg = |msg: Message| {
                        let ri = *recv_map.get(&(msg.src, msg.tag)).unwrap_or_else(|| {
                            panic!(
                                "misrouted message: no posted receive matches src rank {} \
                                 tag {:?} in phase {} ({} receives posted)",
                                msg.src,
                                msg.tag,
                                phase,
                                recv_map.len(),
                            )
                        });
                        let entry = &graph.recvs[ri];
                        match entry.action {
                            RecvAction::Foreign { label, dst_patch } => {
                                let (region, data) = crate::codec::decode_window(&msg.payload);
                                dw.deposit_foreign(label, dst_patch, region, data);
                            }
                            RecvAction::Level { label, level } => {
                                let (region, data) = crate::codec::decode_window(&msg.payload);
                                dw.deposit_level_window(label, level, region, &data);
                            }
                            RecvAction::LevelBundle => {
                                for (var_id, level, region, data) in
                                    crate::codec::decode_bundle(&msg.payload)
                                {
                                    let label = *label_map
                                        .get(&var_id)
                                        .expect("bundle entry with unknown var id");
                                    dw.deposit_level_window(label, level, region, &data);
                                }
                            }
                        }
                        messages_received.fetch_add(1, Ordering::Relaxed);
                        notify(&entry.dependents);
                    };

                    // Idle policy: poll-and-yield for a bounded number of
                    // empty rounds (covers the common a-message-is-about-
                    // to-land case cheaply), then park on the work signal
                    // with exponentially growing timed waits. The
                    // generation snapshot is taken *before* checking the
                    // queues/store, so any notify racing with those checks
                    // makes the park return immediately — no lost wakeups.
                    const SPIN_POLLS: u32 = 64;
                    const PARK_MIN: Duration = Duration::from_micros(50);
                    const PARK_MAX: Duration = Duration::from_millis(2);
                    let mut empty_polls: u32 = 0;
                    let mut park_for = PARK_MIN;
                    while remaining.load(Ordering::Acquire) > 0 {
                        let seen = signal.generation();
                        // Device-feeding first: drain the GPU queue before
                        // the general queue.
                        if let Some(i) = ready_gpu.pop().or_else(|| ready.pop()) {
                            empty_polls = 0;
                            park_for = PARK_MIN;
                            let inst = &graph.instances[i];
                            if let Some((label, level)) = inst.gather {
                                dw.seal_level(label, level);
                                gathers_executed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                let di = inst.decl.expect("non-gather instance has a decl");
                                let decl = &decls[di];
                                let patch = grid.patch(inst.patch.expect("patch instance"));
                                // One code path picks the space per task:
                                // a GPU task dispatches its kernels on the
                                // metered Device space of its patch's home
                                // device (the same device the warehouse
                                // routes that patch's variables to),
                                // everything else on the host (each worker
                                // already owns a whole patch task, so
                                // intra-task host dispatch is serial).
                                let space = match (decl.kind, gpu) {
                                    (TaskKind::Gpu, Some(g)) => {
                                        let dev = g.device_for_patch(patch.id());
                                        ExecSpace::Device(device_spaces[dev].clone())
                                    }
                                    _ => ExecSpace::host(1),
                                };
                                let mut ctx = TaskContext {
                                    grid,
                                    patch,
                                    dw,
                                    gpu,
                                    rank: comm.rank(),
                                    space,
                                };
                                let t0 = Instant::now();
                                (decl.func)(&mut ctx);
                                let ns = t0.elapsed().as_nanos() as u64;
                                task_ns.fetch_add(ns, Ordering::Relaxed);
                                per_decl_ns[di].fetch_add(ns, Ordering::Relaxed);
                                per_decl_count[di].fetch_add(1, Ordering::Relaxed);
                                per_patch_ns[patch.id().index()].fetch_add(ns, Ordering::Relaxed);
                                tasks_executed.fetch_add(1, Ordering::Relaxed);
                            }
                            // Post this instance's sends ourselves (the
                            // MPI_THREAD_MULTIPLE pattern).
                            if !inst.sends.is_empty() {
                                let t0 = Instant::now();
                                for s in &inst.sends {
                                    let payload = match &s.payload {
                                        SendPayload::PatchWindow => {
                                            let var = dw
                                                .get_patch(s.label, s.src_patch)
                                                .expect("send before compute");
                                            crate::codec::encode_window(&var, &s.window)
                                        }
                                        SendPayload::LevelWindow(li) => {
                                            dw.pack_level_window(s.label, *li, &s.window)
                                        }
                                        SendPayload::LevelBundle(windows) => {
                                            let entries: Vec<(u8, u8, bytes::Bytes)> = windows
                                                .iter()
                                                .map(|&(l, li, w)| {
                                                    (l.id(), li, dw.pack_level_window(l, li, &w))
                                                })
                                                .collect();
                                            crate::codec::encode_bundle(&entries)
                                        }
                                    };
                                    bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
                                    messages_sent.fetch_add(1, Ordering::Relaxed);
                                    comm.isend(s.dst_rank, s.tag.with_phase(phase), payload);
                                }
                                comm_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            }
                            notify(&inst.deps_out);
                            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Graph drained: wake every parked peer so
                                // they observe completion promptly.
                                signal.notify();
                            }
                        } else {
                            let t0 = Instant::now();
                            let n = store.process_completed(&mut handle_msg);
                            comm_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            if n > 0 {
                                empty_polls = 0;
                                park_for = PARK_MIN;
                                continue;
                            }
                            empty_polls += 1;
                            if empty_polls <= SPIN_POLLS {
                                std::thread::yield_now();
                            } else {
                                parks.fetch_add(1, Ordering::Relaxed);
                                let t0 = Instant::now();
                                signal.wait_until_changed(seen, park_for);
                                idle_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                                park_for = (park_for * 2).min(PARK_MAX);
                            }
                        }
                    }
                });
            }
        });

        // Cross-step prefetch at step close: the cached graph makes step
        // N+1's device-resident set the same as step N's, so post predicted
        // level-replica revalidations (against this step's sealed host
        // data) now. The staged bursts ride the H2D engines while the
        // inter-step CPU work drains; next step's first consumer verifies
        // and materializes them instead of uploading inline. Replicas whose
        // resident bytes already match post nothing, so steady state costs
        // no extra traffic. The H2D engines are deliberately NOT synced
        // here — leaving the bursts in flight across the step boundary is
        // the point.
        if let Some(g) = gpu {
            g.prefetch_resident_levels(|label, level| dw.get_sealed_level(label, level));
        }

        // End-of-step device synchronization (the `cudaDeviceSynchronize`
        // analogue, once per fleet device): settle every D2H drain no
        // consumer touched and wait for every copy-engine timeline to
        // empty, so the stats below are coherent and no completion handle
        // leaks across the step boundary.
        dw.drain_pending_d2h();
        if let Some(g) = gpu {
            g.sync_d2h_all();
        }

        // Per-device step breakdown: each device's kernel stats come from
        // its own space, the PCIe numbers from its counter deltas.
        let counters_after = gpu.map(|g| g.counters_per_device()).unwrap_or_default();
        let per_device: Vec<DeviceStepStats> = device_spaces
            .iter()
            .zip(counters_before.iter().zip(&counters_after))
            .map(|(ds, (before, after))| DeviceStepStats {
                device: ds.index(),
                kernel_stats: ds.kernel_stats(),
                h2d_bytes: after.h2d_bytes - before.h2d_bytes,
                d2h_bytes: after.d2h_bytes - before.d2h_bytes,
                h2d_busy_ns: after.h2d_busy_ns.saturating_sub(before.h2d_busy_ns),
                d2h_busy_ns: after.d2h_busy_ns.saturating_sub(before.d2h_busy_ns),
                h2d_wait_ns: after.h2d_wait_ns.saturating_sub(before.h2d_wait_ns),
                h2d_overlap_ns: after.h2d_overlap_ns.saturating_sub(before.h2d_overlap_ns),
                peak_bytes: after.peak,
                evictions: after.evictions - before.evictions,
                spilled_bytes: after.spilled_bytes - before.spilled_bytes,
                reuploaded_bytes: after.reuploads_bytes - before.reuploads_bytes,
            })
            .collect();

        ExecStats {
            run_id: None,
            tasks_executed: tasks_executed.load(Ordering::Relaxed),
            gathers_executed: gathers_executed.load(Ordering::Relaxed),
            messages_sent: messages_sent.load(Ordering::Relaxed),
            bytes_sent: bytes_sent.load(Ordering::Relaxed),
            messages_received: messages_received.load(Ordering::Relaxed),
            local_comm: Duration::from_nanos(comm_ns.load(Ordering::Relaxed)),
            task_time: Duration::from_nanos(task_ns.load(Ordering::Relaxed)),
            wall: t_start.elapsed(),
            idle: Duration::from_nanos(idle_ns.load(Ordering::Relaxed)),
            parks: parks.load(Ordering::Relaxed),
            graph_compile: Duration::ZERO,
            gpu_h2d_bytes: per_device.iter().map(|d| d.h2d_bytes).sum(),
            gpu_d2h_bytes: per_device.iter().map(|d| d.d2h_bytes).sum(),
            gpu_d2h_wait: dw.d2h_wait().saturating_sub(d2h_wait_before),
            gpu_d2h_overlap: dw.d2h_overlap().saturating_sub(d2h_overlap_before),
            gpu_h2d_wait: Duration::from_nanos(per_device.iter().map(|d| d.h2d_wait_ns).sum()),
            gpu_h2d_overlap: Duration::from_nanos(
                per_device.iter().map(|d| d.h2d_overlap_ns).sum(),
            ),
            gpu_evictions: per_device.iter().map(|d| d.evictions).sum(),
            gpu_spill_bytes: per_device.iter().map(|d| d.spilled_bytes).sum(),
            gpu_reupload_bytes: per_device.iter().map(|d| d.reuploaded_bytes).sum(),
            kernel_stats: KernelStats::sum(per_device.iter().map(|d| &d.kernel_stats)),
            per_device,
            regrids: 0,
            regrid_compile: Duration::ZERO,
            migrated_bytes: 0,
            migrate_wall: Duration::ZERO,
            per_patch: per_patch_ns
                .iter()
                .enumerate()
                .filter(|(_, ns)| ns.load(Ordering::Relaxed) > 0)
                .map(|(i, ns)| {
                    (
                        uintah_grid::PatchId(i as u32),
                        Duration::from_nanos(ns.load(Ordering::Relaxed)),
                    )
                })
                .collect(),
            per_task: decls
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    (
                        d.name,
                        per_decl_count[i].load(Ordering::Relaxed),
                        Duration::from_nanos(per_decl_ns[i].load(Ordering::Relaxed)),
                    )
                })
                .collect(),
        }
    }
}
