//! Measured machine calibration: one serializable snapshot of everything
//! the `titan-sim` cost model needs from a real executor run.
//!
//! The scaling campaign (DESIGN §8) replaces hand-set `MachineParams`
//! rates with rates measured on this host: a small-but-real RMCRT run
//! through the persistent executor produces [`ExecStats`] per step, the
//! steps fold into one [`CalibrationSnapshot`], and
//! `MachineParams::from_snapshot` (in `titan-sim`) turns the snapshot into
//! model rates. The snapshot is the *only* interchange type on that path,
//! so every consumer — the four scaling bins, the `scaling_gate` CI check,
//! tests — sees the identical measurement.
//!
//! Every field is an integer counter (nanoseconds, bytes, counts), so
//! serialization is bit-exact by construction: a snapshot written with
//! [`CalibrationSnapshot::to_text`] and re-read with
//! [`CalibrationSnapshot::from_text`] compares equal field-for-field, and
//! calibrating from either yields bit-identical `MachineParams`.
//!
//! Counter fields (launches, invocations, logical/transfer bytes, message
//! counts, per-patch membership) are deterministic for a fixed workload —
//! two identical runs must agree on all of them, which
//! [`CalibrationSnapshot::structural_eq`] checks. Wall-clock fields
//! (`*_ns`) are *measurements* and legitimately vary run to run; they are
//! exactly the quantities calibration exists to measure.

use crate::driver::WorldResult;
use crate::scheduler::ExecStats;
use uintah_exec::KernelStats;

/// One device's share of a calibration run: its kernel metering plus its
/// copy-engine byte/occupancy totals in each direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCalibration {
    /// Kernel launches, invocations, logical bytes and dispatch wall time.
    pub kernels: KernelStats,
    /// Host→device bytes staged through copy engine 0.
    pub h2d_bytes: u64,
    /// Copy-engine-0 occupancy, nanoseconds.
    pub h2d_busy_ns: u64,
    /// Consumer stall on posted uploads, nanoseconds (residual wait on the
    /// async path; the full inline upload wall on the synchronous
    /// fallback).
    pub h2d_wait_ns: u64,
    /// Posted-upload wall hidden behind other work, nanoseconds (zero on
    /// the synchronous fallback).
    pub h2d_overlap_ns: u64,
    /// Device→host bytes drained through copy engine 1.
    pub d2h_bytes: u64,
    /// Copy-engine-1 occupancy, nanoseconds.
    pub d2h_busy_ns: u64,
}

/// Aggregated measurement of a real executor run, in model-calibration
/// form. Fold per-step [`ExecStats`] in with [`record_step`], merge ranks
/// with [`merge_rank`], or take a whole world's with
/// [`WorldResult::calibration_snapshot`].
///
/// [`record_step`]: CalibrationSnapshot::record_step
/// [`merge_rank`]: CalibrationSnapshot::merge_rank
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CalibrationSnapshot {
    /// Timesteps folded in (per rank; merging ranks takes the max).
    pub steps: u64,
    /// Task bodies executed.
    pub tasks_executed: u64,
    /// Messages posted by task sends.
    pub messages_sent: u64,
    /// Messages processed from the request store.
    pub messages_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Wall time posting sends and sweeping/processing receives, ns (the
    /// paper's "local communication time" — the store-model counter).
    pub local_comm_ns: u64,
    /// Minimum over folded steps of that step's local-comm nanoseconds per
    /// message — the *uncontended* per-message cost. The aggregate mean
    /// (`local_comm_ns / messages`) is polluted whenever the OS deschedules
    /// a worker mid-sweep; the min over steps is the stable calibration
    /// quantity. 0 = no step measured any messages.
    pub msg_ns_min: u64,
    /// Wall time inside task bodies, ns.
    pub task_ns: u64,
    /// End-to-end wall time of the folded steps, ns.
    pub wall_ns: u64,
    /// Per-device kernel and copy-engine totals, in fleet order (ranks
    /// merge by appending — each rank's devices are distinct hardware).
    pub devices: Vec<DeviceCalibration>,
    /// Measured per-patch task-body cost, ns, sorted by patch id — the
    /// cost distribution `titan-sim`'s `CostProfile` samples.
    pub per_patch: Vec<(u32, u64)>,
}

impl CalibrationSnapshot {
    /// Fold one step's [`ExecStats`] into the snapshot.
    pub fn record_step(&mut self, s: &ExecStats) {
        self.steps += 1;
        self.tasks_executed += s.tasks_executed as u64;
        self.messages_sent += s.messages_sent as u64;
        self.messages_received += s.messages_received as u64;
        self.bytes_sent += s.bytes_sent;
        self.local_comm_ns += s.local_comm.as_nanos() as u64;
        let msgs = s.messages_sent as u64 + s.messages_received as u64;
        if let Some(per_msg) = (s.local_comm.as_nanos() as u64).checked_div(msgs) {
            if per_msg > 0 && (self.msg_ns_min == 0 || per_msg < self.msg_ns_min) {
                self.msg_ns_min = per_msg;
            }
        }
        self.task_ns += s.task_time.as_nanos() as u64;
        self.wall_ns += s.wall.as_nanos() as u64;
        for d in &s.per_device {
            if self.devices.len() <= d.device {
                self.devices.resize(d.device + 1, DeviceCalibration::default());
            }
            let dev = &mut self.devices[d.device];
            dev.kernels.accumulate(&d.kernel_stats);
            dev.h2d_bytes += d.h2d_bytes;
            dev.h2d_busy_ns += d.h2d_busy_ns;
            dev.h2d_wait_ns += d.h2d_wait_ns;
            dev.h2d_overlap_ns += d.h2d_overlap_ns;
            dev.d2h_bytes += d.d2h_bytes;
            dev.d2h_busy_ns += d.d2h_busy_ns;
        }
        for &(pid, dur) in &s.per_patch {
            self.add_patch_cost(pid.0, dur.as_nanos() as u64);
        }
    }

    /// Fold another rank's snapshot of the *same run* into this one:
    /// counters sum, devices append (they are distinct simulated hardware),
    /// per-patch costs merge by id, and `steps` takes the max (every rank
    /// ran the same number of steps).
    pub fn merge_rank(&mut self, other: &CalibrationSnapshot) {
        self.steps = self.steps.max(other.steps);
        self.tasks_executed += other.tasks_executed;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.bytes_sent += other.bytes_sent;
        self.local_comm_ns += other.local_comm_ns;
        if other.msg_ns_min > 0 && (self.msg_ns_min == 0 || other.msg_ns_min < self.msg_ns_min) {
            self.msg_ns_min = other.msg_ns_min;
        }
        self.task_ns += other.task_ns;
        self.wall_ns += other.wall_ns;
        self.devices.extend(other.devices.iter().copied());
        for &(pid, ns) in &other.per_patch {
            self.add_patch_cost(pid, ns);
        }
    }

    fn add_patch_cost(&mut self, pid: u32, ns: u64) {
        match self.per_patch.binary_search_by_key(&pid, |&(p, _)| p) {
            Ok(i) => self.per_patch[i].1 += ns,
            Err(i) => self.per_patch.insert(i, (pid, ns)),
        }
    }

    /// Kernel totals summed across the devices.
    pub fn kernel_totals(&self) -> KernelStats {
        KernelStats::sum(self.devices.iter().map(|d| &d.kernels))
    }

    /// Copy-engine totals summed across devices and both directions:
    /// `(bytes, busy_ns)`.
    pub fn engine_totals(&self) -> (u64, u64) {
        let (hb, hn) = self.h2d_totals();
        let (db, dn) = self.d2h_totals();
        (hb + db, hn + dn)
    }

    /// Upload-engine totals summed across devices: `(bytes, busy_ns)`.
    pub fn h2d_totals(&self) -> (u64, u64) {
        self.devices
            .iter()
            .fold((0, 0), |(b, n), d| (b + d.h2d_bytes, n + d.h2d_busy_ns))
    }

    /// Drain-engine totals summed across devices: `(bytes, busy_ns)`.
    pub fn d2h_totals(&self) -> (u64, u64) {
        self.devices
            .iter()
            .fold((0, 0), |(b, n), d| (b + d.d2h_bytes, n + d.d2h_busy_ns))
    }

    /// True when every *deterministic* counter matches: everything except
    /// the measured wall-clock fields (`local_comm_ns`, `task_ns`,
    /// `wall_ns`, kernel `wall_ns`, engine `*_busy_ns`, upload
    /// `h2d_wait_ns`/`h2d_overlap_ns`, per-patch costs).
    /// Two executor runs of the identical workload must be
    /// `structural_eq`; their timings are measurements and may differ.
    pub fn structural_eq(&self, other: &CalibrationSnapshot) -> bool {
        self.steps == other.steps
            && self.tasks_executed == other.tasks_executed
            && self.messages_sent == other.messages_sent
            && self.messages_received == other.messages_received
            && self.bytes_sent == other.bytes_sent
            && self.devices.len() == other.devices.len()
            && self
                .devices
                .iter()
                .zip(&other.devices)
                .all(|(a, b)| {
                    a.kernels.launches == b.kernels.launches
                        && a.kernels.invocations == b.kernels.invocations
                        && a.kernels.bytes_moved == b.kernels.bytes_moved
                        && a.h2d_bytes == b.h2d_bytes
                        && a.d2h_bytes == b.d2h_bytes
                })
            && self.per_patch.len() == other.per_patch.len()
            && self
                .per_patch
                .iter()
                .zip(&other.per_patch)
                .all(|(&(pa, _), &(pb, _))| pa == pb)
    }

    /// Serialize to the versioned line-oriented text format. All fields are
    /// integers, so the round trip through [`from_text`] is bit-exact.
    ///
    /// [`from_text`]: CalibrationSnapshot::from_text
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} {}", MAGIC, VERSION);
        let _ = writeln!(out, "steps {}", self.steps);
        let _ = writeln!(out, "tasks {}", self.tasks_executed);
        let _ = writeln!(out, "msgs_sent {}", self.messages_sent);
        let _ = writeln!(out, "msgs_recv {}", self.messages_received);
        let _ = writeln!(out, "bytes_sent {}", self.bytes_sent);
        let _ = writeln!(out, "local_comm_ns {}", self.local_comm_ns);
        let _ = writeln!(out, "msg_ns_min {}", self.msg_ns_min);
        let _ = writeln!(out, "task_ns {}", self.task_ns);
        let _ = writeln!(out, "wall_ns {}", self.wall_ns);
        let _ = writeln!(out, "devices {}", self.devices.len());
        for (i, d) in self.devices.iter().enumerate() {
            let _ = writeln!(
                out,
                "device {} {} {} {} {} {} {} {} {} {} {}",
                i,
                d.kernels.launches,
                d.kernels.invocations,
                d.kernels.bytes_moved,
                d.kernels.wall_ns,
                d.h2d_bytes,
                d.h2d_busy_ns,
                d.h2d_wait_ns,
                d.h2d_overlap_ns,
                d.d2h_bytes,
                d.d2h_busy_ns,
            );
        }
        let _ = writeln!(out, "patches {}", self.per_patch.len());
        for &(pid, ns) in &self.per_patch {
            let _ = writeln!(out, "patch {pid} {ns}");
        }
        out
    }

    /// Parse a snapshot serialized by [`to_text`]. Strict: unknown
    /// versions, malformed lines, and truncated sections are errors.
    ///
    /// [`to_text`]: CalibrationSnapshot::to_text
    pub fn from_text(text: &str) -> Result<CalibrationSnapshot, ParseError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| err("empty snapshot"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some(MAGIC) {
            return Err(err("not a calibration snapshot (bad magic)"));
        }
        let version = h.next().ok_or_else(|| err("missing version"))?;
        if version != VERSION {
            return Err(ParseError(format!(
                "unsupported snapshot version {version:?} (expected {VERSION})"
            )));
        }

        let mut snap = CalibrationSnapshot::default();
        let scalar = |line: &str, key: &str| -> Result<u64, ParseError> {
            let mut it = line.split_whitespace();
            let k = it.next().ok_or_else(|| err("missing key"))?;
            if k != key {
                return Err(ParseError(format!("expected {key:?}, found {k:?}")));
            }
            parse_u64(it.next(), key)
        };
        fn next<'a>(
            lines: &mut dyn Iterator<Item = &'a str>,
            what: &str,
        ) -> Result<&'a str, ParseError> {
            lines
                .next()
                .ok_or_else(|| ParseError(format!("truncated snapshot: missing {what}")))
        }

        snap.steps = scalar(next(&mut lines, "steps")?, "steps")?;
        snap.tasks_executed = scalar(next(&mut lines, "tasks")?, "tasks")?;
        snap.messages_sent = scalar(next(&mut lines, "msgs_sent")?, "msgs_sent")?;
        snap.messages_received = scalar(next(&mut lines, "msgs_recv")?, "msgs_recv")?;
        snap.bytes_sent = scalar(next(&mut lines, "bytes_sent")?, "bytes_sent")?;
        snap.local_comm_ns = scalar(next(&mut lines, "local_comm_ns")?, "local_comm_ns")?;
        snap.msg_ns_min = scalar(next(&mut lines, "msg_ns_min")?, "msg_ns_min")?;
        snap.task_ns = scalar(next(&mut lines, "task_ns")?, "task_ns")?;
        snap.wall_ns = scalar(next(&mut lines, "wall_ns")?, "wall_ns")?;

        let ndev = scalar(next(&mut lines, "devices")?, "devices")? as usize;
        for i in 0..ndev {
            let line = next(&mut lines, "device line")?;
            let mut it = line.split_whitespace();
            if it.next() != Some("device") {
                return Err(err("expected device line"));
            }
            let idx = parse_u64(it.next(), "device index")? as usize;
            if idx != i {
                return Err(ParseError(format!("device lines out of order at {idx}")));
            }
            snap.devices.push(DeviceCalibration {
                kernels: KernelStats {
                    launches: parse_u64(it.next(), "launches")?,
                    invocations: parse_u64(it.next(), "invocations")?,
                    bytes_moved: parse_u64(it.next(), "bytes_moved")?,
                    wall_ns: parse_u64(it.next(), "kernel wall_ns")?,
                },
                h2d_bytes: parse_u64(it.next(), "h2d_bytes")?,
                h2d_busy_ns: parse_u64(it.next(), "h2d_busy_ns")?,
                h2d_wait_ns: parse_u64(it.next(), "h2d_wait_ns")?,
                h2d_overlap_ns: parse_u64(it.next(), "h2d_overlap_ns")?,
                d2h_bytes: parse_u64(it.next(), "d2h_bytes")?,
                d2h_busy_ns: parse_u64(it.next(), "d2h_busy_ns")?,
            });
        }

        let npatch = scalar(next(&mut lines, "patches")?, "patches")? as usize;
        for _ in 0..npatch {
            let line = next(&mut lines, "patch line")?;
            let mut it = line.split_whitespace();
            if it.next() != Some("patch") {
                return Err(err("expected patch line"));
            }
            let pid = parse_u64(it.next(), "patch id")? as u32;
            let ns = parse_u64(it.next(), "patch ns")?;
            if let Some(&(last, _)) = snap.per_patch.last() {
                if pid <= last {
                    return Err(err("patch lines not strictly increasing"));
                }
            }
            snap.per_patch.push((pid, ns));
        }
        if lines.next().is_some() {
            return Err(err("trailing content after snapshot"));
        }
        Ok(snap)
    }
}

impl ExecStats {
    /// This step's calibration snapshot (a one-step
    /// [`CalibrationSnapshot`]); fold more steps in with
    /// [`CalibrationSnapshot::record_step`].
    pub fn calibration_snapshot(&self) -> CalibrationSnapshot {
        let mut snap = CalibrationSnapshot::default();
        snap.record_step(self);
        snap
    }
}

impl WorldResult {
    /// The whole run's calibration snapshot: every rank's steps folded and
    /// ranks merged (devices append in rank order).
    pub fn calibration_snapshot(&self) -> CalibrationSnapshot {
        let mut total = CalibrationSnapshot::default();
        for r in &self.ranks {
            let mut rank_snap = CalibrationSnapshot::default();
            for s in &r.stats {
                rank_snap.record_step(s);
            }
            total.merge_rank(&rank_snap);
        }
        total
    }
}

const MAGIC: &str = "rmcrt-calibration-snapshot";
// v2: device lines carry the H2D engine wait/overlap fields so the model
// calibrates PCIe from both directions.
const VERSION: &str = "v2";

/// Error from [`CalibrationSnapshot::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration snapshot parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: &str) -> ParseError {
    ParseError(msg.to_string())
}

fn parse_u64(tok: Option<&str>, what: &str) -> Result<u64, ParseError> {
    tok.ok_or_else(|| ParseError(format!("missing {what}")))?
        .parse()
        .map_err(|e| ParseError(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::DeviceStepStats;
    use std::time::Duration;

    fn sample_stats() -> ExecStats {
        ExecStats {
            tasks_executed: 12,
            messages_sent: 7,
            messages_received: 5,
            bytes_sent: 4096,
            local_comm: Duration::from_nanos(1500),
            task_time: Duration::from_nanos(90_000),
            wall: Duration::from_nanos(120_000),
            per_device: vec![
                DeviceStepStats {
                    device: 0,
                    kernel_stats: KernelStats {
                        launches: 4,
                        invocations: 2048,
                        bytes_moved: 128,
                        wall_ns: 60_000,
                    },
                    h2d_bytes: 1 << 16,
                    d2h_bytes: 1 << 14,
                    h2d_busy_ns: 2_000,
                    h2d_wait_ns: 350,
                    h2d_overlap_ns: 1_650,
                    d2h_busy_ns: 900,
                    peak_bytes: 1 << 20,
                    ..Default::default()
                },
                DeviceStepStats {
                    device: 1,
                    kernel_stats: KernelStats {
                        launches: 2,
                        invocations: 1024,
                        bytes_moved: 64,
                        wall_ns: 31_000,
                    },
                    h2d_bytes: 1 << 15,
                    d2h_bytes: 1 << 13,
                    h2d_busy_ns: 1_100,
                    h2d_wait_ns: 1_100,
                    d2h_busy_ns: 450,
                    peak_bytes: 1 << 19,
                    ..Default::default()
                },
            ],
            per_patch: vec![
                (uintah_grid::PatchId(3), Duration::from_nanos(40_000)),
                (uintah_grid::PatchId(1), Duration::from_nanos(50_000)),
            ],
            ..ExecStats::default()
        }
    }

    #[test]
    fn record_step_accumulates_and_sorts_patches() {
        let mut snap = CalibrationSnapshot::default();
        snap.record_step(&sample_stats());
        snap.record_step(&sample_stats());
        assert_eq!(snap.steps, 2);
        assert_eq!(snap.tasks_executed, 24);
        assert_eq!(snap.devices.len(), 2);
        assert_eq!(snap.devices[0].kernels.launches, 8);
        assert_eq!(snap.devices[1].h2d_bytes, 2 << 15);
        // Patch costs sorted by id, accumulated across steps.
        assert_eq!(snap.per_patch, vec![(1, 100_000), (3, 80_000)]);
        // 1500 ns over 12 messages → uncontended per-message cost 125 ns.
        assert_eq!(snap.msg_ns_min, 125);
        let totals = snap.kernel_totals();
        assert_eq!(totals.launches, 12);
        assert_eq!(totals.invocations, 2 * 3072);
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let mut snap = CalibrationSnapshot::default();
        snap.record_step(&sample_stats());
        let text = snap.to_text();
        let back = CalibrationSnapshot::from_text(&text).expect("parse");
        assert_eq!(snap, back);
        // Stability: serializing the parse reproduces the exact text.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn merge_rank_appends_devices_and_merges_patches() {
        let mut a = CalibrationSnapshot::default();
        a.record_step(&sample_stats());
        let mut b = CalibrationSnapshot::default();
        b.record_step(&sample_stats());
        let mut merged = a.clone();
        merged.merge_rank(&b);
        assert_eq!(merged.steps, 1, "ranks step in lockstep: max, not sum");
        assert_eq!(merged.devices.len(), 4);
        assert_eq!(merged.messages_sent, 14);
        assert_eq!(merged.per_patch, vec![(1, 100_000), (3, 80_000)]);
    }

    #[test]
    fn structural_eq_ignores_timing_only() {
        let mut a = CalibrationSnapshot::default();
        a.record_step(&sample_stats());
        let mut b = a.clone();
        b.wall_ns += 999;
        b.local_comm_ns = 1;
        b.msg_ns_min = 9_000;
        b.devices[0].kernels.wall_ns = 42;
        b.devices[1].d2h_busy_ns = 7;
        b.per_patch[0].1 = 12345;
        assert!(a.structural_eq(&b), "timing differences must not matter");
        let mut c = a.clone();
        c.devices[0].kernels.invocations += 1;
        assert!(!a.structural_eq(&c), "counter differences must matter");
        let mut d = a.clone();
        d.messages_sent += 1;
        assert!(!a.structural_eq(&d));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(CalibrationSnapshot::from_text("").is_err());
        assert!(CalibrationSnapshot::from_text("not-a-snapshot v1").is_err());
        assert!(CalibrationSnapshot::from_text("rmcrt-calibration-snapshot v9\n").is_err());
        // Old-format snapshots (v1: no H2D wait/overlap fields) are
        // rejected by the version check, not mis-parsed.
        assert!(CalibrationSnapshot::from_text("rmcrt-calibration-snapshot v1\nsteps 1\n").is_err());
        // Truncated after the header.
        assert!(CalibrationSnapshot::from_text("rmcrt-calibration-snapshot v2\nsteps 1\n").is_err());
        // Trailing junk.
        let mut snap = CalibrationSnapshot::default();
        snap.record_step(&sample_stats());
        let mut text = snap.to_text();
        text.push_str("extra line\n");
        assert!(CalibrationSnapshot::from_text(&text).is_err());
    }
}
