//! The OnDemand DataWarehouse.
//!
//! Uintah's data warehouse gives tasks "the illusion [they have] access to
//! memory [they do] not actually own": a task declares a ghost requirement
//! and the warehouse hands it an assembled array spanning its patch plus the
//! halo, transparently merging locally-owned neighbour data with *foreign*
//! windows that arrived by message. For the multi-level RMCRT model the
//! warehouse also maintains whole-level replica accumulators (the "infinite
//! ghost cells" on coarse levels) that every rank fills from local
//! restriction windows plus the all-to-all exchange, then seals for
//! read-only sharing by every patch task on the rank.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use uintah_gpu::PendingD2H;
use uintah_grid::{CcVariable, FieldData, Grid, LevelIndex, Patch, PatchId, Region, VarLabel};
use uintah_mem::{AllocTracker, BufferRecycler};

type PatchKey = (VarLabel, PatchId);
type LevelKey = (VarLabel, LevelIndex);

/// A deferred per-patch slot: the D2H completion handle for a variable
/// whose bytes are still draining on the GPU copy engine. The handle is
/// consumed (and the data promoted into the ordinary patch store) by the
/// first consumer under the slot mutex; losing racers fall through to the
/// promoted entry.
struct PendingSlot {
    epoch: u64,
    /// Distribution generation at park time. A regrid bumps the warehouse
    /// generation, so a slot parked under the old ownership can never
    /// satisfy a request for a recycled patch id afterwards — the slots are
    /// keyed by patch id alone, which is not unique across regrids.
    generation: u64,
    handle: Mutex<Option<PendingD2H>>,
}

struct LevelAccum {
    data: FieldData,
    filled_cells: usize,
}

/// An entry stamped with the timestep epoch it was published in. Gets
/// compare the stamp against the warehouse epoch, so a value left over from
/// step N−1 can never satisfy a step-N request even if a future regrid/
/// checkpoint path forgets to drain a map.
struct Stamped {
    epoch: u64,
    data: Arc<FieldData>,
}

/// Per-rank variable store, persistent across timesteps.
///
/// The warehouse itself lives for the whole simulation; per-timestep
/// *contents* are retired at each [`DataWarehouse::begin_timestep`] into
/// size-binned recyclers ([`BufferRecycler`], the §IV-B pooling applied to
/// field data), so steady-state steps reuse last step's storage instead of
/// round-tripping every field through the heap.
pub struct DataWarehouse {
    grid: Arc<Grid>,
    /// Timestep epoch; bumped by [`Self::begin_timestep`].
    epoch: AtomicU64,
    /// Patch-distribution generation; bumped by [`Self::begin_regrid`].
    generation: AtomicU64,
    /// Gets that found an entry present under the right key but stamped
    /// with a stale epoch or generation. Tests assert this stays zero in
    /// correct runs ("no stale-epoch DW hits").
    stale_hits: AtomicU64,
    patch_vars: RwLock<HashMap<PatchKey, Stamped>>,
    /// Per-patch variables whose host data is still in flight on the GPU's
    /// D2H copy engine; materialized into `patch_vars` on first use.
    pending_d2h: RwLock<HashMap<PatchKey, Arc<PendingSlot>>>,
    /// Wall time consumers spent blocked on in-flight D2H transfers.
    d2h_wait_ns: AtomicU64,
    /// D2H drain wall time hidden behind compute (drain − blocked, summed
    /// per transfer).
    d2h_overlap_ns: AtomicU64,
    /// Ghost windows received from remote patches, keyed by the *destination*
    /// patch (the local patch whose halo they fill).
    foreign: RwLock<HashMap<PatchKey, Vec<(Region, FieldData)>>>,
    /// Whole-level replicas being accumulated.
    accums: Mutex<HashMap<LevelKey, LevelAccum>>,
    /// Completed (sealed) whole-level replicas.
    sealed: RwLock<HashMap<LevelKey, Stamped>>,
    tracker: AllocTracker,
    recycle_f64: BufferRecycler<f64>,
    recycle_u8: BufferRecycler<u8>,
}

impl DataWarehouse {
    pub fn new(grid: Arc<Grid>) -> Self {
        Self::with_tracker(grid, AllocTracker::new())
    }

    /// Share an external tracker (per-rank accounting across subsystems).
    pub fn with_tracker(grid: Arc<Grid>, tracker: AllocTracker) -> Self {
        Self {
            grid,
            epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
            patch_vars: RwLock::new(HashMap::new()),
            pending_d2h: RwLock::new(HashMap::new()),
            d2h_wait_ns: AtomicU64::new(0),
            d2h_overlap_ns: AtomicU64::new(0),
            foreign: RwLock::new(HashMap::new()),
            accums: Mutex::new(HashMap::new()),
            sealed: RwLock::new(HashMap::new()),
            recycle_f64: BufferRecycler::new(tracker.clone()),
            recycle_u8: BufferRecycler::new(tracker.clone()),
            tracker,
        }
    }

    #[inline]
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Current timestep epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current patch-distribution generation.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Gets that found a stale-stamped entry (wrong epoch or generation).
    /// Zero in a correct run: a stale hit means some path almost served
    /// old data and only the stamp check stopped it.
    #[inline]
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits.load(Ordering::Relaxed)
    }

    /// Open a new distribution generation (a regrid): pending-D2H slots
    /// parked under the old ownership and pooled recycler buffers from
    /// before the regrid can no longer satisfy requests — patch ids are
    /// recycled by the regrid and no longer mean what they did. Returns
    /// the new generation.
    pub fn begin_regrid(&self) -> u64 {
        let gen = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.recycle_f64.bump_generation();
        self.recycle_u8.bump_generation();
        gen
    }

    /// The tracker accounting pooled field-buffer bytes.
    pub fn field_tracker(&self) -> &AllocTracker {
        &self.tracker
    }

    /// Allocations served from the step-boundary recyclers (vs fresh heap).
    pub fn recycle_hits(&self) -> u64 {
        self.recycle_f64.hits() + self.recycle_u8.hits()
    }

    /// Allocations that fell through to the heap.
    pub fn recycle_misses(&self) -> u64 {
        self.recycle_f64.misses() + self.recycle_u8.misses()
    }

    /// A zeroed `f64` variable over `region`, drawing storage from the
    /// recycler when last step retired a buffer of the same size.
    pub fn alloc_f64(&self, region: Region) -> CcVariable<f64> {
        CcVariable::from_vec(region, self.recycle_f64.acquire(region.volume()))
    }

    pub fn alloc_u8(&self, region: Region) -> CcVariable<u8> {
        CcVariable::from_vec(region, self.recycle_u8.acquire(region.volume()))
    }

    fn recycle_field(&self, data: FieldData) {
        match data {
            FieldData::F64(v) => self.recycle_f64.retire(v.into_vec()),
            FieldData::U8(v) => self.recycle_u8.retire(v.into_vec()),
        }
    }

    /// Open the next timestep: advance the epoch and retire last step's
    /// contents into the recyclers. Storage whose last owner is the
    /// warehouse is recycled; storage still shared with in-flight readers is
    /// simply dropped (its heap allocation dies when the last reader does).
    pub fn begin_timestep(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Any still-pending D2H handle is from a past epoch now; dropping it
        // discards the drain result without blocking (the engine finishes
        // into the void).
        self.pending_d2h.write().clear();
        let patch_vars: Vec<Stamped> =
            self.patch_vars.write().drain().map(|(_, e)| e).collect();
        for e in patch_vars {
            if let Ok(data) = Arc::try_unwrap(e.data) {
                self.recycle_field(data);
            }
        }
        let foreign: Vec<(Region, FieldData)> =
            self.foreign.write().drain().flat_map(|(_, w)| w).collect();
        for (_, data) in foreign {
            self.recycle_field(data);
        }
        let accums: Vec<LevelAccum> = self.accums.lock().drain().map(|(_, a)| a).collect();
        for a in accums {
            self.recycle_field(a.data);
        }
        let sealed: Vec<Stamped> = self.sealed.write().drain().map(|(_, e)| e).collect();
        for e in sealed {
            if let Ok(data) = Arc::try_unwrap(e.data) {
                self.recycle_field(data);
            }
        }
    }

    fn stamped(&self, data: FieldData) -> Stamped {
        Stamped {
            epoch: self.epoch(),
            data: Arc::new(data),
        }
    }

    /// Publish a per-patch variable.
    pub fn put_patch(&self, label: VarLabel, patch: PatchId, data: FieldData) {
        self.patch_vars.write().insert((label, patch), self.stamped(data));
    }

    /// Publish a per-patch variable whose bytes are still draining on the
    /// GPU's D2H copy engine. The scheduler keeps executing ready tasks;
    /// the first consumer (a downstream task's `get_patch` or the
    /// send-posting path) blocks only for whatever part of the drain wasn't
    /// already hidden behind compute, then promotes the data into the
    /// ordinary patch store.
    pub fn put_patch_pending(&self, label: VarLabel, patch: PatchId, pending: PendingD2H) {
        self.pending_d2h.write().insert(
            (label, patch),
            Arc::new(PendingSlot {
                epoch: self.epoch(),
                generation: self.generation(),
                handle: Mutex::new(Some(pending)),
            }),
        );
    }

    /// Fetch a per-patch variable published this timestep, materializing it
    /// first if its D2H drain is still in flight. Entries from an earlier
    /// epoch never match (and are counted as [`Self::stale_hits`]).
    pub fn get_patch(&self, label: VarLabel, patch: PatchId) -> Option<Arc<FieldData>> {
        let now = self.epoch();
        {
            let vars = self.patch_vars.read();
            if let Some(e) = vars.get(&(label, patch)) {
                if e.epoch == now {
                    return Some(Arc::clone(&e.data));
                }
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.materialize_pending(label, patch, now)
    }

    /// Consume the pending D2H handle for `(label, patch)` if one exists,
    /// metering blocked/overlap time and promoting the host data into
    /// `patch_vars`; then re-read the patch store (covers racers that lost
    /// the handle and drains that published concurrently).
    fn materialize_pending(
        &self,
        label: VarLabel,
        patch: PatchId,
        now: u64,
    ) -> Option<Arc<FieldData>> {
        let gen = self.generation();
        let slot = self.pending_d2h.read().get(&(label, patch)).map(Arc::clone);
        if let Some(slot) = slot {
            if slot.epoch == now && slot.generation == gen {
                if let Some(p) = slot.handle.lock().take() {
                    self.settle_pending(label, patch, p);
                }
            } else {
                // A slot parked before a regrid (or a missed drain) under a
                // patch id that now means something else: never serve it.
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.patch_vars
            .read()
            .get(&(label, patch))
            .filter(|e| e.epoch == now)
            .map(|e| Arc::clone(&e.data))
    }

    fn settle_pending(&self, label: VarLabel, patch: PatchId, p: PendingD2H) {
        let (data, drain, blocked) = p.wait_timed();
        self.d2h_wait_ns
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
        self.d2h_overlap_ns.fetch_add(
            drain.saturating_sub(blocked).as_nanos() as u64,
            Ordering::Relaxed,
        );
        self.patch_vars.write().insert((label, patch), self.stamped(data));
    }

    /// Materialize every still-pending D2H transfer of the current epoch —
    /// the scheduler's end-of-step synchronization point (the
    /// `cudaDeviceSynchronize` analogue), so step stats are coherent and no
    /// completion handle leaks across a step boundary. Returns how many
    /// transfers had not yet been consumed.
    pub fn drain_pending_d2h(&self) -> usize {
        let now = self.epoch();
        let gen = self.generation();
        let slots: Vec<(PatchKey, Arc<PendingSlot>)> =
            self.pending_d2h.write().drain().collect();
        let mut drained = 0;
        for ((label, patch), slot) in slots {
            if slot.epoch != now || slot.generation != gen {
                continue;
            }
            if let Some(p) = slot.handle.lock().take() {
                self.settle_pending(label, patch, p);
                drained += 1;
            }
        }
        drained
    }

    /// Cumulative wall time consumers spent blocked on in-flight D2H
    /// transfers (the un-hidden part of the drains).
    pub fn d2h_wait(&self) -> Duration {
        Duration::from_nanos(self.d2h_wait_ns.load(Ordering::Relaxed))
    }

    /// Cumulative D2H drain wall time hidden behind compute.
    pub fn d2h_overlap(&self) -> Duration {
        Duration::from_nanos(self.d2h_overlap_ns.load(Ordering::Relaxed))
    }

    /// Deposit a ghost window received from a remote patch for `dst_patch`.
    pub fn deposit_foreign(&self, label: VarLabel, dst_patch: PatchId, region: Region, data: FieldData) {
        self.foreign
            .write()
            .entry((label, dst_patch))
            .or_default()
            .push((region, data));
    }

    fn assemble<T: Copy + Default + 'static>(
        &self,
        label: VarLabel,
        patch: &Patch,
        g: i32,
        view: impl Fn(&FieldData) -> &CcVariable<T>,
        alloc: impl FnOnce(Region) -> CcVariable<T>,
    ) -> CcVariable<T> {
        let level = self.grid.level(patch.level_index());
        let window = patch.with_ghosts(g).intersect(&level.cell_region());
        let mut out = alloc(window);
        // Locally-owned patches overlapping the halo.
        {
            let vars = self.patch_vars.read();
            for q in level.patches_overlapping(&window) {
                if let Some(src) = vars.get(&(label, q.id())) {
                    out.copy_window(view(&src.data), &window);
                }
            }
        }
        // Foreign windows received for this destination patch.
        if let Some(wins) = self.foreign.read().get(&(label, patch.id())) {
            for (region, data) in wins {
                out.copy_window(view(data), region);
            }
        }
        out
    }

    /// Assemble `label` over `patch + g` ghosts (clipped to the level).
    /// The ghost-expanded window draws storage from the step recycler.
    pub fn assemble_ghosted_f64(&self, label: VarLabel, patch: &Patch, g: i32) -> CcVariable<f64> {
        self.assemble(label, patch, g, |d| d.as_f64(), |r| self.alloc_f64(r))
    }

    pub fn assemble_ghosted_u8(&self, label: VarLabel, patch: &Patch, g: i32) -> CcVariable<u8> {
        self.assemble(label, patch, g, |d| d.as_u8(), |r| self.alloc_u8(r))
    }

    /// Hand a transient assembled/working variable back for reuse by a
    /// later allocation of the same size (typically next timestep's).
    pub fn recycle(&self, data: FieldData) {
        self.recycle_field(data);
    }

    /// Remove and return every current-epoch per-patch entry for `patch`,
    /// sorted by label id (a deterministic wire order) — the sender side of
    /// an ownership migration. Stale-epoch entries under the patch are
    /// retired into the recyclers instead of returned.
    pub fn take_patch_entries(&self, patch: PatchId) -> Vec<(VarLabel, Arc<FieldData>)> {
        let now = self.epoch();
        let mut vars = self.patch_vars.write();
        let keys: Vec<PatchKey> = vars
            .keys()
            .filter(|&&(_, p)| p == patch)
            .copied()
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let e = vars.remove(&k).expect("key listed above");
            if e.epoch == now {
                out.push((k.0, e.data));
            } else if let Ok(data) = Arc::try_unwrap(e.data) {
                self.recycle_field(data);
            }
        }
        drop(vars);
        out.sort_by_key(|(l, _)| l.id());
        out
    }

    /// A pooled zeroed `f64` buffer (the migration decode path reuses
    /// recycler storage instead of allocating fresh for every payload).
    pub(crate) fn acquire_f64(&self, len: usize) -> Vec<f64> {
        self.recycle_f64.acquire(len)
    }

    pub(crate) fn acquire_u8(&self, len: usize) -> Vec<u8> {
        self.recycle_u8.acquire(len)
    }

    /// Deposit a restriction window into the whole-level accumulator for
    /// `(label, level)`. The accumulator is created on first deposit with
    /// the payload's element type.
    pub fn deposit_level_window(&self, label: VarLabel, level: LevelIndex, window: Region, data: &FieldData) {
        let level_region = self.grid.level(level).cell_region();
        debug_assert!(
            level_region.contains_region(&window),
            "window {window:?} outside level {level}"
        );
        let mut accums = self.accums.lock();
        let accum = accums.entry((label, level)).or_insert_with(|| LevelAccum {
            data: match data {
                FieldData::F64(_) => FieldData::F64(self.alloc_f64(level_region)),
                FieldData::U8(_) => FieldData::U8(self.alloc_u8(level_region)),
            },
            filled_cells: 0,
        });
        let copied = match (&mut accum.data, data) {
            (FieldData::F64(dst), FieldData::F64(src)) => dst.copy_window(src, &window),
            (FieldData::U8(dst), FieldData::U8(src)) => dst.copy_window(src, &window),
            _ => panic!("level window type mismatch for {label}"),
        };
        accum.filled_cells += copied;
    }

    /// Pack a window of the (possibly still accumulating) level replica for
    /// sending to another rank. The scheduler only packs windows this rank's
    /// own tasks deposited, so the data is complete.
    pub fn pack_level_window(&self, label: VarLabel, level: LevelIndex, window: &Region) -> bytes::Bytes {
        let accums = self.accums.lock();
        let accum = accums
            .get(&(label, level))
            .unwrap_or_else(|| panic!("no accumulator for {label} L{level}"));
        crate::codec::encode_window(&accum.data, window)
    }

    /// Seal the accumulator: verify full coverage and publish it read-only.
    pub fn seal_level(&self, label: VarLabel, level: LevelIndex) {
        let accum = self
            .accums
            .lock()
            .remove(&(label, level))
            .unwrap_or_else(|| panic!("sealing {label} L{level} with no deposits"));
        let expected = self.grid.level(level).num_cells();
        assert_eq!(
            accum.filled_cells, expected,
            "level replica {label} L{level} incomplete: {}/{expected} cells",
            accum.filled_cells
        );
        self.sealed.write().insert((label, level), self.stamped(accum.data));
    }

    /// A sealed whole-level replica published this timestep.
    pub fn get_sealed_level(&self, label: VarLabel, level: LevelIndex) -> Option<Arc<FieldData>> {
        let now = self.epoch();
        self.sealed
            .read()
            .get(&(label, level))
            .filter(|e| e.epoch == now)
            .map(|e| Arc::clone(&e.data))
    }

    /// Directly publish a sealed level replica (single-rank convenience and
    /// test hook).
    pub fn put_sealed_level(&self, label: VarLabel, level: LevelIndex, data: FieldData) {
        self.sealed.write().insert((label, level), self.stamped(data));
    }

    /// Bytes held in per-patch variables (nodal-footprint accounting).
    pub fn patch_bytes(&self) -> usize {
        self.patch_vars.read().values().map(|e| e.data.size_bytes()).sum()
    }

    /// Drop everything, including pooled recycler storage (full reset; use
    /// [`Self::begin_timestep`] between timesteps to keep the pools warm).
    pub fn clear(&self) {
        self.patch_vars.write().clear();
        self.pending_d2h.write().clear();
        self.foreign.write().clear();
        self.accums.lock().clear();
        self.sealed.write().clear();
        self.recycle_f64.clear();
        self.recycle_u8.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::{IntVector, Point};

    const KAPPA: VarLabel = VarLabel::new("abskg", 0);
    const CELLTYPE: VarLabel = VarLabel::new("cellType", 2);

    fn grid2() -> Arc<Grid> {
        Arc::new(
            Grid::builder()
                .fine_cells(IntVector::splat(16))
                .num_levels(2)
                .refinement_ratio(4)
                .fine_patch_size(IntVector::splat(8))
                .build(),
        )
    }

    #[test]
    fn patch_put_get() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let p = g.fine_level().patches()[0].id();
        dw.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)));
        assert_eq!(dw.get_patch(KAPPA, p).unwrap().as_f64().len(), 512);
        assert!(dw.get_patch(KAPPA, PatchId(9999)).is_none());
    }

    #[test]
    fn ghost_assembly_from_local_neighbours() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let fine = g.fine_level();
        // Fill every fine patch with its patch-id as value.
        for p in fine.patches() {
            let mut v = CcVariable::<f64>::new(p.interior());
            let val = p.id().0 as f64;
            v.fill_with(|_| val);
            dw.put_patch(KAPPA, p.id(), FieldData::F64(v));
        }
        let p0 = &fine.patches()[0];
        let asm = dw.assemble_ghosted_f64(KAPPA, p0, 2);
        // Clipped at the domain edge: lo corner is (0,0,0).
        assert_eq!(asm.region().lo(), IntVector::ZERO);
        assert_eq!(asm.region().hi(), IntVector::splat(10));
        // Interior value is patch 0's.
        assert_eq!(asm[IntVector::splat(3)], p0.id().0 as f64);
        // Halo cell at x=8..10 belongs to the +x neighbour.
        let neighbour = fine.patch_containing(IntVector::new(9, 0, 0)).unwrap();
        assert_eq!(asm[IntVector::new(9, 1, 1)], neighbour.id().0 as f64);
    }

    #[test]
    fn ghost_assembly_uses_foreign_windows() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let fine = g.fine_level();
        let p0 = &fine.patches()[0];
        // Only p0 is local; its +x neighbour's face arrives as a message.
        let mut v = CcVariable::<f64>::new(p0.interior());
        v.fill_with(|_| 1.0);
        dw.put_patch(KAPPA, p0.id(), FieldData::F64(v));
        let window = Region::new(IntVector::new(8, 0, 0), IntVector::new(9, 8, 8));
        let foreign = CcVariable::filled(window, 7.0);
        dw.deposit_foreign(KAPPA, p0.id(), window, FieldData::F64(foreign));
        let asm = dw.assemble_ghosted_f64(KAPPA, p0, 1);
        assert_eq!(asm[IntVector::new(8, 4, 4)], 7.0);
        assert_eq!(asm[IntVector::new(7, 4, 4)], 1.0);
        // Unfilled halo corners default to zero.
        assert_eq!(asm[IntVector::new(8, 8, 8)], 0.0);
    }

    #[test]
    fn level_accumulate_and_seal() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let coarse = g.coarsest_level(); // 4^3 cells
        let region = coarse.cell_region();
        // Deposit in two halves.
        let half1 = Region::new(region.lo(), IntVector::new(4, 4, 2));
        let half2 = Region::new(IntVector::new(0, 0, 2), region.hi());
        dw.deposit_level_window(KAPPA, 0, half1, &FieldData::F64(CcVariable::filled(half1, 1.0)));
        assert!(dw.get_sealed_level(KAPPA, 0).is_none());
        dw.deposit_level_window(KAPPA, 0, half2, &FieldData::F64(CcVariable::filled(half2, 2.0)));
        dw.seal_level(KAPPA, 0);
        let sealed = dw.get_sealed_level(KAPPA, 0).unwrap();
        assert_eq!(sealed.as_f64()[IntVector::new(0, 0, 0)], 1.0);
        assert_eq!(sealed.as_f64()[IntVector::new(0, 0, 3)], 2.0);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn seal_detects_missing_cells() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let half = Region::new(IntVector::ZERO, IntVector::new(4, 4, 2));
        dw.deposit_level_window(KAPPA, 0, half, &FieldData::F64(CcVariable::filled(half, 1.0)));
        dw.seal_level(KAPPA, 0);
    }

    #[test]
    fn u8_level_replica() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let region = g.coarsest_level().cell_region();
        dw.deposit_level_window(
            CELLTYPE,
            0,
            region,
            &FieldData::U8(CcVariable::filled(region, 3u8)),
        );
        dw.seal_level(CELLTYPE, 0);
        assert_eq!(dw.get_sealed_level(CELLTYPE, 0).unwrap().as_u8()[IntVector::ZERO], 3);
    }

    #[test]
    fn pack_level_window_roundtrip() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let region = g.coarsest_level().cell_region();
        let mut v = CcVariable::<f64>::new(region);
        v.fill_with(|c| c.x as f64);
        dw.deposit_level_window(KAPPA, 0, region, &FieldData::F64(v));
        let w = Region::new(IntVector::ZERO, IntVector::splat(2));
        let bytes = dw.pack_level_window(KAPPA, 0, &w);
        let (r, data) = crate::codec::decode_window(&bytes);
        assert_eq!(r, w);
        assert_eq!(data.as_f64()[IntVector::new(1, 0, 0)], 1.0);
    }

    #[test]
    fn clear_resets_everything() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let p = g.fine_level().patches()[0].id();
        dw.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)));
        assert!(dw.patch_bytes() > 0);
        dw.clear();
        assert_eq!(dw.patch_bytes(), 0);
        assert!(dw.get_patch(KAPPA, p).is_none());
    }

    #[test]
    fn begin_timestep_hides_stale_values_and_recycles_storage() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let p = g.fine_level().patches()[0].id();
        dw.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)));
        dw.put_sealed_level(KAPPA, 0, FieldData::F64(CcVariable::new(g.coarsest_level().cell_region())));
        assert!(dw.get_patch(KAPPA, p).is_some());
        assert!(dw.get_sealed_level(KAPPA, 0).is_some());

        dw.begin_timestep();
        assert_eq!(dw.epoch(), 1);
        assert!(dw.get_patch(KAPPA, p).is_none(), "step N-1 value must not leak");
        assert!(dw.get_sealed_level(KAPPA, 0).is_none());

        // Same-size allocation in the new step reuses the retired storage.
        let misses_before = dw.recycle_misses();
        let v = dw.alloc_f64(Region::cube(8));
        assert_eq!(dw.recycle_hits(), 1, "patch buffer recycled");
        assert_eq!(dw.recycle_misses(), misses_before);
        assert!(v.as_slice().iter().all(|&x| x == 0.0), "recycled storage zeroed");
    }

    #[test]
    fn stale_entry_never_satisfies_get_even_if_present() {
        // Simulate a path that forgot to drain: insert, bump the epoch via
        // begin_timestep, then re-insert under a different label so the map
        // is non-empty; the stale key must still miss.
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let p = g.fine_level().patches()[0].id();
        dw.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)));
        dw.begin_timestep();
        dw.put_patch(CELLTYPE, p, FieldData::U8(CcVariable::filled(Region::cube(8), 1)));
        assert!(dw.get_patch(KAPPA, p).is_none());
        assert!(dw.get_patch(CELLTYPE, p).is_some(), "current-epoch value visible");
    }

    #[test]
    fn level_accumulator_storage_recycles_across_steps() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let region = g.coarsest_level().cell_region();
        for step in 0..3 {
            dw.deposit_level_window(KAPPA, 0, region, &FieldData::F64(CcVariable::filled(region, 1.0)));
            dw.seal_level(KAPPA, 0);
            assert!(dw.get_sealed_level(KAPPA, 0).is_some());
            dw.begin_timestep();
            if step > 0 {
                assert!(dw.recycle_hits() > 0, "accumulator reused after step {step}");
            }
        }
        // Steady state: one miss (the first step), hits thereafter.
        assert_eq!(dw.recycle_misses(), 1);
        assert_eq!(dw.recycle_hits(), 2);
    }

    #[test]
    fn take_patch_entries_moves_current_epoch_data() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let fine = g.fine_level();
        let p = fine.patches()[0].id();
        let q = fine.patches()[1].id();
        dw.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)));
        dw.put_patch(CELLTYPE, p, FieldData::U8(CcVariable::filled(Region::cube(8), 2)));
        dw.put_patch(KAPPA, q, FieldData::F64(CcVariable::filled(Region::cube(8), 1.5)));
        let entries = dw.take_patch_entries(p);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, KAPPA, "sorted by label id");
        assert_eq!(entries[1].0, CELLTYPE);
        assert!(dw.get_patch(KAPPA, p).is_none(), "entries moved out");
        assert!(dw.get_patch(KAPPA, q).is_some(), "other patches untouched");
    }

    #[test]
    fn regrid_generation_blocks_stale_pending_slots_and_pool() {
        let g = grid2();
        let dw = DataWarehouse::new(g.clone());
        let p = g.fine_level().patches()[0].id();
        // Park an async D2H handle for the patch.
        let gpu = uintah_gpu::GpuDataWarehouse::new(uintah_gpu::GpuDevice::k20x());
        gpu.put_patch(KAPPA, p, FieldData::F64(CcVariable::filled(Region::cube(8), 0.5)))
            .unwrap();
        dw.put_patch_pending(KAPPA, p, gpu.take_patch_to_host_async(KAPPA, p).unwrap());
        // Park a recycler buffer of the patch's size.
        dw.recycle(FieldData::F64(CcVariable::filled(Region::cube(8), 9.0)));
        assert_eq!(dw.stale_hits(), 0);

        assert_eq!(dw.begin_regrid(), 1);
        assert_eq!(dw.generation(), 1);
        // The slot predates the regrid: the same patch id may now name a
        // different patch, so the get must miss — and be counted.
        assert!(dw.get_patch(KAPPA, p).is_none());
        assert!(dw.stale_hits() > 0, "blocked stale slot must be counted");
        assert_eq!(dw.drain_pending_d2h(), 0, "stale slot not drained as current");
        // Pooled storage from before the regrid is not reused either.
        let misses = dw.recycle_misses();
        let _ = dw.alloc_f64(Region::cube(8));
        assert_eq!(dw.recycle_misses(), misses + 1, "stale pool buffer dropped");
        gpu.device().sync_d2h();
    }

    #[test]
    fn physical_domain_with_point_builder() {
        // Sanity: grid helper used above spans [0,1]^3 by default.
        let g = grid2();
        assert_eq!(g.fine_level().physical_hi(), Point::new(1.0, 1.0, 1.0));
    }
}
