//! Wire codec for ghost-window and level-window message payloads.
//!
//! Layout (little-endian):
//! `[kind: u8][region: 6 × i32][payload]` where payload is the region's
//! cells in x-fastest order, `f64` or `u8` per `kind`.

use bytes::{BufMut, Bytes, BytesMut};
use uintah_grid::{CcVariable, FieldData, IntVector, Region};

const KIND_F64: u8 = 0;
const KIND_U8: u8 = 1;

/// Encode a window of `src` (clipped to `window ∩ src.region`).
pub fn encode_window(src: &FieldData, window: &Region) -> Bytes {
    match src {
        FieldData::F64(v) => {
            let (w, data) = v.pack_window(window);
            let mut out = BytesMut::with_capacity(1 + 24 + data.len() * 8);
            out.put_u8(KIND_F64);
            put_region(&mut out, &w);
            for x in data {
                out.put_f64_le(x);
            }
            out.freeze()
        }
        FieldData::U8(v) => {
            let (w, data) = v.pack_window(window);
            let mut out = BytesMut::with_capacity(1 + 24 + data.len());
            out.put_u8(KIND_U8);
            put_region(&mut out, &w);
            out.put_slice(&data);
            out.freeze()
        }
    }
}

fn put_region(out: &mut BytesMut, r: &Region) {
    for v in [r.lo(), r.hi()] {
        out.put_i32_le(v.x);
        out.put_i32_le(v.y);
        out.put_i32_le(v.z);
    }
}

fn read_i32(buf: &[u8], at: usize) -> i32 {
    i32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

/// Decode a payload produced by [`encode_window`] into `(region, field)`
/// where the field covers exactly the region.
pub fn decode_window(payload: &[u8]) -> (Region, FieldData) {
    decode_window_with_buffers(payload, Vec::with_capacity, Vec::with_capacity)
}

/// Like [`decode_window`], but drawing destination storage from the given
/// buffer providers (e.g. a `BufferRecycler`) instead of the heap. A
/// provider may return a buffer of length `n` (overwritten in place) or an
/// empty buffer with capacity `n` (filled by push).
pub fn decode_window_with_buffers(
    payload: &[u8],
    f64_buf: impl FnOnce(usize) -> Vec<f64>,
    u8_buf: impl FnOnce(usize) -> Vec<u8>,
) -> (Region, FieldData) {
    assert!(payload.len() >= 25, "short window payload");
    let kind = payload[0];
    let lo = IntVector::new(read_i32(payload, 1), read_i32(payload, 5), read_i32(payload, 9));
    let hi = IntVector::new(read_i32(payload, 13), read_i32(payload, 17), read_i32(payload, 21));
    let region = Region::new(lo, hi);
    let n = region.volume();
    let body = &payload[25..];
    match kind {
        KIND_F64 => {
            assert_eq!(body.len(), n * 8, "f64 payload size mismatch");
            let mut data = f64_buf(n);
            assert!(
                data.len() == n || data.is_empty(),
                "f64 buffer provider returned wrong length"
            );
            data.clear();
            for c in body.chunks_exact(8) {
                data.push(f64::from_le_bytes(c.try_into().unwrap()));
            }
            (region, FieldData::F64(CcVariable::from_vec(region, data)))
        }
        KIND_U8 => {
            assert_eq!(body.len(), n, "u8 payload size mismatch");
            let mut data = u8_buf(n);
            assert!(
                data.len() == n || data.is_empty(),
                "u8 buffer provider returned wrong length"
            );
            data.clear();
            data.extend_from_slice(body);
            (region, FieldData::U8(CcVariable::from_vec(region, data)))
        }
        k => panic!("unknown window kind {k}"),
    }
}

/// Magic byte distinguishing bundle payloads from single windows (whose
/// first byte is a kind in {0, 1}).
const BUNDLE_MAGIC: u8 = 0xB7;

/// Encode several already-encoded windows into one payload (message
/// aggregation: Uintah packs all dependencies between a rank pair into one
/// MPI message). Entries are `(var_id, level, window payload)` where each
/// payload comes from [`encode_window`].
pub fn encode_bundle(entries: &[(u8, u8, Bytes)]) -> Bytes {
    assert!(entries.len() <= u16::MAX as usize, "bundle too large");
    let mut out = BytesMut::new();
    out.put_u8(BUNDLE_MAGIC);
    out.put_u16_le(entries.len() as u16);
    for (var_id, level, payload) in entries {
        out.put_u8(*var_id);
        out.put_u8(*level);
        out.put_u32_le(payload.len() as u32);
        out.put_slice(payload);
    }
    out.freeze()
}

/// True if `payload` is a bundle (vs a single window).
pub fn is_bundle(payload: &[u8]) -> bool {
    payload.first() == Some(&BUNDLE_MAGIC)
}

/// Decode a payload produced by [`encode_bundle`]:
/// `(var_id, level, region, data)` per entry.
pub fn decode_bundle(payload: &[u8]) -> Vec<(u8, u8, Region, FieldData)> {
    decode_bundle_with_buffers(payload, Vec::with_capacity, Vec::with_capacity)
}

/// Like [`decode_bundle`], but drawing each entry's destination storage
/// from the given buffer providers (e.g. a `BufferRecycler`) — the
/// migration install path decodes whole-patch payloads straight into
/// pooled storage.
pub fn decode_bundle_with_buffers(
    payload: &[u8],
    mut f64_buf: impl FnMut(usize) -> Vec<f64>,
    mut u8_buf: impl FnMut(usize) -> Vec<u8>,
) -> Vec<(u8, u8, Region, FieldData)> {
    assert!(is_bundle(payload), "not a bundle payload");
    let count = u16::from_le_bytes(payload[1..3].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 3usize;
    for _ in 0..count {
        let var_id = payload[at];
        let level = payload[at + 1];
        let len = u32::from_le_bytes(payload[at + 2..at + 6].try_into().unwrap()) as usize;
        at += 6;
        let (region, data) =
            decode_window_with_buffers(&payload[at..at + len], &mut f64_buf, &mut u8_buf);
        at += len;
        out.push((var_id, level, region, data));
    }
    assert_eq!(at, payload.len(), "trailing bytes in bundle");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let mut v = CcVariable::<f64>::new(Region::cube(4));
        v.fill_with(|c| c.x as f64 * 1.5 + c.y as f64 - c.z as f64 * 0.25);
        let src = FieldData::F64(v.clone());
        let w = Region::new(IntVector::new(1, 0, 2), IntVector::new(4, 3, 4));
        let bytes = encode_window(&src, &w);
        let (region, decoded) = decode_window(&bytes);
        assert_eq!(region, w);
        for c in w.cells() {
            assert_eq!(decoded.as_f64()[c], v[c]);
        }
    }

    #[test]
    fn u8_roundtrip() {
        let mut v = CcVariable::<u8>::new(Region::cube(3));
        v.fill_with(|c| (c.x + 3 * c.y + 9 * c.z) as u8);
        let src = FieldData::U8(v.clone());
        let bytes = encode_window(&src, &Region::cube(3));
        let (region, decoded) = decode_window(&bytes);
        assert_eq!(region, Region::cube(3));
        for c in region.cells() {
            assert_eq!(decoded.as_u8()[c], v[c]);
        }
    }

    #[test]
    fn window_clipped_to_source() {
        let v = CcVariable::<f64>::filled(Region::cube(2), 3.0);
        let src = FieldData::F64(v);
        // Request a window larger than the source: clipped on encode.
        let bytes = encode_window(&src, &Region::cube(10));
        let (region, _) = decode_window(&bytes);
        assert_eq!(region, Region::cube(2));
    }

    #[test]
    #[should_panic(expected = "short window payload")]
    fn truncated_payload_rejected() {
        decode_window(&[0u8; 10]);
    }

    #[test]
    fn bundle_roundtrip_mixed_types() {
        let mut a = CcVariable::<f64>::new(Region::cube(4));
        a.fill_with(|c| c.x as f64 + 0.5 * c.z as f64);
        let b = CcVariable::<u8>::filled(Region::cube(4), 3u8);
        let fa = FieldData::F64(a.clone());
        let fb = FieldData::U8(b.clone());
        let w1 = Region::new(IntVector::ZERO, IntVector::new(2, 4, 4));
        let w2 = Region::cube(4);
        let bytes = encode_bundle(&[
            (1, 0, encode_window(&fa, &w1)),
            (3, 1, encode_window(&fb, &w2)),
        ]);
        assert!(is_bundle(&bytes));
        let entries = decode_bundle(&bytes);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 1);
        assert_eq!(entries[0].1, 0);
        assert_eq!(entries[0].2, w1);
        for c in w1.cells() {
            assert_eq!(entries[0].3.as_f64()[c], a[c]);
        }
        assert_eq!(entries[1].0, 3);
        assert_eq!(entries[1].1, 1);
        assert_eq!(entries[1].3.as_u8()[IntVector::ZERO], 3);
    }

    #[test]
    fn pooled_decode_reuses_provided_storage() {
        let mut v = CcVariable::<f64>::new(Region::cube(4));
        v.fill_with(|c| (c.x + 2 * c.y - c.z) as f64);
        let bytes = encode_window(&FieldData::F64(v.clone()), &Region::cube(4));
        // A recycled buffer of the right length: reused in place.
        let pool = vec![7.0f64; 64];
        let ptr = pool.as_ptr();
        let (region, data) =
            decode_window_with_buffers(&bytes, move |n| {
                assert_eq!(n, 64);
                pool
            }, |_| unreachable!("f64 payload"));
        assert_eq!(region, Region::cube(4));
        assert_eq!(data.as_f64().as_slice().as_ptr(), ptr, "pooled storage reused");
        for c in region.cells() {
            assert_eq!(data.as_f64()[c], v[c]);
        }
    }

    #[test]
    fn single_window_is_not_a_bundle() {
        let v = FieldData::F64(CcVariable::filled(Region::cube(2), 1.0));
        let bytes = encode_window(&v, &Region::cube(2));
        assert!(!is_bundle(&bytes));
    }

    #[test]
    #[should_panic(expected = "not a bundle")]
    fn decode_bundle_rejects_single() {
        let v = FieldData::F64(CcVariable::filled(Region::cube(2), 1.0));
        let bytes = encode_window(&v, &Region::cube(2));
        decode_bundle(&bytes);
    }
}
