//! Task-graph compilation: declarations + grid + distribution → a per-rank
//! executable graph with dependency edges, send specs and expected receives.
//!
//! Every rank compiles the same global knowledge (grid, patch distribution,
//! task list) deterministically, so matching send/receive pairs agree on
//! tags without negotiation — exactly how Uintah generates its MPI messages
//! from task declarations.

use crate::task::{Computes, Requirement, TaskDecl};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use uintah_comm::Tag;
use uintah_grid::{Grid, IntVector, LevelIndex, PatchDistribution, PatchId, Region, VarLabel};

/// Marker in the tag "destination" field for whole-level windows (which
/// are broadcast, not addressed to one patch): the destination *level*
/// is encoded instead, in a range no patch id can reach.
fn level_dst_marker(level: LevelIndex) -> u32 {
    0xFF_FF00 | level as u32
}

/// Tag destination marker for aggregated level bundles.
const BUNDLE_DST_MARKER: u32 = 0xFF_FE00;
/// Tag var-id for bundles (real labels never use 0xFF).
const BUNDLE_VAR_ID: u8 = 0xFF;

/// What to do with a received message.
#[derive(Clone, Debug)]
pub enum RecvAction {
    /// A ghost window for a local patch's halo.
    Foreign { label: VarLabel, dst_patch: PatchId },
    /// A restriction window of a whole-level replica.
    Level { label: VarLabel, level: LevelIndex },
    /// An aggregated message carrying several level windows (each entry of
    /// the bundle is self-describing: var id + level + region).
    LevelBundle,
}

/// An expected message.
#[derive(Clone, Debug)]
pub struct RecvEntry {
    pub src_rank: usize,
    pub tag: Tag,
    pub action: RecvAction,
    /// Instance ids whose dependency counts this message satisfies.
    pub dependents: Vec<usize>,
}

/// Payload source for an outgoing message.
#[derive(Clone, Debug)]
pub enum SendPayload {
    /// Pack `window` from the producing patch's own variable.
    PatchWindow,
    /// Pack `window` from the level accumulator for this level.
    LevelWindow(LevelIndex),
    /// Aggregated: pack every listed `(label, level, window)` from the
    /// level accumulators into one bundle message.
    LevelBundle(Vec<(VarLabel, LevelIndex, Region)>),
}

/// An outgoing message posted after its producing instance executes.
#[derive(Clone, Debug)]
pub struct SendSpec {
    pub label: VarLabel,
    pub src_patch: PatchId,
    pub window: Region,
    pub dst_rank: usize,
    pub tag: Tag,
    pub payload: SendPayload,
}

/// One executable node of the graph.
#[derive(Debug)]
pub struct TaskInstance {
    /// Index into the declaration list; `None` for gather pseudo-tasks.
    pub decl: Option<usize>,
    /// The owned patch this instance runs on; `None` for gathers.
    pub patch: Option<PatchId>,
    /// For gather pseudo-tasks: which level replica to seal.
    pub gather: Option<(VarLabel, LevelIndex)>,
    /// Number of dependencies (local edges + expected messages).
    pub num_deps_in: usize,
    /// Instance ids unblocked when this instance completes.
    pub deps_out: Vec<usize>,
    /// Messages to post after execution.
    pub sends: Vec<SendSpec>,
}

/// Aggregate statistics of a compiled graph (used by the Titan model's
/// communication census).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GraphStats {
    pub instances: usize,
    pub messages: usize,
    /// Total cells across all outgoing windows.
    pub cells_sent: usize,
}

/// A rank's executable graph for one timestep phase.
#[derive(Debug)]
pub struct CompiledGraph {
    pub rank: usize,
    pub phase: u8,
    pub instances: Vec<TaskInstance>,
    pub recvs: Vec<RecvEntry>,
    pub initial_ready: Vec<usize>,
    pub stats: GraphStats,
}

/// Cell-count ratio between `fine_li` and the coarser `coarse_li`
/// (product of per-level refinement ratios).
pub fn ratio_between(grid: &Grid, fine_li: LevelIndex, coarse_li: LevelIndex) -> IntVector {
    assert!(coarse_li <= fine_li);
    let mut r = IntVector::ONE;
    for li in (coarse_li + 1)..=fine_li {
        r = r.comp_mul(grid.level(li).ratio_to_coarser().as_ivec());
    }
    r
}

/// Compile the per-rank graph for one phase (timestep), one message per
/// window (the default; matches the per-dependency counting of the Titan
/// model's census).
pub fn compile(
    grid: &Grid,
    dist: &PatchDistribution,
    decls: &[TaskDecl],
    rank: usize,
    phase: u8,
) -> CompiledGraph {
    compile_opts(grid, dist, decls, rank, phase, false)
}

/// [`compile`] with optional *level-window aggregation*: all whole-level
/// windows a producer instance owes one destination rank travel in a
/// single bundled message (Uintah packs the dependencies between a rank
/// pair into one MPI message), cutting the all-to-all message count by the
/// number of bundled variables/levels.
pub fn compile_opts(
    grid: &Grid,
    dist: &PatchDistribution,
    decls: &[TaskDecl],
    rank: usize,
    phase: u8,
    aggregate_level_windows: bool,
) -> CompiledGraph {
    // ---- producer maps -------------------------------------------------
    let mut patch_producer: HashMap<VarLabel, usize> = HashMap::new();
    let mut level_producer: HashMap<(VarLabel, LevelIndex), usize> = HashMap::new();
    for (di, d) in decls.iter().enumerate() {
        for c in &d.computes {
            match *c {
                Computes::PatchVar(l) => {
                    patch_producer.insert(l, di);
                }
                Computes::LevelWindow(l, li) => {
                    level_producer.insert((l, li), di);
                }
            }
        }
    }

    // Max ghost width per (label): Uintah consolidates differing ghost
    // requirements into the maximal halo so one message per (src, dst)
    // patch pair suffices.
    let mut max_ghost: HashMap<VarLabel, i32> = HashMap::new();
    for d in decls {
        for r in &d.requires {
            if let Requirement::Ghost(l, g) = *r {
                let e = max_ghost.entry(l).or_insert(0);
                *e = (*e).max(g);
            }
        }
    }

    // ---- instances for local patches -----------------------------------
    let mut instances: Vec<TaskInstance> = Vec::new();
    let mut inst_of: HashMap<(usize, PatchId), usize> = HashMap::new();
    for (di, d) in decls.iter().enumerate() {
        for &pid in dist.owned_by(rank) {
            if grid.patch(pid).level_index() == d.level {
                let id = instances.len();
                instances.push(TaskInstance {
                    decl: Some(di),
                    patch: Some(pid),
                    gather: None,
                    num_deps_in: 0,
                    deps_out: Vec::new(),
                    sends: Vec::new(),
                });
                inst_of.insert((di, pid), id);
            }
        }
    }

    // ---- gather pseudo-instances ----------------------------------------
    // One per (label, level) required as WholeLevel by any local instance.
    let mut needed_levels: Vec<(VarLabel, LevelIndex)> = Vec::new();
    for (di, d) in decls.iter().enumerate() {
        let has_local = dist
            .owned_by(rank)
            .iter()
            .any(|&p| grid.patch(p).level_index() == d.level);
        if !has_local {
            continue;
        }
        let _ = di;
        for r in &d.requires {
            if let Requirement::WholeLevel(l, li) = *r {
                if !needed_levels.contains(&(l, li)) {
                    needed_levels.push((l, li));
                }
            }
        }
    }
    let mut gather_of: HashMap<(VarLabel, LevelIndex), usize> = HashMap::new();
    for &(l, li) in &needed_levels {
        let id = instances.len();
        instances.push(TaskInstance {
            decl: None,
            patch: None,
            gather: Some((l, li)),
            num_deps_in: 0,
            deps_out: Vec::new(),
            sends: Vec::new(),
        });
        gather_of.insert((l, li), id);
    }

    let mut recvs: Vec<RecvEntry> = Vec::new();
    // (src_rank, tag) -> recv index, so several consumers share one message.
    let mut recv_ix: HashMap<(usize, Tag), usize> = HashMap::new();

    let add_edge = |instances: &mut Vec<TaskInstance>, from: usize, to: usize| {
        instances[from].deps_out.push(to);
        instances[to].num_deps_in += 1;
    };

    // ---- consumer-side edges and receives -------------------------------
    for (di, d) in decls.iter().enumerate() {
        let level = grid.level(d.level);
        for &pid in dist.owned_by(rank) {
            let patch = grid.patch(pid);
            if patch.level_index() != d.level {
                continue;
            }
            let me = inst_of[&(di, pid)];
            for r in &d.requires {
                match *r {
                    Requirement::OwnPatch(l) => {
                        let pd = *patch_producer
                            .get(&l)
                            .unwrap_or_else(|| panic!("no producer for {l}"));
                        assert!(pd < di, "producer {l} declared after consumer {}", d.name);
                        add_edge(&mut instances, inst_of[&(pd, pid)], me);
                    }
                    Requirement::Ghost(l, _g) => {
                        let pd = *patch_producer
                            .get(&l)
                            .unwrap_or_else(|| panic!("no producer for {l}"));
                        assert!(pd < di, "producer {l} declared after consumer {}", d.name);
                        let gmax = max_ghost[&l];
                        let halo = patch.with_ghosts(gmax);
                        for q in level.patches_overlapping(&halo) {
                            if q.id() == pid {
                                add_edge(&mut instances, inst_of[&(pd, pid)], me);
                            } else if dist.rank_of(q.id()) == rank {
                                add_edge(&mut instances, inst_of[&(pd, q.id())], me);
                            } else {
                                let tag = Tag::compose(l.id(), q.id().0, pid.0, phase);
                                let src_rank = dist.rank_of(q.id());
                                let ri = *recv_ix.entry((src_rank, tag)).or_insert_with(|| {
                                    recvs.push(RecvEntry {
                                        src_rank,
                                        tag,
                                        action: RecvAction::Foreign {
                                            label: l,
                                            dst_patch: pid,
                                        },
                                        dependents: Vec::new(),
                                    });
                                    recvs.len() - 1
                                });
                                recvs[ri].dependents.push(me);
                                instances[me].num_deps_in += 1;
                            }
                        }
                    }
                    Requirement::WholeLevel(l, li) => {
                        let gi = gather_of[&(l, li)];
                        add_edge(&mut instances, gi, me);
                    }
                }
            }
        }
    }

    // ---- gather dependencies (local windows + remote messages) ----------
    for &(l, li) in &needed_levels {
        let gi = gather_of[&(l, li)];
        let pd = *level_producer
            .get(&(l, li))
            .unwrap_or_else(|| panic!("no level-window producer for {l} L{li}"));
        let src_level = decls[pd].level;
        for p in grid.level(src_level).patches() {
            if dist.rank_of(p.id()) == rank {
                let from = inst_of[&(pd, p.id())];
                add_edge(&mut instances, from, gi);
            } else if !aggregate_level_windows {
                let tag = Tag::compose(l.id(), p.id().0, level_dst_marker(li), phase);
                let src_rank = dist.rank_of(p.id());
                let ri = *recv_ix.entry((src_rank, tag)).or_insert_with(|| {
                    recvs.push(RecvEntry {
                        src_rank,
                        tag,
                        action: RecvAction::Level { label: l, level: li },
                        dependents: Vec::new(),
                    });
                    recvs.len() - 1
                });
                recvs[ri].dependents.push(gi);
                instances[gi].num_deps_in += 1;
            }
        }
    }
    // Aggregated mode: one bundled message per remote producer *instance*,
    // feeding every gather served by that producer declaration.
    if aggregate_level_windows {
        let mut gathers_by_pd: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(l, li) in &needed_levels {
            let pd = level_producer[&(l, li)];
            gathers_by_pd.entry(pd).or_default().push(gather_of[&(l, li)]);
        }
        for (&pd, gathers) in &gathers_by_pd {
            for p in grid.level(decls[pd].level).patches() {
                let src_rank = dist.rank_of(p.id());
                if src_rank == rank {
                    continue;
                }
                let tag = Tag::compose(BUNDLE_VAR_ID, p.id().0, BUNDLE_DST_MARKER, phase);
                let ri = *recv_ix.entry((src_rank, tag)).or_insert_with(|| {
                    recvs.push(RecvEntry {
                        src_rank,
                        tag,
                        action: RecvAction::LevelBundle,
                        dependents: Vec::new(),
                    });
                    recvs.len() - 1
                });
                for &gi in gathers {
                    recvs[ri].dependents.push(gi);
                    instances[gi].num_deps_in += 1;
                }
            }
        }
    }

    // ---- producer-side sends --------------------------------------------
    // Ghost windows: for each local producer patch q, send to every remote
    // consumer patch whose max halo overlaps q.
    let ghost_labels: Vec<VarLabel> = max_ghost.keys().copied().collect();
    for l in ghost_labels {
        let Some(&pd) = patch_producer.get(&l) else { continue };
        let gmax = max_ghost[&l];
        let level = grid.level(decls[pd].level);
        // Which decls consume this label with ghosts? Their instances exist
        // on the same level, so the consumer patch set is the level itself.
        let consumed = decls
            .iter()
            .any(|d| d.requires.iter().any(|r| matches!(r, Requirement::Ghost(ll, _) if *ll == l)));
        if !consumed {
            continue;
        }
        for &qid in dist.owned_by(rank) {
            let q = grid.patch(qid);
            if q.level_index() != decls[pd].level {
                continue;
            }
            let Some(&from) = inst_of.get(&(pd, qid)) else { continue };
            for p in level.patches_overlapping(&q.with_ghosts(gmax)) {
                if p.id() == qid || dist.rank_of(p.id()) == rank {
                    continue;
                }
                let window = p.with_ghosts(gmax).intersect(&q.interior());
                if window.is_empty() {
                    continue;
                }
                instances[from].sends.push(SendSpec {
                    label: l,
                    src_patch: qid,
                    window,
                    dst_rank: dist.rank_of(p.id()),
                    tag: Tag::compose(l.id(), qid.0, p.id().0, phase),
                    payload: SendPayload::PatchWindow,
                });
            }
        }
    }

    // Level windows: broadcast each local producer's restriction window to
    // every rank that gathers (l, li) — the all-to-all. In aggregated mode
    // the per-(label, level) windows are collected first and emitted as one
    // bundle per (producer instance, destination rank).
    type BundleEntries = (PatchId, Vec<(VarLabel, LevelIndex, Region)>);
    let mut bundles: HashMap<(usize, usize), BundleEntries> = HashMap::new();
    for (&(l, li), &pd) in &level_producer {
        // Consumer ranks: any rank owning patches on a level of a decl that
        // requires WholeLevel(l, li).
        let consumer_levels: HashSet<LevelIndex> = decls
            .iter()
            .filter(|d| {
                d.requires
                    .iter()
                    .any(|r| matches!(r, Requirement::WholeLevel(ll, lli) if *ll == l && *lli == li))
            })
            .map(|d| d.level)
            .collect();
        if consumer_levels.is_empty() {
            continue;
        }
        let mut consumer_ranks: HashSet<usize> = HashSet::new();
        for &cl in &consumer_levels {
            for p in grid.level(cl).patches() {
                consumer_ranks.insert(dist.rank_of(p.id()));
            }
        }
        let rr = ratio_between(grid, decls[pd].level, li);
        for &qid in dist.owned_by(rank) {
            let q = grid.patch(qid);
            if q.level_index() != decls[pd].level {
                continue;
            }
            let Some(&from) = inst_of.get(&(pd, qid)) else { continue };
            let window = q.interior().coarsened(rr);
            for &dst in &consumer_ranks {
                if dst == rank {
                    continue;
                }
                if aggregate_level_windows {
                    bundles
                        .entry((from, dst))
                        .or_insert_with(|| (qid, Vec::new()))
                        .1
                        .push((l, li, window));
                } else {
                    instances[from].sends.push(SendSpec {
                        label: l,
                        src_patch: qid,
                        window,
                        dst_rank: dst,
                        tag: Tag::compose(l.id(), qid.0, level_dst_marker(li), phase),
                        payload: SendPayload::LevelWindow(li),
                    });
                }
            }
        }
    }

    // Emit the aggregated bundles.
    for ((from, dst), (qid, mut windows)) in bundles {
        // Deterministic payload order across ranks and runs.
        windows.sort_by_key(|&(l, li, _)| (l.id(), li));
        instances[from].sends.push(SendSpec {
            label: windows[0].0,
            src_patch: qid,
            window: windows[0].2,
            dst_rank: dst,
            tag: Tag::compose(BUNDLE_VAR_ID, qid.0, BUNDLE_DST_MARKER, phase),
            payload: SendPayload::LevelBundle(windows),
        });
    }

    let initial_ready: Vec<usize> = instances
        .iter()
        .enumerate()
        .filter(|(_, t)| t.num_deps_in == 0)
        .map(|(i, _)| i)
        .collect();

    let messages: usize = instances.iter().map(|t| t.sends.len()).sum();
    let cells_sent: usize = instances
        .iter()
        .flat_map(|t| t.sends.iter())
        .map(|s| match &s.payload {
            SendPayload::LevelBundle(ws) => ws.iter().map(|(_, _, w)| w.volume()).sum(),
            _ => s.window.volume(),
        })
        .sum();
    let stats = GraphStats {
        instances: instances.len(),
        messages,
        cells_sent,
    };

    CompiledGraph {
        rank,
        phase,
        instances,
        recvs,
        initial_ready,
        stats,
    }
}

/// Streaming FNV-1a over the compile-relevant structure.
struct SigHasher(u64);

impl SigHasher {
    fn new() -> Self {
        SigHasher(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn i32(&mut self, v: i32) {
        self.u64(v as u32 as u64);
    }

    fn ivec(&mut self, v: IntVector) {
        self.i32(v.x);
        self.i32(v.y);
        self.i32(v.z);
    }

    fn region(&mut self, r: &Region) {
        self.ivec(r.lo());
        self.ivec(r.hi());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A digest of every input [`compile_opts`] depends on: grid shape, task
/// declarations, patch distribution, rank and aggregation flag — everything
/// *except* the phase byte, which [`Tag::with_phase`] re-stamps at post
/// time.
///
/// Two calls with equal signatures compile identical graphs (up to phase),
/// so a cached `CompiledGraph` may be reused; any regrid, rebalance or
/// task-list change perturbs the signature and forces recompilation.
pub fn graph_signature(
    grid: &Grid,
    dist: &PatchDistribution,
    decls: &[TaskDecl],
    rank: usize,
    aggregate_level_windows: bool,
) -> u64 {
    let mut h = SigHasher::new();
    h.u64(rank as u64);
    h.u64(aggregate_level_windows as u64);
    // Grid structure.
    h.u64(grid.num_levels() as u64);
    for level in grid.levels() {
        h.region(&level.cell_region());
        h.ivec(level.patch_size());
        h.ivec(level.ratio_to_coarser().as_ivec());
        h.u64(level.num_patches() as u64);
    }
    // Ownership: the graph depends on every patch's assigned rank (sends,
    // receives and local edges all key off it).
    h.u64(dist.nranks() as u64);
    for p in grid.all_patches() {
        h.u64(dist.rank_of(p.id()) as u64);
    }
    // Task declarations, in order.
    h.u64(decls.len() as u64);
    for d in decls {
        h.str(d.name);
        h.u64(d.level as u64);
        h.u64(matches!(d.kind, crate::task::TaskKind::Gpu) as u64);
        h.u64(d.requires.len() as u64);
        for r in &d.requires {
            match *r {
                Requirement::OwnPatch(l) => {
                    h.u64(0);
                    h.u64(l.id() as u64);
                }
                Requirement::Ghost(l, g) => {
                    h.u64(1);
                    h.u64(l.id() as u64);
                    h.i32(g);
                }
                Requirement::WholeLevel(l, li) => {
                    h.u64(2);
                    h.u64(l.id() as u64);
                    h.u64(li as u64);
                }
            }
        }
        h.u64(d.computes.len() as u64);
        for c in &d.computes {
            match *c {
                Computes::PatchVar(l) => {
                    h.u64(0);
                    h.u64(l.id() as u64);
                }
                Computes::LevelWindow(l, li) => {
                    h.u64(1);
                    h.u64(l.id() as u64);
                    h.u64(li as u64);
                }
            }
        }
    }
    h.0
}

/// Counter snapshot of a [`GraphCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Lookups that found a compiled graph under the requested signature.
    pub hits: u64,
    /// Lookups that found nothing (the caller compiles and inserts).
    pub misses: u64,
    /// Graphs inserted.
    pub insertions: u64,
    /// Graphs dropped to keep the cache under its entry cap.
    pub evictions: u64,
}

/// A process-wide cache of compiled graphs keyed by [`graph_signature`].
///
/// One [`crate::PersistentExecutor`] already caches *its own* last graph;
/// this cache is the cross-executor tier: every executor of a multi-tenant
/// server consults it before compiling, so a job whose grid shape,
/// ownership and task list match something any tenant compiled earlier
/// reuses that graph instead of paying compilation again. Safe to share
/// because a [`CompiledGraph`] is immutable during execution — the
/// scheduler copies dependency counts into fresh atomics per
/// `execute_phase` call and re-stamps tags with the step's phase byte, so
/// one `Arc<CompiledGraph>` can back any number of concurrent jobs.
///
/// The signature covers the executing rank, so a cached entry is only ever
/// served to an executor playing the same rank of an identically shaped
/// world (see [`graph_signature`]).
/// Signature → (graph, last-use stamp), plus the next stamp to issue.
/// The stamp orders LRU eviction.
type StampedGraphs = (HashMap<u64, (Arc<CompiledGraph>, u64)>, u64);

#[derive(Debug)]
pub struct GraphCache {
    map: Mutex<StampedGraphs>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl GraphCache {
    /// A cache holding at most `cap` graphs (LRU beyond that).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "a graph cache needs room for at least one graph");
        Self {
            map: Mutex::new((HashMap::new(), 0)),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a compiled graph by signature, refreshing its LRU stamp.
    pub fn lookup(&self, sig: u64) -> Option<Arc<CompiledGraph>> {
        let mut guard = self.map.lock().expect("graph cache poisoned");
        let (map, clock) = &mut *guard;
        *clock += 1;
        match map.get_mut(&sig) {
            Some((g, stamp)) => {
                *stamp = *clock;
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                Some(Arc::clone(g))
            }
            None => {
                self.misses.fetch_add(1, AtomicOrdering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly compiled graph; evicts the least recently used
    /// entry when the cap is exceeded. Racing inserts under one signature
    /// are benign (last writer wins; both graphs are identical by
    /// construction).
    pub fn insert(&self, sig: u64, graph: Arc<CompiledGraph>) {
        let mut guard = self.map.lock().expect("graph cache poisoned");
        let (map, clock) = &mut *guard;
        *clock += 1;
        map.insert(sig, (graph, *clock));
        self.insertions.fetch_add(1, AtomicOrdering::Relaxed);
        while map.len() > self.cap {
            let victim = map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
                .expect("non-empty map over cap");
            map.remove(&victim);
            self.evictions.fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    /// Graphs currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("graph cache poisoned").0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (hits/misses/insertions/evictions).
    pub fn stats(&self) -> GraphCacheStats {
        GraphCacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            insertions: self.insertions.load(AtomicOrdering::Relaxed),
            evictions: self.evictions.load(AtomicOrdering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskContext, TaskFn};
    use std::sync::Arc;
    use uintah_grid::DistributionPolicy;

    const KAPPA: VarLabel = VarLabel::new("abskg", 0);
    const DIVQ: VarLabel = VarLabel::new("divQ", 3);

    fn nop() -> TaskFn {
        Arc::new(|_: &mut TaskContext| {})
    }

    fn grid() -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(8))
            .build()
    }

    fn decls() -> Vec<TaskDecl> {
        let fine = 1;
        vec![
            TaskDecl::new("initProps", fine, nop())
                .computes(Computes::PatchVar(KAPPA))
                .computes(Computes::LevelWindow(KAPPA, 0)),
            TaskDecl::new("rmcrt", fine, nop())
                .requires(Requirement::Ghost(KAPPA, 2))
                .requires(Requirement::WholeLevel(KAPPA, 0))
                .computes(Computes::PatchVar(DIVQ)),
        ]
    }

    #[test]
    fn single_rank_graph_has_no_messages() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 1, DistributionPolicy::MortonSfc);
        let cg = compile(&g, &dist, &decls(), 0, 0);
        assert_eq!(cg.recvs.len(), 0);
        assert_eq!(cg.stats.messages, 0);
        // 64 fine patches × 2 decls + 1 gather.
        assert_eq!(cg.stats.instances, 64 * 2 + 1);
        // initProps instances are all initially ready.
        assert_eq!(cg.initial_ready.len(), 64);
    }

    #[test]
    fn gather_waits_for_all_local_windows() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 1, DistributionPolicy::MortonSfc);
        let cg = compile(&g, &dist, &decls(), 0, 0);
        let gather = cg
            .instances
            .iter()
            .find(|t| t.gather.is_some())
            .expect("gather instance exists");
        assert_eq!(gather.gather, Some((KAPPA, 0)));
        assert_eq!(gather.num_deps_in, 64, "one window per fine patch");
        assert_eq!(gather.deps_out.len(), 64, "unblocks every rmcrt instance");
    }

    #[test]
    fn two_rank_graph_sends_and_receives_match() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 2, DistributionPolicy::MortonSfc);
        let g0 = compile(&g, &dist, &decls(), 0, 0);
        let g1 = compile(&g, &dist, &decls(), 1, 0);
        // Every send of rank 0 to rank 1 has a matching expected recv.
        let recv_keys: HashSet<(usize, u64)> = g1.recvs.iter().map(|r| (r.src_rank, r.tag.0)).collect();
        let mut matched = 0;
        for t in &g0.instances {
            for s in &t.sends {
                if s.dst_rank == 1 {
                    assert!(
                        recv_keys.contains(&(0, s.tag.0)),
                        "unmatched send tag {:?}",
                        s.tag
                    );
                    matched += 1;
                }
            }
        }
        assert!(matched > 0, "two ranks must exchange messages");
        // And vice versa: every expected recv has a matching send.
        let send_keys: HashSet<(usize, u64)> = g0
            .instances
            .iter()
            .flat_map(|t| t.sends.iter())
            .filter(|s| s.dst_rank == 1)
            .map(|s| (0usize, s.tag.0))
            .collect();
        for r in g1.recvs.iter().filter(|r| r.src_rank == 0) {
            assert!(send_keys.contains(&(0, r.tag.0)), "recv without send {:?}", r.tag);
        }
    }

    #[test]
    fn level_windows_are_broadcast_to_all_other_ranks() {
        let g = grid();
        let nr = 4;
        let dist = PatchDistribution::new(&g, nr, DistributionPolicy::RoundRobin);
        let cg = compile(&g, &dist, &decls(), 0, 0);
        // Each local fine patch's level window goes to nr-1 ranks.
        let level_sends: usize = cg
            .instances
            .iter()
            .flat_map(|t| t.sends.iter())
            .filter(|s| matches!(s.payload, SendPayload::LevelWindow(_)))
            .count();
        let local_fine = dist
            .owned_by(0)
            .iter()
            .filter(|&&p| g.patch(p).level_index() == 1)
            .count();
        assert_eq!(level_sends, local_fine * (nr - 1));
    }

    #[test]
    fn phase_changes_tags() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 2, DistributionPolicy::MortonSfc);
        let a = compile(&g, &dist, &decls(), 0, 0);
        let b = compile(&g, &dist, &decls(), 0, 1);
        let tags_a: HashSet<u64> = a.recvs.iter().map(|r| r.tag.0).collect();
        for r in &b.recvs {
            assert!(!tags_a.contains(&r.tag.0), "phase must separate tags");
        }
    }

    #[test]
    fn ratio_between_levels() {
        let g = grid();
        assert_eq!(ratio_between(&g, 1, 0), IntVector::splat(4));
        assert_eq!(ratio_between(&g, 1, 1), IntVector::ONE);
        assert_eq!(ratio_between(&g, 0, 0), IntVector::ONE);
    }

    #[test]
    #[should_panic(expected = "no producer")]
    fn missing_producer_detected() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 1, DistributionPolicy::MortonSfc);
        let decls = vec![TaskDecl::new("consumer", 1, nop()).requires(Requirement::OwnPatch(DIVQ))];
        compile(&g, &dist, &decls, 0, 0);
    }

    /// Like `decls()` but with three level-window variables (the RMCRT
    /// property set), so bundles actually aggregate.
    fn decls3() -> Vec<TaskDecl> {
        const SIG: VarLabel = VarLabel::new("sigmaT4overPi", 1);
        const CT: VarLabel = VarLabel::new("cellType", 2);
        let fine = 1;
        vec![
            TaskDecl::new("initProps", fine, nop())
                .computes(Computes::PatchVar(KAPPA))
                .computes(Computes::LevelWindow(KAPPA, 0))
                .computes(Computes::LevelWindow(SIG, 0))
                .computes(Computes::LevelWindow(CT, 0)),
            TaskDecl::new("rmcrt", fine, nop())
                .requires(Requirement::Ghost(KAPPA, 2))
                .requires(Requirement::WholeLevel(KAPPA, 0))
                .requires(Requirement::WholeLevel(SIG, 0))
                .requires(Requirement::WholeLevel(CT, 0))
                .computes(Computes::PatchVar(DIVQ)),
        ]
    }

    #[test]
    fn aggregated_compile_matches_sends_to_recvs() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 3, DistributionPolicy::MortonSfc);
        let graphs: Vec<CompiledGraph> = (0..3)
            .map(|r| compile_opts(&g, &dist, &decls3(), r, 0, true))
            .collect();
        // Every aggregated send has a matching expected recv and vice versa.
        for src in 0..3usize {
            for dst in 0..3usize {
                if src == dst {
                    continue;
                }
                let sends: HashSet<u64> = graphs[src]
                    .instances
                    .iter()
                    .flat_map(|t| t.sends.iter())
                    .filter(|s| s.dst_rank == dst)
                    .map(|s| s.tag.0)
                    .collect();
                let recvs: HashSet<u64> = graphs[dst]
                    .recvs
                    .iter()
                    .filter(|r| r.src_rank == src)
                    .map(|r| r.tag.0)
                    .collect();
                assert_eq!(sends, recvs, "rank {src} -> {dst}");
            }
        }
        // Bundled level messages: one per (producer instance, peer) instead
        // of one per (variable, producer instance, peer).
        let plain = compile(&g, &dist, &decls3(), 0, 0);
        let packed = &graphs[0];
        let count = |cg: &CompiledGraph, pred: fn(&SendSpec) -> bool| {
            cg.instances.iter().flat_map(|t| t.sends.iter()).filter(|s| pred(s)).count()
        };
        let plain_level = count(&plain, |s| matches!(s.payload, SendPayload::LevelWindow(_)));
        let packed_bundles = count(packed, |s| matches!(s.payload, SendPayload::LevelBundle(_)));
        assert_eq!(packed_bundles * 3, plain_level, "3 variables per bundle");
        // Ghost traffic is untouched.
        let plain_ghost = count(&plain, |s| matches!(s.payload, SendPayload::PatchWindow));
        let packed_ghost = count(packed, |s| matches!(s.payload, SendPayload::PatchWindow));
        assert_eq!(plain_ghost, packed_ghost);
    }

    #[test]
    fn aggregated_gather_dep_counts_are_bundles_not_windows() {
        let g = grid();
        let dist = PatchDistribution::new(&g, 4, DistributionPolicy::MortonSfc);
        let plain = compile(&g, &dist, &decls3(), 0, 0);
        let packed = compile_opts(&g, &dist, &decls3(), 0, 0, true);
        let gather_deps = |cg: &CompiledGraph| -> usize {
            cg.instances
                .iter()
                .filter(|t| t.gather.is_some())
                .map(|t| t.num_deps_in)
                .sum()
        };
        // Each bundle notifies every gather exactly once, so per-gather
        // dependency counts are identical in both modes (3 variables ×
        // (local edges + remote producers)) — only the *message* count
        // changes.
        let local_fine = dist
            .owned_by(0)
            .iter()
            .filter(|&&p| g.patch(p).level_index() == 1)
            .count();
        let total_fine = g.fine_level().num_patches();
        let remote = total_fine - local_fine;
        assert_eq!(gather_deps(&plain), 3 * local_fine + 3 * remote);
        assert_eq!(gather_deps(&packed), gather_deps(&plain));
        // But the packed graph expects 3x fewer level messages.
        let level_recvs = |cg: &CompiledGraph| {
            cg.recvs
                .iter()
                .filter(|r| !matches!(r.action, RecvAction::Foreign { .. }))
                .count()
        };
        assert_eq!(level_recvs(&plain), 3 * remote);
        assert_eq!(level_recvs(&packed), remote);
    }

    #[test]
    fn message_census_scales_down_with_fewer_ranks() {
        let g = grid();
        let d8 = PatchDistribution::new(&g, 8, DistributionPolicy::MortonSfc);
        let d2 = PatchDistribution::new(&g, 2, DistributionPolicy::MortonSfc);
        let total_msgs = |dist: &PatchDistribution, nr: usize| -> usize {
            (0..nr).map(|r| compile(&g, dist, &decls(), r, 0).stats.messages).sum()
        };
        assert!(total_msgs(&d8, 8) > total_msgs(&d2, 2));
    }
}
