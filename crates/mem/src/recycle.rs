//! Size-binned buffer recycling for transient grid-variable storage.
//!
//! The paper's §IV-B fragmentation fix keeps large transient allocations off
//! the general heap. The runtime's `DataWarehouse` is the biggest producer
//! of such transients: every timestep it materialises ghost-expanded patch
//! windows and whole-level accumulators, then drops them all at the step
//! boundary. Allocating those fresh each step is exactly the
//! persistent/transient interleaving the paper identifies as the heap-growth
//! driver. [`BufferRecycler`] closes the loop: retired buffers are parked in
//! per-size bins and handed back (re-zeroed) on the next step's requests, so
//! steady-state timesteps perform no field-data heap allocation at all.
//!
//! Accounting flows through [`AllocTracker`] under
//! [`AllocCategory::GridVariable`] at the *pool boundary*: bytes are charged
//! when a buffer is parked in a bin and credited when it leaves (reuse,
//! overflow, or [`BufferRecycler::clear`]). Live bytes therefore report what
//! the pool is holding back from the heap between timesteps — well-defined
//! even for buffers that were first allocated elsewhere (task-produced
//! fields retired by the warehouse at a step boundary).

use crate::tracker::{AllocCategory, AllocTracker};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-size free-list pool of `Vec<T>` buffers with tracker accounting.
///
/// Buffers are stamped with the pool's *distribution generation* when
/// parked. [`BufferRecycler::bump_generation`] (called by the warehouse at
/// a regrid) invalidates everything parked earlier: stale buffers are
/// dropped lazily at their next acquire instead of being handed out. The
/// bins are keyed by size alone, so without the stamp a patch id recycled
/// by a regrid could be served storage retired under the previous
/// ownership — the pool must provably never cross that boundary.
/// Free-list bin: buffers of one size, each stamped with the distribution
/// generation it was parked under.
type StampedBin<T> = Vec<(u64, Vec<T>)>;

pub struct BufferRecycler<T> {
    bins: Mutex<HashMap<usize, StampedBin<T>>>,
    tracker: AllocTracker,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Distribution generation; buffers parked under an older one are dead.
    generation: AtomicU64,
    /// Stale-generation buffers dropped at acquire time.
    stale_drops: AtomicU64,
    /// Cap per bin so a pathological step can't pin unbounded memory.
    max_per_bin: usize,
}

impl<T: Copy + Default> BufferRecycler<T> {
    pub fn new(tracker: AllocTracker) -> Self {
        Self::with_bin_capacity(tracker, 64)
    }

    pub fn with_bin_capacity(tracker: AllocTracker, max_per_bin: usize) -> Self {
        Self {
            bins: Mutex::new(HashMap::new()),
            tracker,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            max_per_bin,
        }
    }

    /// A zeroed buffer of exactly `len` elements, recycled when possible.
    /// Buffers parked before the last [`Self::bump_generation`] are dropped
    /// (with tracker credit) rather than reused.
    pub fn acquire(&self, len: usize) -> Vec<T> {
        let gen = self.generation.load(Ordering::Acquire);
        let mut bins = self.bins.lock();
        let found = loop {
            match bins.get_mut(&len).and_then(Vec::pop) {
                None => break None,
                Some((g, v)) => {
                    self.tracker
                        .on_free(AllocCategory::GridVariable, Self::bytes(len));
                    if g == gen {
                        break Some(v);
                    }
                    self.stale_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        };
        drop(bins);
        if let Some(mut v) = found {
            self.hits.fetch_add(1, Ordering::Relaxed);
            v.fill(T::default());
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        vec![T::default(); len]
    }

    /// Park a buffer in its size bin (or drop it if the bin is full). Any
    /// origin is fine — the tracker charges at pool entry, not allocation.
    pub fn retire(&self, v: Vec<T>) {
        let len = v.len();
        if len == 0 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let mut bins = self.bins.lock();
        let bin = bins.entry(len).or_default();
        if bin.len() < self.max_per_bin {
            bin.push((gen, v));
            drop(bins);
            self.tracker
                .on_alloc(AllocCategory::GridVariable, Self::bytes(len));
        }
    }

    /// Open a new distribution generation (a regrid boundary): everything
    /// parked so far becomes stale and is dropped at its next acquire.
    /// Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current distribution generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Stale-generation buffers dropped instead of reused.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops.load(Ordering::Relaxed)
    }

    /// Drop every pooled buffer, crediting the tracker.
    pub fn clear(&self) {
        let drained: Vec<(u64, Vec<T>)> = self.bins.lock().drain().flat_map(|(_, b)| b).collect();
        for (_, v) in &drained {
            self.tracker
                .on_free(AllocCategory::GridVariable, Self::bytes(v.len()));
        }
    }

    /// Acquisitions served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquisitions that fell through to a fresh heap allocation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes currently parked in bins (excludes buffers out on loan;
    /// includes stale-generation buffers not yet swept by an acquire).
    pub fn pooled_bytes(&self) -> u64 {
        self.bins
            .lock()
            .values()
            .flatten()
            .map(|(_, v)| Self::bytes(v.len()))
            .sum()
    }

    #[inline]
    fn bytes(len: usize) -> u64 {
        (len * std::mem::size_of::<T>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        let r = BufferRecycler::<f64>::new(AllocTracker::new());
        let mut v = r.acquire(100);
        v[3] = 42.0;
        let ptr = v.as_ptr();
        r.retire(v);
        let v2 = r.acquire(100);
        assert_eq!(v2.as_ptr(), ptr, "same-size acquire must reuse the buffer");
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffer must be zeroed");
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 1);
    }

    #[test]
    fn sizes_are_segregated() {
        let r = BufferRecycler::<u8>::new(AllocTracker::new());
        r.retire(r.acquire(10));
        let v = r.acquire(20);
        assert_eq!(v.len(), 20);
        assert_eq!(r.hits(), 0, "different size must not hit the 10-byte bin");
    }

    #[test]
    fn tracker_reflects_pooled_bytes() {
        let t = AllocTracker::new();
        let r = BufferRecycler::<f64>::new(t.clone());
        for _ in 0..10 {
            let v = r.acquire(64);
            r.retire(v);
        }
        let snap = t.snapshot(AllocCategory::GridVariable);
        assert_eq!(snap.live_bytes, 64 * 8, "one buffer parked");
        // Buffers of foreign origin are also accountable.
        r.retire(vec![0.0f64; 32]);
        assert_eq!(
            t.snapshot(AllocCategory::GridVariable).live_bytes,
            64 * 8 + 32 * 8
        );
        r.clear();
        assert_eq!(t.snapshot(AllocCategory::GridVariable).live_bytes, 0);
        assert_eq!(r.pooled_bytes(), 0);
    }

    #[test]
    fn generation_bump_invalidates_parked_buffers() {
        let t = AllocTracker::new();
        let r = BufferRecycler::<f64>::new(t.clone());
        let v = r.acquire(64);
        let ptr = v.as_ptr();
        r.retire(v);
        assert_eq!(r.bump_generation(), 1);
        // The parked buffer predates the bump: it must be dropped, not
        // reused, and the tracker credited.
        let v2 = r.acquire(64);
        assert_ne!(v2.as_ptr(), ptr, "stale-generation buffer reused");
        assert_eq!(r.hits(), 0);
        assert_eq!(r.stale_drops(), 1);
        assert_eq!(t.snapshot(AllocCategory::GridVariable).live_bytes, 0);
        // Buffers retired after the bump recycle normally.
        let ptr2 = v2.as_ptr();
        r.retire(v2);
        let v3 = r.acquire(64);
        assert_eq!(v3.as_ptr(), ptr2, "current-generation buffer reusable");
        assert_eq!(r.hits(), 1);
    }

    #[test]
    fn acquire_skips_stale_to_reach_fresh() {
        let r = BufferRecycler::<u8>::new(AllocTracker::new());
        r.retire(vec![0u8; 16]); // generation 0
        r.bump_generation();
        r.retire(vec![0u8; 16]); // generation 1 — on top of the stale one
        r.retire(vec![0u8; 16]);
        // Both fresh buffers pop before the stale one underneath.
        let _ = r.acquire(16);
        let _ = r.acquire(16);
        assert_eq!(r.hits(), 2);
        assert_eq!(r.stale_drops(), 0);
        // The third acquire reaches the stale buffer and drops it.
        let _ = r.acquire(16);
        assert_eq!(r.stale_drops(), 1);
        assert_eq!(r.misses(), 1);
    }

    #[test]
    fn bin_capacity_bounds_pooled_memory() {
        let t = AllocTracker::new();
        let r = BufferRecycler::<u8>::with_bin_capacity(t.clone(), 2);
        let bufs: Vec<_> = (0..5).map(|_| r.acquire(8)).collect();
        for v in bufs {
            r.retire(v);
        }
        assert_eq!(r.pooled_bytes(), 16, "bin capped at 2 buffers");
        let snap = t.snapshot(AllocCategory::GridVariable);
        assert_eq!(snap.live_bytes, 16, "only parked buffers are charged");
    }
}
