//! Allocation tracking by category.
//!
//! The paper's future-work section describes "custom memory allocators and
//! trackers … to identify allocation patterns that do not scale." The
//! tracker records per-category live/peak/total byte counts so scaling runs
//! can be diffed (the E5 harness prints these).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What an allocation is for — the categories the paper's analysis
/// distinguishes (§IV-B): MPI communication buffers, grid variables, and
/// everything else in the infrastructure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AllocCategory {
    /// MPI send/receive buffers (large, transient).
    MpiBuffer,
    /// Simulation variables on mesh patches (large, per-timestep).
    GridVariable,
    /// Task/scheduler bookkeeping (small, transient).
    Infrastructure,
    /// Long-lived framework state (small, persistent).
    Persistent,
}

impl AllocCategory {
    pub const ALL: [AllocCategory; 4] = [
        AllocCategory::MpiBuffer,
        AllocCategory::GridVariable,
        AllocCategory::Infrastructure,
        AllocCategory::Persistent,
    ];

    fn idx(self) -> usize {
        match self {
            AllocCategory::MpiBuffer => 0,
            AllocCategory::GridVariable => 1,
            AllocCategory::Infrastructure => 2,
            AllocCategory::Persistent => 3,
        }
    }
}

#[derive(Default)]
struct Counters {
    live: AtomicU64,
    peak: AtomicU64,
    total_bytes: AtomicU64,
    total_count: AtomicU64,
}

/// Thread-safe per-category allocation statistics.
#[derive(Clone, Default)]
pub struct AllocTracker {
    counters: Arc<[Counters; 4]>,
}

impl std::fmt::Debug for AllocTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocTracker")
            .field("live_total", &self.live_total())
            .finish()
    }
}

/// A point-in-time view of one category's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackerSnapshot {
    pub category: AllocCategory,
    pub live_bytes: u64,
    pub peak_bytes: u64,
    pub total_bytes: u64,
    pub total_count: u64,
}

impl AllocTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes` in `cat`.
    pub fn on_alloc(&self, cat: AllocCategory, bytes: u64) {
        let c = &self.counters[cat.idx()];
        let live = c.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        c.peak.fetch_max(live, Ordering::Relaxed);
        c.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.total_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a free of `bytes` in `cat`.
    pub fn on_free(&self, cat: AllocCategory, bytes: u64) {
        self.counters[cat.idx()].live.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self, cat: AllocCategory) -> TrackerSnapshot {
        let c = &self.counters[cat.idx()];
        TrackerSnapshot {
            category: cat,
            live_bytes: c.live.load(Ordering::Relaxed),
            peak_bytes: c.peak.load(Ordering::Relaxed),
            total_bytes: c.total_bytes.load(Ordering::Relaxed),
            total_count: c.total_count.load(Ordering::Relaxed),
        }
    }

    /// Snapshots for every category.
    pub fn snapshot_all(&self) -> Vec<TrackerSnapshot> {
        AllocCategory::ALL.iter().map(|&c| self.snapshot(c)).collect()
    }

    /// Live bytes summed over all categories.
    pub fn live_total(&self) -> u64 {
        self.counters.iter().map(|c| c.live.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_peak_total() {
        let t = AllocTracker::new();
        t.on_alloc(AllocCategory::MpiBuffer, 100);
        t.on_alloc(AllocCategory::MpiBuffer, 200);
        t.on_free(AllocCategory::MpiBuffer, 100);
        let s = t.snapshot(AllocCategory::MpiBuffer);
        assert_eq!(s.live_bytes, 200);
        assert_eq!(s.peak_bytes, 300);
        assert_eq!(s.total_bytes, 300);
        assert_eq!(s.total_count, 2);
    }

    #[test]
    fn categories_are_independent() {
        let t = AllocTracker::new();
        t.on_alloc(AllocCategory::GridVariable, 50);
        t.on_alloc(AllocCategory::Persistent, 7);
        assert_eq!(t.snapshot(AllocCategory::GridVariable).live_bytes, 50);
        assert_eq!(t.snapshot(AllocCategory::Persistent).live_bytes, 7);
        assert_eq!(t.snapshot(AllocCategory::MpiBuffer).live_bytes, 0);
        assert_eq!(t.live_total(), 57);
    }

    #[test]
    fn concurrent_updates_balance() {
        let t = AllocTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 1..1000u64 {
                        t.on_alloc(AllocCategory::Infrastructure, i);
                        t.on_free(AllocCategory::Infrastructure, i);
                    }
                });
            }
        });
        let s = t.snapshot(AllocCategory::Infrastructure);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.total_count, 8 * 999);
    }
}
