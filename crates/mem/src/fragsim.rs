//! Deterministic heap-fragmentation simulator (experiment E5).
//!
//! §IV-B: "Persistent small allocations mixed with transient large
//! allocations fragmented the heap such that it grew continually, acting as
//! though a significant memory leak still existed." tcmalloc reduced but did
//! not eliminate the growth; segregating large transients into the mmap
//! arena did. This module reproduces that behaviour quantitatively: a heap
//! model with a movable break (`sbrk`-style), a coalescing free list, and
//! four placement policies, replayed against an RMCRT-like allocation trace.

use std::collections::BTreeMap;

/// Placement policy the simulated process uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Naive heap: first fit at the lowest address (glibc-like worst case).
    FirstFit,
    /// Best fit: smallest free block that fits.
    BestFit,
    /// tcmalloc-like: sizes rounded to power-of-two classes, then first fit.
    /// Rounding lets freed blocks be reused by different call sites, but
    /// large transients still interleave with persistent smalls.
    SizeClass,
    /// The paper's fix: allocations of at least [`HeapSim::ARENA_THRESHOLD`]
    /// bytes bypass the heap into a page arena that returns memory eagerly;
    /// smaller requests use size classes.
    ArenaSegregated,
}

/// Handle to a live simulated allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct AllocId(u64);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RegionKind {
    /// The main fragmenting heap (movable break).
    Heap,
    /// A segregated small-object region (tcmalloc-style spans; the pool
    /// allocator in the real implementation).
    Small,
    /// Mapped pages, returned eagerly on free.
    Mapped,
}

#[derive(Clone, Copy, Debug)]
struct Placement {
    addr: u64,
    size: u64,
    region: RegionKind,
}

/// One sbrk-style region with a coalescing free list.
#[derive(Debug, Default)]
struct BrkRegion {
    free: BTreeMap<u64, u64>,
    brk: u64,
    peak_brk: u64,
}

impl BrkRegion {
    fn place(&mut self, size: u64, best_fit: bool) -> u64 {
        let found = if best_fit {
            self.free
                .iter()
                .filter(|&(_, &s)| s >= size)
                .min_by_key(|&(_, &s)| s)
                .map(|(&a, &s)| (a, s))
        } else {
            self.free
                .iter()
                .find(|&(_, &s)| s >= size)
                .map(|(&a, &s)| (a, s))
        };
        if let Some((addr, blk)) = found {
            self.free.remove(&addr);
            if blk > size {
                self.free.insert(addr + size, blk - size);
            }
            addr
        } else {
            let addr = self.brk;
            self.brk += size;
            self.peak_brk = self.peak_brk.max(self.brk);
            addr
        }
    }

    fn release(&mut self, mut addr: u64, mut size: u64) {
        if let Some((&prev_a, &prev_s)) = self.free.range(..addr).next_back() {
            if prev_a + prev_s == addr {
                self.free.remove(&prev_a);
                addr = prev_a;
                size += prev_s;
            }
        }
        if let Some(&next_s) = self.free.get(&(addr + size)) {
            self.free.remove(&(addr + size));
            size += next_s;
        }
        self.free.insert(addr, size);
    }
}

/// A simulated process heap.
#[derive(Debug)]
pub struct HeapSim {
    policy: Policy,
    heap: BrkRegion,
    small: BrkRegion,
    live: BTreeMap<u64, Placement>, // keyed by AllocId.0
    next_id: u64,
    live_bytes: u64,
    /// Bytes currently in the mapped (arena) region.
    mapped_bytes: u64,
    peak_mapped: u64,
}

impl HeapSim {
    /// Allocations >= 64 KiB are "large" (the paper's MPI buffers and grid
    /// variables are MiB-scale; its pools cover the small end).
    pub const ARENA_THRESHOLD: u64 = 64 * 1024;

    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            heap: BrkRegion::default(),
            small: BrkRegion::default(),
            live: BTreeMap::new(),
            next_id: 0,
            live_bytes: 0,
            mapped_bytes: 0,
            peak_mapped: 0,
        }
    }

    fn class_round(size: u64) -> u64 {
        if size <= 16 {
            16
        } else if size <= 4096 {
            size.next_power_of_two()
        } else {
            // Page-granular above the small classes.
            size.next_multiple_of(4096)
        }
    }

    /// Simulate an allocation; returns its handle.
    pub fn alloc(&mut self, size: u64) -> AllocId {
        assert!(size > 0, "zero-size simulated allocation");
        let small_cutoff = 4096;
        let (eff_size, region) = match self.policy {
            // Naive heap: everything shares one address space.
            Policy::FirstFit | Policy::BestFit => (size, RegionKind::Heap),
            // tcmalloc-like: smalls live in segregated spans; larges are
            // page-rounded spans that still churn the main page heap, so
            // persistent mid-size allocations keep pinning it.
            Policy::SizeClass => {
                if size <= small_cutoff {
                    (Self::class_round(size), RegionKind::Small)
                } else {
                    (size.next_multiple_of(4096), RegionKind::Heap)
                }
            }
            // The paper's fix: larges bypass the heap entirely.
            Policy::ArenaSegregated => {
                if size >= Self::ARENA_THRESHOLD {
                    (size.next_multiple_of(4096), RegionKind::Mapped)
                } else if size <= small_cutoff {
                    (Self::class_round(size), RegionKind::Small)
                } else {
                    (size.next_multiple_of(4096), RegionKind::Heap)
                }
            }
        };
        let best_fit = self.policy == Policy::BestFit;
        let placement = match region {
            RegionKind::Mapped => {
                self.mapped_bytes += eff_size;
                self.peak_mapped = self.peak_mapped.max(self.mapped_bytes);
                Placement {
                    addr: u64::MAX,
                    size: eff_size,
                    region,
                }
            }
            RegionKind::Heap => Placement {
                addr: self.heap.place(eff_size, best_fit),
                size: eff_size,
                region,
            },
            RegionKind::Small => Placement {
                addr: self.small.place(eff_size, false),
                size: eff_size,
                region,
            },
        };
        self.live_bytes += eff_size;
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, placement);
        id
    }

    /// Simulate freeing `id`.
    pub fn free(&mut self, id: AllocId) {
        let p = self.live.remove(&id.0).expect("double free in simulation");
        self.live_bytes -= p.size;
        match p.region {
            RegionKind::Mapped => self.mapped_bytes -= p.size, // pages returned eagerly
            RegionKind::Heap => self.heap.release(p.addr, p.size),
            RegionKind::Small => self.small.release(p.addr, p.size),
        }
    }

    /// Current process footprint: heap break + small region + mapped bytes.
    pub fn footprint(&self) -> u64 {
        self.heap.brk + self.small.brk + self.mapped_bytes
    }

    /// Peak footprint over the run.
    pub fn peak_footprint(&self) -> u64 {
        self.heap.peak_brk + self.small.peak_brk + self.peak_mapped
    }

    /// Main-heap size (the part that fragments).
    pub fn heap_bytes(&self) -> u64 {
        self.heap.brk
    }

    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// External fragmentation of the main heap: wasted fraction of the
    /// break. Mapped memory is excluded (it is returned eagerly).
    pub fn fragmentation(&self) -> f64 {
        let heap_live: u64 = self
            .live
            .values()
            .filter(|p| p.region == RegionKind::Heap)
            .map(|p| p.size)
            .sum();
        if self.heap.brk == 0 {
            0.0
        } else {
            1.0 - heap_live as f64 / self.heap.brk as f64
        }
    }
}

/// One operation of an allocation trace.
#[derive(Clone, Copy, Debug)]
pub enum TraceOp {
    /// Allocate `size` bytes and remember it under `slot`.
    Alloc { slot: u32, size: u64 },
    /// Free the allocation remembered under `slot`.
    Free { slot: u32 },
}

/// Build an RMCRT-like trace: each timestep allocates a few *persistent*
/// small objects (framework state that accumulates) and a burst of *large
/// transient* buffers (MPI messages / grid variables) that are freed by the
/// end of the step. `seed` makes the trace deterministic.
pub fn rmcrt_trace(timesteps: usize, small_per_step: usize, large_per_step: usize, seed: u64) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    let mut slot = 0u32;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = |lo: u64, hi: u64| {
        // xorshift64* — deterministic, no rand dependency in the library.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545F4914F6CDD1D);
        lo + r % (hi - lo)
    };
    // Larges that survive past their step (data-warehouse variables kept for
    // the next timestep's "old DW"): (slot, step at which they are freed).
    let mut deferred: Vec<(u32, usize)> = Vec::new();
    for step in 0..timesteps {
        // Free deferred larges whose time has come.
        let mut i = 0;
        while i < deferred.len() {
            if deferred[i].1 <= step {
                ops.push(TraceOp::Free {
                    slot: deferred.swap_remove(i).0,
                });
            } else {
                i += 1;
            }
        }
        // Persistent smalls: never freed (e.g. per-patch metadata growth).
        for _ in 0..small_per_step {
            ops.push(TraceOp::Alloc {
                slot,
                size: next(24, 512),
            });
            slot += 1;
        }
        // One persistent mid-size allocation per step (pins the large heap
        // even when smalls are segregated).
        ops.push(TraceOp::Alloc {
            slot,
            size: next(8 * 1024, 48 * 1024),
        });
        slot += 1;
        // Transient larges with varying sizes so freed holes rarely match
        // later requests exactly. Most die within the step; every 5th
        // survives a few steps (old-DW retention).
        let first_large = slot;
        for k in 0..large_per_step {
            ops.push(TraceOp::Alloc {
                slot,
                size: next(128 * 1024, 4 * 1024 * 1024),
            });
            if k % 5 == 4 {
                deferred.push((slot, step + 3));
            }
            slot += 1;
        }
        for s in first_large..slot {
            if !deferred.iter().any(|&(d, _)| d == s) {
                ops.push(TraceOp::Free { slot: s });
            }
        }
    }
    // Drain what is still deferred at the end of the run.
    for (s, _) in deferred {
        ops.push(TraceOp::Free { slot: s });
    }
    ops
}

/// Result of replaying a trace against a policy.
#[derive(Clone, Copy, Debug)]
pub struct FragReport {
    pub policy: Policy,
    pub final_footprint: u64,
    pub peak_footprint: u64,
    pub final_heap: u64,
    pub live_bytes: u64,
    pub fragmentation: f64,
}

/// Replay `ops` on a fresh heap with `policy`.
pub fn replay(policy: Policy, ops: &[TraceOp]) -> FragReport {
    let mut sim = HeapSim::new(policy);
    let mut slots: std::collections::HashMap<u32, AllocId> = std::collections::HashMap::new();
    for op in ops {
        match *op {
            TraceOp::Alloc { slot, size } => {
                slots.insert(slot, sim.alloc(size));
            }
            TraceOp::Free { slot } => {
                let id = slots.remove(&slot).expect("trace frees unknown slot");
                sim.free(id);
            }
        }
    }
    FragReport {
        policy,
        final_footprint: sim.footprint(),
        peak_footprint: sim.peak_footprint(),
        final_heap: sim.heap_bytes(),
        live_bytes: sim.live_bytes(),
        fragmentation: sim.fragmentation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reuse_no_growth() {
        let mut sim = HeapSim::new(Policy::FirstFit);
        let a = sim.alloc(100);
        sim.free(a);
        let _b = sim.alloc(100);
        assert_eq!(sim.heap_bytes(), 100, "freed block must be reused");
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut sim = HeapSim::new(Policy::FirstFit);
        let a = sim.alloc(100);
        let b = sim.alloc(100);
        let c = sim.alloc(100);
        sim.free(a);
        sim.free(c);
        sim.free(b); // middle free must merge all three
        let _d = sim.alloc(300);
        assert_eq!(sim.heap_bytes(), 300);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut sim = HeapSim::new(Policy::BestFit);
        let a = sim.alloc(10);
        sim.free(a);
        sim.free(a);
    }

    #[test]
    fn pinning_pattern_fragments_first_fit() {
        // Alternate persistent small / transient large: the small pins the
        // address space so the next, larger transient cannot reuse the hole.
        let mut sim = HeapSim::new(Policy::FirstFit);
        let mut size = 100_000u64;
        for _ in 0..50 {
            let big = sim.alloc(size);
            let _small = sim.alloc(32); // persistent, never freed
            sim.free(big);
            size += 4096; // grows, so old holes never fit
        }
        assert!(
            sim.fragmentation() > 0.9,
            "expected heavy fragmentation, got {}",
            sim.fragmentation()
        );
    }

    #[test]
    fn arena_policy_keeps_heap_compact() {
        let ops = rmcrt_trace(30, 8, 16, 42);
        let first = replay(Policy::FirstFit, &ops);
        let arena = replay(Policy::ArenaSegregated, &ops);
        // Same trace, same live bytes at the end.
        assert_eq!(first.live_bytes > 0, arena.live_bytes > 0);
        // The paper's fix: final footprint far below the fragmenting heap.
        assert!(
            arena.final_footprint * 2 < first.final_footprint,
            "arena {} vs first-fit {}",
            arena.final_footprint,
            first.final_footprint
        );
        assert!(arena.fragmentation < 0.5);
    }

    #[test]
    fn size_class_still_fragments_arena_does_not() {
        let ops = rmcrt_trace(30, 8, 16, 7);
        let class = replay(Policy::SizeClass, &ops);
        let arena = replay(Policy::ArenaSegregated, &ops);
        // Mirrors the paper: tcmalloc-style size classes still leave the
        // page heap holding far more than is live ("still resulted in
        // unacceptable fragmentation"); segregating large transients into
        // the arena fixes it.
        assert!(
            class.final_footprint > 10 * class.live_bytes,
            "size-class should retain a leak-like footprint: {} vs live {}",
            class.final_footprint,
            class.live_bytes
        );
        assert!(arena.final_footprint < 2 * arena.live_bytes);
        assert!(class.fragmentation > 0.5);
        assert!(arena.fragmentation < 0.5);
    }

    #[test]
    fn heap_retention_grows_with_run_length_arena_does_not() {
        // The paper observed the heap "grew continually, acting as though a
        // significant memory leak still existed". Footprint after a long run
        // should exceed the short run's under first-fit, while the arena
        // policy stays proportional to live bytes.
        let short = rmcrt_trace(10, 8, 16, 3);
        let long = rmcrt_trace(60, 8, 16, 3);
        let ff_s = replay(Policy::FirstFit, &short);
        let ff_l = replay(Policy::FirstFit, &long);
        let ar_s = replay(Policy::ArenaSegregated, &short);
        let ar_l = replay(Policy::ArenaSegregated, &long);
        assert!(ff_l.final_footprint > ff_s.final_footprint);
        // Arena footprint tracks live bytes (which grow only by the small
        // persistents), staying within a small factor.
        assert!(ar_l.final_footprint < 2 * ar_l.live_bytes);
        assert!(ar_s.final_footprint < 2 * ar_s.live_bytes);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = rmcrt_trace(5, 3, 4, 99);
        let b = rmcrt_trace(5, 3, 4, 99);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (TraceOp::Alloc { slot: s1, size: z1 }, TraceOp::Alloc { slot: s2, size: z2 }) => {
                    assert_eq!((s1, z1), (s2, z2));
                }
                (TraceOp::Free { slot: s1 }, TraceOp::Free { slot: s2 }) => assert_eq!(s1, s2),
                _ => panic!("trace mismatch"),
            }
        }
    }

    #[test]
    fn footprint_includes_mapped() {
        let mut sim = HeapSim::new(Policy::ArenaSegregated);
        let big = sim.alloc(1 << 20);
        assert_eq!(sim.heap_bytes(), 0, "large bypasses heap");
        assert!(sim.footprint() >= 1 << 20);
        sim.free(big);
        assert_eq!(sim.footprint(), 0, "mapped pages returned eagerly");
    }
}
