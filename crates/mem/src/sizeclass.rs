//! Size-class front end over the lock-free block pools.
//!
//! Frequent small allocations from many threads were a throughput problem in
//! the paper (§IV-B); the fix routes them to per-size-class lock-free pools.
//! Allocations above the largest class fall through to the page arena —
//! exactly the paper's split: small/transient → pool, large → mmap arena,
//! "all other infrequent allocations are still managed using the heap."

use crate::arena::{PageAllocation, PageArena};
use crate::pool::{BlockPool, PoolBlock};

/// Power-of-two size classes from 16 B to 4 KiB.
const CLASSES: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// A small-object allocator with lock-free per-class pools and an arena
/// fallback for large requests.
#[derive(Clone)]
pub struct SizeClassAllocator {
    pools: Vec<BlockPool>,
    arena: PageArena,
}

/// A buffer from [`SizeClassAllocator::allocate`]: either a pooled block or a
/// whole-page arena allocation.
pub enum SizedAlloc {
    Pooled(PoolBlock),
    Paged(PageAllocation),
}

impl SizedAlloc {
    #[inline]
    pub fn capacity(&self) -> usize {
        match self {
            SizedAlloc::Pooled(b) => b.capacity(),
            SizedAlloc::Paged(p) => p.capacity(),
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            SizedAlloc::Pooled(b) => b.as_slice(),
            SizedAlloc::Paged(p) => p.as_slice(),
        }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match self {
            SizedAlloc::Pooled(b) => b.as_mut_slice(),
            SizedAlloc::Paged(p) => p.as_mut_slice(),
        }
    }

    /// True if served from a lock-free pool (small-object fast path).
    #[inline]
    pub fn is_pooled(&self) -> bool {
        matches!(self, SizedAlloc::Pooled(_))
    }
}

impl SizeClassAllocator {
    pub fn new(arena: PageArena) -> Self {
        let pools = CLASSES
            .iter()
            .map(|&c| BlockPool::new(c, arena.clone()))
            .collect();
        Self { pools, arena }
    }

    /// The size class a request maps to, or `None` for arena-sized requests.
    pub fn class_of(size: usize) -> Option<usize> {
        CLASSES.iter().position(|&c| size <= c)
    }

    /// Allocate at least `size` bytes.
    pub fn allocate(&self, size: usize) -> SizedAlloc {
        match Self::class_of(size.max(1)) {
            Some(ci) => SizedAlloc::Pooled(self.pools[ci].allocate()),
            None => SizedAlloc::Paged(self.arena.allocate(size)),
        }
    }

    /// Blocks currently live across all classes.
    pub fn live_small_blocks(&self) -> usize {
        self.pools.iter().map(BlockPool::live_blocks).sum()
    }

    /// The shared backing arena.
    pub fn arena(&self) -> &PageArena {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(SizeClassAllocator::class_of(1), Some(0));
        assert_eq!(SizeClassAllocator::class_of(16), Some(0));
        assert_eq!(SizeClassAllocator::class_of(17), Some(1));
        assert_eq!(SizeClassAllocator::class_of(4096), Some(8));
        assert_eq!(SizeClassAllocator::class_of(4097), None);
    }

    #[test]
    fn small_goes_to_pool_large_to_arena() {
        let a = SizeClassAllocator::new(PageArena::new());
        assert!(a.allocate(100).is_pooled());
        assert!(!a.allocate(100_000).is_pooled());
    }

    #[test]
    fn capacity_covers_request() {
        let a = SizeClassAllocator::new(PageArena::new());
        for size in [1, 15, 16, 100, 1000, 4096, 5000, 1 << 20] {
            let b = a.allocate(size);
            assert!(b.capacity() >= size, "capacity {} < {}", b.capacity(), size);
        }
    }

    #[test]
    fn live_accounting() {
        let a = SizeClassAllocator::new(PageArena::new());
        let x = a.allocate(64);
        let y = a.allocate(64);
        assert_eq!(a.live_small_blocks(), 2);
        drop((x, y));
        assert_eq!(a.live_small_blocks(), 0);
    }

    #[test]
    fn concurrent_mixed_sizes() {
        let a = SizeClassAllocator::new(PageArena::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = a.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..500 {
                        let size = 1 + (i * 37 + t * 101) % 8000;
                        let mut b = a.allocate(size);
                        b.as_mut_slice()[0] = t as u8;
                        held.push(b);
                        if i % 2 == 0 {
                            held.remove(0);
                        }
                    }
                });
            }
        });
        assert_eq!(a.live_small_blocks(), 0);
        assert_eq!(a.arena().live_bytes(), a.arena().live_bytes() / crate::PAGE_SIZE * crate::PAGE_SIZE);
    }
}
