//! Lock-free fixed-size block pool for small transient objects.
//!
//! "To manage our small transient objects, i.e. objects that are frequently
//! created and destroyed, we developed a lock-free memory pool on top of our
//! mmap allocator to avoid the heap and to maximize throughput" (§IV-B.1).
//!
//! The free list is a Treiber stack whose head packs a 32-bit ABA tag with a
//! 32-bit block index (`0` = empty, else `index + 1`); `next` links live in a
//! side table of atomics rather than inside the blocks so that a stale read
//! during a contended pop never touches user data. Pop and push are lock-free
//! (a failed CAS means another thread made progress). Growing the pool when
//! the free list is empty takes a mutex, but growth is rare and never blocks
//! pop/push of existing blocks.

use crate::arena::{PageAllocation, PageArena};
use parking_lot::Mutex;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum number of chunks a pool can grow to.
const MAX_CHUNKS: usize = 4096;

struct Chunk {
    /// Backing storage, kept alive until the pool drops.
    _alloc: PageAllocation,
    base: NonNull<u8>,
    /// One `next` link per block (stored as `index + 1`, 0 = end of list).
    next: Box<[AtomicU32]>,
}

// SAFETY: `base` points into `_alloc`, which is Send + Sync; blocks are only
// handed out exclusively (one PoolBlock per block index at a time).
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

struct PoolInner {
    block_size: usize,
    blocks_per_chunk: usize,
    /// Published chunk pointers for lock-free lookup; index < num_chunks is
    /// guaranteed initialized (Release on publish / Acquire on read).
    chunks: Box<[AtomicPtr<Chunk>]>,
    num_chunks: AtomicUsize,
    /// Owning storage for chunk structs (push-only under the mutex).
    #[allow(clippy::vec_box)] // Box gives chunks stable addresses for the published pointers
    chunk_owner: Mutex<Vec<Box<Chunk>>>,
    /// Treiber head: high 32 bits ABA tag, low 32 bits `index + 1` (0 empty).
    free_head: AtomicU64,
    arena: PageArena,
    live_blocks: AtomicUsize,
    total_pops: AtomicUsize,
    total_pushes: AtomicUsize,
}

/// A thread-safe, cheaply-cloneable lock-free pool of fixed-size blocks.
#[derive(Clone)]
pub struct BlockPool {
    inner: Arc<PoolInner>,
}

impl BlockPool {
    /// Create a pool of `block_size`-byte blocks backed by `arena`.
    ///
    /// `block_size` is rounded up to 16 bytes. Each growth step allocates at
    /// least one page worth of blocks.
    pub fn new(block_size: usize, arena: PageArena) -> Self {
        assert!(block_size > 0, "zero block size");
        let block_size = block_size.max(16).next_multiple_of(16);
        let blocks_per_chunk = (crate::arena::PAGE_SIZE * 16 / block_size).max(8);
        let chunks: Vec<AtomicPtr<Chunk>> = (0..MAX_CHUNKS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Self {
            inner: Arc::new(PoolInner {
                block_size,
                blocks_per_chunk,
                chunks: chunks.into_boxed_slice(),
                num_chunks: AtomicUsize::new(0),
                chunk_owner: Mutex::new(Vec::new()),
                free_head: AtomicU64::new(0),
                arena,
                live_blocks: AtomicUsize::new(0),
                total_pops: AtomicUsize::new(0),
                total_pushes: AtomicUsize::new(0),
            }),
        }
    }

    /// Usable bytes per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    /// Blocks currently handed out.
    pub fn live_blocks(&self) -> usize {
        self.inner.live_blocks.load(Ordering::Relaxed)
    }

    /// Total blocks the pool has capacity for.
    pub fn capacity_blocks(&self) -> usize {
        self.inner.num_chunks.load(Ordering::Acquire) * self.inner.blocks_per_chunk
    }

    /// Number of successful free-list pops (allocation fast path hits).
    pub fn total_pops(&self) -> usize {
        self.inner.total_pops.load(Ordering::Relaxed)
    }

    /// Allocate a block, growing the pool if the free list is empty.
    pub fn allocate(&self) -> PoolBlock {
        loop {
            if let Some(idx) = self.inner.pop() {
                self.inner.live_blocks.fetch_add(1, Ordering::Relaxed);
                let ptr = self.inner.block_ptr(idx);
                return PoolBlock {
                    inner: Arc::clone(&self.inner),
                    index: idx,
                    ptr,
                };
            }
            self.inner.grow();
        }
    }
}

impl PoolInner {
    fn pop(&self) -> Option<u32> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let idx_plus1 = (head & 0xffff_ffff) as u32;
            if idx_plus1 == 0 {
                return None;
            }
            let idx = idx_plus1 - 1;
            let next = self.next_slot(idx).load(Ordering::Relaxed);
            let tag = (head >> 32).wrapping_add(1);
            let new = (tag << 32) | next as u64;
            match self
                .free_head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.total_pops.fetch_add(1, Ordering::Relaxed);
                    return Some(idx);
                }
                Err(h) => head = h,
            }
        }
    }

    fn push(&self, idx: u32) {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            self.next_slot(idx)
                .store((head & 0xffff_ffff) as u32, Ordering::Relaxed);
            let tag = (head >> 32).wrapping_add(1);
            let new = (tag << 32) | (idx + 1) as u64;
            match self
                .free_head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.total_pushes.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(h) => head = h,
            }
        }
    }

    #[inline]
    fn chunk(&self, ci: usize) -> &Chunk {
        let p = self.chunks[ci].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "chunk {ci} not published");
        // SAFETY: non-null chunk pointers are published once with Release and
        // stay valid until the pool drops (owned by chunk_owner).
        unsafe { &*p }
    }

    #[inline]
    fn next_slot(&self, idx: u32) -> &AtomicU32 {
        let ci = idx as usize / self.blocks_per_chunk;
        let off = idx as usize % self.blocks_per_chunk;
        &self.chunk(ci).next[off]
    }

    #[inline]
    fn block_ptr(&self, idx: u32) -> NonNull<u8> {
        let ci = idx as usize / self.blocks_per_chunk;
        let off = idx as usize % self.blocks_per_chunk;
        let c = self.chunk(ci);
        // SAFETY: off < blocks_per_chunk, and the chunk allocation holds
        // blocks_per_chunk * block_size bytes.
        unsafe { NonNull::new_unchecked(c.base.as_ptr().add(off * self.block_size)) }
    }

    /// Allocate one more chunk and push its blocks onto the free list.
    fn grow(&self) {
        let mut owner = self.chunk_owner.lock();
        // Another thread may have grown while we waited; if blocks are now
        // available, let the caller retry the pop.
        let head = self.free_head.load(Ordering::Acquire);
        if (head & 0xffff_ffff) != 0 {
            return;
        }
        let ci = self.num_chunks.load(Ordering::Acquire);
        assert!(ci < MAX_CHUNKS, "BlockPool exhausted ({MAX_CHUNKS} chunks)");
        let bytes = self.blocks_per_chunk * self.block_size;
        let alloc = self.arena.allocate(bytes);
        let base = NonNull::new(alloc.as_ptr()).unwrap();
        let next: Vec<AtomicU32> = (0..self.blocks_per_chunk).map(|_| AtomicU32::new(0)).collect();
        let chunk = Box::new(Chunk {
            _alloc: alloc,
            base,
            next: next.into_boxed_slice(),
        });
        let chunk_ptr = &*chunk as *const Chunk as *mut Chunk;
        owner.push(chunk);
        self.chunks[ci].store(chunk_ptr, Ordering::Release);
        self.num_chunks.store(ci + 1, Ordering::Release);
        drop(owner);
        // Make the new blocks visible.
        let first = (ci * self.blocks_per_chunk) as u32;
        for i in 0..self.blocks_per_chunk as u32 {
            self.push(first + i);
            // grow() pushes are bookkeeping, not frees.
            self.total_pushes.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// An RAII block handed out by [`BlockPool::allocate`]; returned to the free
/// list on drop. Move-only (no Clone): exactly one owner per block.
pub struct PoolBlock {
    inner: Arc<PoolInner>,
    index: u32,
    ptr: NonNull<u8>,
}

// SAFETY: the block is exclusively owned; the pool's storage is Send + Sync.
unsafe impl Send for PoolBlock {}
unsafe impl Sync for PoolBlock {}

impl PoolBlock {
    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.block_size
    }

    /// Stable index of this block within the pool (useful for tests).
    #[inline]
    pub fn index(&self) -> u32 {
        self.index
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr valid for block_size bytes while self lives.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.inner.block_size) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, plus &mut exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.inner.block_size) }
    }
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        self.inner.live_blocks.fetch_sub(1, Ordering::Relaxed);
        self.inner.push(self.index);
    }
}

impl std::fmt::Debug for PoolBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolBlock").field("index", &self.index).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn allocate_reuse_lifo() {
        let pool = BlockPool::new(64, PageArena::new());
        let a = pool.allocate();
        let ai = a.index();
        drop(a);
        let b = pool.allocate();
        // LIFO reuse: the just-freed block comes back first.
        assert_eq!(b.index(), ai);
        assert_eq!(pool.live_blocks(), 1);
    }

    #[test]
    fn block_size_rounded() {
        let pool = BlockPool::new(1, PageArena::new());
        assert_eq!(pool.block_size(), 16);
        let pool = BlockPool::new(17, PageArena::new());
        assert_eq!(pool.block_size(), 32);
    }

    #[test]
    fn distinct_live_blocks_never_alias() {
        let pool = BlockPool::new(48, PageArena::new());
        let blocks: Vec<_> = (0..500).map(|_| pool.allocate()).collect();
        let mut ptrs = HashSet::new();
        for b in &blocks {
            assert!(ptrs.insert(b.as_slice().as_ptr() as usize), "aliased block");
        }
        assert_eq!(pool.live_blocks(), 500);
        drop(blocks);
        assert_eq!(pool.live_blocks(), 0);
    }

    #[test]
    fn writes_are_contained() {
        let pool = BlockPool::new(32, PageArena::new());
        let mut a = pool.allocate();
        let mut b = pool.allocate();
        a.as_mut_slice().fill(0xAA);
        b.as_mut_slice().fill(0xBB);
        assert!(a.as_slice().iter().all(|&x| x == 0xAA));
        assert!(b.as_slice().iter().all(|&x| x == 0xBB));
    }

    #[test]
    fn pool_uses_arena_not_heap_for_blocks() {
        let arena = PageArena::new();
        let pool = BlockPool::new(128, arena.clone());
        let _b = pool.allocate();
        assert!(arena.live_bytes() > 0, "pool must draw from the arena");
    }

    #[test]
    fn concurrent_hammer_no_duplicate_handout() {
        // 8 threads allocate/free in a loop; at every instant each live index
        // is owned by exactly one thread. We verify by writing a thread tag
        // into the block and checking it is unchanged before free.
        let pool = BlockPool::new(64, PageArena::new());
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut held: Vec<PoolBlock> = Vec::new();
                    for i in 0..2000usize {
                        let mut b = pool.allocate();
                        b.as_mut_slice().fill(t);
                        held.push(b);
                        if i % 3 != 0 {
                            let b = held.swap_remove(i % held.len());
                            assert!(
                                b.as_slice().iter().all(|&x| x == t),
                                "block mutated by another thread"
                            );
                        }
                    }
                    for b in held {
                        assert!(b.as_slice().iter().all(|&x| x == t));
                    }
                });
            }
        });
        assert_eq!(pool.live_blocks(), 0);
    }

    #[test]
    fn capacity_grows_on_demand() {
        let pool = BlockPool::new(1024, PageArena::new());
        assert_eq!(pool.capacity_blocks(), 0);
        let per_chunk = {
            let _b = pool.allocate();
            pool.capacity_blocks()
        };
        assert!(per_chunk >= 8);
        let _blocks: Vec<_> = (0..per_chunk + 1).map(|_| pool.allocate()).collect();
        assert!(pool.capacity_blocks() >= per_chunk * 2);
    }
}
