//! Device-memory sub-allocator: a first-fit/best-fit free list.
//!
//! The paper's K20X has 6 GB and the GPU level database exists to fit the
//! AMR hierarchy into that budget; what it does *not* give you is a real
//! allocator under the budget — a bytes-only meter cannot refuse a request
//! that fits in total free bytes but not in any contiguous hole, cannot
//! detect a double-free, and cannot tell eviction policy which block to
//! give back. [`SubAllocator`] is that allocator: a coalescing free list
//! over a fixed capacity, in the style of GPU buffer sub-allocation
//! (`buffer_alloc`/`atlas_alloc` strategies), managing *offsets only* — the
//! backing bytes live wherever the caller keeps them (for the simulated
//! [`GpuDevice`](../../uintah_gpu/struct.GpuDevice.html), in host `Vec`s).
//!
//! It deliberately shares the house conventions of the §IV-B machinery:
//! the same split of cheap counters ([`SubAllocStats`], mirroring
//! [`AllocTracker`](crate::AllocTracker)'s live/peak/total discipline) from
//! structural state, and the same alignment-rounding front end as the
//! [`SizeClassAllocator`](crate::SizeClassAllocator) classes — callers pick
//! the granularity (`align = 1` keeps the meter bit-exact for tests;
//! 256 matches `cudaMalloc`). An optional two-ended size-class split
//! ([`SubAllocator::with_small_class`]) stacks small blocks top-down so
//! pinned level replicas cannot shred the contiguous bottom region that
//! large patch windows need — without it, a capacity only a few times the
//! largest request OOMs on fragmentation long before it runs out of bytes.
//!
//! Invariants (pinned by proptests in `tests/properties.rs`):
//! * live blocks are pairwise disjoint and inside `[0, capacity)`;
//! * the free list is offset-sorted, pairwise disjoint, and *coalesced*
//!   (no two adjacent free blocks);
//! * `used == Σ live block sizes` and `used + Σ free == capacity`;
//! * freeing an unknown offset never corrupts state (counted, rejected).

use std::collections::BTreeMap;

/// Which free block a request is carved from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FitPolicy {
    /// Lowest-offset block that fits (cheap, good enough when eviction
    /// keeps holes coarse).
    #[default]
    FirstFit,
    /// Smallest block that fits, ties to the lowest offset (slower scans,
    /// less fragmentation under mixed sizes).
    BestFit,
}

/// Why an allocation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubAllocError {
    /// Not enough free bytes in total — the request exceeds what eviction
    /// of everything could ever recover.
    Capacity {
        requested: u64,
        used: u64,
        capacity: u64,
    },
    /// Enough free bytes in total, but no contiguous hole fits: the
    /// fragmentation case a bytes-only meter cannot even express.
    Fragmentation {
        requested: u64,
        free_bytes: u64,
        largest_free: u64,
    },
}

impl std::fmt::Display for SubAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubAllocError::Capacity {
                requested,
                used,
                capacity,
            } => write!(f, "capacity: requested {requested} B with {used}/{capacity} B in use"),
            SubAllocError::Fragmentation {
                requested,
                free_bytes,
                largest_free,
            } => write!(
                f,
                "fragmentation: requested {requested} B, {free_bytes} B free but largest hole {largest_free} B"
            ),
        }
    }
}

impl std::error::Error for SubAllocError {}

/// Cheap allocator counters (monotonic; snapshot-friendly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubAllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Frees that merged the returned block with at least one neighbour.
    pub coalesces: u64,
    /// Requests refused for lack of total free bytes.
    pub capacity_failures: u64,
    /// Requests refused by fragmentation (free bytes sufficed, no hole).
    pub frag_failures: u64,
    /// Frees of an offset with no live block — double-frees and stray
    /// releases, rejected instead of corrupting the meter.
    pub unknown_frees: u64,
}

/// A coalescing free-list sub-allocator over `[0, capacity)`.
pub struct SubAllocator {
    capacity: u64,
    align: u64,
    policy: FitPolicy,
    /// Two-ended size-class split: requests of rounded size `<= small_class`
    /// take the *highest*-offset fitting hole and carve from its *tail*,
    /// so small long-lived blocks (level replicas, scalar outputs) cluster
    /// at the top of the arena instead of shredding the bottom region that
    /// large patch windows need contiguous. `0` disables the split.
    small_class: u64,
    /// `(offset, len)` free extents: offset-sorted, disjoint, coalesced.
    free: Vec<(u64, u64)>,
    /// Live blocks by offset → rounded size.
    live: BTreeMap<u64, u64>,
    used: u64,
    peak: u64,
    stats: SubAllocStats,
}

impl std::fmt::Debug for SubAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubAllocator")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("live_blocks", &self.live.len())
            .field("free_blocks", &self.free.len())
            .finish()
    }
}

impl SubAllocator {
    /// An empty allocator over `capacity` bytes, carving blocks rounded up
    /// to `align` under `policy`.
    pub fn new(capacity: u64, align: u64, policy: FitPolicy) -> Self {
        Self::with_small_class(capacity, align, policy, 0)
    }

    /// Like [`SubAllocator::new`], with two-ended size-class segregation:
    /// requests whose rounded size is `<= small_class` bytes allocate
    /// top-down (tail of the highest fitting hole), everything else
    /// bottom-up. Keeps small pinned blocks from fragmenting the
    /// contiguous runs that large patch windows need; `small_class = 0`
    /// disables the split.
    pub fn with_small_class(capacity: u64, align: u64, policy: FitPolicy, small_class: u64) -> Self {
        assert!(align >= 1, "alignment must be at least 1");
        let free = if capacity > 0 { vec![(0, capacity)] } else { Vec::new() };
        Self {
            capacity,
            align,
            policy,
            small_class,
            free,
            live: BTreeMap::new(),
            used: 0,
            peak: 0,
            stats: SubAllocStats::default(),
        }
    }

    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes in live blocks (rounded sizes).
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of `used`.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of extents on the free list (1 when fully coalesced+empty).
    #[inline]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Largest single free extent — the biggest request that can succeed.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }

    /// Number of live blocks.
    #[inline]
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    #[inline]
    pub fn stats(&self) -> SubAllocStats {
        self.stats
    }

    /// Request size after alignment rounding; `None` on arithmetic
    /// overflow (a request so large the rounding itself wraps).
    fn rounded(&self, bytes: u64) -> Option<u64> {
        let b = bytes.max(1);
        let rem = b % self.align;
        if rem == 0 {
            Some(b)
        } else {
            b.checked_add(self.align - rem)
        }
    }

    /// Allocate `bytes` (rounded up to the alignment); returns the block
    /// offset. Never wraps: oversized requests — including ones whose
    /// rounding would overflow `u64` — fail with [`SubAllocError::Capacity`].
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, SubAllocError> {
        let size = match self.rounded(bytes) {
            Some(s) if s <= self.capacity - self.used => s,
            _ => {
                self.stats.capacity_failures += 1;
                return Err(SubAllocError::Capacity {
                    requested: bytes,
                    used: self.used,
                    capacity: self.capacity,
                });
            }
        };
        let small = self.small_class > 0 && size <= self.small_class;
        let found = match (self.policy, small) {
            // Small class: highest-offset hole, so the carve (from the
            // tail below) stacks small blocks against the top of the arena.
            (FitPolicy::FirstFit, true) => self.free.iter().rposition(|&(_, len)| len >= size),
            (FitPolicy::FirstFit, false) => self.free.iter().position(|&(_, len)| len >= size),
            (FitPolicy::BestFit, small) => self
                .free
                .iter()
                .enumerate()
                .filter(|&(_, &(_, len))| len >= size)
                .min_by_key(|&(i, &(_, len))| (len, if small { usize::MAX - i } else { i }))
                .map(|(i, _)| i),
        };
        let Some(i) = found else {
            // Free bytes suffice (checked above) but no contiguous hole.
            self.stats.frag_failures += 1;
            return Err(SubAllocError::Fragmentation {
                requested: bytes,
                free_bytes: self.free_bytes(),
                largest_free: self.largest_free(),
            });
        };
        let (hole, len) = self.free[i];
        let offset = if small { hole + len - size } else { hole };
        if len == size {
            self.free.remove(i);
        } else if small {
            self.free[i] = (hole, len - size);
        } else {
            self.free[i] = (hole + size, len - size);
        }
        self.live.insert(offset, size);
        self.used += size;
        self.peak = self.peak.max(self.used);
        self.stats.allocs += 1;
        Ok(offset)
    }

    /// Free the block at `offset`, coalescing with adjacent free extents.
    /// Returns the rounded size given back, or `Err(())` — counted in
    /// [`SubAllocStats::unknown_frees`] — when no live block starts there
    /// (a double-free or stray release; state is untouched).
    #[allow(clippy::result_unit_err)]
    pub fn free(&mut self, offset: u64) -> Result<u64, ()> {
        let Some(size) = self.live.remove(&offset) else {
            self.stats.unknown_frees += 1;
            return Err(());
        };
        self.used -= size;
        self.stats.frees += 1;
        // Insertion point in the offset-sorted free list.
        let i = self.free.partition_point(|&(o, _)| o < offset);
        let merges_prev = i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == offset;
        let merges_next = i < self.free.len() && offset + size == self.free[i].0;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.free[i - 1].1 += size + self.free[i].1;
                self.free.remove(i);
                self.stats.coalesces += 1;
            }
            (true, false) => {
                self.free[i - 1].1 += size;
                self.stats.coalesces += 1;
            }
            (false, true) => {
                self.free[i] = (offset, size + self.free[i].1);
                self.stats.coalesces += 1;
            }
            (false, false) => self.free.insert(i, (offset, size)),
        }
        Ok(size)
    }

    /// One-line map of the arena — `live[offset+len]` / `free[offset+len]`
    /// extents in address order — for OOM diagnostics in gates and tests.
    pub fn dump(&self) -> String {
        let mut parts: Vec<(u64, u64, bool)> = self
            .live
            .iter()
            .map(|(&o, &l)| (o, l, true))
            .chain(self.free.iter().map(|&(o, l)| (o, l, false)))
            .collect();
        parts.sort_unstable();
        let body: Vec<String> = parts
            .iter()
            .map(|&(o, l, live)| format!("{}[{o}+{l}]", if live { "live" } else { "free" }))
            .collect();
        format!("used {}/{}: {}", self.used, self.capacity, body.join(" "))
    }

    /// Structural self-check of every free-list invariant; `Err` carries a
    /// human-readable description of the first violation. Cheap enough for
    /// tests and gate binaries, not meant for hot paths.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cursor = 0u64;
        let mut free_total = 0u64;
        for (i, &(o, len)) in self.free.iter().enumerate() {
            if len == 0 {
                return Err(format!("free[{i}] at {o} has zero length"));
            }
            if o < cursor {
                return Err(format!("free[{i}] at {o} overlaps or disorders previous end {cursor}"));
            }
            if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == o {
                return Err(format!("free[{i}] at {o} adjacent to previous — not coalesced"));
            }
            let end = o.checked_add(len).ok_or_else(|| format!("free[{i}] overflows"))?;
            if end > self.capacity {
                return Err(format!("free[{i}] [{o}, {end}) exceeds capacity {}", self.capacity));
            }
            cursor = end;
            free_total += len;
        }
        let mut live_total = 0u64;
        let mut prev_end = 0u64;
        for (&o, &len) in &self.live {
            if o < prev_end {
                return Err(format!("live block at {o} overlaps previous end {prev_end}"));
            }
            let end = o.checked_add(len).ok_or_else(|| format!("live block at {o} overflows"))?;
            if end > self.capacity {
                return Err(format!("live block [{o}, {end}) exceeds capacity {}", self.capacity));
            }
            // Disjoint from every free extent.
            if self.free.iter().any(|&(fo, flen)| o < fo + flen && fo < end) {
                return Err(format!("live block [{o}, {end}) intersects the free list"));
            }
            prev_end = end;
            live_total += len;
        }
        if live_total != self.used {
            return Err(format!("used {} != sum of live blocks {}", self.used, live_total));
        }
        if free_total + live_total != self.capacity {
            return Err(format!(
                "free {free_total} + live {live_total} != capacity {}",
                self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_coalesces_back_to_one_extent() {
        let mut a = SubAllocator::new(1024, 1, FitPolicy::FirstFit);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(200).unwrap();
        let z = a.alloc(300).unwrap();
        assert_eq!(a.used(), 600);
        assert_eq!(a.peak(), 600);
        a.check_invariants().unwrap();
        // Free out of order: middle, last, first — must coalesce fully.
        assert_eq!(a.free(y).unwrap(), 200);
        assert_eq!(a.free(z).unwrap(), 300);
        assert_eq!(a.free(x).unwrap(), 100);
        assert_eq!(a.used(), 0);
        assert_eq!(a.free_blocks(), 1);
        assert_eq!(a.largest_free(), 1024);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alignment_rounds_requests_up() {
        let mut a = SubAllocator::new(4096, 256, FitPolicy::FirstFit);
        a.alloc(1).unwrap();
        assert_eq!(a.used(), 256);
        a.alloc(257).unwrap();
        assert_eq!(a.used(), 256 + 512);
        a.check_invariants().unwrap();
    }

    #[test]
    fn oversized_and_overflowing_requests_fail_cleanly() {
        let mut a = SubAllocator::new(1000, 1, FitPolicy::FirstFit);
        a.alloc(600).unwrap();
        let err = a.alloc(500).unwrap_err();
        assert_eq!(
            err,
            SubAllocError::Capacity {
                requested: 500,
                used: 600,
                capacity: 1000
            }
        );
        // A request whose alignment rounding would overflow u64 must be a
        // clean capacity failure, not a wrap.
        let mut b = SubAllocator::new(1000, 256, FitPolicy::FirstFit);
        assert!(matches!(b.alloc(u64::MAX), Err(SubAllocError::Capacity { .. })));
        assert_eq!(b.stats().capacity_failures, 1);
        b.check_invariants().unwrap();
    }

    #[test]
    fn fragmentation_is_distinguished_from_capacity() {
        // Carve [A][B][C][D] then free A and C: 2×250 B free, but no
        // 400 B hole.
        let mut a = SubAllocator::new(1000, 1, FitPolicy::FirstFit);
        let blocks: Vec<u64> = (0..4).map(|_| a.alloc(250).unwrap()).collect();
        a.free(blocks[0]).unwrap();
        a.free(blocks[2]).unwrap();
        assert_eq!(a.free_bytes(), 500);
        let err = a.alloc(400).unwrap_err();
        assert_eq!(
            err,
            SubAllocError::Fragmentation {
                requested: 400,
                free_bytes: 500,
                largest_free: 250
            }
        );
        assert_eq!(a.stats().frag_failures, 1);
        // A fitting request still succeeds.
        a.alloc(250).unwrap();
        a.check_invariants().unwrap();
    }

    #[test]
    fn best_fit_picks_the_smallest_hole() {
        let mut a = SubAllocator::new(1000, 1, FitPolicy::BestFit);
        let x = a.alloc(100).unwrap(); // [0,100)
        let _y = a.alloc(300).unwrap(); // [100,400)
        let z = a.alloc(150).unwrap(); // [400,550)
        let _w = a.alloc(450).unwrap(); // [550,1000)
        a.free(x).unwrap(); // hole: 100 B at 0
        a.free(z).unwrap(); // hole: 150 B at 400
        // First fit would take the 100 B hole... which doesn't fit; a
        // 120 B request must land in the *smallest fitting* hole (150 B).
        let got = a.alloc(120).unwrap();
        assert_eq!(got, 400, "best fit lands in the 150 B hole");
        a.check_invariants().unwrap();
    }

    #[test]
    fn double_free_is_rejected_and_counted() {
        let mut a = SubAllocator::new(1000, 1, FitPolicy::FirstFit);
        let x = a.alloc(100).unwrap();
        a.free(x).unwrap();
        assert!(a.free(x).is_err(), "second free of the same offset");
        assert!(a.free(777).is_err(), "free of a never-allocated offset");
        assert_eq!(a.stats().unknown_frees, 2);
        assert_eq!(a.used(), 0, "meter untouched by rejected frees");
        a.check_invariants().unwrap();
    }

    #[test]
    fn zero_byte_requests_occupy_one_aligned_unit() {
        let mut a = SubAllocator::new(1000, 8, FitPolicy::FirstFit);
        let x = a.alloc(0).unwrap();
        assert_eq!(a.used(), 8);
        a.free(x).unwrap();
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn small_class_blocks_stack_top_down_and_spare_the_bottom() {
        // 64 KiB arena, 4 KiB small class. Interleave small (pinned-style)
        // and large allocations the way staging does; without segregation
        // the small blocks land between the large ones and freeing the
        // large ones leaves no contiguous run.
        let mut a = SubAllocator::with_small_class(1 << 16, 1, FitPolicy::FirstFit, 4096);
        let s1 = a.alloc(512).unwrap();
        let l1 = a.alloc(32768).unwrap();
        let s2 = a.alloc(4096).unwrap();
        let l2 = a.alloc(16384).unwrap();
        assert_eq!(s1, (1 << 16) - 512, "first small block hugs the top");
        assert_eq!(s2, s1 - 4096, "small blocks stack downward");
        assert_eq!(l1, 0, "large blocks fill bottom-up");
        assert_eq!(l2, 32768);
        a.check_invariants().unwrap();
        // Freeing the large blocks restores one contiguous bottom run big
        // enough for a fresh 48 KiB request even with both smalls pinned.
        a.free(l1).unwrap();
        a.free(l2).unwrap();
        assert!(a.largest_free() >= 32768 + 16384);
        let l3 = a.alloc(32768 + 16384).unwrap();
        assert_eq!(l3, 0);
        a.check_invariants().unwrap();
        // Tail-carve when the small block exactly drains a hole.
        let mut b = SubAllocator::with_small_class(4096, 1, FitPolicy::BestFit, 4096);
        let x = b.alloc(4096).unwrap();
        assert_eq!(x, 0);
        b.free(x).unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_churn_keeps_invariants() {
        let mut a = SubAllocator::new(1 << 16, 16, FitPolicy::FirstFit);
        let mut held: Vec<u64> = Vec::new();
        let mut seed = 0x2545_F491u64;
        for i in 0..2000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (seed >> 33) as usize;
            if held.len() > 24 || (!held.is_empty() && r.is_multiple_of(3)) {
                let off = held.swap_remove(r % held.len());
                a.free(off).unwrap();
            } else if let Ok(off) = a.alloc((r % 4000 + 1) as u64) {
                held.push(off);
            }
            if i % 128 == 0 {
                a.check_invariants().unwrap();
            }
        }
        for off in held {
            a.free(off).unwrap();
        }
        assert_eq!(a.used(), 0);
        assert_eq!(a.free_blocks(), 1);
        a.check_invariants().unwrap();
    }
}
