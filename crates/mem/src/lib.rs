//! Memory-management substrate: the paper's §IV-B infrastructure.
//!
//! Humphrey et al. found that Uintah's RMCRT benchmark, after the MPI-request
//! race was fixed, still died at scale from *heap fragmentation*: persistent
//! small allocations interleaved with transient large allocations (MPI
//! buffers, grid variables) made the heap grow without bound. Their fix:
//!
//! * a specialized allocator that takes **large transient** allocations off
//!   the heap entirely (`mmap`-backed in the paper; page-granular aligned
//!   allocations with full accounting here — see DESIGN.md §2 for the
//!   substitution rationale) — [`PageArena`];
//! * a **lock-free pool** on top of it for small transient objects that are
//!   frequently created and destroyed — [`BlockPool`] (tagged-pointer Treiber
//!   free list) and the size-class front end [`SizeClassAllocator`];
//! * allocation **tracking** between runs to identify patterns that do not
//!   scale — [`AllocTracker`].
//!
//! [`fragsim`] is a deterministic heap simulator used by the E5 ablation
//! bench to reproduce the fragmentation behaviour quantitatively: it replays
//! RMCRT-like allocation traces against first-fit/best-fit/size-class/
//! arena-segregated policies and reports heap growth and fragmentation.

pub mod arena;
pub mod fragsim;
pub mod pool;
pub mod recycle;
pub mod sizeclass;
pub mod suballoc;
pub mod tracker;

pub use arena::{PageAllocation, PageArena, PAGE_SIZE};
pub use pool::BlockPool;
pub use recycle::BufferRecycler;
pub use sizeclass::SizeClassAllocator;
pub use suballoc::{FitPolicy, SubAllocError, SubAllocStats, SubAllocator};
pub use tracker::{AllocCategory, AllocTracker, TrackerSnapshot};
