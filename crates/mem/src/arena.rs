//! Page-granular arena for large transient allocations.
//!
//! The paper's custom allocator "completely avoided the heap by implementing
//! a specialized allocator that uses mmap to allocate anonymous virtual
//! memory" for large allocations (MPI buffers, `GridVariable`s). We do not
//! take a `libc` dependency, so the arena requests page-aligned,
//! page-granular blocks straight from the global allocator — preserving the
//! design point (large transients segregated from the small-object heap,
//! returned eagerly, never split or coalesced with small allocations) and
//! the accounting the paper's trackers provide.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Granularity of arena allocations (matches the common 4 KiB system page).
pub const PAGE_SIZE: usize = 4096;

#[derive(Debug, Default)]
struct ArenaStats {
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    total_allocs: AtomicUsize,
    total_frees: AtomicUsize,
}

/// A thread-safe page-granular allocator for large transient buffers.
///
/// Cheaply cloneable (shared stats). All allocations are rounded up to whole
/// pages and aligned to [`PAGE_SIZE`].
///
/// ```
/// use uintah_mem::{PageArena, PAGE_SIZE};
///
/// let arena = PageArena::new();
/// let buf = arena.allocate(100);            // rounded to one page
/// assert_eq!(buf.capacity(), PAGE_SIZE);
/// assert_eq!(arena.live_bytes(), PAGE_SIZE);
/// drop(buf);                                // pages returned eagerly
/// assert_eq!(arena.live_bytes(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageArena {
    stats: Arc<ArenaStats>,
}

impl PageArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate at least `size` bytes (zeroed). Panics on zero size or OOM,
    /// matching the fail-fast behaviour appropriate for MPI buffers.
    pub fn allocate(&self, size: usize) -> PageAllocation {
        assert!(size > 0, "zero-size arena allocation");
        let pages = size.div_ceil(PAGE_SIZE);
        let bytes = pages * PAGE_SIZE;
        let layout = Layout::from_size_align(bytes, PAGE_SIZE).expect("bad layout");
        // SAFETY: layout has non-zero size and valid power-of-two alignment.
        let ptr = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(ptr).expect("arena allocation failed (OOM)");
        let live = self.stats.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.stats.peak_bytes.fetch_max(live, Ordering::Relaxed);
        self.stats.total_allocs.fetch_add(1, Ordering::Relaxed);
        PageAllocation {
            ptr,
            bytes,
            stats: Arc::clone(&self.stats),
        }
    }

    /// Bytes currently held by live allocations from this arena.
    pub fn live_bytes(&self) -> usize {
        self.stats.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes.
    pub fn peak_bytes(&self) -> usize {
        self.stats.peak_bytes.load(Ordering::Relaxed)
    }

    /// Number of allocations performed.
    pub fn total_allocs(&self) -> usize {
        self.stats.total_allocs.load(Ordering::Relaxed)
    }

    /// Number of allocations released.
    pub fn total_frees(&self) -> usize {
        self.stats.total_frees.load(Ordering::Relaxed)
    }
}

/// An RAII page-granular allocation. Freed (returned eagerly) on drop.
pub struct PageAllocation {
    ptr: NonNull<u8>,
    bytes: usize,
    stats: Arc<ArenaStats>,
}

// SAFETY: the allocation is uniquely owned; the raw pointer is only
// dereferenced through &self/&mut self.
unsafe impl Send for PageAllocation {}
unsafe impl Sync for PageAllocation {}

impl PageAllocation {
    /// Usable capacity in bytes (whole pages, >= requested size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.bytes
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr is valid for `bytes` bytes for the life of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.bytes) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, and &mut self guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.bytes) }
    }

    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }
}

impl Drop for PageAllocation {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.bytes, PAGE_SIZE).expect("bad layout");
        // SAFETY: ptr was allocated with exactly this layout in `allocate`.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
        self.stats.live_bytes.fetch_sub(self.bytes, Ordering::Relaxed);
        self.stats.total_frees.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for PageAllocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageAllocation")
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_pages_and_aligns() {
        let arena = PageArena::new();
        let a = arena.allocate(1);
        assert_eq!(a.capacity(), PAGE_SIZE);
        assert_eq!(a.as_ptr() as usize % PAGE_SIZE, 0);
        let b = arena.allocate(PAGE_SIZE + 1);
        assert_eq!(b.capacity(), 2 * PAGE_SIZE);
    }

    #[test]
    fn accounting_tracks_live_and_peak() {
        let arena = PageArena::new();
        let a = arena.allocate(PAGE_SIZE);
        let b = arena.allocate(3 * PAGE_SIZE);
        assert_eq!(arena.live_bytes(), 4 * PAGE_SIZE);
        drop(a);
        assert_eq!(arena.live_bytes(), 3 * PAGE_SIZE);
        assert_eq!(arena.peak_bytes(), 4 * PAGE_SIZE);
        drop(b);
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.total_allocs(), 2);
        assert_eq!(arena.total_frees(), 2);
    }

    #[test]
    fn memory_is_zeroed_and_writable() {
        let arena = PageArena::new();
        let mut a = arena.allocate(100);
        assert!(a.as_slice().iter().all(|&b| b == 0));
        a.as_mut_slice()[99] = 0xAB;
        assert_eq!(a.as_slice()[99], 0xAB);
    }

    #[test]
    fn concurrent_allocation() {
        let arena = PageArena::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let arena = arena.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 1..50 {
                        held.push(arena.allocate(i * 97));
                        if i % 3 == 0 {
                            held.pop();
                        }
                    }
                });
            }
        });
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.total_allocs(), arena.total_frees());
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_rejected() {
        PageArena::new().allocate(0);
    }
}
