//! §IV-A quantified: how the request-store race becomes an at-scale OOM.
//!
//! "Other threads may have allocated buffers which were never released,
//! resulting in a severe memory leak … causing the application to quickly
//! fail at large-scale due to out of memory errors. … Though this scenario
//! was present in other simulations, it was only evident at large scale,
//! and only significant within our RMCRT radiation model due to the high
//! volume and size of MPI messages."
//!
//! This harness (1) *measures* the double-allocation rate of the real racy
//! store under concurrent load on this host, and (2) projects it onto the
//! Titan problem's per-rank message volume and sizes to estimate timesteps
//! until a 32 GB node is exhausted — reproducing why the bug was invisible
//! in small runs and fatal in big ones.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin leak_model
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use titan_sim::rank_census;
use uintah::comm::{RacyRequestVec, RequestStore};
use uintah::prelude::*;

/// Drive the racy store once and return (messages, leaked buffers).
fn measure_leak(nthreads: usize, nmsgs: usize) -> (usize, u64) {
    let store = Arc::new(RacyRequestVec::new());
    let world = CommWorld::new(2);
    let tx = world.communicator(0);
    let rx = world.communicator(1);
    for i in 0..nmsgs {
        store.add(rx.irecv(0, Tag(i as u64)));
    }
    let processed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..nthreads {
            let store = store.clone();
            let processed = processed.clone();
            s.spawn(move || {
                while processed.load(Ordering::Relaxed) < nmsgs {
                    let n = store.process_completed(&mut |_m| {});
                    if n == 0 {
                        std::thread::yield_now();
                    } else {
                        processed.fetch_add(n, Ordering::Relaxed);
                    }
                }
            });
        }
        s.spawn(move || {
            for i in 0..nmsgs {
                tx.isend(1, Tag(i as u64), bytes::Bytes::from_static(&[0u8; 64]));
            }
        });
    });
    (nmsgs, store.leaked())
}

fn main() {
    println!("§IV-A leak model — racy Testsome loop under MPI_THREAD_MULTIPLE\n");

    // ---- measured double-allocation rate --------------------------------
    println!("[measured on this host: real RacyRequestVec]");
    println!("{:>9} {:>9} | {:>9} {:>12}", "threads", "messages", "leaked", "leak rate");
    let mut worst_rate: f64 = 0.0;
    for &threads in &[2usize, 4, 8, 16] {
        let (msgs, leaked) = measure_leak(threads, 4000);
        let rate = leaked as f64 / msgs as f64;
        worst_rate = worst_rate.max(rate);
        println!("{:>9} {:>9} | {:>9} {:>11.2}%", threads, msgs, leaked, rate * 100.0);
    }
    // A conservative contended-node rate for the projection (Titan's 16
    // threads on 16 real cores contend harder than this host can).
    let projected_rate = worst_rate.max(0.005);

    // ---- projection onto the Titan problem ------------------------------
    // The §IV-B problem: 512³+128³, 8³ patches; per-rank receive counts and
    // window sizes from the real census. Buffer size = mean level window.
    let grid = Grid::builder()
        .fine_cells(IntVector::splat(512))
        .num_levels(2)
        .refinement_ratio(4)
        .fine_patch_size(IntVector::splat(8))
        .build();
    let node_ram: f64 = 32e9; // Titan: 32 GB per node
    // Leaked buffers are persistent allocations interleaved with the
    // timestep's transients — exactly the §IV-B mixture, so each leaked
    // byte pins a multiple of itself in heap fragmentation. Use the E5
    // harness's measured FirstFit waste factor as the amplification.
    let frag_amplification = 30.0;
    println!(
        "\n[projection: leak rate {:.2}% of received messages, {frag_amplification}x \
         fragmentation amplification (E5), 32 GB node]",
        projected_rate * 100.0
    );
    println!(
        "{:>7} | {:>11} {:>14} {:>17}",
        "#Nodes", "msgs/step", "pinned/step", "steps to OOM"
    );
    for &nodes in &[64usize, 512, 4096, 16384] {
        let dist = PatchDistribution::new(&grid, nodes, DistributionPolicy::MortonSfc);
        let census = rank_census(&grid, &dist, 0, 4);
        let msgs = census.level_msgs_recv + census.ghost_msgs_sent;
        let mean_bytes = if census.level_msgs_recv > 0 {
            census.bytes_recv() as f64 / census.level_msgs_recv as f64
        } else {
            4096.0
        };
        let pinned_per_step = msgs as f64 * projected_rate * mean_bytes * frag_amplification;
        let steps = node_ram / pinned_per_step;
        println!(
            "{:>7} | {:>11} {:>11.2} MB {:>17.0}",
            nodes,
            msgs,
            pinned_per_step / 1e6,
            steps
        );
    }
    println!("\nThe per-rank message volume of the radiation all-to-all is ~constant in");
    println!("node count, so every rank leaks at the same pace; large allocations are");
    println!("also at their tightest there (the paper ran \"at the edge of the nodal");
    println!("memory footprint\"), so only the big runs hit the OOM — matching the");
    println!("\"only evident at large scale\" experience. The wait-free pool's");
    println!("claim-before-test protocol makes the rate exactly zero (see the");
    println!("`waitfree_store_never_overallocates` test), and the §IV-B arena removes");
    println!("the fragmentation amplification independently.");
}
