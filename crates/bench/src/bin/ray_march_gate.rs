//! Packet-vs-scalar ray-march regression gate (run by verify.sh).
//!
//! Two workloads, both solved by the frozen pre-packet scalar marcher
//! (`rmcrt_bench::scalar_march`) and by the live SoA packet engine
//! (`rmcrt_core::packet` behind `solve_region`):
//!
//! * **16³ Burns & Christon at a fixed 100 rays/cell** — the bit-identity
//!   workload. Fixed mode is a refactor, not a re-model, so the packet
//!   divQ must match the scalar divQ bit for bit, and the engine must
//!   clear a modest overhead-elimination floor (`MIN_FIXED_SPEEDUP`).
//!   The shared costs the contract pins (identical RNG draws, DDA setup
//!   divisions, one `exp` per cell step) bound what fixed mode can gain.
//! * **16³ optically-thick enclosure (κ = 8, hot walls)** — the adaptive
//!   workload. Smooth, thick cells have low per-ray variance, so the
//!   variance-driven ray budget converges near its floor and the packet
//!   path must beat the scalar fixed-budget solve by `MIN_ADAPTIVE_SPEEDUP`
//!   while reproducing the region-mean divQ within `MAX_ADAPTIVE_MEAN_REL`
//!   on measurably fewer rays.
//!
//! On top of those absolute checks, packet throughput (cells/s) must stay
//! within `REGRESSION_TOLERANCE` of the checked-in `BENCH_ray_march.json`.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin ray_march_gate            # check
//! cargo run -p rmcrt-bench --release --bin ray_march_gate -- --update # regen
//! ```

use rmcrt_bench::{median_time, scalar_march, secs};
use rmcrt_core::props::{LevelProps, WALL_CELL};
use rmcrt_core::solver::{RayCountMode, RmcrtParams};
use rmcrt_core::trace::TraceLevel;
use rmcrt_core::{solve_region, solve_region_with_stats, BurnsChriston};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use uintah::prelude::ExecSpace;
use uintah_grid::{Region, Vector};

/// Fixed-mode floor: overhead elimination alone, under the bit-identity
/// contract (measured ~1.4x on this workload; floor leaves noise room).
const MIN_FIXED_SPEEDUP: f64 = 1.2;
/// Packet-path requirement: the adaptive budget on the optically-thick
/// workload must at least double scalar fixed-budget throughput.
const MIN_ADAPTIVE_SPEEDUP: f64 = 2.0;
/// Adaptive region-mean divQ must stay within 1% of the fixed reference.
const MAX_ADAPTIVE_MEAN_REL: f64 = 0.01;
/// "Measurably fewer rays": adaptive must spend at most this fraction of
/// the fixed budget (measured ~0.42 on the thick workload).
const MAX_ADAPTIVE_RAY_FRACTION: f64 = 0.75;
/// Allowed shortfall vs the checked-in packet throughput (wall-clock noise
/// on shared CI hosts is well under this).
const REGRESSION_TOLERANCE: f64 = 0.10;

const N: i32 = 16;
const NRAYS: u32 = 100;
const REPS: usize = 5;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Minimal extraction of `"throughput_per_sec": <x>` for a benchmark id
/// from the checked-in report (same hand-rolled style as the rest of the
/// dependency-free bench JSON).
fn throughput_for(text: &str, id: &str) -> Option<f64> {
    let at = text.find(&format!("\"id\": \"{id}\""))?;
    let rest = &text[at..];
    let key = "\"throughput_per_sec\":";
    let tail = rest[rest.find(key)? + key.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn checksum(v: &[f64]) -> u64 {
    v.iter().fold(0u64, |acc, x| acc.wrapping_add(x.to_bits()))
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

/// Hot-walled, optically thick enclosure: uniform κ = 8 medium (τ ≈ 0.5
/// per cell) inside a one-cell emissive wall shell. The smooth interior is
/// where ARC-style adaptive ray budgets pay off.
fn thick_enclosure(n: i32) -> LevelProps {
    let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 8.0, 0.9);
    let e = props.region.extent();
    for c in props.region.cells() {
        if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
            props.cell_type[c] = WALL_CELL;
            props.abskg[c] = 0.8;
            props.sigma_t4_over_pi[c] = 1.7;
        }
    }
    props
}

struct Measured {
    scalar_ms: f64,
    packet_ms: f64,
    scalar_cps: f64,
    packet_cps: f64,
}

/// Time one workload with both engines (median of `REPS`); `packet`
/// closures let the caller pick fixed or adaptive mode for the live side.
fn time_pair(
    scalar: impl Fn() -> uintah_grid::CcVariable<f64>,
    packet: impl Fn() -> uintah_grid::CcVariable<f64>,
    cells: f64,
) -> Measured {
    let scalar_t = median_time(REPS, || {
        let t = Instant::now();
        std::hint::black_box(scalar());
        t.elapsed()
    });
    let packet_t = median_time(REPS, || {
        let t = Instant::now();
        std::hint::black_box(packet());
        t.elapsed()
    });
    Measured {
        scalar_ms: secs(scalar_t) * 1e3,
        packet_ms: secs(packet_t) * 1e3,
        scalar_cps: cells / secs(scalar_t),
        packet_cps: cells / secs(packet_t),
    }
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let report_path = repo_root().join("BENCH_ray_march.json");
    let mut violations = Vec::new();

    // --- Workload 1: Burns & Christon, fixed mode (bit-identity). -------
    let problem = BurnsChriston::default();
    let grid = BurnsChriston::small_grid(N, 16);
    let bc_props = problem.props_for_level(grid.fine_level());
    let bc_stack = [TraceLevel {
        props: &bc_props,
        roi: bc_props.region,
    }];
    let bc_region = bc_props.region;
    let bc_params = RmcrtParams {
        nrays: NRAYS,
        threshold: 1e-5,
        ..Default::default()
    };
    let cells = bc_region.volume() as f64;

    let scalar_div_q = scalar_march::solve_region_scalar(&bc_stack, bc_region, &bc_params);
    let packet_div_q = solve_region(&bc_stack, bc_region, &bc_params);
    if checksum(scalar_div_q.as_slice()) != checksum(packet_div_q.as_slice()) {
        violations.push("B&C: packet divQ is not bit-identical to the scalar baseline".to_string());
    }

    let fixed = time_pair(
        || scalar_march::solve_region_scalar(&bc_stack, bc_region, &bc_params),
        || solve_region(&bc_stack, bc_region, &bc_params),
        cells,
    );
    let fixed_speedup = fixed.scalar_ms / fixed.packet_ms;
    println!(
        "16^3 B&C fixed {NRAYS} rays/cell:   scalar {:.1} ms | packet {:.1} ms | speedup {fixed_speedup:.2}x (bit-identical)",
        fixed.scalar_ms, fixed.packet_ms
    );

    // --- Workload 2: thick enclosure, adaptive packet path. -------------
    let th_props = thick_enclosure(N);
    let th_stack = [TraceLevel {
        props: &th_props,
        roi: th_props.region,
    }];
    let th_region = th_props.region;
    let th_fixed = RmcrtParams {
        nrays: NRAYS,
        threshold: 0.05,
        ..Default::default()
    };
    let th_adaptive = RmcrtParams {
        ray_count: Some(RayCountMode::Adaptive {
            min: 16,
            max: NRAYS,
            rel_var_target: 0.05,
        }),
        ..th_fixed
    };

    let th_scalar = scalar_march::solve_region_scalar(&th_stack, th_region, &th_fixed);
    let th_packet_fixed = solve_region(&th_stack, th_region, &th_fixed);
    if checksum(th_scalar.as_slice()) != checksum(th_packet_fixed.as_slice()) {
        violations.push("thick: packet divQ is not bit-identical to the scalar baseline".to_string());
    }
    let (th_out, th_stats) =
        solve_region_with_stats(&th_stack, th_region, &th_adaptive, &ExecSpace::Serial);
    let rays_per_cell = th_stats.total_rays as f64 / th_stats.cells as f64;
    let mean_rel = ((mean(th_out.as_slice()) - mean(th_scalar.as_slice())) / mean(th_scalar.as_slice())).abs();
    if mean_rel > MAX_ADAPTIVE_MEAN_REL {
        violations.push(format!(
            "thick: adaptive region-mean divQ differs from the fixed reference by {:.2}% (limit {:.0}%)",
            mean_rel * 100.0,
            MAX_ADAPTIVE_MEAN_REL * 100.0
        ));
    }
    if rays_per_cell > NRAYS as f64 * MAX_ADAPTIVE_RAY_FRACTION {
        violations.push(format!(
            "thick: adaptive spent {rays_per_cell:.1} rays/cell, not measurably fewer than the fixed {NRAYS}"
        ));
    }

    let adaptive = time_pair(
        || scalar_march::solve_region_scalar(&th_stack, th_region, &th_fixed),
        || solve_region_with_stats(&th_stack, th_region, &th_adaptive, &ExecSpace::Serial).0,
        cells,
    );
    let adaptive_speedup = adaptive.scalar_ms / adaptive.packet_ms;
    println!(
        "16^3 thick adaptive 16..{NRAYS}@0.05: scalar {:.1} ms | packet {:.1} ms | speedup {adaptive_speedup:.2}x ({rays_per_cell:.1} rays/cell, mean divQ rel {:.3}%)",
        adaptive.scalar_ms,
        adaptive.packet_ms,
        mean_rel * 100.0
    );

    if update {
        let json = format!(
            "{{\n  \"group\": \"ray_march\",\n  \"note\": \"Serial full-region solves, 16^3, median of {REPS}; throughput is cells/s. scalar_* = frozen pre-packet per-ray DDA (crates/bench/src/scalar_march.rs). packet_16cube_100rays is bit-identical to its scalar twin (fixed mode, B&C, 100 rays/cell, threshold 1e-5): the speedup is pure engine-overhead elimination under the pinned-FP contract. packet_16cube_thick_adaptive is the packet path on the optically-thick enclosure (kappa=8, hot walls, threshold 0.05) with adaptive ray counts 16..100 at rel_var_target 0.05 vs the 100-rays/cell scalar baseline; it must stay >= {MIN_ADAPTIVE_SPEEDUP}x scalar with region-mean divQ within {:.0}%. Gate: bit-identity on both workloads, fixed >= {MIN_FIXED_SPEEDUP}x, adaptive >= {MIN_ADAPTIVE_SPEEDUP}x, packet entries within {REGRESSION_TOLERANCE} of this file.\",\n  \"benchmarks\": [\n    {{ \"id\": \"scalar_16cube_100rays\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1} }},\n    {{ \"id\": \"packet_16cube_100rays\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1} }},\n    {{ \"id\": \"scalar_16cube_thick_100rays\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1} }},\n    {{ \"id\": \"packet_16cube_thick_adaptive\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1}, \"rays_per_cell\": {rays_per_cell:.1} }}\n  ]\n}}\n",
            MAX_ADAPTIVE_MEAN_REL * 100.0,
            fixed.scalar_ms * 1e6,
            fixed.scalar_cps,
            fixed.packet_ms * 1e6,
            fixed.packet_cps,
            adaptive.scalar_ms * 1e6,
            adaptive.scalar_cps,
            adaptive.packet_ms * 1e6,
            adaptive.packet_cps,
        );
        std::fs::write(&report_path, json).expect("write BENCH_ray_march.json");
        println!("wrote {}", report_path.display());
        return ExitCode::SUCCESS;
    }

    if fixed_speedup < MIN_FIXED_SPEEDUP {
        violations.push(format!(
            "B&C: packet fixed-mode speedup {fixed_speedup:.2}x is below the {MIN_FIXED_SPEEDUP}x floor"
        ));
    }
    if adaptive_speedup < MIN_ADAPTIVE_SPEEDUP {
        violations.push(format!(
            "thick: adaptive packet-path speedup {adaptive_speedup:.2}x is below the required {MIN_ADAPTIVE_SPEEDUP}x"
        ));
    }
    match std::fs::read_to_string(&report_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", report_path.display())),
        Ok(text) => {
            for (id, measured) in [
                ("packet_16cube_100rays", fixed.packet_cps),
                ("packet_16cube_thick_adaptive", adaptive.packet_cps),
            ] {
                match throughput_for(&text, id) {
                    None => violations.push(format!("BENCH_ray_march.json has no {id} entry")),
                    Some(baseline) => {
                        if measured < baseline * (1.0 - REGRESSION_TOLERANCE) {
                            violations.push(format!(
                                "{id} throughput {measured:.0} cells/s regressed more than {:.0}% below the checked-in {baseline:.0} cells/s",
                                REGRESSION_TOLERANCE * 100.0
                            ));
                        }
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        println!(
            "ray_march gate PASS (fixed >= {MIN_FIXED_SPEEDUP}x, adaptive >= {MIN_ADAPTIVE_SPEEDUP}x, tolerance {REGRESSION_TOLERANCE})"
        );
        ExitCode::SUCCESS
    } else {
        println!("ray_march gate FAIL:");
        for v in &violations {
            println!("  - {v}");
        }
        println!("(if the change is intentional, regenerate with: cargo run -p rmcrt-bench --release --bin ray_march_gate -- --update)");
        ExitCode::FAILURE
    }
}
