//! E1 — Figure 1 / Table I: local communication time before vs after the
//! infrastructure improvements (mutex-vector + Testsome vs wait-free pool).
//!
//! The paper measures the time 16 worker threads per node spend posting and
//! processing MPI messages for the 2-level 512³+128³ problem with 8³
//! patches (262k patches) on 512 – 16,384 Titan nodes, before/after the
//! request-store redesign: speedups of 2.3–4.4×, with the absolute time
//! falling as node counts rise (each rank owns fewer patches, so it posts
//! fewer per-patch dependencies).
//!
//! Two reproductions are printed:
//!
//! 1. **Modeled** (16-thread Titan node): per-patch posting work from the
//!    real census, with the mutex design serializing the lock-held share of
//!    every operation (`MUTEX_LOCK_FRACTION` in `titan-sim`) and the
//!    wait-free pool scaling across all threads. This reproduces both the
//!    decreasing trend and the paper's speedup band.
//! 2. **Measured on this host**: the *actual* `MutexRequestVec` vs
//!    `WaitFreeRequestStore` implementations driven with the same relative
//!    loads. NOTE: on a single-core machine lock *contention* largely
//!    vanishes, so the measured gap collapses (or inverts); on multi-core
//!    hosts the wait-free store wins (see `cargo bench request_store` and
//!    EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin fig1_table1
//! ```

use rmcrt_bench::{drive_store, median_time, secs};
use std::sync::Arc;
use titan_sim::rank_census;
use uintah::comm::{MutexRequestVec, WaitFreeRequestStore};
use uintah::prelude::*;

const THREADS: usize = 16;
/// Lock-held fraction of per-message work in the mutex design (matches
/// `titan-sim`'s calibration).
const LOCK_FRACTION: f64 = 0.15;
/// Modeled per-message CPU cost (posting or processing), seconds.
const MSG_COST: f64 = 2.0e-6;

fn main() {
    // The §IV-B problem: 512³ fine + 128³ coarse, 8³ patches.
    let grid = Grid::builder()
        .fine_cells(IntVector::splat(512))
        .num_levels(2)
        .refinement_ratio(4)
        .fine_patch_size(IntVector::splat(8))
        .build();
    println!(
        "Table I / Fig. 1 reproduction — 2-level problem, {:.2}M cells, {} patches\n",
        grid.num_cells() as f64 / 1e6,
        grid.num_patches()
    );

    let nodes = [512usize, 1024, 2048, 4096, 8192, 16384];
    let paper_before = [6.25, 2.68, 1.26, 0.89, 0.79, 0.73];
    let paper_after = [1.42, 1.18, 0.54, 0.36, 0.30, 0.23];
    let paper_speedup = [4.40, 2.27, 2.33, 2.47, 2.63, 3.17];

    // ---- modeled table ---------------------------------------------------
    println!("[modeled 16-thread Titan node]");
    println!(
        "{:>7} | {:>11} {:>11} {:>8} | {:>8} {:>8} {:>8}",
        "#Nodes", "before(s)", "after(s)", "speedup", "paper-B", "paper-A", "paper-X"
    );
    // Per-rank local-comm operations at each node count: per-patch
    // dependencies (posting + packing, dominant at low node counts: each
    // patch has a fixed set of ghost + restriction dependencies) plus the
    // rank-consolidated all-to-all floor (messages aggregated per peer
    // rank, receives unpacked from packed buffers).
    let mut loads = Vec::new();
    for &n in &nodes {
        let dist = PatchDistribution::new(&grid, n, DistributionPolicy::MortonSfc);
        let census = rank_census(&grid, &dist, 0, 4);
        const DEPS_PER_PATCH: usize = 84; // 26 neighbours + own windows, x3 vars
        let per_patch_ops = DEPS_PER_PATCH * census.local_fine_patches;
        let floor_ops = (n - 1) / 16 + census.level_msgs_recv / 512;
        loads.push(per_patch_ops + floor_ops);
    }
    let mutex_factor = LOCK_FRACTION + (1.0 - LOCK_FRACTION) / THREADS as f64;
    // Normalize the model to the paper's 512-node "before" point; the
    // *shape* (trend + speedup band) is the reproduction target, not
    // absolute Gemini-era seconds.
    let scale = paper_before[0] / (loads[0] as f64 * MSG_COST * mutex_factor);
    for (i, &n) in nodes.iter().enumerate() {
        let work = loads[i] as f64 * MSG_COST;
        let after = work * scale / THREADS as f64;
        let before = work * scale * mutex_factor;
        println!(
            "{:>7} | {:>11.2} {:>11.2} {:>7.2}x | {:>8.2} {:>8.2} {:>7.2}x",
            n,
            before,
            after,
            before / after,
            paper_before[i],
            paper_after[i],
            paper_speedup[i]
        );
    }

    // ---- measured table ----------------------------------------------------
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n[measured on this host: {cores} core(s), real request stores, loads / 64]");
    println!(
        "{:>7} | {:>9} {:>11} {:>11} {:>8}",
        "#Nodes", "msgs", "mutex(s)", "waitfree(s)", "ratio"
    );
    for (i, &n) in nodes.iter().enumerate() {
        let load = (loads[i] / 64).max(THREADS);
        let before = median_time(3, || {
            drive_store(Arc::new(MutexRequestVec::new()), THREADS, load)
        });
        let after = median_time(3, || {
            drive_store(Arc::new(WaitFreeRequestStore::new()), THREADS, load)
        });
        println!(
            "{:>7} | {:>9} {:>11.4} {:>11.4} {:>7.2}x",
            n,
            load,
            secs(before),
            secs(after),
            secs(before) / secs(after).max(1e-12)
        );
    }
    println!("\nShape targets: monotone-decreasing time with node count; mutex > wait-free");
    println!("with a 2.3–4.4x gap on contended (multi-core) hardware. The measured table");
    println!("reflects whatever parallelism this host actually has.");

    // ---- scheduler timestep breakdown -------------------------------------
    // Per-step ExecStats from a real multi-rank run under the persistent
    // executor: graph compile is paid once (step 0), later steps reuse the
    // cached graph, and idle workers park on the work signal instead of
    // spinning (idle time + park counts below).
    println!("\n[per-timestep scheduler stats: 2 ranks x 4 threads, persistent executor, GPU trace]");
    let small = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(16))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 2,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 1,
        problem: BurnsChriston::default(),
    };
    let result = run_world(
        Arc::clone(&small),
        Arc::new(single_level_decls(&small, pipeline, true)),
        WorldConfig {
            nranks: 2,
            nthreads: 4,
            timesteps: 4,
            gpu_capacity: Some(1 << 30),
            ..Default::default()
        },
    );
    for (ts, s) in result.ranks[0].stats.iter().enumerate() {
        println!("-- rank 0, timestep {ts} --");
        print!("{}", s.summary());
    }
    let totals = result.ranks[0].gpu.as_ref().unwrap().device().counters();
    println!(
        "rank 0 device totals: {} kernels | H2D {} B | D2H {} B | peak {} B",
        totals.kernels, totals.h2d_bytes, totals.d2h_bytes, totals.peak
    );
    println!("graph compile should be non-zero only at timestep 0 (cached thereafter).");
}
