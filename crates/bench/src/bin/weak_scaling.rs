//! §V communication-growth study: why the paper reports *strong* scaling
//! only.
//!
//! "Weak scaling results are not shown here due to the nature of the growth
//! in communication for this problem, specifically that radiation or any
//! globally coupled algorithm grows quadratically as O(N²) (N is the number
//! of communicating MPI ranks) with respect to the problem size."
//!
//! This harness measures exactly that, from the real census: holding work
//! per rank constant (weak scaling), total all-to-all message count grows
//! ~N², while the strong-scaled problem's total grows ~N.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin weak_scaling
//! ```

use titan_sim::rank_census;
use uintah::prelude::*;

fn census_totals(fine: i32, patch: i32, nranks: usize) -> (usize, u64) {
    let grid = Grid::builder()
        .fine_cells(IntVector::splat(fine))
        .num_levels(2)
        .refinement_ratio(4)
        .fine_patch_size(IntVector::splat(patch))
        .build();
    let dist = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
    // Sum over a sample of ranks, scaled (the distribution is balanced).
    let sample: Vec<usize> = (0..nranks).step_by((nranks / 8).max(1)).collect();
    let mut msgs = 0usize;
    let mut bytes = 0u64;
    for &r in &sample {
        let c = rank_census(&grid, &dist, r, 4);
        msgs += c.msgs_sent();
        bytes += c.bytes_sent();
    }
    let scale = nranks as f64 / sample.len() as f64;
    ((msgs as f64 * scale) as usize, (bytes as f64 * scale) as u64)
}

fn main() {
    println!("Communication growth: weak vs strong scaling (2-level RMCRT, RR 4, 16³ patches)\n");
    println!("WEAK scaling — constant 16 patches (64³ cells) per rank:");
    println!(
        "{:>7} {:>10} | {:>14} {:>12} | {:>10}",
        "ranks", "fine mesh", "total msgs", "msgs × 1/N²", "GB moved"
    );
    // fine³/16³ patches per rank fixed at 16 -> fine = 16·(16·N)^(1/3) …
    // use rank counts that give integer grids: N = 4^k with fine = 64·2^k.
    for k in 0..4 {
        let nranks = 4usize.pow(k);
        let fine = 64 * 2i32.pow(k); // patches = (fine/16)³ = 64·8^k; per rank = 64·2^k
        let (msgs, bytes) = census_totals(fine, 16, nranks);
        println!(
            "{:>7} {:>9}³ | {:>14} {:>12.1} | {:>10.3}",
            nranks,
            fine,
            msgs,
            msgs as f64 / (nranks * nranks) as f64,
            bytes as f64 / 1e9
        );
    }
    println!("\n(msgs/N² approaching a constant ⇒ quadratic growth in rank count — the");
    println!(" reason the paper evaluates strong scaling, where the CCMSC goal is a fixed");
    println!(" boiler problem on more of the machine.)\n");

    println!("STRONG scaling — fixed 256³ problem:");
    println!(
        "{:>7} | {:>14} {:>12} | {:>10}",
        "ranks", "total msgs", "msgs × 1/N", "GB moved"
    );
    for &nranks in &[4usize, 16, 64, 256] {
        let (msgs, bytes) = census_totals(256, 16, nranks);
        println!(
            "{:>7} | {:>14} {:>12.1} | {:>10.3}",
            nranks,
            msgs,
            msgs as f64 / nranks as f64,
            bytes as f64 / 1e9
        );
    }
    println!("\n(strong scaling's total message count grows ~linearly: each rank's sends");
    println!(" stay bounded because its patch count shrinks as ranks grow.)");
}
