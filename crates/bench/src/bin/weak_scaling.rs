//! §V communication-growth study: why the paper reports *strong* scaling
//! only.
//!
//! "Weak scaling results are not shown here due to the nature of the growth
//! in communication for this problem, specifically that radiation or any
//! globally coupled algorithm grows quadratically as O(N²) (N is the number
//! of communicating MPI ranks) with respect to the problem size."
//!
//! This harness measures exactly that, from the real census (shared sweep
//! helpers in `rmcrt_bench::campaign`): holding work per rank constant
//! (weak scaling), total all-to-all message count grows ~N², while the
//! strong-scaled problem's total grows ~N.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin weak_scaling
//! ```

use rmcrt_bench::campaign;

fn main() {
    println!("Communication growth: weak vs strong scaling (2-level RMCRT, RR 4, 16³ patches)\n");
    println!("WEAK scaling — constant 16 patches (64³ cells) per rank:");
    println!(
        "{:>7} {:>10} | {:>14} {:>12} | {:>10}",
        "ranks", "fine mesh", "total msgs", "msgs × 1/N²", "GB moved"
    );
    for row in campaign::comm_growth_weak(4) {
        println!(
            "{:>7} {:>9}³ | {:>14} {:>12.1} | {:>10.3}",
            row.nranks,
            row.fine,
            row.msgs,
            row.msgs as f64 / (row.nranks * row.nranks) as f64,
            row.bytes as f64 / 1e9
        );
    }
    println!("\n(msgs/N² approaching a constant ⇒ quadratic growth in rank count — the");
    println!(" reason the paper evaluates strong scaling, where the CCMSC goal is a fixed");
    println!(" boiler problem on more of the machine.)\n");

    println!("STRONG scaling — fixed 256³ problem:");
    println!(
        "{:>7} | {:>14} {:>12} | {:>10}",
        "ranks", "total msgs", "msgs × 1/N", "GB moved"
    );
    for row in campaign::comm_growth_strong(256, &[4, 16, 64, 256]) {
        println!(
            "{:>7} | {:>14} {:>12.1} | {:>10.3}",
            row.nranks,
            row.msgs,
            row.msgs as f64 / row.nranks as f64,
            row.bytes as f64 / 1e9
        );
    }
    println!("\n(strong scaling's total message count grows ~linearly: each rank's sends");
    println!(" stay bounded because its patch count shrinks as ranks grow.)");
}
