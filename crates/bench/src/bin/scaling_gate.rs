//! E12 — the scaling-campaign regression gate (run by verify.sh).
//!
//! Calibrates from a real executor run, sweeps the LARGE 16³-patch curve
//! (the curve the paper quotes its Eq.-3 headline efficiencies on) over
//! 16 → 16384 GPUs, and checks:
//!
//! * hard floors from the paper's shape: efficiency(16→2048) ≥ 0.90 and
//!   no scaling knee at or before 8192 GPUs;
//! * no drift beyond `GATE_TOLERANCE` against the checked-in
//!   `BENCH_scaling.json`;
//! * the checked-in `CALIBRATION.snapshot` still parses and re-serializes
//!   bit-identically.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin scaling_gate            # check
//! cargo run -p rmcrt-bench --release --bin scaling_gate -- --update # regen
//! ```
//!
//! `--update` regenerates both files (full campaign: Fig. 2, Fig. 3,
//! Summit projection, gate curve) from a fresh calibration; commit the
//! result when the model or runtime intentionally changes.

use rmcrt_bench::campaign::{
    self, CampaignReport, GateNumbers, SweepSpec, GATE_TOLERANCE, KNEE_THRESHOLD,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use uintah_runtime::CalibrationSnapshot;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let report_path = repo_root().join("BENCH_scaling.json");
    let snapshot_path = repo_root().join("CALIBRATION.snapshot");

    let cal = campaign::calibrate_live();
    println!("{}", cal.summary());

    let gate_sweep = campaign::strong_scaling(
        &SweepSpec::gate_large(),
        &cal.titan,
        "titan",
        &cal.profile,
    );
    let fresh = GateNumbers::from_sweep(&gate_sweep);
    println!(
        "LARGE 16³: eff(16→2048) {:.3} | eff(4096→8192) {:.3} | eff(4096→16384) {:.3} | knee {}",
        fresh.eff_16_to_2048,
        fresh.eff_4096_to_8192,
        fresh.eff_4096_to_16384,
        if fresh.knee == 0 {
            "beyond 16384".to_string()
        } else {
            format!("{} GPUs", fresh.knee)
        }
    );

    if update {
        let sweeps = vec![
            campaign::strong_scaling(&SweepSpec::fig2_medium(), &cal.titan, "titan", &cal.profile),
            campaign::strong_scaling(&SweepSpec::fig3_large(), &cal.titan, "titan", &cal.profile),
            campaign::strong_scaling(&SweepSpec::summit_large(), &cal.summit, "summit", &cal.profile),
            gate_sweep,
        ];
        let report = CampaignReport { sweeps, gate: fresh };
        std::fs::write(&report_path, report.to_json()).expect("write BENCH_scaling.json");
        std::fs::write(&snapshot_path, cal.snapshot.to_text()).expect("write CALIBRATION.snapshot");
        println!("wrote {} and {}", report_path.display(), snapshot_path.display());
        return ExitCode::SUCCESS;
    }

    // Checked-in snapshot must still parse and round-trip bit-exactly.
    let mut violations = Vec::new();
    match std::fs::read_to_string(&snapshot_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", snapshot_path.display())),
        Ok(text) => match CalibrationSnapshot::from_text(&text) {
            Err(e) => violations.push(format!("CALIBRATION.snapshot no longer parses: {e}")),
            Ok(snap) => {
                if snap.to_text() != text {
                    violations.push("CALIBRATION.snapshot round trip is not bit-exact".into());
                }
            }
        },
    }
    match std::fs::read_to_string(&report_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", report_path.display())),
        Ok(text) => match campaign::gate_from_json(&text) {
            Err(e) => violations.push(format!("BENCH_scaling.json no longer parses: {e}")),
            Ok(checked_in) => violations.extend(campaign::gate_violations(&fresh, &checked_in)),
        },
    }

    if violations.is_empty() {
        println!(
            "scaling gate PASS (tolerance {GATE_TOLERANCE}, knee threshold {KNEE_THRESHOLD})"
        );
        ExitCode::SUCCESS
    } else {
        println!("scaling gate FAIL:");
        for v in &violations {
            println!("  - {v}");
        }
        println!("(if the change is intentional, regenerate with: cargo run -p rmcrt-bench --release --bin scaling_gate -- --update)");
        ExitCode::FAILURE
    }
}
