//! E5 — §IV-B ablation: heap fragmentation under the RMCRT allocation
//! pattern, across allocator policies.
//!
//! Replays a deterministic trace of the paper's pattern — persistent small
//! allocations mixed with transient large MPI buffers / grid variables,
//! some surviving a few timesteps — against four placement policies and
//! reports footprint and fragmentation.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin frag_ablation
//! ```

use uintah::mem::fragsim::{replay, rmcrt_trace, Policy};

fn main() {
    println!("Heap-fragmentation ablation — RMCRT-like allocation trace");
    println!("(per timestep: 8 persistent smalls, 1 persistent mid, 16 transient larges,");
    println!(" every 5th large survives 3 steps — the old-DW retention pattern)\n");

    for steps in [10usize, 30, 60, 120] {
        let ops = rmcrt_trace(steps, 8, 16, 42);
        println!("after {steps} timesteps:");
        println!(
            "  {:<16} {:>14} {:>14} {:>12} {:>7}",
            "policy", "footprint", "live bytes", "waste", "frag"
        );
        for policy in [
            Policy::FirstFit,
            Policy::BestFit,
            Policy::SizeClass,
            Policy::ArenaSegregated,
        ] {
            let r = replay(policy, &ops);
            println!(
                "  {:<16} {:>12} B {:>12} B {:>10.1}x {:>6.1}%",
                format!("{policy:?}"),
                r.final_footprint,
                r.live_bytes,
                r.final_footprint as f64 / r.live_bytes.max(1) as f64,
                r.fragmentation * 100.0
            );
        }
        println!();
    }
    println!("Shape targets (paper §IV-B): the plain heap and size-class policies retain");
    println!("a footprint that grows with run length and dwarfs live bytes (the 'leak');");
    println!("segregating large transients into the page arena holds footprint ≈ live.");
}
