//! E3 — Figure 3: strong scaling of the LARGE 2-level benchmark
//! (fine 512³, coarse 128³, RR 4, 100 rays/cell), patch sizes 16³/32³/64³,
//! with the paper's headline efficiency figures.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin fig3_large
//! ```

use titan_sim::sim::{efficiency, scaling_curve};
use uintah::prelude::*;

fn main() {
    let counts: Vec<usize> = vec![512, 1024, 2048, 4096, 8192, 16384];
    let params = MachineParams::titan();
    println!("Figure 3 — LARGE 2-level benchmark (512³ fine / 128³ coarse, RR:4, 100 rays/cell)");
    println!("modeled Titan XK7; times are model estimates (shape target)\n");
    println!("{:>7} | {:>10} {:>10} {:>10}", "GPUs", "16³ (s)", "32³ (s)", "64³ (s)");

    let mut curves = Vec::new();
    for patch in [16i32, 32, 64] {
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build();
        curves.push(scaling_curve(&grid, &counts, 4, &params, StoreModel::WaitFreePool));
    }
    for (i, &n) in counts.iter().enumerate() {
        println!(
            "{:>7} | {:>10.4} {:>10.4} {:>10.4}",
            n, curves[0][i].time, curves[1][i].time, curves[2][i].time
        );
    }

    println!("\nStrong-scaling efficiency (Eq. 3), 16³-patch curve:");
    let find = |curve: &[titan_sim::ScalingPoint], gpus: usize| {
        curve.iter().find(|p| p.gpus == gpus).copied().unwrap()
    };
    let p4k = find(&curves[0], 4096);
    let p8k = find(&curves[0], 8192);
    let p16k = find(&curves[0], 16384);
    println!(
        "  4096 → 8192 GPUs : {:>5.1}%   (paper: 96%)",
        efficiency(&p4k, &p8k) * 100.0
    );
    println!(
        "  4096 → 16384 GPUs: {:>5.1}%   (paper: 89%)",
        efficiency(&p4k, &p16k) * 100.0
    );

    println!("\nBreakdown at 16384 GPUs (16³ patches):");
    println!(
        "  props {:.4}s | all-to-all comm {:.4}s | GPU pipeline {:.4}s",
        p16k.breakdown.props, p16k.breakdown.comm, p16k.breakdown.compute
    );
}
