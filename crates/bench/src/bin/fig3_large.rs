//! E3 — Figure 3: strong scaling of the LARGE 2-level benchmark
//! (fine 512³, coarse 128³, RR 4, 100 rays/cell), patch sizes 16³/32³/64³,
//! with the paper's headline efficiency figures — calibrated from a real
//! executor run at startup (see `rmcrt_bench::campaign`).
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin fig3_large
//! ```

use rmcrt_bench::campaign::{self, SweepSpec, KNEE_THRESHOLD};

fn main() {
    let cal = campaign::calibrate_live();
    let spec = SweepSpec::fig3_large();
    println!("Figure 3 — LARGE 2-level benchmark (512³ fine / 128³ coarse, RR:4, 100 rays/cell)");
    println!("modeled Titan XK7; times are model estimates (shape target)");
    println!("{}\n", cal.summary());

    let sweep = campaign::strong_scaling(&spec, &cal.titan, "titan", &cal.profile);
    campaign::print_sweep(&sweep, KNEE_THRESHOLD);

    let c16 = &sweep.curves[0];
    println!("\nStrong-scaling efficiency (Eq. 3), 16³-patch curve:");
    println!(
        "  4096 → 8192 GPUs : {:>5.1}%   (paper: 96%)",
        c16.efficiency_between(4096, 8192).unwrap() * 100.0
    );
    println!(
        "  4096 → 16384 GPUs: {:>5.1}%   (paper: 89%)",
        c16.efficiency_between(4096, 16384).unwrap() * 100.0
    );

    let p16k = c16.point_at(16384).unwrap();
    println!("\nBreakdown at 16384 GPUs (16³ patches):");
    println!(
        "  props {:.4}s | all-to-all comm {:.4}s | GPU pipeline {:.4}s",
        p16k.breakdown.props, p16k.breakdown.comm, p16k.breakdown.compute
    );
}
