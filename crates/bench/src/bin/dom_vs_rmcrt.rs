//! E7 — RMCRT vs discrete ordinates (the paper's §I/§III-A motivation):
//! accuracy agreement, cost structure and DOM's false scattering.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin dom_vs_rmcrt
//! ```

use std::time::Instant;
use uintah::prelude::*;
use uintah::rmcrt::dom::{beam_spread_dom, solve as dom_solve, SnOrder};

fn main() {
    let n = 16;
    let grid = BurnsChriston::small_grid(n, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];

    // --- accuracy + cost on the benchmark --------------------------------
    println!("Burns & Christon {n}³ — DOM S_N vs RMCRT\n");
    let mid = n / 2;
    let params = RmcrtParams {
        nrays: 512,
        threshold: 1e-5,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mc_mid = div_q_for_cell(&stack, IntVector::splat(mid), &params);
    let mc_time = t0.elapsed().as_secs_f64() * (n as f64).powi(3); // per full solve
    println!(
        "{:>6} | {:>12} {:>12} {:>14} {:>10}",
        "method", "divQ(center)", "vs RMCRT", "cell-updates", "time (s)"
    );
    println!(
        "{:>6} | {:>12.5} {:>12} {:>14} {:>10.2}",
        "RMCRT",
        mc_mid,
        "—",
        (n as u64).pow(3) * params.nrays as u64,
        mc_time
    );
    for order in [SnOrder::S2, SnOrder::S4, SnOrder::S6, SnOrder::S8] {
        let t0 = Instant::now();
        let sol = dom_solve(&props, order);
        let dt = t0.elapsed().as_secs_f64();
        let d = sol.div_q[IntVector::splat(mid)];
        println!(
            "{:>6} | {:>12.5} {:>11.2}% {:>14} {:>10.2}",
            format!("{order:?}"),
            d,
            (d - mc_mid) / mc_mid * 100.0,
            sol.cell_ordinate_updates,
            dt
        );
    }

    // --- false scattering -------------------------------------------------
    println!("\nFalse scattering (collimated beam through a transparent 18³ box):");
    println!("fraction of exit-face energy OUTSIDE the geometric beam footprint");
    for order in [SnOrder::S2, SnOrder::S4, SnOrder::S6, SnOrder::S8] {
        println!("  DOM {order:?}: {:>5.1}%", beam_spread_dom(18, order) * 100.0);
    }
    println!("  RMCRT  :   0.0%  (rays travel in exact straight lines — no ray widening)");
    println!("\nDOM's smearing is the paper's 'false scattering' — reducible only by");
    println!("finer meshes or more ordinates, both at greater computational cost (§III-A).");
}
