//! Device-memory oversubscription gate (run by verify.sh).
//!
//! The paper's K20X has 6 GB, and the device sub-allocator + LRU
//! eviction/host-spill path exists so a problem that does not fit per
//! device still runs — slower, but bit-identically. This gate proves that
//! end to end on the full runtime (2 ranks, 2 worker threads, the
//! multi-level Burns & Christon pipeline, a regrid raced mid-run):
//!
//! 1. **Reference run** per fleet width (1 and 6 devices/rank) with an
//!    effectively unlimited capacity: records the divQ checksum, the wall
//!    time, and the true per-device memory peak `P` (and must see zero
//!    evictions).
//! 2. **Oversubscribed run** with per-device capacity `P/2` — the problem
//!    is 2× larger than device memory. Floors:
//!    * the run **completes** (no OOM-driven panic);
//!    * divQ is **bit-identical** to the reference (eviction must be
//!      invisible to physics);
//!    * evictions actually happened (the run exercised the path);
//!    * wall-time slowdown ≤ `MAX_SLOWDOWN`;
//!    * **zero meter drift**: per-device `used` equals the bytes resident
//!      in the warehouse databases, the free-list invariants hold, no
//!      release underflows, no stranded host spill, and clearing the DBs
//!      returns every device to exactly 0 bytes.
//!
//! `BENCH_oversub.json` records the measured walls/slowdowns/eviction
//! counts for bookkeeping; regenerate after intentional changes with:
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin oversub_gate -- --update
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use uintah::prelude::*;
use uintah::runtime::{TaskDecl, WorldResult};

/// Oversubscribed wall / reference wall ceiling. The spill round-trips are
/// KiB-scale clones on this problem; measured slowdown is well under 2×,
/// the floor leaves room for shared-CI noise.
const MAX_SLOWDOWN: f64 = 8.0;
/// Oversubscription factor: capacity = peak / OVERSUB (2 = "a problem 2×
/// larger than device memory").
const OVERSUB: u64 = 2;
const TIMESTEPS: usize = 4;
/// Regrid every 2 steps → an ownership flip races the eviction machinery
/// mid-run.
const REGRID_INTERVAL: usize = 2;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(
    grid: &Arc<Grid>,
    decls: &Arc<Vec<TaskDecl>>,
    devices: usize,
    capacity: usize,
) -> (WorldResult, f64) {
    let t0 = Instant::now();
    let result = run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: TIMESTEPS,
            gpu_capacity: Some(capacity),
            gpus_per_rank: devices,
            regrid_interval: Some(REGRID_INTERVAL),
            ..Default::default()
        },
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (result, wall_ms)
}

/// Order-independent bit-exact fingerprint of the fine-level divQ field
/// across all ranks.
fn divq_checksum(grid: &Grid, result: &WorldResult) -> u64 {
    let mut acc = 0u64;
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ computed");
            for &x in v.as_f64().as_slice() {
                acc = acc.wrapping_add(x.to_bits());
            }
        }
    }
    acc
}

/// Fleet-wide totals: (max per-device peak, evictions, spilled bytes,
/// re-uploaded bytes, release underflows).
fn fleet_totals(result: &WorldResult) -> (u64, u64, u64, u64, u64) {
    let (mut peak, mut ev, mut sp, mut ru, mut uf) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for rr in &result.ranks {
        for c in rr.gpu.as_ref().expect("gpu attached").counters_per_device() {
            peak = peak.max(c.peak);
            ev += c.evictions;
            sp += c.spilled_bytes;
            ru += c.reuploads_bytes;
            uf += c.release_underflows;
        }
    }
    (peak, ev, sp, ru, uf)
}

/// The zero-drift contract at exit: every device's meter agrees with the
/// warehouse databases, the allocator free list is coherent, nothing is
/// stranded in the spill maps, and clearing the DBs drains every byte.
fn check_meter_drift(result: &WorldResult, label: &str, violations: &mut Vec<String>) {
    for rr in &result.ranks {
        let g = rr.gpu.as_ref().expect("gpu attached");
        for d in 0..g.num_devices() {
            let dev = g.device_at(d);
            if let Err(e) = dev.validate_allocator() {
                violations.push(format!("{label}: rank {} device {d}: {e}", rr.rank));
            }
            let used = dev.counters().used;
            let resident = g.resident_bytes_on(d) as u64;
            if used != resident {
                violations.push(format!(
                    "{label}: rank {} device {d}: meter used {used} B != DB-resident {resident} B",
                    rr.rank
                ));
            }
        }
        if g.spill_entries() != 0 {
            violations.push(format!(
                "{label}: rank {}: {} variables stranded in host spill at exit",
                rr.rank,
                g.spill_entries()
            ));
        }
        g.clear_patch_db();
        g.clear_level_db();
        for d in 0..g.num_devices() {
            let left = g.device_at(d).used();
            if left != 0 {
                violations.push(format!(
                    "{label}: rank {} device {d}: {left} B leaked after clearing the DBs",
                    rr.rank
                ));
            }
        }
    }
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let report_path = repo_root().join("BENCH_oversub.json");
    let mut violations = Vec::new();

    // LARGE-style problem: 2 levels at RR 4, 32³ fine mesh in 8³ patches
    // (64 fine patches over 2 ranks), full RMCRT pipeline on the devices.
    let grid = Arc::new(BurnsChriston::small_grid(32, 8));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 4,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));

    // Warmup: first-run memcpys pay allocator/page-fault costs that would
    // otherwise inflate the reference wall.
    run(&grid, &decls, 1, 6 << 30);

    let mut rows = Vec::new();
    let mut ref_checksums = Vec::new();
    for devices in [1usize, 6] {
        // --- Reference: capacity far above the problem. -----------------
        let (ref_result, ref_ms) = run(&grid, &decls, devices, 6 << 30);
        let ref_sum = divq_checksum(&grid, &ref_result);
        let (peak, ref_ev, _, _, ref_uf) = fleet_totals(&ref_result);
        if ref_ev != 0 {
            violations.push(format!("{devices}-dev reference evicted ({ref_ev}) — not a reference"));
        }
        if ref_uf != 0 {
            violations.push(format!("{devices}-dev reference counted {ref_uf} release underflows"));
        }
        check_meter_drift(&ref_result, &format!("{devices}-dev reference"), &mut violations);
        ref_checksums.push(ref_sum);

        // --- Oversubscribed: half the measured peak per device. ---------
        let capacity = (peak / OVERSUB) as usize;
        let (ov_result, ov_ms) = run(&grid, &decls, devices, capacity);
        let ov_sum = divq_checksum(&grid, &ov_result);
        let (ov_peak, ov_ev, ov_spilled, ov_reup, ov_uf) = fleet_totals(&ov_result);
        let slowdown = ov_ms / ref_ms;
        println!(
            "{devices}-dev: ref {ref_ms:.1} ms (peak {peak} B) | oversub@{capacity} B {ov_ms:.1} ms \
             ({ov_ev} evictions, {ov_spilled} B spilled, {ov_reup} B re-uploaded) | slowdown {slowdown:.2}x"
        );
        if ov_sum != ref_sum {
            violations.push(format!(
                "{devices}-dev: oversubscribed divQ checksum {ov_sum:#x} != reference {ref_sum:#x} — eviction leaked into physics"
            ));
        }
        if ov_ev == 0 {
            violations.push(format!(
                "{devices}-dev: {OVERSUB}x oversubscription produced zero evictions — the gate exercised nothing"
            ));
        }
        if ov_peak > capacity as u64 {
            violations.push(format!(
                "{devices}-dev: peak {ov_peak} B exceeded the {capacity} B capacity meter"
            ));
        }
        if ov_uf != 0 {
            violations.push(format!("{devices}-dev: {ov_uf} release underflows under oversubscription"));
        }
        if slowdown > MAX_SLOWDOWN {
            violations.push(format!(
                "{devices}-dev: slowdown {slowdown:.2}x exceeds the {MAX_SLOWDOWN}x bound"
            ));
        }
        check_meter_drift(&ov_result, &format!("{devices}-dev oversub"), &mut violations);
        rows.push((devices, ref_ms, capacity, ov_ms, slowdown, ov_ev, ov_spilled, ov_reup));
    }
    if ref_checksums[0] != ref_checksums[1] {
        violations.push("reference divQ differs between 1- and 6-device fleets".to_string());
    }

    if update {
        let mut body = String::new();
        for (i, (devices, ref_ms, capacity, ov_ms, slowdown, ev, sp, ru)) in rows.iter().enumerate() {
            if i > 0 {
                body.push_str(",\n");
            }
            body.push_str(&format!(
                "    {{ \"id\": \"oversub_{devices}dev\", \"ref_wall_ms\": {ref_ms:.1}, \"capacity_bytes\": {capacity}, \"oversub_wall_ms\": {ov_ms:.1}, \"slowdown\": {slowdown:.2}, \"evictions\": {ev}, \"spilled_bytes\": {sp}, \"reuploaded_bytes\": {ru} }}"
            ));
        }
        let json = format!(
            "{{\n  \"group\": \"oversub\",\n  \"note\": \"Device-memory oversubscription gate: 2-level 32^3 B&C through the full runtime (2 ranks x 2 threads, {TIMESTEPS} steps, regrid every {REGRID_INTERVAL}), per-device capacity = measured reference peak / {OVERSUB}. Floors checked live (not against this file): run completes, divQ bit-identical to the non-evicting reference, evictions > 0, slowdown <= {MAX_SLOWDOWN}x, zero meter drift at exit (used == DB-resident, allocator invariants hold, no underflows, no stranded spill, clearing DBs reaches 0 B). This file records measured values for bookkeeping.\",\n  \"benchmarks\": [\n{body}\n  ]\n}}\n"
        );
        std::fs::write(&report_path, json).expect("write BENCH_oversub.json");
        println!("wrote {}", report_path.display());
        return ExitCode::SUCCESS;
    }

    match std::fs::read_to_string(&report_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", report_path.display())),
        Ok(text) => {
            for devices in [1usize, 6] {
                if !text.contains(&format!("\"id\": \"oversub_{devices}dev\"")) {
                    violations.push(format!("BENCH_oversub.json has no oversub_{devices}dev entry"));
                }
            }
        }
    }

    if violations.is_empty() {
        println!(
            "oversub gate PASS ({OVERSUB}x oversubscribed, bit-identical divQ, slowdown <= {MAX_SLOWDOWN}x, zero meter drift)"
        );
        ExitCode::SUCCESS
    } else {
        println!("oversub gate FAIL:");
        for v in &violations {
            println!("  - {v}");
        }
        println!("(if the change is intentional, regenerate with: cargo run -p rmcrt-bench --release --bin oversub_gate -- --update)");
        ExitCode::FAILURE
    }
}
