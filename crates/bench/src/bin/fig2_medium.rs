//! E2 — Figure 2: strong scaling of the MEDIUM 2-level benchmark
//! (fine 256³, coarse 64³, RR 4, 100 rays/cell) for patch sizes
//! 16³ / 32³ / 64³ on the modeled Titan, calibrated from a real executor
//! run at startup (see `rmcrt_bench::campaign`).
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin fig2_medium
//! ```

use rmcrt_bench::campaign::{self, SweepSpec, KNEE_THRESHOLD};

fn main() {
    let cal = campaign::calibrate_live();
    let spec = SweepSpec::fig2_medium();
    println!("Figure 2 — MEDIUM 2-level benchmark (256³ fine / 64³ coarse, RR:4, 100 rays/cell)");
    println!("modeled Titan XK7, 1 K20X per node; times are model estimates (shape target)");
    println!("{}\n", cal.summary());

    let sweep = campaign::strong_scaling(&spec, &cal.titan, "titan", &cal.profile);
    campaign::print_sweep(&sweep, KNEE_THRESHOLD);

    let total16 = spec.problem.total_patches(16);
    println!("\nExpected shape (paper Fig. 2): larger patches faster at every point where");
    println!("they still over-decompose the domain; all curves scale until patches/GPU ~ 1");
    println!("(16³ curve: {total16} patches total).");
}
