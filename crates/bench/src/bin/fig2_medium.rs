//! E2 — Figure 2: strong scaling of the MEDIUM 2-level benchmark
//! (fine 256³, coarse 64³, RR 4, 100 rays/cell) for patch sizes
//! 16³ / 32³ / 64³ on the modeled Titan.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin fig2_medium
//! ```

use titan_sim::sim::scaling_curve;
use uintah::prelude::*;

fn main() {
    let counts: Vec<usize> = vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];
    let params = MachineParams::titan();
    println!("Figure 2 — MEDIUM 2-level benchmark (256³ fine / 64³ coarse, RR:4, 100 rays/cell)");
    println!("modeled Titan XK7, 1 K20X per node; times are model estimates (shape target)\n");
    println!(
        "{:>7} | {:>10} {:>10} {:>10} | patches/GPU (16³)",
        "GPUs", "16³ (s)", "32³ (s)", "64³ (s)"
    );

    let mut curves = Vec::new();
    for patch in [16i32, 32, 64] {
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(256))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build();
        curves.push(scaling_curve(&grid, &counts, 4, &params, StoreModel::WaitFreePool));
    }
    let total16 = (256 / 16) * (256 / 16) * (256 / 16);
    for (i, &n) in counts.iter().enumerate() {
        println!(
            "{:>7} | {:>10.4} {:>10.4} {:>10.4} | {:>6.1}",
            n,
            curves[0][i].time,
            curves[1][i].time,
            curves[2][i].time,
            total16 as f64 / n as f64
        );
    }
    println!("\nExpected shape (paper Fig. 2): larger patches faster at every point where");
    println!("they still over-decompose the domain; all curves scale until patches/GPU ~ 1.");
    for (patch, curve) in [16, 32, 64].iter().zip(&curves) {
        let knee = curve
            .windows(2)
            .find(|w| w[1].time > w[0].time * 0.55)
            .map(|w| w[1].gpus);
        println!(
            "  {patch:>2}³ patches: scaling knee (efficiency < ~90%/doubling) near {} GPUs",
            knee.map(|k| k.to_string()).unwrap_or_else(|| "beyond 16384".into())
        );
    }
}
