//! GPU vs CPU node comparison (the "GPU speedup" the Fig. 2/3 captions
//! refer to, and the context of the paper's predecessor [5], which scaled
//! the CPU implementation to 256K cores).
//!
//! One Titan node = 16 Opteron cores + 1 K20X. The GPU wins once patches
//! are big enough to fill it; tiny patches leave it starved (launch +
//! PCIe overheads), which is why the paper sweeps patch sizes.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin gpu_vs_cpu
//! ```

use titan_sim::sim::{simulate_timestep, simulate_timestep_cpu};
use uintah::prelude::*;

fn main() {
    let params = MachineParams::titan();
    println!("MEDIUM benchmark (256³/64³, RR 4, 100 rays/cell), modeled Titan node:");
    println!("16 Opteron cores (CPU mode, cell-parallel) vs 1 K20X (GPU pipeline)\n");
    println!(
        "{:>6} {:>7} | {:>10} {:>10} {:>9}",
        "patch", "GPUs", "CPU (s)", "GPU (s)", "speedup"
    );
    for patch in [16i32, 32, 64] {
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(256))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build();
        for &n in &[64usize, 256, 1024] {
            if grid.fine_level().num_patches() < n {
                continue;
            }
            let cpu = simulate_timestep_cpu(&grid, n, 4, &params, StoreModel::WaitFreePool);
            let gpu = simulate_timestep(&grid, n, 4, &params, StoreModel::WaitFreePool);
            println!(
                "{:>5}³ {:>7} | {:>10.3} {:>10.3} {:>8.2}x",
                patch,
                n,
                cpu.time,
                gpu.time,
                cpu.time / gpu.time
            );
        }
    }
    println!("\nShape targets: speedup grows with patch size (paper §V point 1: larger");
    println!("patches provide more work per GPU and yield a more significant speedup);");
    println!("tiny (16³) patches underfill the K20X so the 16-core CPU node can win —\nthe 'GPUs starved for work' regime of ref. [6] that patch tuning escapes.");
}
