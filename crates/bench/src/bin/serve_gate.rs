//! Multi-tenant radiation-server gate (run by verify.sh).
//!
//! The serving PR's claim is that a long-running `uintah-serve` process
//! amortizes the cold per-job costs — executor-slot construction, task
//! graph compilation, cold H2D staging — across tenants, so a stream of
//! jobs completes much faster than the pre-server workflow of building a
//! fresh single-tenant world per job. This gate proves the claim end to
//! end and pins the safety properties that make the sharing admissible:
//!
//! 1. **Throughput floor**: a mixed 4-tenant stream (CPU and GPU configs
//!    interleaved) on a warm server completes at ≥ [`min_speedup`]× the
//!    completion rate of the same four jobs submitted serially, each to a
//!    cold single-tenant server (the one-world-per-job baseline). The
//!    floor is [`MIN_SPEEDUP_AT_4_CORES`] (3×) on the intended ≥ 4-core
//!    hosts, where concurrency and amortization stack; on a narrower host
//!    the concurrency share is physically bounded by the core count, so
//!    the floor scales as `0.75 × min(tenants, cores)` — never below 1×,
//!    because the amortization share alone (slot reuse + shared compiled
//!    graphs) must still put the warm stream ahead of cold-serial even on
//!    one core.
//! 2. **Bit-identity**: every tenant's divQ matches a standalone
//!    `run_world` of its own config bit for bit.
//! 3. **Shared-graph hit**: a tenant forced onto a fresh slot (its
//!    shape's only warm slot is occupied by a concurrent tenant) adopts
//!    its compiled graphs from the server's shared cache — ≥ 1 shared
//!    hit, zero compiles.
//! 4. **Admission under oversubscription**: on a deliberately tiny fleet
//!    a second GPU tenant queues (`queued_for_capacity`, `failed == 0`)
//!    instead of OOM-ing, and a job larger than the whole fleet is
//!    refused with the typed `TooLarge` error.
//! 5. **Zero meter drift**: after drain + shutdown every server's fleet
//!    reads exactly 0 bytes, no device counted a release underflow, and
//!    the sub-allocator invariants hold.
//!
//! `BENCH_serve.json` records the measured walls and sharing counters for
//! bookkeeping; regenerate after intentional changes with:
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin serve_gate -- --update
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah::config::RunConfig;
use uintah::prelude::*;
use uintah_grid::CcVariable;
use uintah_serve::{JobOutcome, RadiationServer, ServeConfig, SubmitError};

/// Warm-stream over cold-serial completion-rate floor on hosts with at
/// least one core per tenant, where 4 tenants run truly concurrently.
const MIN_SPEEDUP_AT_4_CORES: f64 = 3.0;
const TENANTS: usize = 4;

/// The floor this host must clear: 0.75 × the ideal concurrency
/// `min(TENANTS, cores)`, clamped to ≥ 1. At ≥ 4 cores this is exactly
/// the 3× service-level floor; on a 1-core CI box it degenerates to
/// "warm amortization must beat the cold-serial workflow outright".
fn min_speedup() -> f64 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ideal = TENANTS.min(cores) as f64;
    (MIN_SPEEDUP_AT_4_CORES / TENANTS as f64 * ideal).max(1.0)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The tenant workload: a 24³ two-level Burns & Christon solve in 2³
/// patches — ~2k fine patches, so graph compilation and slot/world
/// construction are a large share of a single short job, which is
/// exactly the cost a warm server amortizes. One ray per cell with an
/// early-termination threshold of 0.9 keeps the marches short relative
/// to the cold setup they ride on, and a single rank keeps the job free
/// of exchange costs that would be paid warm and cold alike.
fn cpu_cfg() -> RunConfig {
    RunConfig {
        fine_cells: 24,
        patch_size: 2,
        levels: 2,
        refinement_ratio: 2,
        nrays: 1,
        threshold: 0.9,
        halo: 2,
        ranks: 1,
        threads: 1,
        timesteps: 1,
        ..RunConfig::default()
    }
}

fn gpu_cfg() -> RunConfig {
    RunConfig {
        gpu: true,
        ..cpu_cfg()
    }
}

/// The reference answer: a standalone single-tenant run of this config.
fn solo_divq(cfg: &RunConfig) -> Vec<f64> {
    let (grid, decls) = cfg.build_problem();
    let result = run_world(Arc::clone(&grid), decls, cfg.world_config());
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ computed");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out.into_vec()
}

fn bits_differ(got: &[f64], want: &[f64]) -> Option<usize> {
    if got.len() != want.len() {
        return Some(usize::MAX);
    }
    got.iter()
        .zip(want)
        .position(|(a, b)| a.to_bits() != b.to_bits())
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Fleet hygiene after drain + shutdown: zero resident bytes, zero meter
/// drift, allocator invariants intact.
fn check_fleet_dry(server: &RadiationServer, label: &str, violations: &mut Vec<String>) {
    let used = server.fleet().total_used();
    if used != 0 {
        violations.push(format!("{label}: fleet holds {used} B after shutdown"));
    }
    for (d, c) in server.fleet().counters_per_device().iter().enumerate() {
        if c.release_underflows != 0 {
            violations.push(format!(
                "{label}: device {d} counted {} release underflows",
                c.release_underflows
            ));
        }
    }
    for (d, dev) in server.fleet().devices().iter().enumerate() {
        if let Err(e) = dev.validate_allocator() {
            violations.push(format!("{label}: device {d} allocator: {e}"));
        }
    }
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let report_path = repo_root().join("BENCH_serve.json");
    let mut violations = Vec::new();

    let cpu = cpu_cfg();
    let gpu = gpu_cfg();
    let solo_cpu = solo_divq(&cpu);
    let solo_gpu = solo_divq(&gpu);
    // The mixed 4-tenant stream: CPU and GPU configs interleaved.
    let stream: Vec<(&str, &RunConfig, &Vec<f64>)> = vec![
        ("cpu", &cpu, &solo_cpu),
        ("gpu", &gpu, &solo_gpu),
        ("cpu", &cpu, &solo_cpu),
        ("gpu", &gpu, &solo_gpu),
    ];
    assert_eq!(stream.len(), TENANTS);

    // --- Serial baseline: one cold single-tenant world per job. ---------
    // Each submission pays slot construction, graph compilation and (for
    // the GPU tenants) cold H2D from scratch — the pre-server workflow.
    let t0 = Instant::now();
    for (name, cfg, want) in &stream {
        let server = RadiationServer::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let outcome = server.submit((*cfg).clone()).expect("baseline admits").wait();
        let report = outcome.expect_done();
        if let Some(i) = bits_differ(&report.divq.data, want) {
            violations.push(format!("serial {name} tenant: divQ differs at cell {i}"));
        }
        server.drain();
        server.shutdown();
        check_fleet_dry(&server, &format!("serial {name} baseline"), &mut violations);
    }
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // --- Warm server: the same four jobs as concurrent tenants. ---------
    // One worker per tenant so that on wide hosts the stream's
    // concurrency is limited by cores, not by the slot pool.
    let server = RadiationServer::start(ServeConfig {
        workers: TENANTS,
        ..ServeConfig::default()
    });
    // Untimed warm-up, one job per slot shape: afterwards the slots are
    // idle-warm and the compiled graphs are published in the shared cache.
    for cfg in [&cpu, &gpu] {
        server
            .submit((*cfg).clone())
            .expect("warm-up admits")
            .wait()
            .expect_done();
    }
    let t1 = Instant::now();
    let handles: Vec<_> = stream
        .iter()
        .map(|(_, cfg, _)| server.submit((*cfg).clone()).expect("tenant admits"))
        .collect();
    let outcomes: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    let served_ms = t1.elapsed().as_secs_f64() * 1e3;
    let mut warm_jobs = 0u64;
    for ((name, _, want), outcome) in stream.iter().zip(&outcomes) {
        let report = outcome.expect_done();
        if let Some(i) = bits_differ(&report.divq.data, want) {
            violations.push(format!(
                "served {name} tenant (job {}): divQ differs from solo at cell {i}",
                report.job_id
            ));
        }
        if report.stats.slot_reused || report.stats.shared_graph_hits > 0 {
            warm_jobs += 1;
        }
    }
    let speedup = serial_ms / served_ms;
    let floor = min_speedup();
    let stats = server.stats();
    println!(
        "serve: {TENANTS} tenants serial-cold {serial_ms:.1} ms, warm-concurrent {served_ms:.1} ms \
         -> {speedup:.2}x (floor {floor:.2}x on this host; slot hits {}, shared graph hits {}, \
         graph cache {:?})",
        stats.slot_hits, stats.shared_graph_hits, stats.graph_cache
    );
    if speedup < floor {
        violations.push(format!(
            "warm {TENANTS}-tenant stream only {speedup:.2}x the cold-serial rate \
             (floor {floor:.2}x on this host, {MIN_SPEEDUP_AT_4_CORES}x at >= {TENANTS} cores)"
        ));
    }
    if warm_jobs == 0 {
        violations.push("no tenant ran warm (neither slot reuse nor shared graphs)".into());
    }
    if stats.failed != 0 {
        violations.push(format!("{} tenants failed", stats.failed));
    }

    server.drain();
    server.shutdown();
    check_fleet_dry(&server, "warm server", &mut violations);

    // --- Deterministic shared-graph hit. --------------------------------
    // A dedicated two-worker server so the CPU shape has exactly one warm
    // slot: the warm-up job creates it and publishes its compiled graphs;
    // a long-running blocker then occupies it, so the next same-shape
    // tenant must build a fresh slot and adopt its graphs from the shared
    // cache instead of recompiling.
    let sharer = RadiationServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    sharer
        .submit(cpu.clone())
        .expect("warm-up admits")
        .wait()
        .expect_done();
    let blocker = sharer
        .submit(RunConfig {
            timesteps: 1_000_000,
            ..cpu.clone()
        })
        .expect("blocker admits");
    wait_until("blocker occupies the warm slot", || {
        sharer.stats().active_jobs == 1
    });
    let fresh_outcome = sharer.submit(cpu.clone()).expect("tenant admits").wait();
    let fresh = fresh_outcome.expect_done();
    let shared_hits = fresh.stats.shared_graph_hits;
    if fresh.stats.slot_reused {
        violations.push("shared-graph tenant was expected to build a fresh slot".into());
    }
    if shared_hits < 1 {
        violations.push(format!(
            "fresh-slot tenant adopted no shared graphs (compiles {})",
            fresh.stats.graph_compiles
        ));
    }
    if fresh.stats.graph_compiles != 0 {
        violations.push(format!(
            "fresh-slot tenant recompiled {} graphs despite the shared cache",
            fresh.stats.graph_compiles
        ));
    }
    blocker.cancel();
    if !matches!(blocker.wait(), JobOutcome::Canceled) {
        violations.push("blocker did not cancel".into());
    }
    sharer.drain();
    sharer.shutdown();
    check_fleet_dry(&sharer, "shared-graph server", &mut violations);

    // --- Admission under oversubscription. ------------------------------
    // A 3 MiB single-device fleet fits one ~2 MiB GPU tenant: the second
    // queues rather than fails, and a job larger than the whole fleet is
    // refused with the typed error.
    let tiny = RadiationServer::start(ServeConfig {
        workers: 2,
        gpus: 1,
        gpu_capacity_mb: 3,
        ..ServeConfig::default()
    });
    // Deliberately its own shape (decoupled from the throughput tenants):
    // 16³ in 4³ patches with a deep halo puts one replica at ~2 MiB — it
    // fits the 3 MiB fleet alone but not twice over.
    let small_gpu = RunConfig {
        fine_cells: 16,
        patch_size: 4,
        levels: 2,
        ranks: 1,
        threads: 1,
        nrays: 4,
        halo: 4,
        gpu: true,
        timesteps: 1_000_000,
        ..RunConfig::default()
    };
    let pinned = tiny.submit(small_gpu.clone()).expect("first tenant fits");
    wait_until("first GPU tenant running", || tiny.stats().active_jobs == 1);
    let queued = tiny
        .submit(RunConfig {
            timesteps: 1,
            ..small_gpu.clone()
        })
        .expect("second tenant accepted (queued)");
    wait_until("second tenant deferred for capacity", || {
        tiny.stats().queued_for_capacity >= 1
    });
    let t = tiny.stats();
    if t.active_jobs != 1 || t.queued_jobs != 1 {
        violations.push(format!(
            "oversubscription: expected 1 active + 1 queued, got {} + {}",
            t.active_jobs, t.queued_jobs
        ));
    }
    if t.failed != 0 {
        violations.push("oversubscription failed a tenant instead of queueing it".into());
    }
    match tiny.submit(RunConfig {
        fine_cells: 32,
        patch_size: 8,
        timesteps: 1,
        ..small_gpu.clone()
    }) {
        Err(SubmitError::TooLarge { .. }) => {}
        Err(e) => violations.push(format!("oversized job: expected TooLarge, got {e}")),
        Ok(_) => violations.push("a job larger than the fleet was admitted".into()),
    }
    pinned.cancel();
    if !matches!(pinned.wait(), JobOutcome::Canceled) {
        violations.push("pinned GPU tenant did not cancel".into());
    }
    if queued.wait().report().is_none() {
        violations.push("queued tenant did not complete after capacity freed".into());
    }
    let queued_for_capacity = tiny.stats().queued_for_capacity;
    tiny.drain();
    tiny.shutdown();
    check_fleet_dry(&tiny, "tiny fleet", &mut violations);

    if update {
        let json = format!(
            "{{\n  \"group\": \"serve\",\n  \"note\": \"Multi-tenant radiation-server gate: a mixed {TENANTS}-tenant stream (CPU+GPU 24^3 two-level B&C, 1 step) on a warm server vs the same jobs serial on cold single-tenant worlds. Floors checked live (not against this file): speedup >= 0.75 x min(tenants, cores) — the {MIN_SPEEDUP_AT_4_CORES}x service floor at >= {TENANTS} cores, never below 1x — per-tenant divQ bit-identical to standalone run_world, a fresh-slot tenant adopts >= 1 shared compiled graph with zero recompiles, oversubscribed admission queues (never fails) and rejects impossible jobs typed, and every fleet drains to 0 B with no meter drift. This file records measured values for bookkeeping.\",\n  \"benchmarks\": [\n    {{ \"id\": \"serve_4tenants\", \"serial_cold_ms\": {serial_ms:.1}, \"warm_concurrent_ms\": {served_ms:.1}, \"speedup\": {speedup:.2}, \"floor_on_host\": {floor:.2}, \"slot_hits\": {}, \"shared_graph_hits\": {}, \"fresh_slot_shared_hits\": {shared_hits}, \"queued_for_capacity\": {queued_for_capacity} }}\n  ]\n}}\n",
            stats.slot_hits, stats.shared_graph_hits
        );
        std::fs::write(&report_path, json).expect("write BENCH_serve.json");
        println!("wrote {}", report_path.display());
        return ExitCode::SUCCESS;
    }

    match std::fs::read_to_string(&report_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", report_path.display())),
        Ok(text) => {
            if !text.contains("\"id\": \"serve_4tenants\"") {
                violations.push("BENCH_serve.json has no serve_4tenants entry".into());
            }
        }
    }

    if violations.is_empty() {
        println!(
            "serve gate PASS ({speedup:.2}x >= {floor:.2}x, bit-identical mixed stream, \
             shared graphs adopted, queued-not-failed admission, fleets dry)"
        );
        ExitCode::SUCCESS
    } else {
        println!("serve gate FAIL:");
        for v in &violations {
            println!("  - {v}");
        }
        println!(
            "(if the change is intentional, regenerate with: cargo run -p rmcrt-bench --release --bin serve_gate -- --update)"
        );
        ExitCode::FAILURE
    }
}
