//! Forward projection onto Summit — the machine the paper is preparing for
//! ("To preserve current capabilities on upcoming machines … the proposed
//! DOE Summit", §I; "utilization of the planned DOE Summit system is
//! planned", §III-B).
//!
//! Runs the LARGE benchmark's strong-scaling sweep on the Summit node
//! model (V100-class GPUs, NVLink staging, fat-tree network) next to the
//! Titan results, per patch size.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin summit_projection
//! ```

use titan_sim::sim::scaling_curve;
use uintah::prelude::*;

fn main() {
    let counts: Vec<usize> = vec![512, 1024, 2048, 4096, 8192, 16384];
    println!("LARGE benchmark (512³/128³, RR 4, 100 rays/cell): Titan vs projected Summit");
    println!("(one endpoint per GPU; model constants in titan-sim::machine)\n");
    for patch in [16i32, 32] {
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build();
        let titan = scaling_curve(&grid, &counts, 4, &MachineParams::titan(), StoreModel::WaitFreePool);
        let summit = scaling_curve(
            &grid,
            &counts,
            4,
            &MachineParams::summit(),
            StoreModel::WaitFreePool,
        );
        println!("{patch}³ patches:");
        println!(
            "  {:>7} | {:>11} {:>11} {:>9}",
            "GPUs", "Titan (s)", "Summit (s)", "speedup"
        );
        for i in 0..counts.len() {
            println!(
                "  {:>7} | {:>11.4} {:>11.4} {:>8.2}x",
                counts[i],
                titan[i].time,
                summit[i].time,
                titan[i].time / summit[i].time
            );
        }
        println!();
    }
    println!("Shape expectations: Summit's per-GPU speedup is largest where kernels");
    println!("saturate the device (large patches / many patches per GPU) and shrinks");
    println!("toward the strong-scaling limit, where fixed overheads and the all-to-all");
    println!("floor dominate — the same patch-size tuning lesson carries forward.");
}
