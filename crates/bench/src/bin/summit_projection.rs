//! Forward projection onto Summit — the machine the paper is preparing for
//! ("To preserve current capabilities on upcoming machines … the proposed
//! DOE Summit", §I; "utilization of the planned DOE Summit system is
//! planned", §III-B).
//!
//! Runs the LARGE benchmark's strong-scaling sweep on the Summit node
//! model (V100-class GPUs, NVLink staging, fat-tree network) next to the
//! Titan results, per patch size — both models calibrated from the same
//! measured snapshot of a real executor run at startup.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin summit_projection
//! ```

use rmcrt_bench::campaign::{self, SweepSpec};

fn main() {
    let cal = campaign::calibrate_live();
    let spec = SweepSpec::summit_large();
    println!("LARGE benchmark (512³/128³, RR 4, 100 rays/cell): Titan vs projected Summit");
    println!("(one endpoint per GPU; model constants in titan-sim::machine)");
    println!("{}\n", cal.summary());

    let titan = campaign::strong_scaling(&spec, &cal.titan, "titan", &cal.profile);
    let summit = campaign::strong_scaling(&spec, &cal.summit, "summit", &cal.profile);
    for (tc, sc) in titan.curves.iter().zip(&summit.curves) {
        println!("{}³ patches:", tc.patch);
        println!(
            "  {:>7} | {:>11} {:>11} {:>9}",
            "GPUs", "Titan (s)", "Summit (s)", "speedup"
        );
        for (tp, sp) in tc.points.iter().zip(&sc.points) {
            println!(
                "  {:>7} | {:>11.4} {:>11.4} {:>8.2}x",
                tp.gpus,
                tp.time,
                sp.time,
                tp.time / sp.time
            );
        }
        println!();
    }
    println!("Shape expectations: Summit's per-GPU speedup is largest where kernels");
    println!("saturate the device (large patches / many patches per GPU) and shrinks");
    println!("toward the strong-scaling limit, where fixed overheads and the all-to-all");
    println!("floor dominate — the same patch-size tuning lesson carries forward.");
}
