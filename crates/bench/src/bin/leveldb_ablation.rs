//! E4 — §III-C ablation: the GPU DataWarehouse level database.
//!
//! Runs the real GPU pipeline (simulated device) on a 2-level benchmark
//! with the level DB enabled vs disabled, sweeping patches per GPU, and
//! reports PCIe traffic and peak device memory. With the level DB each
//! coarse replica crosses PCIe once and is shared; without it, every
//! resident patch task carries its own copy — the behaviour that blew the
//! K20X's 6 GB at scale.
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin leveldb_ablation
//! ```

use std::sync::Arc;
use uintah::prelude::*;

fn main() {
    println!("Level-database ablation — 2-level grid (RR 2 so the coarse replica is large),");
    println!("GPU pipeline on the simulated device, 4 concurrent worker threads\n");
    println!(
        "{:>11} | {:>14} {:>14} {:>8} | {:>14} {:>14}",
        "patch size", "H2D w/ LDB", "H2D w/o LDB", "ratio", "peak w/ LDB", "peak w/o LDB"
    );

    for patch in [4i32, 8, 16] {
        let grid = Arc::new(
            Grid::builder()
                .fine_cells(IntVector::splat(32))
                .num_levels(2)
                .refinement_ratio(2)
                .fine_patch_size(IntVector::splat(patch))
                .build(),
        );
        let pipeline = RmcrtPipeline {
            params: RmcrtParams {
                nrays: 2,
                threshold: 1e-3,
                ..Default::default()
            },
            halo: 1,
            problem: BurnsChriston::default(),
        };
        let run = |level_db: bool| {
            let result = run_world(
                Arc::clone(&grid),
                Arc::new(multilevel_decls(&grid, pipeline, true)),
                WorldConfig {
                    nranks: 1,
                    nthreads: 4,
                    gpu_capacity: Some(4 << 30),
                    gpu_level_db: level_db,
                    // Synchronous drains: async D2H releases device memory
                    // when the engine thread finishes, so the peak column
                    // would vary run to run. The ablation isolates the
                    // level DB; the drain policy is studied in d2h_overlap.
                    gpu_async_d2h: false,
                    ..Default::default()
                },
            );
            // One coherent counter snapshot (kernels, PCIe traffic, peak).
            result.ranks[0].gpu.as_ref().unwrap().device().counters()
        };
        let with_ldb = run(true);
        let without = run(false);
        println!(
            "{:>9}³ | {:>12} B {:>12} B {:>7.2}x | {:>12} B {:>12} B",
            patch,
            with_ldb.h2d_bytes,
            without.h2d_bytes,
            without.h2d_bytes as f64 / with_ldb.h2d_bytes as f64,
            with_ldb.peak,
            without.peak
        );
        assert_eq!(
            with_ldb.kernels, without.kernels,
            "the ablation changes staging, never the kernel count"
        );
    }
    println!("\nSmaller patches mean more patch tasks sharing the same coarse replicas, so");
    println!("the level database's savings grow exactly where over-decomposition lives.");

    // ---- persistence across timesteps -------------------------------------
    // With the persistent executor the level replicas also survive *time*:
    // step 1 pays the full cold upload, steps 2+ revalidate the resident
    // copies (diff against host bytes, re-upload only changes — zero for
    // the static Burns & Christon properties) and pay only the transient
    // per-patch staging.
    println!("\n[per-timestep H2D, persistent executor, 8^3 patches, 4 timesteps]");
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(2)
            .refinement_ratio(2)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 2,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 1,
        problem: BurnsChriston::default(),
    };
    let result = run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, pipeline, true)),
        WorldConfig {
            nranks: 1,
            nthreads: 4,
            timesteps: 4,
            gpu_capacity: Some(4 << 30),
            gpu_async_d2h: false,
            ..Default::default()
        },
    );
    println!("{:>9} | {:>14} | {:>8} | {:>12}", "timestep", "H2D bytes", "kernels", "kernel ms");
    for (ts, s) in result.ranks[0].stats.iter().enumerate() {
        println!(
            "{:>9} | {:>12} B | {:>8} | {:>12.3}",
            ts,
            s.gpu_h2d_bytes,
            s.kernel_stats.launches,
            s.kernel_stats.wall().as_secs_f64() * 1e3
        );
    }
    let totals = result.ranks[0].gpu.as_ref().unwrap().device().counters();
    println!(
        "\ndevice totals: {} kernels | H2D {} B / {} transfers | D2H {} B / {} transfers | peak {} B",
        totals.kernels,
        totals.h2d_bytes,
        totals.h2d_transfers,
        totals.d2h_bytes,
        totals.d2h_transfers,
        totals.peak
    );
    println!("\nSteps 2+ must move strictly fewer bytes than the cold step: the coarse");
    println!("replicas crossed PCIe once and stayed resident.");

    // ---- fleet sweep -------------------------------------------------------
    // §V at fleet scale: with N devices per rank the level DB keeps one
    // replica per level per *device* (N uploads total), while without it
    // every patch task still stages a private copy — the saving per GPU is
    // unchanged, and the per-device peak shrinks as patches spread.
    println!("\n[device-count sweep, 8^3 patches: per-GPU level-DB saving per fleet size]");
    println!(
        "{:>8} | {:>14} {:>14} {:>8} | {:>14} {:>14}",
        "devices", "H2D w/ LDB", "H2D w/o LDB", "ratio", "max peak w/", "max peak w/o"
    );
    for devices in [1usize, 2, 4, 6] {
        let run = |level_db: bool| {
            let result = run_world(
                Arc::clone(&grid),
                Arc::new(multilevel_decls(&grid, pipeline, true)),
                WorldConfig {
                    nranks: 1,
                    nthreads: 4,
                    gpu_capacity: Some(4 << 30),
                    gpus_per_rank: devices,
                    gpu_level_db: level_db,
                    gpu_async_d2h: false,
                    ..Default::default()
                },
            );
            result.ranks[0].gpu.as_ref().unwrap().counters_per_device()
        };
        let with_ldb = run(true);
        let without = run(false);
        let h2d = |cs: &[DeviceCounters]| cs.iter().map(|c| c.h2d_bytes).sum::<u64>();
        let peak = |cs: &[DeviceCounters]| cs.iter().map(|c| c.peak).max().unwrap_or(0);
        println!(
            "{:>8} | {:>12} B {:>12} B {:>7.2}x | {:>12} B {:>12} B",
            devices,
            h2d(&with_ldb),
            h2d(&without),
            h2d(&without) as f64 / h2d(&with_ldb) as f64,
            peak(&with_ldb),
            peak(&without)
        );
    }
    println!("\nWith-LDB H2D grows only by one replica set per extra device; without the");
    println!("DB it stays per-patch — the per-GPU saving survives any fleet size.");
}
