//! Async H2D upload-pipeline gate (run by verify.sh).
//!
//! The upload twin of the D2H overlap measurement: PR 3 took the
//! critical-path *drain* stall off the hot path; this gate proves the
//! H2D engine + staging pool + cross-step prefetch do the same for
//! uploads, and that the whole pipeline stays bit-identical with the
//! machinery on or off. Two views:
//!
//! 1. **Stall view** — the pipeline's upload pattern (step close posts
//!    next-step level-replica revalidations, superseding patch uploads,
//!    and spill re-uploads; inter-step CPU work drains; step open
//!    consumes) driven deterministically against the warehouse in both
//!    `gpu_async_h2d` modes, B&C-sized fields. Floors:
//!    * critical-path upload stall (`h2d_wait_ns`) drops **≥ 10×**
//!      vs the synchronous baseline;
//!    * the async run hides real work: `h2d_overlap_ns` ≥ sync stall / 8,
//!      while the sync fallback records exactly zero overlap;
//!    * every byte served is **bit-identical** across modes;
//!    * zero meter drift after drain (devices at 0 B, no release
//!      underflows, allocator free lists coherent).
//! 2. **Pipeline view** — full `run_world` B&C runs over 1/2/3/7 worker
//!    threads × 1/2/4/6 devices/rank in both modes: all 32 divQ
//!    checksums must be identical, plus one oversubscribed pair
//!    (capacity = measured peak / 2, regrid raced mid-run) that must
//!    evict, stay bit-identical, and drain with zero drift.
//!
//! `BENCH_h2d_overlap.json` records the measured stalls for bookkeeping;
//! regenerate after intentional changes with:
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin h2d_overlap_gate -- --update
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use uintah::gpu::GpuDataWarehouse;
use uintah::prelude::*;
use uintah::runtime::{TaskDecl, WorldResult};
use uintah_gpu::DeviceFleet;
use uintah_grid::{CcVariable, PatchId, Region};

/// Required reduction in critical-path upload stall, async vs sync.
const MIN_STALL_REDUCTION: f64 = 10.0;
/// The async run must hide at least this fraction of the sync stall as
/// measured overlap (most of it in practice; /8 leaves room for noise).
const MIN_OVERLAP_FRACTION: f64 = 8.0;
const STALL_STEPS: usize = 4;
const STALL_PATCHES: usize = 16;
/// 32³ f64 per patch (256 KiB) — the paper's patch scale, well above
/// per-transfer engine overhead.
const PATCH_CELLS: i32 = 32;
const LEVEL_LABELS: [VarLabel; 3] = [
    VarLabel::new("gate_abskg", 90),
    VarLabel::new("gate_sigt4", 91),
    VarLabel::new("gate_cellt", 92),
];
const GATE_PATCH: VarLabel = VarLabel::new("gate_patch", 93);
const PIPE_TIMESTEPS: usize = 3;
const PIPE_REGRID_INTERVAL: usize = 2;
const OVERSUB: u64 = 2;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Deterministic inter-step CPU work, well above the posted bursts'
/// memcpy cost — the stand-in for the task drain the engine overlaps.
fn cpu_drain(buf: &mut [f64]) {
    for pass in 0..4 {
        let mut acc = 0.0f64;
        for v in buf.iter_mut() {
            *v = *v * 1.000_000_1 + pass as f64 * 1e-12;
            acc += *v;
        }
        std::hint::black_box(acc);
    }
}

fn field(cells: i32, value: f64) -> FieldData {
    FieldData::F64(CcVariable::filled(Region::cube(cells), value))
}

fn checksum_into(acc: &mut u64, data: &FieldData) {
    for &x in data.as_f64().as_slice() {
        *acc = acc.wrapping_add(x.to_bits());
    }
}

/// One full stall-view run; returns `(wait_ns, overlap_ns, checksum)`.
/// Every consumed byte feeds the checksum, so the two modes can be
/// compared bit for bit.
fn stall_run(async_h2d: bool, violations: &mut Vec<String>) -> (u64, u64, u64) {
    let tag = if async_h2d { "async" } else { "sync" };
    let patch_bytes = (PATCH_CELLS as usize).pow(3) * 8;
    let mut drain_buf = vec![1.0f64; 4 << 20];
    let mut checksum = 0u64;

    // Ample-capacity warehouse: the prefetch + superseding-upload pattern.
    let dw = GpuDataWarehouse::with_fleet_full(DeviceFleet::k20x(1), true, true, async_h2d, true);
    // Oversubscribed warehouse: room for half the patches, so puts spill
    // and the step-close spill prefetch has real work to hide.
    let spill_dw = GpuDataWarehouse::with_fleet_full(
        DeviceFleet::with_capacity(1, "h2d-gate-oversub", STALL_PATCHES / 2 * patch_bytes + 256),
        true,
        true,
        async_h2d,
        true,
    );

    let step_value = |step: usize, p: usize| (step * STALL_PATCHES + p) as f64 + 0.25;
    // Step 0 close: the initial posts.
    for p in 0..STALL_PATCHES {
        let data = field(PATCH_CELLS, step_value(0, p));
        dw.put_patch_async(GATE_PATCH, PatchId(p as u32), &data).expect("k20x fits the gate");
        spill_dw
            .put_patch(GATE_PATCH, PatchId(p as u32), data)
            .expect("a victim always exists");
    }
    for (i, label) in LEVEL_LABELS.iter().enumerate() {
        dw.prefetch_level_on(0, *label, 0, &field(PATCH_CELLS, i as f64));
    }
    spill_dw.prefetch_spill_reuploads();

    for step in 1..=STALL_STEPS {
        // Inter-step CPU drain: the engines work while this runs.
        cpu_drain(&mut drain_buf);

        // Step open: consume everything posted at the previous close.
        dw.begin_timestep();
        spill_dw.begin_timestep();
        for p in 0..STALL_PATCHES {
            let want = step_value(step - 1, p);
            let v = dw.get_patch(GATE_PATCH, PatchId(p as u32)).expect("posted last close");
            if v.data().as_f64().as_slice()[0] != want {
                violations.push(format!("{tag}: patch {p} step {step} served stale bytes"));
            }
            checksum_into(&mut checksum, v.data());
            // The spill warehouse cycles under pressure: a hit must carry
            // the one true value, a miss means the re-upload lost the race
            // with this loop's own evictions.
            if let Some(v) = spill_dw.get_patch(GATE_PATCH, PatchId(p as u32)) {
                checksum_into(&mut checksum, v.data());
            }
        }
        for (i, label) in LEVEL_LABELS.iter().enumerate() {
            let want = (step - 1) as f64 * 100.0 + i as f64;
            let host = field(PATCH_CELLS, want);
            let v = dw
                .ensure_level_fresh_on(0, *label, 0, || host)
                .expect("level replica fits");
            checksum_into(&mut checksum, v.data());
        }

        // Step close: post the next step's truth (changed bytes, so the
        // level predictions have a real burst to hide), plus the spill
        // re-uploads.
        if step < STALL_STEPS {
            for p in 0..STALL_PATCHES {
                let data = field(PATCH_CELLS, step_value(step, p));
                dw.put_patch_async(GATE_PATCH, PatchId(p as u32), &data).expect("fits");
            }
            for (i, label) in LEVEL_LABELS.iter().enumerate() {
                let host = field(PATCH_CELLS, step as f64 * 100.0 + i as f64);
                dw.prefetch_level_on(0, *label, 0, &host);
            }
            spill_dw.prefetch_spill_reuploads();
        }
    }

    // Drain and drift-check both warehouses.
    let mut wait = 0u64;
    let mut overlap = 0u64;
    for (name, w) in [("ample", &dw), ("oversub", &spill_dw)] {
        w.sync_h2d_all();
        w.sync_d2h_all();
        w.clear_patch_db();
        w.clear_level_db();
        for d in 0..w.num_devices() {
            let dev = w.device_at(d);
            let c = dev.counters();
            wait += c.h2d_wait_ns;
            overlap += c.h2d_overlap_ns;
            if c.release_underflows != 0 {
                violations.push(format!(
                    "{tag}/{name}: device {d} counted {} release underflows",
                    c.release_underflows
                ));
            }
            if dev.used() != 0 {
                violations.push(format!(
                    "{tag}/{name}: device {d} holds {} B after clearing the DBs",
                    dev.used()
                ));
            }
            if let Err(e) = dev.validate_allocator() {
                violations.push(format!("{tag}/{name}: device {d}: {e}"));
            }
        }
        if w.pending_uploads() != 0 {
            violations.push(format!("{tag}/{name}: posts left parked after drain"));
        }
    }
    if !async_h2d && overlap != 0 {
        violations.push(format!("sync fallback recorded {overlap} ns of phantom overlap"));
    }
    (wait, overlap, checksum)
}

fn pipeline_run(
    grid: &Arc<Grid>,
    decls: &Arc<Vec<TaskDecl>>,
    threads: usize,
    devices: usize,
    capacity: usize,
    async_h2d: bool,
) -> WorldResult {
    run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: threads,
            timesteps: PIPE_TIMESTEPS,
            gpu_capacity: Some(capacity),
            gpus_per_rank: devices,
            gpu_async_h2d: async_h2d,
            regrid_interval: Some(PIPE_REGRID_INTERVAL),
            ..Default::default()
        },
    )
}

/// Order-independent bit-exact fingerprint of the fine-level divQ field.
fn divq_checksum(grid: &Grid, result: &WorldResult) -> u64 {
    let mut acc = 0u64;
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ computed");
            for &x in v.as_f64().as_slice() {
                acc = acc.wrapping_add(x.to_bits());
            }
        }
    }
    acc
}

/// Summed H2D stall (`h2d_wait_ns`) and per-device peak across a run's
/// fleet, plus eviction count and underflows.
fn fleet_h2d(result: &WorldResult) -> (u64, u64, u64, u64) {
    let (mut wait, mut peak, mut ev, mut uf) = (0u64, 0u64, 0u64, 0u64);
    for rr in &result.ranks {
        for c in rr.gpu.as_ref().expect("gpu attached").counters_per_device() {
            wait += c.h2d_wait_ns;
            peak = peak.max(c.peak);
            ev += c.evictions;
            uf += c.release_underflows;
        }
    }
    (wait, peak, ev, uf)
}

/// Zero-drift contract at exit, shared with the oversubscription gate:
/// meters agree with the DBs, free lists are coherent, clearing drains
/// every byte.
fn check_meter_drift(result: &WorldResult, label: &str, violations: &mut Vec<String>) {
    for rr in &result.ranks {
        let g = rr.gpu.as_ref().expect("gpu attached");
        g.sync_h2d_all();
        for d in 0..g.num_devices() {
            let dev = g.device_at(d);
            if let Err(e) = dev.validate_allocator() {
                violations.push(format!("{label}: rank {} device {d}: {e}", rr.rank));
            }
        }
        g.clear_patch_db();
        g.clear_level_db();
        for d in 0..g.num_devices() {
            let left = g.device_at(d).used();
            if left != 0 {
                violations.push(format!(
                    "{label}: rank {} device {d}: {left} B leaked after clearing the DBs",
                    rr.rank
                ));
            }
        }
    }
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let report_path = repo_root().join("BENCH_h2d_overlap.json");
    let mut violations = Vec::new();

    // --- 1. Stall view ---------------------------------------------------
    let (sync_wait, _sync_overlap, sync_sum) = stall_run(false, &mut violations);
    let (async_wait, async_overlap, async_sum) = stall_run(true, &mut violations);
    let reduction = sync_wait as f64 / async_wait.max(1) as f64;
    println!(
        "stall: sync {:.3} ms | async {:.3} ms (overlap {:.3} ms) | reduction {reduction:.1}x",
        sync_wait as f64 / 1e6,
        async_wait as f64 / 1e6,
        async_overlap as f64 / 1e6,
    );
    if sync_sum != async_sum {
        violations.push(format!(
            "stall view served different bytes: sync {sync_sum:#x} != async {async_sum:#x}"
        ));
    }
    if reduction < MIN_STALL_REDUCTION {
        violations.push(format!(
            "upload stall reduction {reduction:.1}x is below the {MIN_STALL_REDUCTION}x floor \
             (sync {sync_wait} ns, async {async_wait} ns)"
        ));
    }
    if (async_overlap as f64) < sync_wait as f64 / MIN_OVERLAP_FRACTION {
        violations.push(format!(
            "async overlap {async_overlap} ns hides less than 1/{MIN_OVERLAP_FRACTION} of the \
             sync stall ({sync_wait} ns)"
        ));
    }

    // --- 2. Pipeline view ------------------------------------------------
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));

    // Reference: unlimited capacity, also yields the true per-device peak.
    let ref_result = pipeline_run(&grid, &decls, 2, 1, 6 << 30, true);
    let ref_sum = divq_checksum(&grid, &ref_result);
    let (_, peak, ref_ev, ref_uf) = fleet_h2d(&ref_result);
    if ref_ev != 0 || ref_uf != 0 {
        violations.push(format!(
            "reference run evicted ({ref_ev}) or underflowed ({ref_uf}) — not a reference"
        ));
    }
    check_meter_drift(&ref_result, "reference", &mut violations);

    let mut sweep = 0usize;
    for threads in [1usize, 2, 3, 7] {
        for devices in [1usize, 2, 4, 6] {
            for async_h2d in [false, true] {
                let r = pipeline_run(&grid, &decls, threads, devices, 6 << 30, async_h2d);
                let sum = divq_checksum(&grid, &r);
                let (_, _, _, uf) = fleet_h2d(&r);
                let mode = if async_h2d { "async" } else { "sync" };
                if sum != ref_sum {
                    violations.push(format!(
                        "{threads} threads x {devices} devices ({mode}): divQ {sum:#x} != reference {ref_sum:#x}"
                    ));
                }
                if uf != 0 {
                    violations.push(format!(
                        "{threads} threads x {devices} devices ({mode}): {uf} release underflows"
                    ));
                }
                check_meter_drift(
                    &r,
                    &format!("{threads}t x {devices}d {mode}"),
                    &mut violations,
                );
                sweep += 1;
            }
        }
    }
    println!("pipeline sweep: {sweep} runs, all divQ checksums {ref_sum:#x}");

    // Oversubscribed pair: capacity = peak / 2, regrid raced mid-run.
    let capacity = (peak / OVERSUB) as usize;
    let mut pipe_wait = [0u64; 2];
    for (i, async_h2d) in [false, true].into_iter().enumerate() {
        let r = pipeline_run(&grid, &decls, 2, 1, capacity, async_h2d);
        let sum = divq_checksum(&grid, &r);
        let (wait, _, ev, uf) = fleet_h2d(&r);
        let mode = if async_h2d { "async" } else { "sync" };
        pipe_wait[i] = wait;
        if sum != ref_sum {
            violations.push(format!(
                "oversubscribed {mode}: divQ {sum:#x} != reference {ref_sum:#x}"
            ));
        }
        if ev == 0 {
            violations.push(format!(
                "oversubscribed {mode}: {OVERSUB}x oversubscription produced zero evictions"
            ));
        }
        if uf != 0 {
            violations.push(format!("oversubscribed {mode}: {uf} release underflows"));
        }
        check_meter_drift(&r, &format!("oversub {mode}"), &mut violations);
    }
    println!(
        "pipeline oversub@{capacity} B: sync wait {:.3} ms | async wait {:.3} ms",
        pipe_wait[0] as f64 / 1e6,
        pipe_wait[1] as f64 / 1e6,
    );

    if update {
        let json = format!(
            "{{\n  \"group\": \"h2d_overlap\",\n  \"note\": \"Async H2D upload-pipeline gate. Stall view: the pipeline's upload pattern (step-close posts of level revalidations, superseding patch uploads and spill re-uploads; inter-step CPU drain; step-open consume) on B&C-sized 32^3 fields, both gpu_async_h2d modes. Floors checked live (not against this file): >= {MIN_STALL_REDUCTION}x critical-path stall reduction, async overlap >= sync stall / {MIN_OVERLAP_FRACTION}, zero overlap in sync mode, bit-identical served bytes, zero meter drift. Pipeline view: 2-level 16^3 B&C through run_world on 1/2/3/7 threads x 1/2/4/6 devices x both modes (32 runs) — all divQ checksums bit-identical to the reference — plus an oversubscribed pair (capacity = peak / {OVERSUB}, regrid every {PIPE_REGRID_INTERVAL}) that must evict, match, and drain clean. This file records measured values for bookkeeping.\",\n  \"benchmarks\": [\n    {{ \"id\": \"h2d_stall\", \"sync_wait_ms\": {:.3}, \"async_wait_ms\": {:.3}, \"reduction_x\": {reduction:.1}, \"async_overlap_ms\": {:.3} }},\n    {{ \"id\": \"h2d_pipeline_oversub\", \"capacity_bytes\": {capacity}, \"sync_wait_ms\": {:.3}, \"async_wait_ms\": {:.3} }}\n  ]\n}}\n",
            sync_wait as f64 / 1e6,
            async_wait as f64 / 1e6,
            async_overlap as f64 / 1e6,
            pipe_wait[0] as f64 / 1e6,
            pipe_wait[1] as f64 / 1e6,
        );
        std::fs::write(&report_path, json).expect("write BENCH_h2d_overlap.json");
        println!("wrote {}", report_path.display());
        return ExitCode::SUCCESS;
    }

    match std::fs::read_to_string(&report_path) {
        Err(e) => violations.push(format!("cannot read {}: {e}", report_path.display())),
        Ok(text) => {
            for id in ["h2d_stall", "h2d_pipeline_oversub"] {
                if !text.contains(&format!("\"id\": \"{id}\"")) {
                    violations.push(format!("BENCH_h2d_overlap.json has no {id} entry"));
                }
            }
        }
    }

    if violations.is_empty() {
        println!(
            "h2d overlap gate PASS (>= {MIN_STALL_REDUCTION}x stall reduction, overlap floor met, \
             bit-identical divQ across 32 shape runs + oversubscription, zero meter drift)"
        );
        ExitCode::SUCCESS
    } else {
        println!("h2d overlap gate FAIL:");
        for v in &violations {
            println!("  - {v}");
        }
        println!("(if the change is intentional, regenerate with: cargo run -p rmcrt-bench --release --bin h2d_overlap_gate -- --update)");
        ExitCode::FAILURE
    }
}
