//! E6 — Monte Carlo accuracy study: error in ∇·q vs rays per cell on the
//! Burns & Christon benchmark (the expected 1/√N convergence the paper
//! cites from Hunsaker et al.).
//!
//! ```text
//! cargo run -p rmcrt-bench --release --bin convergence
//! ```

use uintah::prelude::*;

fn main() {
    let n = 12;
    let grid = BurnsChriston::small_grid(n, 4.min(n / 2));
    let problem = BurnsChriston::default();
    let props = problem.props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];

    // Reference: high-ray-count solve on a sample of cells.
    let cells: Vec<IntVector> = Region::cube(n)
        .cells()
        .filter(|c| (c.x + 2 * c.y + 3 * c.z) % 5 == 0)
        .collect();
    let solve = |nrays: u32, seed: u64| -> Vec<f64> {
        cells
            .iter()
            .map(|&c| {
                div_q_for_cell(
                    &stack,
                    c,
                    &RmcrtParams {
                        nrays,
                        threshold: 1e-5,
                        seed,
                        timestep: 0,
                        sampling: Default::default(),
                        ray_count: None,
                    },
                )
            })
            .collect()
    };
    println!("Burns & Christon {n}³, ∇·q RMS error vs rays/cell ({} sample cells)\n", cells.len());
    let reference = solve(16384, 99);
    println!("{:>8} | {:>12} | {:>18}", "rays", "RMS error", "error·√N (flat ⇒ 1/√N)");
    let mut prev: Option<f64> = None;
    for nrays in [4u32, 16, 64, 256, 1024] {
        let got = solve(nrays, 12345);
        let rms = (got
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / got.len() as f64)
            .sqrt();
        let scaled = rms * (nrays as f64).sqrt();
        let note = match prev {
            Some(p) => format!("(x{:.2} vs 4x rays ⇒ ideal 2.00)", p / rms),
            None => String::new(),
        };
        println!("{:>8} | {:>12.6} | {:>12.4}  {note}", nrays, rms, scaled);
        prev = Some(rms);
    }
    println!("\nThe paper's benchmarks use 100 rays/cell — the knee of this curve where");
    println!("per-timestep noise is acceptable for the loosely-coupled energy equation.");
}
