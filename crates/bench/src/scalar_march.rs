//! Frozen copy of the pre-packet scalar ray marcher — the performance
//! baseline for the `ray_march` benchmark and the `ray_march_gate` bin.
//!
//! This is the per-ray Amanatides–Woo DDA exactly as `rmcrt_core::trace`
//! implemented it before the SoA packet engine (`rmcrt_core::packet`)
//! replaced it: `roi.contains` per cell step, `CcVariable` index operators
//! per property access, DDA setup re-derived per level segment. Do NOT
//! "fix" or modernise this module — its whole value is staying identical
//! to the historical implementation so packet-vs-scalar speedups stay
//! honest across future sessions.

use rmcrt_core::solver::RmcrtParams;
use rmcrt_core::sampling::DirectionSampler;
use rmcrt_core::trace::{TraceLevel, TraceOptions};
use rmcrt_core::CellRng;
use std::f64::consts::PI;
use uintah_grid::{CcVariable, IntVector, Point, Region, Vector};

enum Outcome {
    Extinguished,
    HitWall {
        hit: Point,
        axis: usize,
        emissivity: f64,
    },
    ExitedRoi(Point),
}

struct RayState {
    tau: f64,
    exp_prev: f64,
    sum_i: f64,
    weight: f64,
}

impl RayState {
    #[inline]
    fn transmissivity(&self) -> f64 {
        self.weight * self.exp_prev
    }
}

fn march_level(
    level: &TraceLevel<'_>,
    pos: Point,
    dir: Vector,
    state: &mut RayState,
    threshold: f64,
) -> Outcome {
    let props = level.props;
    let dx = props.dx;
    let mut cur = props.cell_containing(pos);

    let mut step = IntVector::ZERO;
    let mut t_max = Vector::ZERO;
    let mut t_delta = Vector::ZERO;
    let lo = props.cell_lo(cur);
    for a in 0..3 {
        let d = dir[a];
        let (s, tm, td) = if d > 0.0 {
            (1, (lo[a] + dx[a] - pos[a]) / d, dx[a] / d)
        } else if d < 0.0 {
            (-1, (lo[a] - pos[a]) / d, -dx[a] / d)
        } else {
            (0, f64::INFINITY, f64::INFINITY)
        };
        step[a] = s;
        match a {
            0 => {
                t_max.x = tm;
                t_delta.x = td;
            }
            1 => {
                t_max.y = tm;
                t_delta.y = td;
            }
            2 => {
                t_max.z = tm;
                t_delta.z = td;
            }
            _ => unreachable!(),
        }
    }

    let mut traveled = 0.0;
    loop {
        let axis = if t_max.x < t_max.y {
            if t_max.x < t_max.z {
                0
            } else {
                2
            }
        } else if t_max.y < t_max.z {
            1
        } else {
            2
        };
        let t_hit = t_max[axis];
        let dis = t_hit - traveled;
        traveled = t_hit;
        match axis {
            0 => t_max.x += t_delta.x,
            1 => t_max.y += t_delta.y,
            _ => t_max.z += t_delta.z,
        }

        state.tau += props.abskg[cur] * dis;
        let exp_cur = (-state.tau).exp();
        state.sum_i += state.weight * props.sigma_t4_over_pi[cur] * (state.exp_prev - exp_cur);
        state.exp_prev = exp_cur;
        if state.weight * exp_cur < threshold {
            return Outcome::Extinguished;
        }

        cur[axis] += step[axis];

        if !level.roi.contains(cur) {
            let eps = 1e-10 * dx.min_component().clamp(1e-12, 1.0);
            let exit = pos + dir * (traveled + eps);
            return Outcome::ExitedRoi(exit);
        }
        if props.is_wall(cur) {
            state.sum_i +=
                state.weight * props.abskg[cur] * props.sigma_t4_over_pi[cur] * state.exp_prev;
            return Outcome::HitWall {
                hit: pos + dir * traveled,
                axis,
                emissivity: props.abskg[cur],
            };
        }
    }
}

/// The historical `trace_ray`.
pub fn trace_ray_scalar(levels: &[TraceLevel<'_>], origin: Point, dir: Vector, threshold: f64) -> f64 {
    trace_ray_with_options_scalar(
        levels,
        origin,
        dir,
        TraceOptions {
            threshold,
            max_reflections: 0,
        },
    )
}

/// The historical `trace_ray_with_options`.
pub fn trace_ray_with_options_scalar(
    levels: &[TraceLevel<'_>],
    origin: Point,
    dir: Vector,
    opts: TraceOptions,
) -> f64 {
    let mut state = RayState {
        tau: 0.0,
        exp_prev: 1.0,
        sum_i: 0.0,
        weight: 1.0,
    };
    let mut li = levels.len() - 1;
    let mut pos = origin;
    let mut dir = dir;
    let mut reflections = 0u32;
    loop {
        match march_level(&levels[li], pos, dir, &mut state, opts.threshold) {
            Outcome::Extinguished => return state.sum_i,
            Outcome::HitWall {
                hit,
                axis,
                emissivity,
            } => {
                let reflectivity = 1.0 - emissivity;
                if reflections >= opts.max_reflections
                    || reflectivity <= 0.0
                    || state.transmissivity() * reflectivity < opts.threshold
                {
                    return state.sum_i;
                }
                reflections += 1;
                state.weight *= reflectivity;
                match axis {
                    0 => dir.x = -dir.x,
                    1 => dir.y = -dir.y,
                    _ => dir.z = -dir.z,
                }
                let eps = 1e-10 * levels[li].props.dx.min_component().clamp(1e-12, 1.0);
                pos = hit + dir * eps;
            }
            Outcome::ExitedRoi(exit) => {
                loop {
                    if li == 0 {
                        return state.sum_i;
                    }
                    li -= 1;
                    let cell = levels[li].props.cell_containing(exit);
                    if levels[li].roi.contains(cell) {
                        if levels[li].props.is_wall(cell) {
                            let p = levels[li].props;
                            state.sum_i += state.weight
                                * p.abskg[cell]
                                * p.sigma_t4_over_pi[cell]
                                * state.exp_prev;
                            return state.sum_i;
                        }
                        break;
                    }
                }
                pos = exit;
            }
        }
    }
}

/// The historical per-cell ∇·q: same RNG stream and draw order as the
/// packet solver's fixed mode, but each ray marched by the scalar DDA.
pub fn div_q_for_cell_scalar(
    levels: &[TraceLevel<'_>],
    cell: IntVector,
    params: &RmcrtParams,
) -> f64 {
    let fine = levels.last().expect("empty stack").props;
    let kappa = fine.abskg[cell];
    if kappa == 0.0 {
        return 0.0;
    }
    let mut perm_rng = CellRng::new(params.seed, cell, u32::MAX, params.timestep);
    let sampler = DirectionSampler::new(params.sampling, params.nrays, &mut perm_rng);
    let mut sum_i = 0.0;
    for r in 0..params.nrays {
        let mut rng = CellRng::new(params.seed, cell, r, params.timestep);
        let dir = sampler.direction(r, &mut rng);
        let origin = rng.point_in_cell(fine.cell_lo(cell), fine.dx);
        sum_i += trace_ray_scalar(levels, origin, dir, params.threshold);
    }
    let mean_i = sum_i / params.nrays as f64;
    4.0 * PI * kappa * (fine.sigma_t4_over_pi[cell] - mean_i)
}

/// The historical region solve (serial).
pub fn solve_region_scalar(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
) -> CcVariable<f64> {
    let mut out = CcVariable::<f64>::new(region);
    for c in region.cells() {
        out[c] = div_q_for_cell_scalar(levels, c, params);
    }
    out
}
