//! The measured-calibration scaling campaign (E2/E3/E12).
//!
//! One pipeline from a *real* executor run to the paper's scaling figures:
//!
//! 1. [`calibrate_live`] runs a small Burns–Christon problem through the
//!    actual `uintah-runtime` scheduler (2 ranks × 2 threads, simulated
//!    GPU fleet, persistent executor) and folds the per-step [`ExecStats`]
//!    into one [`CalibrationSnapshot`] — the single source of machine
//!    rates. `MachineParams::from_snapshot` rescales the measured host
//!    rates onto the Titan / Summit device models, and the measured
//!    per-patch wall costs become a [`CostProfile`] so the discrete-event
//!    simulation marches a *measured* cost distribution, not a uniform
//!    analytic one.
//! 2. [`strong_scaling`] sweeps a [`SweepSpec`] (problem × patch sizes ×
//!    GPU counts) through `scaling_curve_with`, yielding [`Curve`]s with
//!    real per-doubling parallel efficiencies (Eq. 3) and knee detection —
//!    no magic time-ratio thresholds.
//! 3. [`CampaignReport`] serializes the sweeps plus the gate efficiencies
//!    to `BENCH_scaling.json`; `report_from_json` parses it back so the
//!    `scaling_gate` bin can diff a fresh campaign against the checked-in
//!    file within tolerance (verify.sh runs this).
//!
//! [`ExecStats`]: uintah_runtime::ExecStats

use std::sync::Arc;
use titan_sim::sim::{scaling_curve_with, CostProfile, ScalingPoint};
use titan_sim::CalibrationScale;
use uintah::prelude::*;
use uintah_runtime::CalibrationSnapshot;

pub mod json;

// ---------------------------------------------------------------------------
// Sweep descriptors
// ---------------------------------------------------------------------------

/// One of the paper's 2-level benchmark problems (RR 4, 100 rays/cell).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Problem {
    pub name: &'static str,
    /// Fine-mesh cells per edge (coarse is `fine / 4`).
    pub fine: i32,
    /// Fine-level ROI halo in cells.
    pub halo: i32,
}

impl Problem {
    /// MEDIUM: 256³ fine / 64³ coarse (Figure 2).
    pub fn medium() -> Self {
        Self { name: "MEDIUM", fine: 256, halo: 4 }
    }

    /// LARGE: 512³ fine / 128³ coarse (Figure 3).
    pub fn large() -> Self {
        Self { name: "LARGE", fine: 512, halo: 4 }
    }

    /// Build the 2-level grid for a given fine patch size.
    pub fn grid(&self, patch: i32) -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(self.fine))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build()
    }

    /// Total fine patches at a given patch size.
    pub fn total_patches(&self, patch: i32) -> usize {
        let n = (self.fine / patch) as usize;
        n * n * n
    }
}

/// A strong-scaling sweep: one problem, several patch-size curves, one
/// shared GPU-count axis.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    pub name: &'static str,
    pub problem: Problem,
    pub patch_sizes: Vec<i32>,
    pub gpu_counts: Vec<usize>,
}

impl SweepSpec {
    /// Figure 2: MEDIUM, 16³/32³/64³ patches, 16 → 16384 GPUs.
    pub fn fig2_medium() -> Self {
        Self {
            name: "fig2_medium",
            problem: Problem::medium(),
            patch_sizes: vec![16, 32, 64],
            gpu_counts: vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384],
        }
    }

    /// Figure 3: LARGE, 16³/32³/64³ patches, 512 → 16384 GPUs.
    pub fn fig3_large() -> Self {
        Self {
            name: "fig3_large",
            problem: Problem::large(),
            patch_sizes: vec![16, 32, 64],
            gpu_counts: vec![512, 1024, 2048, 4096, 8192, 16384],
        }
    }

    /// The regression gate's sweep: the LARGE 16³-patch curve (the one the
    /// paper quotes its headline efficiencies on) over the full GPU range.
    pub fn gate_large() -> Self {
        Self {
            name: "gate_large16",
            problem: Problem::large(),
            patch_sizes: vec![16],
            gpu_counts: vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384],
        }
    }

    /// Summit projection: LARGE on the 16³/32³ curves (E11 forward look).
    pub fn summit_large() -> Self {
        Self {
            name: "summit_large",
            problem: Problem::large(),
            patch_sizes: vec![16, 32],
            gpu_counts: vec![512, 1024, 2048, 4096, 8192, 16384],
        }
    }
}

// ---------------------------------------------------------------------------
// Live calibration
// ---------------------------------------------------------------------------

/// Measured machine rates plus the measured per-patch cost distribution,
/// derived from one [`CalibrationSnapshot`].
#[derive(Clone, Debug)]
pub struct Calibration {
    pub snapshot: CalibrationSnapshot,
    /// Titan model with CPU/GPU/PCIe/message rates replaced by measured
    /// values rescaled through [`CalibrationScale::host_to_titan`].
    pub titan: MachineParams,
    /// Summit model rescaled through [`CalibrationScale::host_to_summit`].
    pub summit: MachineParams,
    /// Measured per-patch cost spread, normalized to mean 1.
    pub profile: CostProfile,
    /// Cell-steps represented by one kernel invocation of the
    /// calibration run (rays/cell × mean steps/ray for its geometry).
    pub cellsteps_per_invocation: f64,
}

/// Geometry of the calibration run (kept small so every bench bin can
/// afford a real executor run at startup).
const CAL_FINE: i32 = 16;
const CAL_PATCH: i32 = 8;
const CAL_HALO: i32 = 2;
const CAL_NRAYS: u32 = 8;
const CAL_STEPS: usize = 3;

/// Run the small calibration problem through the real runtime and derive
/// both machine models and the measured cost profile from its snapshot.
pub fn calibrate_live() -> Calibration {
    let grid = Arc::new(BurnsChriston::small_grid(CAL_FINE, CAL_PATCH));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: CAL_NRAYS,
            ..Default::default()
        },
        halo: CAL_HALO,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));
    let result = run_world(
        Arc::clone(&grid),
        decls,
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: CAL_STEPS,
            gpu_capacity: Some(1 << 30),
            ..Default::default()
        },
    );
    from_snapshot(result.calibration_snapshot())
}

/// Derive a [`Calibration`] from an existing snapshot (e.g. the checked-in
/// `CALIBRATION.snapshot`), assuming the standard calibration geometry.
pub fn from_snapshot(snapshot: CalibrationSnapshot) -> Calibration {
    // Mean chord model of the calibration run: ROI = patch + 2·halo cells
    // across, coarse level fine/4 across.
    let roi_1d = (CAL_PATCH + 2 * CAL_HALO) as f64;
    let coarse_1d = (CAL_FINE / 4) as f64;
    let steps_per_ray = MachineParams::titan().steps_per_ray(roi_1d, coarse_1d);
    let cspi = CAL_NRAYS as f64 * steps_per_ray;
    let titan = MachineParams::from_snapshot(
        MachineParams::titan(),
        &snapshot,
        &CalibrationScale::host_to_titan(cspi),
    );
    let summit = MachineParams::from_snapshot(
        MachineParams::summit(),
        &snapshot,
        &CalibrationScale::host_to_summit(cspi),
    );
    let profile = CostProfile::from_snapshot(&snapshot);
    Calibration {
        snapshot,
        titan,
        summit,
        profile,
        cellsteps_per_invocation: cspi,
    }
}

impl Calibration {
    /// One-line summary for bench-bin headers.
    pub fn summary(&self) -> String {
        let k = self.snapshot.kernel_totals();
        format!(
            "calibrated from {} kernel invocations over {} steps: \
             host {:.2e} cellsteps/s -> titan GPU {:.2e}, PCIe {:.2} GB/s, \
             msg {:.2} us, patch-cost spread {:.2}x over {} patches",
            k.invocations,
            self.snapshot.steps,
            self.titan.gpu_cellsteps_per_s / 30.0,
            self.titan.gpu_cellsteps_per_s,
            self.titan.pcie_bw / 1e9,
            self.titan.msg_cpu_cost * 1e6,
            self.profile.spread(),
            self.profile.len(),
        )
    }
}

// ---------------------------------------------------------------------------
// Curves and efficiency tables
// ---------------------------------------------------------------------------

/// One patch-size curve of a strong-scaling sweep.
#[derive(Clone, Debug)]
pub struct Curve {
    pub patch: i32,
    pub points: Vec<ScalingPoint>,
}

impl Curve {
    pub fn point_at(&self, gpus: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.gpus == gpus)
    }

    pub fn time_at(&self, gpus: usize) -> Option<f64> {
        self.point_at(gpus).map(|p| p.time)
    }

    /// Strong-scaling efficiency (Eq. 3) between two GPU counts on this
    /// curve: `E = (t_a·n_a)/(t_b·n_b)`.
    pub fn efficiency_between(&self, a: usize, b: usize) -> Option<f64> {
        let pa = self.point_at(a)?;
        let pb = self.point_at(b)?;
        Some(titan_sim::sim::efficiency(pa, pb))
    }

    /// Parallel efficiency of each successive doubling: `(gpus_after, E)`.
    pub fn per_doubling(&self) -> Vec<(usize, f64)> {
        self.points
            .windows(2)
            .filter(|w| w[1].gpus == 2 * w[0].gpus)
            .map(|w| (w[1].gpus, titan_sim::sim::efficiency(&w[0], &w[1])))
            .collect()
    }

    /// First GPU count whose doubling drops below `threshold` parallel
    /// efficiency — the scaling knee. `None` = scales across the sweep.
    pub fn knee(&self, threshold: f64) -> Option<usize> {
        self.per_doubling()
            .into_iter()
            .find(|&(_, e)| e < threshold)
            .map(|(g, _)| g)
    }

    /// Efficiency of every point relative to the first (Eq. 3 vs the
    /// smallest GPU count of the sweep).
    pub fn efficiency_vs_first(&self) -> Vec<f64> {
        match self.points.first() {
            None => Vec::new(),
            Some(first) => self
                .points
                .iter()
                .map(|p| titan_sim::sim::efficiency(first, p))
                .collect(),
        }
    }
}

/// A completed sweep on one machine model.
#[derive(Clone, Debug)]
pub struct Sweep {
    pub spec: SweepSpec,
    /// Which machine model produced it ("titan" / "summit").
    pub machine: String,
    pub curves: Vec<Curve>,
}

/// Run a strong-scaling sweep: one `scaling_curve_with` per patch size,
/// marching the measured cost profile.
pub fn strong_scaling(
    spec: &SweepSpec,
    params: &MachineParams,
    machine: &str,
    profile: &CostProfile,
) -> Sweep {
    let curves = spec
        .patch_sizes
        .iter()
        .map(|&patch| Curve {
            patch,
            points: scaling_curve_with(
                &spec.problem.grid(patch),
                &spec.gpu_counts,
                spec.problem.halo,
                params,
                StoreModel::WaitFreePool,
                profile,
            ),
        })
        .collect();
    Sweep {
        spec: spec.clone(),
        machine: machine.to_string(),
        curves,
    }
}

/// Print a sweep as the familiar per-patch-size table, with per-doubling
/// knees derived from real Eq.-3 efficiencies.
pub fn print_sweep(sweep: &Sweep, knee_threshold: f64) {
    print!("{:>7} |", "GPUs");
    for c in &sweep.curves {
        print!(" {:>10}", format!("{}³ (s)", c.patch));
    }
    println!();
    for (i, &n) in sweep.spec.gpu_counts.iter().enumerate() {
        print!("{n:>7} |");
        for c in &sweep.curves {
            print!(" {:>10.4}", c.points[i].time);
        }
        println!();
    }
    println!();
    for c in &sweep.curves {
        let knee = c.knee(knee_threshold);
        println!(
            "  {:>2}³ patches: scaling knee (first doubling below {:.0}% efficiency) {}",
            c.patch,
            knee_threshold * 100.0,
            knee.map(|k| format!("at {k} GPUs"))
                .unwrap_or_else(|| format!(
                    "beyond {}",
                    sweep.spec.gpu_counts.last().copied().unwrap_or(0)
                )),
        );
    }
}

// ---------------------------------------------------------------------------
// Communication-growth study (the weak-scaling bin)
// ---------------------------------------------------------------------------

/// Total all-to-all messages and bytes across all ranks, from the real
/// census (sampled over ranks; the distribution is balanced).
pub fn census_totals(fine: i32, patch: i32, nranks: usize, halo: i32) -> (usize, u64) {
    let grid = Grid::builder()
        .fine_cells(IntVector::splat(fine))
        .num_levels(2)
        .refinement_ratio(4)
        .fine_patch_size(IntVector::splat(patch))
        .build();
    let dist = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
    let sample: Vec<usize> = (0..nranks).step_by((nranks / 8).max(1)).collect();
    let mut msgs = 0usize;
    let mut bytes = 0u64;
    for &r in &sample {
        let c = titan_sim::rank_census(&grid, &dist, r, halo);
        msgs += c.msgs_sent();
        bytes += c.bytes_sent();
    }
    let scale = nranks as f64 / sample.len() as f64;
    ((msgs as f64 * scale) as usize, (bytes as f64 * scale) as u64)
}

/// One row of the communication-growth study.
#[derive(Clone, Copy, Debug)]
pub struct CommGrowthRow {
    pub nranks: usize,
    pub fine: i32,
    pub msgs: usize,
    pub bytes: u64,
}

/// Weak scaling: constant 16 patches (64³ cells) per rank; `N = 4^k` keeps
/// the grid integral. Message totals grow ~N².
pub fn comm_growth_weak(levels: u32) -> Vec<CommGrowthRow> {
    (0..levels)
        .map(|k| {
            let nranks = 4usize.pow(k);
            let fine = 64 * 2i32.pow(k);
            let (msgs, bytes) = census_totals(fine, 16, nranks, 4);
            CommGrowthRow { nranks, fine, msgs, bytes }
        })
        .collect()
}

/// Strong scaling: fixed problem on growing rank counts. Message totals
/// grow ~N.
pub fn comm_growth_strong(fine: i32, rank_counts: &[usize]) -> Vec<CommGrowthRow> {
    rank_counts
        .iter()
        .map(|&nranks| {
            let (msgs, bytes) = census_totals(fine, 16, nranks, 4);
            CommGrowthRow { nranks, fine, msgs, bytes }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Campaign report: JSON emission + parsing + the regression gate
// ---------------------------------------------------------------------------

/// The gate's headline numbers, all on the LARGE 16³-patch curve (the one
/// the paper quotes Eq.-3 efficiencies on).
#[derive(Clone, Debug, PartialEq)]
pub struct GateNumbers {
    pub gpu_counts: Vec<usize>,
    /// Eq.-3 efficiency of each point vs the 16-GPU baseline.
    pub efficiency_vs_first: Vec<f64>,
    pub eff_16_to_2048: f64,
    pub eff_4096_to_8192: f64,
    pub eff_4096_to_16384: f64,
    /// First doubling below 90% efficiency; 0 = beyond the sweep.
    pub knee: usize,
}

impl GateNumbers {
    /// Extract the gate numbers from a completed gate sweep.
    pub fn from_sweep(sweep: &Sweep) -> GateNumbers {
        let c = &sweep.curves[0];
        GateNumbers {
            gpu_counts: sweep.spec.gpu_counts.clone(),
            efficiency_vs_first: c.efficiency_vs_first(),
            eff_16_to_2048: c.efficiency_between(16, 2048).unwrap_or(0.0),
            eff_4096_to_8192: c.efficiency_between(4096, 8192).unwrap_or(0.0),
            eff_4096_to_16384: c.efficiency_between(4096, 16384).unwrap_or(0.0),
            knee: c.knee(KNEE_THRESHOLD).unwrap_or(0),
        }
    }
}

/// Per-doubling efficiency below this marks the scaling knee.
pub const KNEE_THRESHOLD: f64 = 0.90;
/// Absolute tolerance on gate efficiencies between a fresh campaign and
/// the checked-in report (re-measured rates shift the comm/compute
/// balance slightly; the shape must not move more than this).
pub const GATE_TOLERANCE: f64 = 0.08;

/// Everything `BENCH_scaling.json` records.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    pub sweeps: Vec<Sweep>,
    pub gate: GateNumbers,
}

impl CampaignReport {
    /// Serialize to the checked-in JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"format\": \"rmcrt-scaling-campaign\",\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str("  \"sweeps\": [\n");
        for (i, sw) in self.sweeps.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sw.spec.name));
            s.push_str(&format!("      \"machine\": \"{}\",\n", sw.machine));
            s.push_str(&format!("      \"problem\": \"{}\",\n", sw.spec.problem.name));
            s.push_str(&format!("      \"fine\": {},\n", sw.spec.problem.fine));
            s.push_str(&format!("      \"halo\": {},\n", sw.spec.problem.halo));
            s.push_str(&format!(
                "      \"gpu_counts\": {},\n",
                json::fmt_usize_array(&sw.spec.gpu_counts)
            ));
            s.push_str("      \"curves\": [\n");
            for (j, c) in sw.curves.iter().enumerate() {
                let times: Vec<f64> = c.points.iter().map(|p| p.time).collect();
                s.push_str("        {");
                s.push_str(&format!("\"patch\": {}, ", c.patch));
                s.push_str(&format!("\"knee\": {}, ", c.knee(KNEE_THRESHOLD).unwrap_or(0)));
                s.push_str(&format!("\"time_s\": {}", json::fmt_f64_array(&times)));
                s.push_str(if j + 1 < sw.curves.len() { "},\n" } else { "}\n" });
            }
            s.push_str("      ]\n");
            s.push_str(if i + 1 < self.sweeps.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"gate\": {\n");
        s.push_str("    \"problem\": \"LARGE\",\n");
        s.push_str("    \"patch\": 16,\n");
        s.push_str(&format!(
            "    \"gpu_counts\": {},\n",
            json::fmt_usize_array(&self.gate.gpu_counts)
        ));
        s.push_str(&format!(
            "    \"efficiency_vs_first\": {},\n",
            json::fmt_f64_array(&self.gate.efficiency_vs_first)
        ));
        s.push_str(&format!("    \"eff_16_to_2048\": {},\n", json::fmt_f64(self.gate.eff_16_to_2048)));
        s.push_str(&format!("    \"eff_4096_to_8192\": {},\n", json::fmt_f64(self.gate.eff_4096_to_8192)));
        s.push_str(&format!(
            "    \"eff_4096_to_16384\": {},\n",
            json::fmt_f64(self.gate.eff_4096_to_16384)
        ));
        s.push_str(&format!("    \"knee\": {}\n", self.gate.knee));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

/// Parse the gate numbers back out of a `BENCH_scaling.json` document.
pub fn gate_from_json(text: &str) -> Result<GateNumbers, String> {
    let doc = json::parse(text)?;
    let root = doc.as_object().ok_or("root is not an object")?;
    let format = json::get_str(root, "format")?;
    if format != "rmcrt-scaling-campaign" {
        return Err(format!("unexpected format {format:?}"));
    }
    let gate = json::get(root, "gate")?.as_object().ok_or("gate is not an object")?;
    Ok(GateNumbers {
        gpu_counts: json::get_usize_array(gate, "gpu_counts")?,
        efficiency_vs_first: json::get_f64_array(gate, "efficiency_vs_first")?,
        eff_16_to_2048: json::get_f64(gate, "eff_16_to_2048")?,
        eff_4096_to_8192: json::get_f64(gate, "eff_4096_to_8192")?,
        eff_4096_to_16384: json::get_f64(gate, "eff_4096_to_16384")?,
        knee: json::get_f64(gate, "knee")? as usize,
    })
}

/// Compare a freshly computed gate against the checked-in one. Returns the
/// list of violations (empty = pass).
pub fn gate_violations(fresh: &GateNumbers, checked_in: &GateNumbers) -> Vec<String> {
    let mut v = Vec::new();
    // Hard floors — the paper's shape, independent of the checked-in file.
    if fresh.eff_16_to_2048 < 0.90 {
        v.push(format!(
            "LARGE 16³: efficiency 16→2048 GPUs is {:.3}, below the 0.90 floor",
            fresh.eff_16_to_2048
        ));
    }
    if fresh.knee != 0 && fresh.knee <= 8192 {
        v.push(format!(
            "LARGE 16³: scaling knee at {} GPUs (must stay beyond 8192)",
            fresh.knee
        ));
    }
    // Regression vs the checked-in campaign, within tolerance.
    if fresh.gpu_counts != checked_in.gpu_counts {
        v.push("gate GPU-count axis changed; rerun with --update".into());
        return v;
    }
    for (pair, a, b) in [
        ("16→2048", fresh.eff_16_to_2048, checked_in.eff_16_to_2048),
        ("4096→8192", fresh.eff_4096_to_8192, checked_in.eff_4096_to_8192),
        ("4096→16384", fresh.eff_4096_to_16384, checked_in.eff_4096_to_16384),
    ] {
        if (a - b).abs() > GATE_TOLERANCE {
            v.push(format!(
                "efficiency {pair} moved: fresh {a:.3} vs checked-in {b:.3} (tolerance {GATE_TOLERANCE})"
            ));
        }
    }
    for (i, (a, b)) in fresh
        .efficiency_vs_first
        .iter()
        .zip(&checked_in.efficiency_vs_first)
        .enumerate()
    {
        if (a - b).abs() > GATE_TOLERANCE {
            v.push(format!(
                "efficiency vs 16 GPUs at {} GPUs moved: fresh {a:.3} vs checked-in {b:.3}",
                fresh.gpu_counts[i]
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_gate_sweep() -> Sweep {
        let spec = SweepSpec::gate_large();
        // Synthetic, perfectly scaling curve with a knee at 16384.
        let points: Vec<ScalingPoint> = spec
            .gpu_counts
            .iter()
            .map(|&g| {
                let perfect = 1024.0 / g as f64;
                let time = if g >= 16384 { perfect * 1.3 } else { perfect };
                synthetic_point(g, time)
            })
            .collect();
        Sweep {
            spec,
            machine: "titan".into(),
            curves: vec![Curve { patch: 16, points }],
        }
    }

    fn synthetic_point(gpus: usize, time: f64) -> ScalingPoint {
        let grid = BurnsChriston::small_grid(16, 8);
        let dist = PatchDistribution::new(&grid, 1, DistributionPolicy::MortonSfc);
        let census = titan_sim::rank_census(&grid, &dist, 0, 2);
        ScalingPoint {
            gpus,
            patch_size: 16,
            time,
            breakdown: Default::default(),
            census,
        }
    }

    #[test]
    fn per_doubling_and_knee() {
        let sweep = fake_gate_sweep();
        let c = &sweep.curves[0];
        let pd = c.per_doubling();
        assert_eq!(pd.len(), c.points.len() - 1);
        for &(g, e) in &pd {
            if g < 16384 {
                assert!((e - 1.0).abs() < 1e-12, "perfect doubling at {g}: {e}");
            }
        }
        assert_eq!(c.knee(0.90), Some(16384));
        assert_eq!(c.efficiency_between(16, 2048), Some(1.0));
    }

    #[test]
    fn report_json_round_trips_gate_numbers() {
        let sweep = fake_gate_sweep();
        let gate = GateNumbers::from_sweep(&sweep);
        let report = CampaignReport { sweeps: vec![sweep], gate: gate.clone() };
        let text = report.to_json();
        let parsed = gate_from_json(&text).expect("parse emitted json");
        assert_eq!(parsed.gpu_counts, gate.gpu_counts);
        assert_eq!(parsed.knee, gate.knee);
        assert!((parsed.eff_16_to_2048 - gate.eff_16_to_2048).abs() < 1e-12);
        for (a, b) in parsed.efficiency_vs_first.iter().zip(&gate.efficiency_vs_first) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(gate_violations(&gate, &parsed).is_empty());
    }

    #[test]
    fn gate_flags_regressions() {
        let sweep = fake_gate_sweep();
        let good = GateNumbers::from_sweep(&sweep);
        let mut bad = good.clone();
        bad.eff_16_to_2048 = 0.70; // below floor AND outside tolerance
        let v = gate_violations(&bad, &good);
        assert!(v.iter().any(|m| m.contains("0.90 floor")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("16→2048")), "{v:?}");
        let mut knee_bad = good.clone();
        knee_bad.knee = 4096;
        assert!(!gate_violations(&knee_bad, &good).is_empty());
    }

    #[test]
    fn problem_patch_counts() {
        assert_eq!(Problem::large().total_patches(16), 32768);
        assert_eq!(Problem::large().total_patches(64), 512);
        assert_eq!(Problem::medium().total_patches(16), 4096);
    }
}
