//! Minimal JSON emitter/parser for `BENCH_scaling.json`.
//!
//! The workspace is offline and serde was pruned in PR 1, so the campaign
//! report hand-rolls its document: a tiny recursive-descent parser over
//! the JSON subset we emit (objects, arrays, strings without escapes,
//! numbers, and the bare words true/false/null). Good enough to read our
//! own output back for the regression gate; not a general JSON library.

use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

// -- lookup helpers ---------------------------------------------------------

pub fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

pub fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{key:?} is not a string"))
}

pub fn get_f64(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("{key:?} is not a number"))
}

pub fn get_f64_array(obj: &BTreeMap<String, Json>, key: &str) -> Result<Vec<f64>, String> {
    get(obj, key)?
        .as_array()
        .ok_or_else(|| format!("{key:?} is not an array"))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| format!("{key:?} has a non-number element")))
        .collect()
}

pub fn get_usize_array(obj: &BTreeMap<String, Json>, key: &str) -> Result<Vec<usize>, String> {
    Ok(get_f64_array(obj, key)?.into_iter().map(|f| f as usize).collect())
}

// -- emission helpers -------------------------------------------------------

/// Format a float so it parses back bit-identically (shortest via `{}`,
/// which Rust guarantees round-trips f64).
pub fn fmt_f64(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}") // keep "1.0" a JSON float, not an int
    } else {
        format!("{x}")
    }
}

pub fn fmt_f64_array(xs: &[f64]) -> String {
    let body: Vec<String> = xs.iter().map(|&x| fmt_f64(x)).collect();
    format!("[{}]", body.join(", "))
}

pub fn fmt_usize_array(xs: &[usize]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(", "))
}

// -- parser -----------------------------------------------------------------

pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn peek(b: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(b, pos);
    b.get(*pos).copied()
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match peek(b, pos).ok_or("unexpected end of input")? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => parse_word(b, pos, "true", Json::Bool(true)),
        b'f' => parse_word(b, pos, "false", Json::Bool(false)),
        b'n' => parse_word(b, pos, "null", Json::Null),
        _ => parse_number(b, pos),
    }
}

fn parse_word(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    if peek(b, pos) == Some(b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    if peek(b, pos) == Some(b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let start = *pos;
    while *pos < b.len() && b[*pos] != b'"' {
        if b[*pos] == b'\\' {
            return Err("string escapes are not supported".into());
        }
        *pos += 1;
    }
    if *pos >= b.len() {
        return Err("unterminated string".into());
    }
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| "invalid utf-8 in string".to_string())?
        .to_string();
    *pos += 1;
    Ok(s)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_subset() {
        let doc = r#"{ "a": [1, 2.5, -3e2], "b": {"c": "hi", "d": true}, "e": null }"#;
        let v = parse(doc).unwrap();
        let root = v.as_object().unwrap();
        assert_eq!(get_f64_array(root, "a").unwrap(), vec![1.0, 2.5, -300.0]);
        let b = get(root, "b").unwrap().as_object().unwrap();
        assert_eq!(get_str(b, "c").unwrap(), "hi");
        assert_eq!(get(root, "e").unwrap(), &Json::Null);
    }

    #[test]
    fn f64_formatting_round_trips() {
        for x in [0.0, 1.0, 0.9634, 1.0 / 3.0, 123456.789, 1e-12] {
            let s = fmt_f64(x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{}{}").is_err());
    }
}
