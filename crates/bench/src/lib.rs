//! Shared helpers for the benchmark harnesses (`src/bin/*`) that
//! regenerate every table and figure of the paper, and for the criterion
//! microbenchmarks (`benches/*`). See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded results.

pub mod campaign;
pub mod scalar_march;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah::comm::{RequestStore, Tag};
use uintah::prelude::CommWorld;

/// Drive a request store with `nmsgs` messages processed by `nthreads`
/// workers while a producer sends; returns the wall time of the
/// post-and-process phase (the paper's "local communication time").
pub fn drive_store<S: RequestStore + 'static>(store: Arc<S>, nthreads: usize, nmsgs: usize) -> Duration {
    let world = CommWorld::new(2);
    let tx = world.communicator(0);
    let rx = world.communicator(1);
    // Post all receives (this is part of local comm in Uintah).
    let t0 = Instant::now();
    for i in 0..nmsgs {
        store.add(rx.irecv(0, Tag(i as u64)));
    }
    let processed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..nthreads {
            let store = store.clone();
            let processed = processed.clone();
            s.spawn(move || {
                while processed.load(Ordering::Relaxed) < nmsgs {
                    let n = store.process_completed(&mut |_m| {});
                    if n == 0 {
                        std::thread::yield_now();
                    } else {
                        processed.fetch_add(n, Ordering::Relaxed);
                    }
                }
            });
        }
        s.spawn(move || {
            for i in 0..nmsgs {
                tx.isend(1, Tag(i as u64), bytes::Bytes::from_static(&[0u8; 256]));
            }
        });
    });
    t0.elapsed()
}

/// Median of `reps` runs of `f`.
pub fn median_time(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut times: Vec<Duration> = (0..reps).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

/// Pretty seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah::comm::WaitFreeRequestStore;

    #[test]
    fn drive_store_completes() {
        let d = drive_store(Arc::new(WaitFreeRequestStore::new()), 2, 200);
        assert!(d.as_nanos() > 0);
    }
}
