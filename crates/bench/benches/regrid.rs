//! Criterion benchmark for the regrid/rebalance subsystem: a 4-step
//! multi-rank timestep loop with a forced mid-run ownership flip
//! (`rotate`) or a cost-weighted rebalance (`sfc`) against the same loop
//! with regridding off. The gap is the full regrid bill: the collective
//! cost exchange, patch-data migration between ranks, GPU state eviction
//! plus re-upload, and the one extra graph compile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use uintah::prelude::*;
use uintah::runtime::TaskDecl;

const TIMESTEPS: usize = 4;

fn run(
    grid: &Arc<Grid>,
    decls: &Arc<Vec<TaskDecl>>,
    regrid: Option<RebalancePolicy>,
) -> u64 {
    let result = run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: TIMESTEPS,
            persistent: true,
            regrid_interval: regrid.map(|_| 2),
            regrid_policy: regrid.unwrap_or(RebalancePolicy::CostedSfc),
            ..Default::default()
        },
    );
    result.total_bytes()
}

fn bench_regrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("regrid");
    group.sample_size(10);
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, false));
    let cases = [
        ("off", None),
        ("rotate", Some(RebalancePolicy::Rotate(1))),
        ("sfc", Some(RebalancePolicy::CostedSfc)),
    ];
    for (mode, regrid) in cases {
        group.bench_with_input(BenchmarkId::new("steps4", mode), &regrid, |b, &regrid| {
            b.iter(|| std::hint::black_box(run(&grid, &decls, regrid)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regrid);
criterion_main!(benches);
