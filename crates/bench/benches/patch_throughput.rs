//! E8 — Criterion benchmark: RMCRT patch solve throughput vs patch size
//! (the paper's §V observation that bigger patches give the GPU more work
//! per kernel; on the host the analogous effect is cache/locality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uintah::prelude::*;

fn bench_patches(c: &mut Criterion) {
    let mut group = c.benchmark_group("patch_throughput");
    group.sample_size(10);
    let n = 32;
    let grid = BurnsChriston::small_grid(n, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    let params = RmcrtParams {
        nrays: 8,
        threshold: 1e-3,
        ..Default::default()
    };
    for &p in &[4i32, 8, 16] {
        let region = Region::cube(p);
        group.throughput(Throughput::Elements((region.volume() * params.nrays as usize) as u64));
        group.bench_with_input(BenchmarkId::new("solve_patch", p * p * p), &region, |b, &r| {
            b.iter(|| std::hint::black_box(solve_region(&stack, r, &params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patches);
criterion_main!(benches);
