//! Criterion benchmark for multi-GPU-per-rank execution: the LARGE-style
//! 2-level Burns & Christon problem driven through the full runtime with
//! the rank's patches spread over a fleet of 1/2/4/6 simulated K20Xs.
//!
//! Two acceptance properties ride along as assertions inside the timed
//! body:
//!
//! * **Aggregate copy-engine busy time scales with device count** — each
//!   device stages its own level replicas and drains its own patches, so
//!   the summed per-engine busy nanoseconds grow as the fleet widens (the
//!   setup pass prints the table).
//! * **Per-device peak memory stays within each device's capacity
//!   meter** — spreading patches divides the resident footprint; no
//!   device may ever exceed its 6 GB meter (`try_reserve` would have
//!   failed the run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use uintah::prelude::*;
use uintah::runtime::TaskDecl;

const TIMESTEPS: usize = 3;

fn run(grid: &Arc<Grid>, decls: &Arc<Vec<TaskDecl>>, devices: usize) -> uintah::runtime::WorldResult {
    let result = run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: TIMESTEPS,
            gpu_capacity: Some(6 << 30),
            gpus_per_rank: devices,
            ..Default::default()
        },
    );
    for rr in &result.ranks {
        let g = rr.gpu.as_ref().expect("gpu attached");
        for (d, ctr) in g.counters_per_device().iter().enumerate() {
            assert!(
                ctr.peak <= g.device_at(d).capacity() as u64,
                "rank {} device {d} peak {} exceeds its capacity meter",
                rr.rank,
                ctr.peak
            );
        }
    }
    result
}

fn bench_multi_gpu(c: &mut Criterion) {
    // LARGE-style problem: 2 levels at RR 4, a 32³ fine mesh decomposed
    // into 8³ patches (64 fine patches over 2 ranks), full RMCRT pipeline
    // on the simulated devices.
    let grid = Arc::new(BurnsChriston::small_grid(32, 8));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 4,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));

    // Setup pass: the fleet-scaling table the bench exists to demonstrate.
    // One warmup run first — the engine-busy meters are wall-clock, and the
    // very first run's memcpys pay allocator/page-fault costs that would
    // inflate whichever row ran first.
    run(&grid, &decls, 1);
    eprintln!(
        "{:>8} | {:>16} | {:>16} | {:>14}",
        "devices", "engine busy (ns)", "max dev peak (B)", "H2D bytes"
    );
    for devices in [1usize, 2, 4, 6] {
        let result = run(&grid, &decls, devices);
        let mut busy = 0u64;
        let mut peak = 0u64;
        let mut h2d = 0u64;
        for rr in &result.ranks {
            for ctr in rr.gpu.as_ref().unwrap().counters_per_device() {
                busy += ctr.h2d_busy_ns + ctr.d2h_busy_ns;
                peak = peak.max(ctr.peak);
                h2d += ctr.h2d_bytes;
            }
        }
        eprintln!("{devices:>8} | {busy:>16} | {peak:>16} | {h2d:>14}");
    }

    let mut group = c.benchmark_group("multi_gpu");
    group.sample_size(10);
    for devices in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::new("devices", devices), &devices, |b, &n| {
            b.iter(|| run(&grid, &decls, n).total_bytes());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_gpu);
criterion_main!(benches);
