//! Criterion microbenchmark: DDA ray-march throughput (cell-steps/s).
//!
//! This number calibrates `MachineParams::gpu_cellsteps_per_s` in the
//! Titan model (a K20X sustains roughly 10-30x a single host core on this
//! memory-bound kernel; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use uintah::prelude::*;

fn bench_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("ray_march");
    group.sample_size(20);
    let n = 64;
    let props = BurnsChriston::default()
        .props_for_level(BurnsChriston::small_grid(n, 16).fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    // A centre-origin ray crosses ~n/2 cells.
    group.throughput(Throughput::Elements(n as u64 / 2));
    group.bench_function("single_ray_64cube", |b| {
        let mut rng = CellRng::new(7, IntVector::splat(n / 2), 0, 0);
        let origin = Point::new(0.5, 0.5, 0.5);
        b.iter(|| {
            let dir = rng.direction();
            std::hint::black_box(trace_ray(&stack, origin, dir, 1e-5))
        });
    });

    group.throughput(Throughput::Elements(100 * n as u64 / 2));
    group.bench_function("cell_100rays_64cube", |b| {
        let params = RmcrtParams {
            nrays: 100,
            threshold: 1e-5,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(div_q_for_cell(&stack, IntVector::splat(n / 2), &params)));
    });

    // Frozen pre-packet scalar marcher on the same cell: the packet-vs-
    // scalar ratio here is the per-cell view of the ray_march_gate numbers
    // (BENCH_ray_march.json records the full-region medians).
    group.bench_function("scalar_cell_100rays_64cube", |b| {
        let params = RmcrtParams {
            nrays: 100,
            threshold: 1e-5,
            ..Default::default()
        };
        b.iter(|| {
            std::hint::black_box(rmcrt_bench::scalar_march::div_q_for_cell_scalar(
                &stack,
                IntVector::splat(n / 2),
                &params,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_march);
criterion_main!(benches);
