//! Criterion microbenchmark: the §IV-B allocators — lock-free block pool
//! and size-class allocator vs the system heap, single- and multi-threaded.

use criterion::{criterion_group, criterion_main, Criterion};
use uintah::mem::{BlockPool, PageArena, SizeClassAllocator};

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocators");
    group.sample_size(20);

    group.bench_function("block_pool/alloc_free", |b| {
        let pool = BlockPool::new(256, PageArena::new());
        // Warm the pool so we measure the steady-state lock-free path.
        drop((0..64).map(|_| pool.allocate()).collect::<Vec<_>>());
        b.iter(|| {
            let x = pool.allocate();
            std::hint::black_box(&x);
        });
    });

    group.bench_function("system_heap/alloc_free", |b| {
        b.iter(|| {
            let x = vec![0u8; 256];
            std::hint::black_box(&x);
        });
    });

    group.bench_function("size_class/mixed_sizes", |b| {
        let alloc = SizeClassAllocator::new(PageArena::new());
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            let size = 16 + (i * 97) % 4000;
            let x = alloc.allocate(size);
            std::hint::black_box(&x);
        });
    });

    group.bench_function("block_pool/contended_4threads", |b| {
        let pool = BlockPool::new(128, PageArena::new());
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let pool = pool.clone();
                    s.spawn(move || {
                        for _ in 0..200 {
                            let x = pool.allocate();
                            std::hint::black_box(&x);
                        }
                    });
                }
            });
        });
    });

    group.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
