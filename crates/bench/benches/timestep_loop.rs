//! Criterion benchmark for the persistent timestep executor: an 8-step
//! multi-rank, multi-threaded timestep loop with the graph cache, storage
//! recycling and device-resident level replicas on (`persistent`) vs the
//! rebuild-everything baseline (`rebuild`). The gap is the per-step cost
//! the persistence work amortizes away: graph recompilation, warehouse
//! reallocation, and (in the `gpu` variants) cold PCIe re-uploads of the
//! coarse level replicas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use uintah::prelude::*;
use uintah::runtime::TaskDecl;

const TIMESTEPS: usize = 8;

fn run(grid: &Arc<Grid>, decls: &Arc<Vec<TaskDecl>>, persistent: bool, gpu: bool) -> u64 {
    let result = run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: TIMESTEPS,
            gpu_capacity: gpu.then_some(2 << 30),
            persistent,
            ..Default::default()
        },
    );
    result.total_bytes()
}

fn bench_timestep_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestep_loop");
    group.sample_size(10);
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    group.throughput(Throughput::Elements(TIMESTEPS as u64));
    for gpu in [false, true] {
        let decls = Arc::new(multilevel_decls(&grid, pipeline, gpu));
        let tag = if gpu { "gpu" } else { "cpu" };
        for persistent in [true, false] {
            let mode = if persistent { "persistent" } else { "rebuild" };
            group.bench_with_input(
                BenchmarkId::new(mode, tag),
                &persistent,
                |b, &persistent| {
                    b.iter(|| std::hint::black_box(run(&grid, &decls, persistent, gpu)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_timestep_loop);
criterion_main!(benches);
