//! Criterion benchmark: one ray-march kernel, every execution space.
//!
//! The same 32³-patch `solve_region_exec` dispatch runs on Serial,
//! Threads(n) and the metered Device space. Serial vs Threads gives the
//! host scaling curve; Serial vs Device gives the dispatch + metering
//! overhead of the simulated accelerator (the kernels execute on the
//! calling thread, so Device ≈ Serial + accounting). Together with the
//! recorded `KernelStats` this anchors the measured-calibration pipeline:
//! `KernelStats` → `CalibrationSnapshot` → `MachineParams::from_snapshot`
//! (EXPERIMENTS.md E8, E12).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use uintah::prelude::*;

fn bench_spaces(c: &mut Criterion) {
    let n = 32;
    let grid = BurnsChriston::small_grid(n, n); // one fine patch of 32³
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    let region = props.region;
    let params = RmcrtParams {
        nrays: 4,
        threshold: 1e-3,
        ..Default::default()
    };

    let mut group = c.benchmark_group("exec_spaces");
    group.sample_size(20);
    group.throughput(Throughput::Elements(region.volume() as u64));

    // Always exercise the real threaded dispatch (host(1) would collapse
    // back to Serial on a single-core box).
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(2);
    let spaces: Vec<(String, ExecSpace)> = vec![
        ("serial".into(), ExecSpace::Serial),
        (format!("threads_{host_threads}"), ExecSpace::Threads(host_threads)),
        ("device".into(), ExecSpace::device(GpuDevice::k20x())),
    ];
    for (name, space) in &spaces {
        group.bench_function(format!("trace_32cube_{name}"), |b| {
            b.iter(|| std::hint::black_box(solve_region_exec(&stack, region, &params, space)))
        });
    }
    group.finish();

    // Report the Device-space kernel stats once so the calibration numbers
    // land next to the timings in the bench log.
    if let ExecSpace::Device(ds) = &spaces[2].1 {
        let ks = ds.kernel_stats();
        eprintln!(
            "device kernel stats: {} launches | {} invocations | {:.3} ms in kernels",
            ks.launches,
            ks.invocations,
            ks.wall().as_secs_f64() * 1e3
        );
    }
}

criterion_group!(benches, bench_spaces);
criterion_main!(benches);
