//! Criterion microbenchmark: request-store throughput (the heart of E1).
//!
//! Compares the paper's wait-free pool (Algorithm 1) against the
//! mutex-vector baseline under multi-threaded post/test/process load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmcrt_bench::drive_store;
use std::sync::Arc;
use uintah::comm::{MutexRequestVec, WaitFreeRequestStore};

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_store");
    group.sample_size(10);
    for &threads in &[1usize, 4, 16] {
        for &msgs in &[256usize, 2048] {
            group.bench_with_input(
                BenchmarkId::new(format!("waitfree/t{threads}"), msgs),
                &msgs,
                |b, &m| b.iter(|| drive_store(Arc::new(WaitFreeRequestStore::new()), threads, m)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("mutex/t{threads}"), msgs),
                &msgs,
                |b, &m| b.iter(|| drive_store(Arc::new(MutexRequestVec::new()), threads, m)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
