//! Criterion benchmark for the asynchronous D2H pipeline.
//!
//! The measured quantity is the **D2H wall time left on the critical
//! path** — how long consumers actually stall waiting for device→host
//! drains. The synchronous baseline pays every drain inline (stall ==
//! full drain time); the async pipeline posts drains to the copy engine
//! and the scheduler keeps executing, so by the time the first consumer
//! materializes the data the drain has already happened and the stall
//! collapses toward zero. That stall reduction is the overlap win, and it
//! is host-topology independent: on a multi-GPU node it converts directly
//! into wall-clock reduction, while even on a single-core host (where
//! total wall time cannot shrink — every byte is still moved by the same
//! CPU) the drains migrate off the critical path into windows where the
//! workers were blocked anyway.
//!
//! Two views of the same question:
//!
//! * `micro/*`: one patch-sized drain plus a stand-in kernel several
//!   times its cost; measures the `blocked` component of
//!   [`PendingD2H::wait_timed`] directly.
//! * `pipeline/*`: the full multi-rank RMCRT timestep loop with
//!   `gpu_async_d2h` on vs off; measures the summed `gpu_d2h_wait` of
//!   every rank's [`ExecStats`]. Overlapped D2H wall time must come out
//!   at or below the synchronous baseline (the PR's acceptance
//!   criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use uintah::prelude::*;
use uintah_gpu::GpuDataWarehouse;
use uintah_grid::{CcVariable, PatchId, Region};

const BENCH_DIVQ: VarLabel = VarLabel::new("bench_divq", 99);
const TIMESTEPS: usize = 4;
/// Stand-in kernel cost as a multiple of the drain memcpy — enough work
/// that the engine thread's drain completes before first use.
const KERNEL_REPS: usize = 16;

/// One drain + one stand-in kernel, async or inline; returns how long the
/// consumer stalled on the drain. The field clone into the patch DB is
/// paid identically by both variants; only the placement of the drain
/// differs.
fn drain_stall(field: &CcVariable<f64>, async_d2h: bool) -> Duration {
    let dw = GpuDataWarehouse::with_options(GpuDevice::k20x(), true, async_d2h);
    let p = PatchId(0);
    dw.put_patch(BENCH_DIVQ, p, FieldData::F64(field.clone()))
        .expect("6 GB device fits one patch");
    let pending = dw
        .take_patch_to_host_async(BENCH_DIVQ, p)
        .expect("staged above");
    // Stand-in kernel: host work well above the drain memcpy cost,
    // running while (async) or after (sync) the engine moves the bytes.
    let mut acc = 0.0f64;
    for _ in 0..KERNEL_REPS {
        for &v in field.as_slice() {
            acc += v * 1.000_000_1;
        }
    }
    std::hint::black_box(acc);
    let (data, _drain, blocked) = pending.wait_timed();
    std::hint::black_box(data.as_f64().as_slice()[0]);
    dw.device().sync_d2h();
    blocked
}

/// Full executor run; returns the summed consumer-visible D2H stall
/// across every rank and timestep.
fn pipeline_stall(
    grid: &Arc<Grid>,
    decls: &Arc<Vec<uintah::runtime::TaskDecl>>,
    async_d2h: bool,
) -> Duration {
    let result = run_world(
        Arc::clone(grid),
        Arc::clone(decls),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: TIMESTEPS,
            gpu_capacity: Some(2 << 30),
            gpu_async_d2h: async_d2h,
            ..Default::default()
        },
    );
    let bytes: u64 = result
        .ranks
        .iter()
        .flat_map(|r| r.stats.iter())
        .map(|s| s.gpu_d2h_bytes)
        .sum();
    assert!(bytes > 0, "pipeline run must report D2H traffic");
    result
        .ranks
        .iter()
        .flat_map(|r| r.stats.iter())
        .map(|s| s.gpu_d2h_wait)
        .sum()
}

fn bench_d2h_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("d2h_overlap");
    group.sample_size(20);

    // Micro: a 64³ f64 patch (2 MiB) — big enough that the drain memcpy is
    // well above timer noise.
    let mut field = CcVariable::<f64>::new(Region::cube(64));
    field.fill_with(|c| (c.x + c.y + c.z) as f64 * 0.25);
    for async_d2h in [false, true] {
        let mode = if async_d2h { "async" } else { "sync" };
        group.bench_with_input(BenchmarkId::new("micro", mode), &async_d2h, |b, &a| {
            b.iter_custom(|iters| (0..iters).map(|_| drain_stall(&field, a)).sum());
        });
    }

    // Full executor pipeline, async vs sync drains. 16³ patches keep each
    // divQ drain (32 KiB) well above the per-transfer engine overhead, as
    // on the real machine (the paper's patches are 16³–64³).
    let grid = Arc::new(BurnsChriston::small_grid(32, 16));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));
    for async_d2h in [false, true] {
        let mode = if async_d2h { "async" } else { "sync" };
        group.bench_with_input(BenchmarkId::new("pipeline", mode), &async_d2h, |b, &a| {
            b.iter_custom(|iters| (0..iters).map(|_| pipeline_stall(&grid, &decls, a)).sum());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_d2h_overlap);
criterion_main!(benches);
