//! A boiler-flavoured demo problem.
//!
//! The CCMSC target is a 1000 MWe oxy-fired clean coal boiler: a tall
//! rectangular furnace with a burner region injecting heat, soot-laden gas
//! (strongly absorbing) in the flame zone, and water-wall heat extraction.
//! This module builds a small version of that setup for the `boiler`
//! example and the coupled integration tests.

use crate::coupling::RadiationCoupler;
use crate::energy::{EnergySolver, TimeIntegrator};
use rmcrt_core::solver::RmcrtParams;
use uintah_grid::{CcVariable, IntVector, Region, Vector};

/// Geometry and physics of the demo boiler.
#[derive(Clone, Copy, Debug)]
pub struct BoilerSetup {
    /// Cells per axis (cube domain, 1 m side for the demo).
    pub n: i32,
    /// Burner volumetric heat release (W/m³).
    pub burner_power: f64,
    /// Soot/gas absorption coefficient in the flame zone (1/m).
    pub flame_abskg: f64,
    /// Background gas absorption (1/m).
    pub gas_abskg: f64,
    /// Water-wall temperature (K).
    pub wall_temperature: f64,
    /// Initial gas temperature (K).
    pub initial_temperature: f64,
    /// Core updraft speed (m/s); 0 disables the prescribed-velocity
    /// transport (conduction/radiation only).
    pub updraft: f64,
}

impl Default for BoilerSetup {
    fn default() -> Self {
        Self {
            n: 16,
            burner_power: 5e6,
            flame_abskg: 2.0,
            gas_abskg: 0.3,
            wall_temperature: 600.0,
            initial_temperature: 1200.0,
            updraft: 0.0,
        }
    }
}

impl BoilerSetup {
    pub fn region(&self) -> Region {
        Region::cube(self.n)
    }

    pub fn dx(&self) -> Vector {
        Vector::splat(1.0 / self.n as f64)
    }

    /// The burner occupies the lower-central core of the furnace.
    pub fn in_burner(&self, c: IntVector) -> bool {
        let n = self.n;
        let core = |v: i32| v >= n / 3 && v < 2 * n / 3;
        core(c.x) && core(c.y) && c.z >= n / 6 && c.z < n / 2
    }

    /// Absorption coefficient field: sooty in and above the flame.
    pub fn abskg(&self) -> CcVariable<f64> {
        let mut k = CcVariable::new(self.region());
        let n = self.n;
        k.fill_with(|c| {
            let core = |v: i32| v >= n / 4 && v < 3 * n / 4;
            if core(c.x) && core(c.y) && c.z >= n / 6 {
                self.flame_abskg
            } else {
                self.gas_abskg
            }
        });
        k
    }

    /// Build the coupled solver pair.
    pub fn build(&self, rad_interval: usize, params: RmcrtParams) -> (EnergySolver, RadiationCoupler) {
        let mut solver = EnergySolver::new(self.region(), self.dx(), self.initial_temperature);
        solver.wall_temperature = self.wall_temperature;
        solver.alpha = 2e-5;
        solver.integrator = TimeIntegrator::SspRk2;
        let setup = *self;
        solver.heat_source.fill_with(|c| {
            if setup.in_burner(c) {
                setup.burner_power
            } else {
                0.0
            }
        });
        if self.updraft > 0.0 {
            solver.advection = Some(crate::advection::Advection::plume(
                self.region(),
                self.dx(),
                self.updraft,
            ));
        }
        let coupler = RadiationCoupler::new(self.abskg(), rad_interval, params);
        (solver, coupler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burner_region_is_interior() {
        let b = BoilerSetup::default();
        let mut any = false;
        for c in b.region().cells() {
            if b.in_burner(c) {
                any = true;
                assert!(c.x > 0 && c.x < b.n - 1, "burner touches wall at {c:?}");
            }
        }
        assert!(any, "burner must exist");
    }

    #[test]
    fn flame_zone_is_sootier_than_background() {
        let b = BoilerSetup::default();
        let k = b.abskg();
        assert_eq!(k[IntVector::new(0, 0, 0)], b.gas_abskg);
        assert_eq!(k[IntVector::new(8, 8, 8)], b.flame_abskg);
    }

    #[test]
    fn updraft_carries_flame_heat_to_upper_furnace() {
        // With the plume on, the cells above the burner end up hotter than
        // the same run without transport — the convective pattern the LES
        // would provide.
        let run = |updraft: f64| -> f64 {
            let b = BoilerSetup {
                n: 8,
                updraft,
                ..Default::default()
            };
            let (mut solver, mut coupler) = b.build(
                4,
                RmcrtParams {
                    nrays: 4,
                    threshold: 1e-3,
                    ..Default::default()
                },
            );
            let mut t = 0.0;
            while t < 1.5 {
                t += coupler.step(&mut solver, b.dx(), 0.05);
            }
            // Mean temperature of the *core column* above the burner (the
            // updraft path; the wall ring carries the cold return flow).
            let mut sum = 0.0;
            let mut count = 0;
            for (c, &v) in solver.temperature().iter() {
                let core = |v: i32| (3..5).contains(&v);
                if core(c.x) && core(c.y) && c.z >= 5 {
                    sum += v;
                    count += 1;
                }
            }
            sum / count as f64
        };
        let still = run(0.0);
        let convecting = run(1.0);
        assert!(
            convecting > still + 1.0,
            "updraft must heat the core column above the flame: {convecting} vs {still}"
        );
    }

    #[test]
    fn coupled_boiler_reaches_quasi_steady_flame() {
        // Burner heats, radiation + conduction remove heat: the flame-zone
        // temperature must rise then settle rather than run away.
        let b = BoilerSetup {
            n: 8,
            ..Default::default()
        };
        let (mut solver, mut coupler) = b.build(
            4,
            RmcrtParams {
                nrays: 8,
                threshold: 1e-3,
                ..Default::default()
            },
        );
        let dt = solver.stable_dt();
        let mut means = Vec::new();
        for step in 0..60 {
            coupler.step(&mut solver, b.dx(), dt);
            if step % 20 == 19 {
                means.push(solver.mean_temperature());
            }
        }
        assert!(coupler.solves() >= 15);
        // Finite and physical.
        for &m in &means {
            assert!(m.is_finite() && m > 300.0 && m < 4000.0, "mean T {m}");
        }
        // Growth rate decelerates as radiation losses grow with T⁴.
        let g1 = means[1] - means[0];
        let g2 = means[2] - means[1];
        assert!(g2 < g1 * 1.05, "heating must decelerate: {means:?}");
    }
}
