//! Explicit finite-volume energy equation with SSP Runge–Kutta integration.

use crate::advection::Advection;
use uintah_exec::{parallel_fill, parallel_reduce, ExecSpace};
use uintah_grid::{CcVariable, IntVector, Region, Vector};

/// Time integrator order (Gottlieb–Shu–Tadmor SSP schemes, as in ARCHES).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeIntegrator {
    ForwardEuler,
    SspRk2,
    SspRk3,
}

/// An explicit conduction + source energy solver on a uniform box.
///
/// Dirichlet wall temperature on all faces. The radiative source `−∇·q_r`
/// is supplied externally (by [`crate::RadiationCoupler`]) and held frozen
/// between radiation solves — the paper's loose coupling.
pub struct EnergySolver {
    region: Region,
    dx: Vector,
    /// Thermal diffusivity k/(ρ c_v) (m²/s).
    pub alpha: f64,
    /// 1/(ρ c_v) (m³·K/J) — converts W/m³ sources to K/s.
    pub inv_rho_cv: f64,
    /// Wall temperature (K).
    pub wall_temperature: f64,
    pub integrator: TimeIntegrator,
    temperature: CcVariable<f64>,
    /// Volumetric heat source Q''' (W/m³), e.g. combustion.
    pub heat_source: CcVariable<f64>,
    /// Radiative source ∇·q_r (W/m³, positive = net emission → cooling).
    pub div_q: CcVariable<f64>,
    /// Optional convective transport with a prescribed velocity.
    pub advection: Option<Advection>,
    /// Execution space for the RHS/stable-dt kernels. Results are
    /// bit-identical on every space.
    pub space: ExecSpace,
}

impl EnergySolver {
    pub fn new(region: Region, dx: Vector, initial_temperature: f64) -> Self {
        Self {
            region,
            dx,
            alpha: 1e-5,
            inv_rho_cv: 1.0 / 1.2e3, // air-ish ρc_v ≈ 1.2 kJ/m³K
            wall_temperature: 300.0,
            integrator: TimeIntegrator::SspRk2,
            temperature: CcVariable::filled(region, initial_temperature),
            heat_source: CcVariable::new(region),
            div_q: CcVariable::new(region),
            advection: None,
            space: ExecSpace::Serial,
        }
    }

    #[inline]
    pub fn region(&self) -> Region {
        self.region
    }

    #[inline]
    pub fn temperature(&self) -> &CcVariable<f64> {
        &self.temperature
    }

    #[inline]
    pub fn temperature_mut(&mut self) -> &mut CcVariable<f64> {
        &mut self.temperature
    }

    /// Stable explicit timestep: the conduction limit dt ≤ 0.4·dx²/(6α)
    /// further bounded so no cell's source term (burner or radiation) can
    /// change its temperature by more than ~5 % in one step — radiative
    /// cooling scales with T⁴ and is far stiffer than conduction.
    pub fn stable_dt(&self) -> f64 {
        let h2 = self.dx.x.min(self.dx.y).min(self.dx.z).powi(2);
        let conduction = 0.4 * h2 / (6.0 * self.alpha.max(1e-300));
        let source_limit = parallel_reduce(
            &self.space,
            self.region,
            f64::INFINITY,
            |c| {
                let rate = (self.heat_source[c] - self.div_q[c]).abs() * self.inv_rho_cv;
                if rate > 0.0 {
                    let t_scale = self.temperature[c].abs().max(self.wall_temperature.abs()).max(1.0);
                    0.05 * t_scale / rate
                } else {
                    f64::INFINITY
                }
            },
            f64::min,
        );
        let mut dt = conduction.min(source_limit);
        if let Some(adv) = &self.advection {
            dt = dt.min(adv.stable_dt());
        }
        dt
    }

    /// Right-hand side dT/dt at `c` for field `t`.
    fn rhs_cell(&self, t: &CcVariable<f64>, c: IntVector) -> f64 {
        let tc = t[c];
        let mut lap = 0.0;
        for a in 0..3 {
            let mut dp = IntVector::ZERO;
            dp[a] = 1;
            let h2 = self.dx[a] * self.dx[a];
            let tp = t.get(c + dp).copied().unwrap_or(self.wall_temperature);
            let tm = t.get(c - dp).copied().unwrap_or(self.wall_temperature);
            lap += (tp - 2.0 * tc + tm) / h2;
        }
        let convect = self
            .advection
            .as_ref()
            .map(|a| a.rate(t, c, self.wall_temperature))
            .unwrap_or(0.0);
        self.alpha * lap + convect + self.inv_rho_cv * (self.heat_source[c] - self.div_q[c])
    }

    fn rhs(&self, t: &CcVariable<f64>) -> CcVariable<f64> {
        parallel_fill(&self.space, self.region, |c| self.rhs_cell(t, c))
    }

    fn euler(&self, t: &CcVariable<f64>, dt: f64) -> CcVariable<f64> {
        let rhs = self.rhs(t);
        let mut out = t.clone();
        for (o, r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o += dt * r;
        }
        out
    }

    /// Advance by `dt`.
    pub fn step(&mut self, dt: f64) {
        let t0 = self.temperature.clone();
        let next = match self.integrator {
            TimeIntegrator::ForwardEuler => self.euler(&t0, dt),
            TimeIntegrator::SspRk2 => {
                // u1 = u + dt L(u); u = ½u + ½(u1 + dt L(u1))
                let u1 = self.euler(&t0, dt);
                let u2 = self.euler(&u1, dt);
                blend(&[(0.5, &t0), (0.5, &u2)])
            }
            TimeIntegrator::SspRk3 => {
                let u1 = self.euler(&t0, dt);
                let u2 = blend(&[(0.75, &t0), (0.25, &self.euler(&u1, dt))]);
                let u3 = self.euler(&u2, dt);
                blend(&[(1.0 / 3.0, &t0), (2.0 / 3.0, &u3)])
            }
        };
        self.temperature = next;
    }

    /// Mean temperature over the domain.
    pub fn mean_temperature(&self) -> f64 {
        self.temperature.as_slice().iter().sum::<f64>() / self.temperature.len() as f64
    }
}

fn blend(terms: &[(f64, &CcVariable<f64>)]) -> CcVariable<f64> {
    let region = terms[0].1.region();
    let mut out = CcVariable::<f64>::new(region);
    for &(w, v) in terms {
        for (o, x) in out.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *o += w * x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn solver(n: i32) -> EnergySolver {
        EnergySolver::new(Region::cube(n), Vector::splat(1.0 / n as f64), 300.0)
    }

    #[test]
    fn uniform_field_at_wall_temperature_is_steady() {
        let mut s = solver(8);
        s.wall_temperature = 300.0;
        let dt = s.stable_dt();
        for _ in 0..20 {
            s.step(dt);
        }
        for (_, &t) in s.temperature().iter() {
            assert!((t - 300.0).abs() < 1e-10, "steady state violated: {t}");
        }
    }

    #[test]
    fn hot_interior_cools_toward_walls() {
        let mut s = solver(8);
        s.temperature_mut().fill_with(|_| 1000.0);
        let before = s.mean_temperature();
        let dt = s.stable_dt();
        for _ in 0..50 {
            s.step(dt);
        }
        let after = s.mean_temperature();
        assert!(after < before, "conduction must cool: {before} -> {after}");
        assert!(after > 300.0, "cannot undershoot the wall temperature");
    }

    #[test]
    fn sine_mode_decays_at_analytic_rate() {
        // T = Tw + sin(πx)sin(πy)sin(πz) decays as e^{-3π²αt} with
        // homogeneous Dirichlet walls.
        let n = 32;
        let mut s = solver(n);
        s.integrator = TimeIntegrator::SspRk3;
        s.alpha = 1e-3;
        let h = 1.0 / n as f64;
        s.temperature_mut().fill_with(|c| {
            let x = (c.x as f64 + 0.5) * h;
            let y = (c.y as f64 + 0.5) * h;
            let z = (c.z as f64 + 0.5) * h;
            300.0 + (PI * x).sin() * (PI * y).sin() * (PI * z).sin()
        });
        let c0 = IntVector::splat(n / 2);
        let a0 = s.temperature()[c0] - 300.0;
        let dt = s.stable_dt();
        let steps = 200;
        for _ in 0..steps {
            s.step(dt);
        }
        let a1 = s.temperature()[c0] - 300.0;
        let expect = a0 * (-3.0 * PI * PI * s.alpha * dt * steps as f64).exp();
        let rel = (a1 - expect).abs() / expect;
        assert!(rel < 0.05, "decay {a1} vs analytic {expect} (rel {rel})");
    }

    #[test]
    fn heat_source_raises_temperature() {
        let mut s = solver(8);
        s.heat_source.fill_with(|_| 1e6); // 1 MW/m³ burner
        let dt = s.stable_dt();
        s.step(dt);
        assert!(s.mean_temperature() > 300.0);
    }

    #[test]
    fn radiative_sink_cools() {
        let mut s = solver(8);
        s.temperature_mut().fill_with(|_| 1500.0);
        s.div_q.fill_with(|_| 5e5); // net emission
        let dt = s.stable_dt();
        let before = s.mean_temperature();
        s.step(dt);
        // Cooling from both conduction and radiation; radiation dominates
        // interior cells.
        assert!(s.mean_temperature() < before);
    }

    #[test]
    fn advection_transports_burner_heat_upward() {
        let n = 12;
        let region = Region::cube(n);
        let dx = Vector::splat(1.0 / n as f64);
        let mut s = EnergySolver::new(region, dx, 300.0);
        s.alpha = 1e-6;
        s.advection = Some(Advection::plume(region, dx, 0.5));
        // Heat source low in the core.
        s.heat_source.fill_with(|c| {
            if c.x == n / 2 && c.y == n / 2 && c.z == 2 {
                5e6
            } else {
                0.0
            }
        });
        let dt = s.stable_dt();
        for _ in 0..200 {
            s.step(dt);
        }
        // The column above the burner must be warmer than the same height
        // without advection would allow via conduction alone.
        let above = s.temperature()[IntVector::new(n / 2, n / 2, 7)];
        let beside = s.temperature()[IntVector::new(2, n / 2, 2)];
        assert!(
            above > beside + 1.0,
            "updraft must carry heat upward: above {above}, beside {beside}"
        );
    }

    #[test]
    fn rk2_more_accurate_than_euler() {
        // Compare both against a tiny-step RK3 reference on a coarse run.
        let run = |integ: TimeIntegrator, dt_scale: f64| -> f64 {
            let mut s = solver(8);
            s.integrator = integ;
            s.alpha = 5e-4;
            s.temperature_mut().fill_with(|c| 300.0 + c.x as f64 * 10.0);
            let dt = s.stable_dt() * dt_scale;
            let t_end = s.stable_dt() * 40.0;
            let steps = (t_end / dt).round() as usize;
            for _ in 0..steps {
                s.step(dt);
            }
            s.temperature()[IntVector::splat(4)]
        };
        let reference = run(TimeIntegrator::SspRk3, 0.05);
        let euler_err = (run(TimeIntegrator::ForwardEuler, 1.0) - reference).abs();
        let rk2_err = (run(TimeIntegrator::SspRk2, 1.0) - reference).abs();
        assert!(
            rk2_err < euler_err,
            "RK2 err {rk2_err} should beat Euler err {euler_err}"
        );
    }
}
