//! Loose (time-scale-separated) coupling of the energy equation to RMCRT.
//!
//! "Thermal radiation in the target boiler simulations is loosely coupled
//! to the computational fluid dynamics (CFD) due to time-scale separation"
//! (paper §III-A): ARCHES advances many CFD steps per radiation solve, and
//! the radiative source is held frozen in between. This module implements
//! exactly that pattern against `rmcrt-core`.

use crate::energy::EnergySolver;
use rmcrt_core::labels::sigma_t4_over_pi;
use rmcrt_core::props::{LevelProps, FLOW_CELL};
use rmcrt_core::solver::{solve_region_threaded, RmcrtParams};
use rmcrt_core::trace::TraceLevel;
use uintah_grid::{CcVariable, Point, Vector};

/// Recomputes `∇·q_r` from the current temperature field every
/// `interval` CFD steps.
pub struct RadiationCoupler {
    /// CFD steps between radiation solves.
    pub interval: usize,
    /// Absorption coefficient field (fixed composition here; a combustion
    /// code would update it from species).
    pub abskg: CcVariable<f64>,
    pub params: RmcrtParams,
    /// Host threads for the radiation solve.
    pub nthreads: usize,
    steps_since_solve: usize,
    solves: usize,
}

impl RadiationCoupler {
    pub fn new(abskg: CcVariable<f64>, interval: usize, params: RmcrtParams) -> Self {
        Self {
            interval: interval.max(1),
            abskg,
            params,
            nthreads: 1,
            steps_since_solve: usize::MAX / 2, // force a solve on first step
            solves: 0,
        }
    }

    /// Number of radiation solves performed.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Advance the coupled system by one CFD step of at most `dt` (the
    /// step is clamped to the solver's current stability limit, which
    /// tightens once a radiation solve installs a stiff `∇·q`). Returns
    /// the step actually taken.
    pub fn step(&mut self, solver: &mut EnergySolver, dx: Vector, dt: f64) -> f64 {
        if self.steps_since_solve >= self.interval {
            self.solve_radiation(solver, dx);
            self.steps_since_solve = 0;
        }
        let dt = dt.min(solver.stable_dt());
        solver.step(dt);
        self.steps_since_solve += 1;
        dt
    }

    /// Run RMCRT on the current temperature field and refresh `∇·q`.
    pub fn solve_radiation(&mut self, solver: &mut EnergySolver, dx: Vector) {
        let region = solver.region();
        assert_eq!(self.abskg.region(), region, "abskg region mismatch");
        let mut sig = CcVariable::<f64>::new(region);
        let t = solver.temperature();
        for c in region.cells() {
            sig[c] = sigma_t4_over_pi(t[c]);
        }
        let props = LevelProps {
            region,
            anchor: Point::ORIGIN,
            dx,
            abskg: self.abskg.clone(),
            sigma_t4_over_pi: sig,
            cell_type: CcVariable::filled(region, FLOW_CELL),
        };
        let stack = [TraceLevel {
            props: &props,
            roi: region,
        }];
        let mut params = self.params;
        params.timestep = self.solves as u32;
        solver.div_q = solve_region_threaded(&stack, region, &params, self.nthreads);
        self.solves += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Region;

    fn setup(n: i32) -> (EnergySolver, RadiationCoupler, Vector) {
        let region = Region::cube(n);
        let dx = Vector::splat(1.0 / n as f64);
        let mut solver = EnergySolver::new(region, dx, 1500.0);
        solver.alpha = 1e-6; // radiation-dominated
        let abskg = CcVariable::filled(region, 1.0);
        let coupler = RadiationCoupler::new(
            abskg,
            5,
            RmcrtParams {
                nrays: 16,
                threshold: 1e-3,
                ..Default::default()
            },
        );
        (solver, coupler, dx)
    }

    #[test]
    fn radiation_solved_on_schedule() {
        let (mut solver, mut coupler, dx) = setup(8);
        let dt = solver.stable_dt();
        for _ in 0..11 {
            coupler.step(&mut solver, dx, dt);
        }
        // Solve at step 0, 5, 10 → 3 solves.
        assert_eq!(coupler.solves(), 3);
    }

    #[test]
    fn hot_medium_cold_walls_radiatively_cools() {
        let (mut solver, mut coupler, dx) = setup(8);
        let dt = solver.stable_dt();
        let before = solver.mean_temperature();
        for _ in 0..20 {
            coupler.step(&mut solver, dx, dt);
        }
        let after = solver.mean_temperature();
        assert!(
            after < before - 1.0,
            "radiation must cool the hot medium: {before} -> {after}"
        );
        // divQ is positive (net emission) in the interior.
        let c = uintah_grid::IntVector::splat(4);
        assert!(solver.div_q[c] > 0.0);
    }

    #[test]
    fn frozen_source_between_solves() {
        let (mut solver, mut coupler, dx) = setup(8);
        let dt = solver.stable_dt();
        coupler.step(&mut solver, dx, dt); // solve happens here
        let snapshot = solver.div_q.clone();
        coupler.step(&mut solver, dx, dt); // no solve
        assert_eq!(solver.div_q, snapshot, "divQ must stay frozen between solves");
    }

    #[test]
    fn equilibrium_with_matching_walls_does_not_cool() {
        // Walls as hot as the medium: radiation exchange nets ~zero through
        // the enclosure (cold-black-boundary approximation makes this only
        // approximate, so allow slow drift but much slower than the cold
        // case).
        let region = Region::cube(8);
        let dx = Vector::splat(1.0 / 8.0);
        let mut cold = EnergySolver::new(region, dx, 1500.0);
        cold.alpha = 1e-6;
        let mut cold_coupler = RadiationCoupler::new(
            CcVariable::filled(region, 1.0),
            1,
            RmcrtParams {
                nrays: 16,
                ..Default::default()
            },
        );
        let mut weak = EnergySolver::new(region, dx, 1500.0);
        weak.alpha = 1e-6;
        let mut weak_coupler = RadiationCoupler::new(
            CcVariable::filled(region, 0.01), // nearly transparent
            1,
            RmcrtParams {
                nrays: 16,
                ..Default::default()
            },
        );
        // Same *physical* time for both media (the coupler clamps each
        // solver's step to its own stability limit, so march small steps).
        let dt_req: f64 = 0.02;
        let t_end: f64 = 0.5;
        let mut t_cold = 0.0;
        while t_cold < t_end {
            t_cold += cold_coupler.step(&mut cold, dx, dt_req.min(t_end - t_cold));
        }
        let mut t_weak = 0.0;
        while t_weak < t_end {
            t_weak += weak_coupler.step(&mut weak, dx, dt_req.min(t_end - t_weak));
        }
        let cold_drop = 1500.0 - cold.mean_temperature();
        let weak_drop = 1500.0 - weak.mean_temperature();
        assert!(
            weak_drop < cold_drop / 5.0,
            "optically thin medium must cool far slower: {weak_drop} vs {cold_drop}"
        );
    }
}
