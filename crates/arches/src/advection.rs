//! Scalar advection with a prescribed velocity field.
//!
//! ARCHES transports heat with the resolved LES velocity (the `−p∇·v` and
//! convective terms of paper Eq. 1). A full momentum solve is out of scope
//! (DESIGN.md §2); this module adds the convective term with a *prescribed*
//! incompressible velocity field and first-order upwinding — enough to
//! exercise the coupling of transport, conduction and radiation in the
//! boiler demo (hot gas rising through the furnace).

use uintah_grid::{CcVariable, IntVector, Region, Vector};

/// A prescribed velocity field (m/s), evaluated at cell centres.
pub type VelocityFn = Box<dyn Fn(IntVector) -> Vector + Send + Sync>;

/// First-order upwind advection operator for a cell-centred scalar.
pub struct Advection {
    region: Region,
    dx: Vector,
    velocity: CcVariable<[f64; 3]>,
    max_speed: f64,
}

impl Advection {
    pub fn new(region: Region, dx: Vector, velocity: VelocityFn) -> Self {
        let mut v = CcVariable::<[f64; 3]>::new(region);
        let mut max_speed = 0.0f64;
        v.fill_with(|c| {
            let u = velocity(c);
            max_speed = max_speed.max(u.x.abs()).max(u.y.abs()).max(u.z.abs());
            [u.x, u.y, u.z]
        });
        Self {
            region,
            dx,
            velocity: v,
            max_speed,
        }
    }

    /// A rising-plume velocity: upward (+z) in the core, returning down the
    /// walls; divergence-free by construction in the continuum sense.
    pub fn plume(region: Region, dx: Vector, w_max: f64) -> Self {
        let e = region.extent();
        Self::new(
            region,
            dx,
            Box::new(move |c| {
                let x = (c.x as f64 + 0.5) / e.x as f64;
                let y = (c.y as f64 + 0.5) / e.y as f64;
                // w = w_max·cos(πr)-ish: up in the centre, down near walls.
                let r2 = ((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5)) * 4.0;
                Vector::new(0.0, 0.0, w_max * (1.0 - 2.0 * r2.min(1.0)))
            }),
        )
    }

    /// CFL-stable timestep bound for this velocity field.
    pub fn stable_dt(&self) -> f64 {
        let h = self.dx.x.min(self.dx.y).min(self.dx.z);
        if self.max_speed == 0.0 {
            f64::INFINITY
        } else {
            0.5 * h / self.max_speed
        }
    }

    /// `−(v·∇)T` at cell `c` with first-order upwind differences; values
    /// outside the region are taken as `boundary_value` (inflow at walls).
    pub fn rate(&self, t: &CcVariable<f64>, c: IntVector, boundary_value: f64) -> f64 {
        let u = self.velocity[c];
        let tc = t[c];
        let mut rate = 0.0;
        for a in 0..3 {
            let vel = u[a];
            if vel == 0.0 {
                continue;
            }
            let mut d = IntVector::ZERO;
            d[a] = if vel > 0.0 { -1 } else { 1 };
            let upstream = t.get(c + d).copied().unwrap_or(boundary_value);
            // vel>0: (T_c − T_{c−1})/h; vel<0: (T_{c+1} − T_c)/h.
            let grad = if vel > 0.0 {
                (tc - upstream) / self.dx[a]
            } else {
                (upstream - tc) / self.dx[a]
            };
            rate -= vel * grad;
        }
        rate
    }

    #[inline]
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_flow(region: Region, dx: Vector, u: Vector) -> Advection {
        Advection::new(region, dx, Box::new(move |_| u))
    }

    #[test]
    fn uniform_field_is_steady_under_any_flow() {
        let region = Region::cube(8);
        let adv = uniform_flow(region, Vector::splat(0.125), Vector::new(1.0, -2.0, 0.5));
        let t = CcVariable::filled(region, 300.0);
        for c in region.cells() {
            assert_eq!(adv.rate(&t, c, 300.0), 0.0);
        }
    }

    #[test]
    fn advection_moves_hot_spot_downstream() {
        let region = Region::cube(16);
        let dx = Vector::splat(1.0 / 16.0);
        let adv = uniform_flow(region, dx, Vector::new(1.0, 0.0, 0.0));
        let mut t = CcVariable::filled(region, 300.0);
        t[IntVector::new(4, 8, 8)] = 400.0;
        let dt = adv.stable_dt();
        // Explicit Euler steps: the peak should drift in +x.
        for _ in 0..16 {
            let mut next = t.clone();
            for c in region.cells() {
                next[c] = t[c] + dt * adv.rate(&t, c, 300.0);
            }
            t = next;
        }
        // Locate the maximum.
        let (mut best_c, mut best_v) = (IntVector::ZERO, f64::MIN);
        for (c, &v) in t.iter() {
            if v > best_v {
                best_v = v;
                best_c = c;
            }
        }
        assert!(best_c.x > 4, "hot spot must move downstream: at {best_c:?}");
        assert_eq!(best_c.y, 8);
        assert_eq!(best_c.z, 8);
    }

    #[test]
    fn upwind_is_monotone_no_new_extrema() {
        let region = Region::cube(8);
        let dx = Vector::splat(0.125);
        let adv = uniform_flow(region, dx, Vector::new(0.7, 0.3, -0.2));
        let mut t = CcVariable::<f64>::new(region);
        t.fill_with(|c| 300.0 + (c.x * 7 % 5) as f64 * 20.0 + (c.z % 3) as f64 * 10.0);
        let (lo, hi) = t
            .as_slice()
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let dt = adv.stable_dt();
        let mut next = t.clone();
        for c in region.cells() {
            next[c] = t[c] + dt * adv.rate(&t, c, 300.0);
        }
        for (_, &v) in next.iter() {
            assert!(v >= lo.min(300.0) - 1e-9 && v <= hi + 1e-9, "new extremum {v}");
        }
    }

    #[test]
    fn plume_rises_in_core_sinks_at_walls() {
        let region = Region::cube(16);
        let adv = Advection::plume(region, Vector::splat(1.0 / 16.0), 2.0);
        let core = adv.velocity[IntVector::new(8, 8, 8)];
        let wall = adv.velocity[IntVector::new(0, 8, 8)];
        assert!(core[2] > 0.5, "core updraft {core:?}");
        assert!(wall[2] < 0.0, "wall downdraft {wall:?}");
        assert!(adv.stable_dt().is_finite());
    }

    #[test]
    fn cfl_bound_positive() {
        let adv = uniform_flow(Region::cube(4), Vector::splat(0.25), Vector::new(5.0, 0.0, 0.0));
        assert!((adv.stable_dt() - 0.5 * 0.25 / 5.0).abs() < 1e-12);
    }
}
