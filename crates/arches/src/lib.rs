//! ARCHES-lite: the CFD-side consumer of the radiation solve.
//!
//! The paper's production code couples RMCRT to the ARCHES large-eddy
//! simulation: ARCHES evolves the temperature field, hands `T` (as
//! `σT⁴/π`) and the absorption coefficient to RMCRT every few timesteps
//! (time-scale separation), and receives `∇·q_r` back as a source in the
//! energy equation (paper Eq. 1). A full LES code is out of scope (see
//! DESIGN.md §2); this mini-app reproduces the *coupling pattern* exactly
//! with an explicit finite-volume energy equation:
//!
//! ```text
//! ρ c_v ∂T/∂t = ∇·(k ∇T) + Q''' − ∇·q_r
//! ```
//!
//! integrated with strong-stability-preserving RK2/RK3 (Gottlieb–Shu–Tadmor,
//! the scheme ARCHES uses), plus a boiler-flavoured demo problem.

pub mod advection;
pub mod boiler;
pub mod coupling;
pub mod energy;

pub use advection::Advection;
pub use boiler::BoilerSetup;
pub use coupling::RadiationCoupler;
pub use energy::{EnergySolver, TimeIntegrator};
