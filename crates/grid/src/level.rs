//! Mesh levels: spacing, extents, refinement ratio and patch tiling.

use crate::geom::{Point, Vector};
use crate::index::IntVector;
use crate::patch::{Patch, PatchId};
use crate::region::Region;

/// Index of a level within a [`crate::grid::Grid`]. Level 0 is the
/// *coarsest* (Uintah convention); the finest level is `nlevels - 1`.
pub type LevelIndex = u8;

/// Cell-count ratio between a level and the next-coarser one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefinementRatio(pub IntVector);

impl RefinementRatio {
    pub fn isotropic(r: i32) -> Self {
        assert!(r >= 1, "refinement ratio must be >= 1, got {r}");
        Self(IntVector::splat(r))
    }

    #[inline]
    pub fn as_ivec(self) -> IntVector {
        self.0
    }
}

/// One level of the AMR hierarchy.
///
/// A level owns a uniform Cartesian index space (`cell_region`), a physical
/// anchor + spacing mapping indices to space, and a lattice of equally-sized
/// patches tiling the index space. For the RMCRT benchmarks every coarse
/// level spans the *entire* physical domain (the whole-domain coarse replica
/// the rays fall back to).
#[derive(Clone, Debug)]
pub struct Level {
    index: LevelIndex,
    cell_region: Region,
    anchor: Point,
    dx: Vector,
    /// Ratio to the next-coarser level; identity for level 0.
    ratio_to_coarser: RefinementRatio,
    patch_size: IntVector,
    lattice_extent: IntVector,
    patches: Vec<Patch>,
}

impl Level {
    /// Build a level tiled by `patch_size` patches.
    ///
    /// `first_patch_id` is the id of the first patch created; ids are dense.
    /// Panics unless `patch_size` exactly divides the level extent (Uintah's
    /// regular-patch configuration for these benchmarks).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: LevelIndex,
        cell_region: Region,
        anchor: Point,
        dx: Vector,
        ratio_to_coarser: RefinementRatio,
        patch_size: IntVector,
        first_patch_id: u32,
    ) -> Self {
        assert!(!cell_region.is_empty(), "level {index} has no cells");
        let extent = cell_region.extent();
        for a in 0..3 {
            assert!(
                patch_size[a] > 0 && extent[a] % patch_size[a] == 0,
                "patch size {patch_size:?} does not tile level extent {extent:?}"
            );
        }
        let lattice_extent = extent / patch_size;
        let lattice = Region::new(IntVector::ZERO, lattice_extent);
        let mut patches = Vec::with_capacity(lattice.volume());
        for (k, pos) in lattice.cells().enumerate() {
            let lo = cell_region.lo() + pos.comp_mul(patch_size);
            let hi = lo + patch_size;
            patches.push(Patch::new(
                PatchId(first_patch_id + k as u32),
                index,
                Region::new(lo, hi),
                pos,
            ));
        }
        Self {
            index,
            cell_region,
            anchor,
            dx,
            ratio_to_coarser,
            patch_size,
            lattice_extent,
            patches,
        }
    }

    #[inline]
    pub fn index(&self) -> LevelIndex {
        self.index
    }

    /// All cells of this level.
    #[inline]
    pub fn cell_region(&self) -> Region {
        self.cell_region
    }

    /// Physical location of the low corner of cell `(0,0,0)`.
    #[inline]
    pub fn anchor(&self) -> Point {
        self.anchor
    }

    /// Cell spacing.
    #[inline]
    pub fn dx(&self) -> Vector {
        self.dx
    }

    #[inline]
    pub fn ratio_to_coarser(&self) -> RefinementRatio {
        self.ratio_to_coarser
    }

    #[inline]
    pub fn patch_size(&self) -> IntVector {
        self.patch_size
    }

    #[inline]
    pub fn lattice_extent(&self) -> IntVector {
        self.lattice_extent
    }

    #[inline]
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }

    #[inline]
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cell_region.volume()
    }

    /// Physical low corner of the level.
    pub fn physical_lo(&self) -> Point {
        self.cell_pos_lo(self.cell_region.lo())
    }

    /// Physical high corner of the level.
    pub fn physical_hi(&self) -> Point {
        self.cell_pos_lo(self.cell_region.hi())
    }

    /// Physical position of the low corner of cell `c`.
    #[inline]
    pub fn cell_pos_lo(&self, c: IntVector) -> Point {
        self.anchor
            + Vector::new(
                c.x as f64 * self.dx.x,
                c.y as f64 * self.dx.y,
                c.z as f64 * self.dx.z,
            )
    }

    /// Physical position of the centre of cell `c`.
    #[inline]
    pub fn cell_center(&self, c: IntVector) -> Point {
        self.cell_pos_lo(c) + self.dx * 0.5
    }

    /// Cell index containing physical point `p` (points exactly on a high
    /// face map to the higher cell; callers clamp as needed).
    #[inline]
    pub fn cell_containing(&self, p: Point) -> IntVector {
        let r = p - self.anchor;
        IntVector::new(
            (r.x / self.dx.x).floor() as i32,
            (r.y / self.dx.y).floor() as i32,
            (r.z / self.dx.z).floor() as i32,
        )
    }

    /// The patch owning cell `c`, if `c` is on this level (O(1) lattice look-up).
    pub fn patch_containing(&self, c: IntVector) -> Option<&Patch> {
        if !self.cell_region.contains(c) {
            return None;
        }
        let rel = c - self.cell_region.lo();
        let pos = rel.div_floor(self.patch_size);
        let lattice = Region::new(IntVector::ZERO, self.lattice_extent);
        Some(&self.patches[lattice.linear_index(pos)])
    }

    /// Patches whose interior overlaps `region`.
    pub fn patches_overlapping<'a>(&'a self, region: &Region) -> Vec<&'a Patch> {
        let clipped = region.intersect(&self.cell_region);
        if clipped.is_empty() {
            return Vec::new();
        }
        let rel = Region::new(clipped.lo() - self.cell_region.lo(), clipped.hi() - self.cell_region.lo());
        let lat_lo = rel.lo().div_floor(self.patch_size);
        let lat_hi = (rel.hi() - IntVector::ONE).div_floor(self.patch_size) + IntVector::ONE;
        let lattice = Region::new(IntVector::ZERO, self.lattice_extent);
        Region::new(lat_lo, lat_hi)
            .cells()
            .map(|pos| &self.patches[lattice.linear_index(pos)])
            .collect()
    }

    /// Map a cell on this level to its parent cell on the next-coarser level.
    #[inline]
    pub fn map_cell_to_coarser(&self, c: IntVector) -> IntVector {
        c.div_floor(self.ratio_to_coarser.0)
    }

    /// Map a coarse cell to the low corner of its children on this level.
    #[inline]
    pub fn map_cell_from_coarser(&self, c: IntVector) -> IntVector {
        c.comp_mul(self.ratio_to_coarser.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level64() -> Level {
        Level::new(
            0,
            Region::cube(64),
            Point::ORIGIN,
            Vector::splat(1.0 / 64.0),
            RefinementRatio::isotropic(1),
            IntVector::splat(16),
            0,
        )
    }

    #[test]
    fn tiling_counts() {
        let l = level64();
        assert_eq!(l.num_patches(), 64);
        assert_eq!(l.lattice_extent(), IntVector::splat(4));
        assert_eq!(l.num_cells(), 64 * 64 * 64);
        // Patches tile without overlap: total cells match.
        let total: usize = l.patches().iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, l.num_cells());
    }

    #[test]
    fn patch_ids_dense_and_ordered() {
        let l = level64();
        for (i, p) in l.patches().iter().enumerate() {
            assert_eq!(p.id().index(), i);
        }
    }

    #[test]
    fn patch_lookup_by_cell() {
        let l = level64();
        for &c in &[
            IntVector::ZERO,
            IntVector::splat(15),
            IntVector::splat(16),
            IntVector::new(63, 0, 31),
        ] {
            let p = l.patch_containing(c).unwrap();
            assert!(p.interior().contains(c));
        }
        assert!(l.patch_containing(IntVector::splat(64)).is_none());
        assert!(l.patch_containing(IntVector::splat(-1)).is_none());
    }

    #[test]
    fn geometry_roundtrip() {
        let l = level64();
        for &c in &[IntVector::ZERO, IntVector::new(13, 63, 7)] {
            let center = l.cell_center(c);
            assert_eq!(l.cell_containing(center), c);
        }
        assert_eq!(l.physical_hi(), Point::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn overlapping_patch_query() {
        let l = level64();
        // A region inside one patch.
        let r = Region::new(IntVector::splat(1), IntVector::splat(3));
        assert_eq!(l.patches_overlapping(&r).len(), 1);
        // A region crossing a patch boundary along x.
        let r = Region::new(IntVector::new(14, 0, 0), IntVector::new(18, 4, 4));
        assert_eq!(l.patches_overlapping(&r).len(), 2);
        // Whole level.
        assert_eq!(l.patches_overlapping(&l.cell_region()).len(), 64);
        // Region hanging off the level is clipped.
        let r = Region::new(IntVector::splat(-5), IntVector::splat(2));
        assert_eq!(l.patches_overlapping(&r).len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn non_tiling_patch_size_rejected() {
        Level::new(
            0,
            Region::cube(64),
            Point::ORIGIN,
            Vector::splat(1.0),
            RefinementRatio::isotropic(1),
            IntVector::splat(24),
            0,
        );
    }

    #[test]
    fn coarse_fine_cell_maps() {
        let fine = Level::new(
            1,
            Region::cube(256),
            Point::ORIGIN,
            Vector::splat(1.0 / 256.0),
            RefinementRatio::isotropic(4),
            IntVector::splat(16),
            0,
        );
        assert_eq!(fine.map_cell_to_coarser(IntVector::splat(7)), IntVector::splat(1));
        assert_eq!(fine.map_cell_from_coarser(IntVector::splat(2)), IntVector::splat(8));
    }
}
