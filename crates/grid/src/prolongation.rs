//! Coarse→fine interpolation (prolongation).
//!
//! The inverse of [`crate::restriction`]: AMR frameworks use prolongation
//! to initialize newly refined patches and to fill fine-level boundary
//! conditions from coarse data. Two operators are provided: piecewise-
//! constant injection (exact inverse of averaging for constant fields) and
//! trilinear interpolation from coarse cell centres.

use crate::index::IntVector;
use crate::region::Region;
use crate::variable::CcVariable;

/// Per-cell kernel for piecewise-constant prolongation: fine cell `fc`
/// copies its coarse parent's value.
#[inline]
pub fn prolong_constant_cell(coarse: &CcVariable<f64>, rr: IntVector, fc: IntVector) -> f64 {
    coarse[fc.div_floor(rr)]
}

/// Per-cell kernel for trilinear prolongation from coarse cell centres,
/// clamped at the coarse data's boundary (no extrapolation past the
/// outermost centres).
#[inline]
pub fn prolong_linear_cell(coarse: &CcVariable<f64>, rr: IntVector, fc: IntVector) -> f64 {
    let cr = coarse.region();
    // Fine cell centre in coarse index space (coarse cell centres sit
    // at integer + 0.5).
    let mut w = [0.0f64; 3];
    let mut base = IntVector::ZERO;
    for a in 0..3 {
        let x = (fc[a] as f64 + 0.5) / rr[a] as f64 - 0.5;
        let lo = x.floor();
        let mut b = lo as i32;
        let mut t = x - lo;
        // Clamp to the coarse region so interpolation never reads
        // outside the data.
        if b < cr.lo()[a] {
            b = cr.lo()[a];
            t = 0.0;
        }
        if b >= cr.hi()[a] - 1 {
            b = cr.hi()[a] - 1;
            t = if cr.extent()[a] > 1 { 1.0 } else { 0.0 };
            if t == 1.0 {
                b = cr.hi()[a] - 2;
            }
        }
        base[a] = b;
        w[a] = t;
    }
    let mut v = 0.0;
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                let c = base + IntVector::new(dx, dy, dz);
                let c = IntVector::new(
                    c.x.clamp(cr.lo().x, cr.hi().x - 1),
                    c.y.clamp(cr.lo().y, cr.hi().y - 1),
                    c.z.clamp(cr.lo().z, cr.hi().z - 1),
                );
                let weight = (if dx == 1 { w[0] } else { 1.0 - w[0] })
                    * (if dy == 1 { w[1] } else { 1.0 - w[1] })
                    * (if dz == 1 { w[2] } else { 1.0 - w[2] });
                v += weight * coarse[c];
            }
        }
    }
    v
}

/// Piecewise-constant prolongation: every fine child copies its coarse
/// parent's value. `coarse` must cover `fine_window.coarsened(rr)`.
///
/// Serial reference; hot paths dispatch the same kernel through
/// `uintah-exec::ops::prolong_constant`.
pub fn prolong_constant(
    coarse: &CcVariable<f64>,
    rr: IntVector,
    fine_window: Region,
) -> CcVariable<f64> {
    let mut out = CcVariable::new(fine_window);
    out.fill_with(|fc| prolong_constant_cell(coarse, rr, fc));
    out
}

/// Trilinear prolongation from coarse cell centres, clamped at the coarse
/// data's boundary (no extrapolation past the outermost centres).
///
/// Serial reference; hot paths dispatch the same kernel through
/// `uintah-exec::ops::prolong_linear`.
pub fn prolong_linear(coarse: &CcVariable<f64>, rr: IntVector, fine_window: Region) -> CcVariable<f64> {
    let mut out = CcVariable::new(fine_window);
    out.fill_with(|fc| prolong_linear_cell(coarse, rr, fc));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restriction::restrict_average;

    #[test]
    fn constant_prolongation_copies_parent() {
        let rr = IntVector::splat(4);
        let mut coarse = CcVariable::<f64>::new(Region::cube(2));
        coarse.fill_with(|c| (c.x + 10 * c.y + 100 * c.z) as f64);
        let fine = prolong_constant(&coarse, rr, Region::cube(8));
        for fc in Region::cube(8).cells() {
            assert_eq!(fine[fc], coarse[fc.div_floor(rr)]);
        }
    }

    #[test]
    fn restriction_of_constant_prolongation_is_identity() {
        let rr = IntVector::splat(2);
        let mut coarse = CcVariable::<f64>::new(Region::cube(4));
        coarse.fill_with(|c| 1.0 + c.x as f64 * 0.3 - c.y as f64 * 0.1 + c.z as f64);
        let fine = prolong_constant(&coarse, rr, Region::cube(8));
        let back = restrict_average(&fine, rr, Region::cube(4));
        for c in Region::cube(4).cells() {
            assert!((back[c] - coarse[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_prolongation_reproduces_linear_fields_in_interior() {
        // A linear field is interpolated exactly away from the clamped
        // boundary.
        let rr = IntVector::splat(2);
        let mut coarse = CcVariable::<f64>::new(Region::cube(6));
        let f = |x: f64, y: f64, z: f64| 2.0 * x + 3.0 * y - z + 0.5;
        coarse.fill_with(|c| f(c.x as f64 + 0.5, c.y as f64 + 0.5, c.z as f64 + 0.5));
        let fine = prolong_linear(&coarse, rr, Region::cube(12));
        // Interior fine cells (children of coarse cells 1..5).
        for fc in Region::new(IntVector::splat(3), IntVector::splat(9)).cells() {
            let expect = f(
                (fc.x as f64 + 0.5) / 2.0,
                (fc.y as f64 + 0.5) / 2.0,
                (fc.z as f64 + 0.5) / 2.0,
            );
            assert!(
                (fine[fc] - expect).abs() < 1e-12,
                "cell {fc:?}: {} vs {expect}",
                fine[fc]
            );
        }
    }

    #[test]
    fn linear_prolongation_clamps_at_boundary() {
        let rr = IntVector::splat(4);
        let coarse = CcVariable::<f64>::filled(Region::cube(2), 7.0);
        let fine = prolong_linear(&coarse, rr, Region::cube(8));
        for (_, &v) in fine.iter() {
            assert!((v - 7.0).abs() < 1e-12, "constant field must prolong exactly");
        }
    }
}
