//! Structured AMR grid substrate for the RMCRT-AMR stack.
//!
//! This crate provides the pieces of Uintah's grid layer that the
//! multi-level reverse Monte Carlo ray tracing (RMCRT) algorithm depends on:
//!
//! * [`IntVector`] / [`Point`] / [`Vector`] — integer cell indices and
//!   double-precision geometry,
//! * [`Region`] — half-open axis-aligned boxes of cells,
//! * [`Patch`] — a Cartesian mesh patch (the unit of work distribution),
//! * [`Level`] — one mesh level: spacing, extents, refinement ratio and the
//!   set of patches tiling it,
//! * [`Grid`] — a hierarchy of levels (level 0 is the *coarsest*, matching
//!   Uintah's convention),
//! * [`CcVariable`] — a cell-centered field over a region (with ghost cells),
//! * restriction operators projecting fine data onto coarse levels, and
//! * patch→rank distribution (round-robin and Morton space-filling curve).
//!
//! The benchmark problems of Humphrey et al. (IPDPS 2016) are 2-level grids
//! with a refinement ratio of 4: fine CFD mesh 256³/512³ and coarse radiation
//! mesh 64³/128³, decomposed into 16³/32³/64³ patches.

pub mod distribute;
pub mod geom;
pub mod grid;
pub mod index;
pub mod label;
pub mod level;
pub mod patch;
pub mod prolongation;
pub mod regrid;
pub mod region;
pub mod restriction;
pub mod variable;

pub use distribute::{DistributionPolicy, PatchDistribution};
pub use geom::{Point, Vector};
pub use grid::{Grid, GridBuilder};
pub use index::IntVector;
pub use label::VarLabel;
pub use level::{Level, LevelIndex, RefinementRatio};
pub use patch::{Patch, PatchId};
pub use regrid::{PatchCosts, RebalancePolicy, RegridOutcome, Regridder};
pub use region::Region;
pub use variable::{CcVariable, FieldData};
