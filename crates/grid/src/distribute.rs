//! Patch → rank distribution (load balancing).
//!
//! Uintah's load balancer assigns Cartesian patches to MPI ranks; for the
//! regular RMCRT benchmark grids it uses a space-filling-curve ordering so
//! that consecutive ranks own spatially compact patch sets (minimizing halo
//! traffic). We provide that (Morton order) plus plain round-robin, and the
//! census queries the scheduler and the Titan model use to derive message
//! volumes.

use crate::grid::Grid;
use crate::index::IntVector;
use crate::patch::PatchId;

/// How patches are laid out across ranks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DistributionPolicy {
    /// Patch `i` goes to rank `i % nranks` (cyclic).
    RoundRobin,
    /// Patches sorted along a Morton (Z-order) curve per level, then split
    /// into `nranks` contiguous chunks: spatially compact rank sets.
    MortonSfc,
}

/// The patch→rank assignment for a grid.
#[derive(Clone, Debug)]
pub struct PatchDistribution {
    nranks: usize,
    /// rank of each patch, indexed by dense patch id.
    rank_of: Vec<u32>,
    /// patches owned by each rank.
    owned: Vec<Vec<PatchId>>,
}

impl PartialEq for PatchDistribution {
    /// Two distributions are equal when they assign every patch to the same
    /// rank (the `owned` lists are derived data whose order is irrelevant).
    fn eq(&self, other: &Self) -> bool {
        self.nranks == other.nranks && self.rank_of == other.rank_of
    }
}

impl Eq for PatchDistribution {}

impl PatchDistribution {
    /// Distribute all patches of `grid` over `nranks` ranks.
    pub fn new(grid: &Grid, nranks: usize, policy: DistributionPolicy) -> Self {
        assert!(nranks > 0, "need at least one rank");
        let mut rank_of = vec![0u32; grid.num_patches()];
        let mut owned = vec![Vec::new(); nranks];
        match policy {
            DistributionPolicy::RoundRobin => {
                // Cycle per level so every rank gets patches from all levels.
                for level in grid.levels() {
                    for (i, p) in level.patches().iter().enumerate() {
                        let r = i % nranks;
                        rank_of[p.id().index()] = r as u32;
                        owned[r].push(p.id());
                    }
                }
            }
            DistributionPolicy::MortonSfc => {
                for level in grid.levels() {
                    let mut order: Vec<(u64, PatchId)> = level
                        .patches()
                        .iter()
                        .map(|p| (morton3(p.lattice_pos()), p.id()))
                        .collect();
                    order.sort_unstable_by_key(|&(m, _)| m);
                    let n = order.len();
                    for (i, &(_, id)) in order.iter().enumerate() {
                        // Contiguous chunks of the curve, remainder spread evenly.
                        let r = (i * nranks) / n;
                        rank_of[id.index()] = r as u32;
                        owned[r].push(id);
                    }
                }
            }
        }
        Self {
            nranks,
            rank_of,
            owned,
        }
    }

    /// Build from an explicit patch→rank map (a regridder's output).
    /// `rank_of[i]` is the rank of the patch with dense id `i`.
    pub fn from_rank_of(nranks: usize, rank_of: Vec<u32>) -> Self {
        assert!(nranks > 0, "need at least one rank");
        let mut owned = vec![Vec::new(); nranks];
        for (i, &r) in rank_of.iter().enumerate() {
            assert!(
                (r as usize) < nranks,
                "patch {i} assigned to rank {r} of {nranks}"
            );
            owned[r as usize].push(PatchId(i as u32));
        }
        Self {
            nranks,
            rank_of,
            owned,
        }
    }

    /// The dense patch→rank map, indexed by patch id.
    #[inline]
    pub fn rank_map(&self) -> &[u32] {
        &self.rank_of
    }

    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Rank owning `patch`.
    #[inline]
    pub fn rank_of(&self, patch: PatchId) -> usize {
        self.rank_of[patch.index()] as usize
    }

    /// Patches owned by `rank`.
    #[inline]
    pub fn owned_by(&self, rank: usize) -> &[PatchId] {
        &self.owned[rank]
    }

    /// Maximum patches owned by any rank (load-imbalance check).
    pub fn max_load(&self) -> usize {
        self.owned.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum patches owned by any rank.
    pub fn min_load(&self) -> usize {
        self.owned.iter().map(Vec::len).min().unwrap_or(0)
    }
}

/// 3-D Morton (Z-order) key of a lattice position. Supports coordinates up
/// to 2^21 per axis, far beyond the benchmark lattices (<= 64 per axis).
pub fn morton3(p: IntVector) -> u64 {
    debug_assert!(p.x >= 0 && p.y >= 0 && p.z >= 0, "morton of negative {p:?}");
    part1by2(p.x as u64) | (part1by2(p.y as u64) << 1) | (part1by2(p.z as u64) << 2)
}

/// Spread the low 21 bits of `x` so there are two zero bits between each.
fn part1by2(mut x: u64) -> u64 {
    x &= 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn grid() -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(64))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(16))
            .build()
    }

    #[test]
    fn every_patch_assigned_exactly_once() {
        let g = grid();
        for policy in [DistributionPolicy::RoundRobin, DistributionPolicy::MortonSfc] {
            let d = PatchDistribution::new(&g, 7, policy);
            let mut seen = vec![false; g.num_patches()];
            for r in 0..7 {
                for &p in d.owned_by(r) {
                    assert!(!seen[p.index()], "patch {p:?} assigned twice");
                    seen[p.index()] = true;
                    assert_eq!(d.rank_of(p), r);
                }
            }
            assert!(seen.iter().all(|&s| s), "unassigned patch under {policy:?}");
        }
    }

    #[test]
    fn balance_within_one_patch_per_level() {
        let g = grid();
        for policy in [DistributionPolicy::RoundRobin, DistributionPolicy::MortonSfc] {
            let d = PatchDistribution::new(&g, 6, policy);
            // 2 levels -> imbalance at most 1 per level.
            assert!(d.max_load() - d.min_load() <= 2, "imbalance under {policy:?}");
        }
    }

    #[test]
    fn morton_keys_strictly_interleave() {
        assert_eq!(morton3(IntVector::new(0, 0, 0)), 0);
        assert_eq!(morton3(IntVector::new(1, 0, 0)), 1);
        assert_eq!(morton3(IntVector::new(0, 1, 0)), 2);
        assert_eq!(morton3(IntVector::new(0, 0, 1)), 4);
        assert_eq!(morton3(IntVector::new(1, 1, 1)), 7);
        assert_eq!(morton3(IntVector::new(2, 0, 0)), 8);
    }

    #[test]
    fn morton_is_injective_on_lattice() {
        let mut keys = std::collections::HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    assert!(keys.insert(morton3(IntVector::new(x, y, z))));
                }
            }
        }
    }

    #[test]
    fn sfc_ranks_are_spatially_compact() {
        // With the Morton curve, the average pairwise lattice distance within
        // a rank should be lower than with round-robin for many ranks.
        let g = Grid::builder()
            .fine_cells(IntVector::splat(128))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(16))
            .build();
        let spread = |d: &PatchDistribution| -> f64 {
            let mut total = 0.0;
            let mut cnt = 0usize;
            for r in 0..d.nranks() {
                let pts: Vec<IntVector> = d
                    .owned_by(r)
                    .iter()
                    .map(|&id| g.patch(id).lattice_pos())
                    .collect();
                for i in 0..pts.len() {
                    for j in (i + 1)..pts.len() {
                        let dv = pts[i] - pts[j];
                        total += ((dv.x * dv.x + dv.y * dv.y + dv.z * dv.z) as f64).sqrt();
                        cnt += 1;
                    }
                }
            }
            total / cnt as f64
        };
        let sfc = PatchDistribution::new(&g, 16, DistributionPolicy::MortonSfc);
        let rr = PatchDistribution::new(&g, 16, DistributionPolicy::RoundRobin);
        assert!(
            spread(&sfc) < spread(&rr),
            "SFC should cluster patches: {} vs {}",
            spread(&sfc),
            spread(&rr)
        );
    }

    #[test]
    fn more_ranks_than_patches() {
        let g = Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(16))
            .build(); // 8 patches
        let d = PatchDistribution::new(&g, 32, DistributionPolicy::MortonSfc);
        assert_eq!(d.max_load(), 1);
        let assigned: usize = (0..32).map(|r| d.owned_by(r).len()).sum();
        assert_eq!(assigned, 8);
    }
}
