//! Half-open axis-aligned boxes of cells.

use crate::index::IntVector;
use std::fmt;

/// A half-open box of cell indices `[lo, hi)`.
///
/// `lo == hi` (or any axis degenerate) means the region is empty. Regions are
/// the common currency for patch extents, ghost halos, message footprints and
/// restriction windows.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    lo: IntVector,
    hi: IntVector,
}

impl Region {
    /// An empty region at the origin.
    pub const EMPTY: Region = Region {
        lo: IntVector::ZERO,
        hi: IntVector::ZERO,
    };

    /// Create `[lo, hi)`. Degenerate inputs normalize to an empty region.
    #[inline]
    pub fn new(lo: IntVector, hi: IntVector) -> Self {
        if lo.all_lt(hi) {
            Self { lo, hi }
        } else {
            Self::EMPTY
        }
    }

    /// Cube `[0, n)^3`.
    #[inline]
    pub fn cube(n: i32) -> Self {
        Self::new(IntVector::ZERO, IntVector::splat(n))
    }

    #[inline]
    pub fn lo(&self) -> IntVector {
        self.lo
    }

    #[inline]
    pub fn hi(&self) -> IntVector {
        self.hi
    }

    /// Number of cells along each axis.
    #[inline]
    pub fn extent(&self) -> IntVector {
        self.hi - self.lo
    }

    /// Total number of cells.
    #[inline]
    pub fn volume(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.extent().volume()
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.lo.all_lt(self.hi)
    }

    #[inline]
    pub fn contains(&self, c: IntVector) -> bool {
        self.lo.all_le(c) && c.all_lt(self.hi)
    }

    /// Expand by `g` ghost cells on every face (negative shrinks).
    #[inline]
    pub fn grown(&self, g: i32) -> Self {
        if self.is_empty() {
            *self
        } else {
            Self::new(self.lo - IntVector::splat(g), self.hi + IntVector::splat(g))
        }
    }

    /// Intersection; empty if disjoint.
    #[inline]
    pub fn intersect(&self, o: &Region) -> Region {
        Region::new(self.lo.max(o.lo), self.hi.min(o.hi))
    }

    /// Smallest region containing both.
    #[inline]
    pub fn union_bounds(&self, o: &Region) -> Region {
        if self.is_empty() {
            return *o;
        }
        if o.is_empty() {
            return *self;
        }
        Region::new(self.lo.min(o.lo), self.hi.max(o.hi))
    }

    #[inline]
    pub fn overlaps(&self, o: &Region) -> bool {
        !self.intersect(o).is_empty()
    }

    /// True if `o` lies entirely inside `self`.
    #[inline]
    pub fn contains_region(&self, o: &Region) -> bool {
        o.is_empty() || (self.lo.all_le(o.lo) && o.hi.all_le(self.hi))
    }

    /// Map to the next-coarser index space by floor division with the
    /// refinement ratio, rounding outward so the coarse region covers every
    /// fine cell.
    pub fn coarsened(&self, rr: IntVector) -> Region {
        if self.is_empty() {
            return Region::EMPTY;
        }
        let lo = self.lo.div_floor(rr);
        // hi is exclusive: coarsen hi-1 then add one.
        let hi = (self.hi - IntVector::ONE).div_floor(rr) + IntVector::ONE;
        Region::new(lo, hi)
    }

    /// Map to the next-finer index space.
    pub fn refined(&self, rr: IntVector) -> Region {
        if self.is_empty() {
            return Region::EMPTY;
        }
        Region::new(self.lo.comp_mul(rr), self.hi.comp_mul(rr))
    }

    /// Iterate all cell indices in x-fastest (Fortran-like) order, matching
    /// the linearization used by [`crate::variable::CcVariable`].
    pub fn cells(&self) -> CellIter {
        CellIter {
            region: *self,
            cur: self.lo,
            done: self.is_empty(),
        }
    }

    /// Linear offset of `c` within this region (x fastest).
    #[inline]
    pub fn linear_index(&self, c: IntVector) -> usize {
        debug_assert!(self.contains(c), "{c:?} outside {self:?}");
        let e = self.extent();
        let r = c - self.lo;
        (r.x as usize) + (e.x as usize) * ((r.y as usize) + (e.y as usize) * (r.z as usize))
    }

    /// Inverse of [`Self::linear_index`].
    #[inline]
    pub fn from_linear(&self, i: usize) -> IntVector {
        let e = self.extent();
        let ex = e.x as usize;
        let ey = e.y as usize;
        let x = (i % ex) as i32;
        let y = ((i / ex) % ey) as i32;
        let z = (i / (ex * ey)) as i32;
        self.lo + IntVector::new(x, y, z)
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region[{:?}..{:?})", self.lo, self.hi)
    }
}

/// Iterator over cells of a region in x-fastest order.
pub struct CellIter {
    region: Region,
    cur: IntVector,
    done: bool,
}

impl Iterator for CellIter {
    type Item = IntVector;

    fn next(&mut self) -> Option<IntVector> {
        if self.done {
            return None;
        }
        let out = self.cur;
        self.cur.x += 1;
        if self.cur.x == self.region.hi.x {
            self.cur.x = self.region.lo.x;
            self.cur.y += 1;
            if self.cur.y == self.region.hi.y {
                self.cur.y = self.region.lo.y;
                self.cur.z += 1;
                if self.cur.z == self.region.hi.z {
                    self.done = true;
                }
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let e = self.region.extent();
        let consumed = self.region.linear_index(self.cur);
        let n = e.volume() - consumed;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CellIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_degenerate() {
        let r = Region::new(IntVector::splat(3), IntVector::splat(3));
        assert!(r.is_empty());
        assert_eq!(r.volume(), 0);
        let r = Region::new(IntVector::splat(5), IntVector::splat(2));
        assert!(r.is_empty());
    }

    #[test]
    fn volume_and_contains() {
        let r = Region::cube(4);
        assert_eq!(r.volume(), 64);
        assert!(r.contains(IntVector::ZERO));
        assert!(r.contains(IntVector::splat(3)));
        assert!(!r.contains(IntVector::splat(4)));
        assert!(!r.contains(IntVector::new(-1, 0, 0)));
    }

    #[test]
    fn grow_and_intersect() {
        let r = Region::cube(4).grown(1);
        assert_eq!(r.lo(), IntVector::splat(-1));
        assert_eq!(r.hi(), IntVector::splat(5));
        let s = Region::new(IntVector::splat(3), IntVector::splat(10));
        let i = r.intersect(&s);
        assert_eq!(i, Region::new(IntVector::splat(3), IntVector::splat(5)));
        assert!(r.overlaps(&s));
        let far = Region::new(IntVector::splat(100), IntVector::splat(101));
        assert!(!r.overlaps(&far));
    }

    #[test]
    fn coarsen_refine_roundtrip_covers() {
        let rr = IntVector::splat(4);
        let fine = Region::new(IntVector::new(3, 0, 5), IntVector::new(17, 8, 9));
        let coarse = fine.coarsened(rr);
        // Every fine cell's coarse parent is inside the coarsened region.
        for c in fine.cells() {
            assert!(coarse.contains(c.div_floor(rr)));
        }
        // Refining the coarse region covers the fine region.
        assert!(coarse.refined(rr).contains_region(&fine));
    }

    #[test]
    fn coarsen_exact_when_aligned() {
        let rr = IntVector::splat(4);
        let fine = Region::cube(256);
        assert_eq!(fine.coarsened(rr), Region::cube(64));
    }

    #[test]
    fn linear_index_roundtrip() {
        let r = Region::new(IntVector::new(-2, 3, 1), IntVector::new(4, 7, 6));
        for (i, c) in r.cells().enumerate() {
            assert_eq!(r.linear_index(c), i);
            assert_eq!(r.from_linear(i), c);
        }
        assert_eq!(r.cells().count(), r.volume());
    }

    #[test]
    fn cell_iter_order_x_fastest() {
        let r = Region::cube(2);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells[0], IntVector::new(0, 0, 0));
        assert_eq!(cells[1], IntVector::new(1, 0, 0));
        assert_eq!(cells[2], IntVector::new(0, 1, 0));
        assert_eq!(cells[4], IntVector::new(0, 0, 1));
        assert_eq!(cells.len(), 8);
    }

    #[test]
    fn union_bounds() {
        let a = Region::cube(2);
        let b = Region::new(IntVector::splat(5), IntVector::splat(7));
        let u = a.union_bounds(&b);
        assert_eq!(u, Region::new(IntVector::ZERO, IntVector::splat(7)));
        assert_eq!(Region::EMPTY.union_bounds(&a), a);
        assert_eq!(a.union_bounds(&Region::EMPTY), a);
    }

    #[test]
    fn exact_size_iter() {
        let r = Region::cube(3);
        let mut it = r.cells();
        assert_eq!(it.len(), 27);
        it.next();
        assert_eq!(it.len(), 26);
    }
}
