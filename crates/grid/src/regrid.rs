//! Flag-driven regridding and cost-weighted rebalancing.
//!
//! The paper's runs periodically regrid: refinement flags raised on a coarse
//! level mark where the fine CFD mesh must exist, and Uintah's load balancer
//! redistributes the patches across ranks using measured per-patch cost
//! along a space-filling curve. This module provides both halves for the
//! miniature stack:
//!
//! * [`Regridder::refine_regions`] maps a set of refinement-flagged coarse
//!   cells to disjoint, refinement-ratio-aligned fine regions (the regrid
//!   proposal);
//! * [`Regridder::rebalance`] produces a new [`PatchDistribution`] from
//!   per-patch execution cost ([`PatchCosts`], fed by the runtime's
//!   `ExecStats` per-patch timings) under a selectable
//!   [`RebalancePolicy`].
//!
//! Applying a changed distribution mid-run (graph invalidation, ownership
//! migration, GPU eviction) is the runtime's job — see
//! `uintah_runtime::regrid`.

use crate::distribute::{morton3, PatchDistribution};
use crate::grid::Grid;
use crate::index::IntVector;
use crate::level::LevelIndex;
use crate::patch::PatchId;
use crate::region::Region;

/// How a regrid redistributes existing patches across ranks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RebalancePolicy {
    /// Patches Morton-ordered per level, the curve cut into contiguous
    /// chunks of approximately equal *cost* (Uintah's SFC load balancer
    /// weighted by measured time instead of patch count).
    CostedSfc,
    /// Greedy longest-processing-time: heaviest patch first onto the
    /// currently least-loaded rank. Better balance, no locality.
    CostedLpt,
    /// `rank(p) := (rank(p) + k) mod nranks` — a forced ownership flip that
    /// moves every patch. Not a balancer; the migration test harness uses
    /// it to exercise the worst-case "everything moves" regrid.
    Rotate(usize),
}

/// Per-patch execution cost, dense by patch id. The unit is arbitrary
/// (seconds, cells, rays) — only ratios matter to the balancers.
#[derive(Clone, Debug, PartialEq)]
pub struct PatchCosts {
    cost: Vec<f64>,
}

impl PatchCosts {
    /// Every patch costs 1 (balance by patch count).
    pub fn uniform(grid: &Grid) -> Self {
        Self {
            cost: vec![1.0; grid.num_patches()],
        }
    }

    /// Cost proportional to cell count (balance by volume — the static
    /// estimate used before any step has been measured).
    pub fn from_cells(grid: &Grid) -> Self {
        let mut cost = vec![0.0; grid.num_patches()];
        for p in grid.all_patches() {
            cost[p.id().index()] = p.num_cells() as f64;
        }
        Self { cost }
    }

    /// Adopt measured values (e.g. the all-reduced per-patch task seconds
    /// from `ExecStats`). Length must equal `grid.num_patches()` when used
    /// with [`Regridder::rebalance`].
    pub fn from_values(cost: Vec<f64>) -> Self {
        Self { cost }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    #[inline]
    pub fn get(&self, patch: PatchId) -> f64 {
        self.cost[patch.index()]
    }

    #[inline]
    pub fn set(&mut self, patch: PatchId, cost: f64) {
        self.cost[patch.index()] = cost;
    }

    pub fn total(&self) -> f64 {
        self.cost.iter().sum()
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.cost
    }
}

/// The outcome of one regrid decision: where the fine mesh should exist
/// (flag-driven refinement proposal) and who owns which patch (rebalance).
#[derive(Clone, Debug)]
pub struct RegridOutcome {
    /// The rebalanced patch→rank assignment.
    pub dist: PatchDistribution,
    /// Disjoint, ratio-aligned fine regions the refinement flags request.
    pub refined: Vec<Region>,
    /// How many coarse cells were flagged.
    pub flagged: usize,
}

/// Flag-driven refinement + cost-weighted rebalance.
#[derive(Clone, Copy, Debug)]
pub struct Regridder {
    pub policy: RebalancePolicy,
    /// A fine patch whose cost exceeds `flag_threshold ×` the fine-level
    /// mean raises refinement flags on its coarse parent cells.
    pub flag_threshold: f64,
}

impl Regridder {
    pub fn new(policy: RebalancePolicy) -> Self {
        Self {
            policy,
            flag_threshold: 2.0,
        }
    }

    /// Coarse cells (on the level below the finest) flagged because the
    /// fine patches above them are hot: cost > `flag_threshold ×` mean.
    /// Deterministic: flags are emitted in (z, y, x) order, deduplicated.
    pub fn flag_hot_patches(&self, grid: &Grid, costs: &PatchCosts) -> Vec<IntVector> {
        if grid.levels().len() < 2 {
            return Vec::new();
        }
        let fine = grid.fine_level();
        let rr = fine.ratio_to_coarser().as_ivec();
        let patches = fine.patches();
        let mean = patches.iter().map(|p| costs.get(p.id())).sum::<f64>() / patches.len() as f64;
        let mut flags = Vec::new();
        for p in patches {
            if costs.get(p.id()) > self.flag_threshold * mean {
                let coarse = p.interior().coarsened(rr);
                flags.extend(coarse.cells());
            }
        }
        flags.sort_unstable_by_key(|c| (c.z, c.y, c.x));
        flags.dedup();
        flags
    }

    /// Map refinement flags on `flag_level` to the fine regions they
    /// request on `flag_level + 1`. Each flagged coarse cell becomes one
    /// refinement-ratio-aligned fine box; runs of adjacent flags along x
    /// are merged. Flags outside the level and duplicates are ignored.
    ///
    /// The output is guaranteed disjoint, aligned to the refinement ratio,
    /// and covering exactly the flagged cells' fine footprints — the three
    /// invariants the property tests check.
    pub fn refine_regions(grid: &Grid, flag_level: LevelIndex, flags: &[IntVector]) -> Vec<Region> {
        assert!(
            (flag_level as usize) + 1 < grid.levels().len(),
            "no level finer than {flag_level} to refine into"
        );
        let coarse_region = grid.level(flag_level).cell_region();
        let rr = grid.level(flag_level + 1).ratio_to_coarser().as_ivec();
        let mut cells: Vec<IntVector> = flags
            .iter()
            .copied()
            .filter(|c| coarse_region.contains(*c))
            .collect();
        cells.sort_unstable_by_key(|c| (c.z, c.y, c.x));
        cells.dedup();
        let mut out: Vec<Region> = Vec::new();
        for c in cells {
            let lo = IntVector::new(c.x * rr.x, c.y * rr.y, c.z * rr.z);
            let hi = lo + rr;
            // Merge an x-adjacent run into the previous box.
            if let Some(last) = out.last_mut() {
                if last.hi().x == lo.x
                    && last.lo().y == lo.y
                    && last.hi().y == hi.y
                    && last.lo().z == lo.z
                    && last.hi().z == hi.z
                {
                    *last = Region::new(last.lo(), IntVector::new(hi.x, hi.y, hi.z));
                    continue;
                }
            }
            out.push(Region::new(lo, hi));
        }
        out
    }

    /// Cost-weighted redistribution of the grid's patches. Deterministic
    /// for a given `(grid, costs, current)`, so every rank of a world can
    /// compute it independently from all-reduced costs and agree.
    pub fn rebalance(
        &self,
        grid: &Grid,
        costs: &PatchCosts,
        current: &PatchDistribution,
    ) -> PatchDistribution {
        assert_eq!(
            costs.len(),
            grid.num_patches(),
            "cost vector does not cover the grid"
        );
        let nranks = current.nranks();
        let mut rank_of = vec![0u32; grid.num_patches()];
        match self.policy {
            RebalancePolicy::Rotate(k) => {
                for p in grid.all_patches() {
                    rank_of[p.id().index()] = ((current.rank_of(p.id()) + k) % nranks) as u32;
                }
            }
            RebalancePolicy::CostedSfc => {
                for level in grid.levels() {
                    let order = sfc_order(level.patches().iter().map(|p| p.id()), grid);
                    let eff = effective_costs(&order, costs);
                    let total: f64 = eff.iter().sum();
                    let mut cum = 0.0;
                    for (&id, &c) in order.iter().zip(&eff) {
                        // Cut the curve at equal cumulative cost: the rank
                        // span of any chunk is ≤ total/nranks + max cost.
                        let r = ((cum / total) * nranks as f64) as usize;
                        rank_of[id.index()] = r.min(nranks - 1) as u32;
                        cum += c;
                    }
                }
            }
            RebalancePolicy::CostedLpt => {
                for level in grid.levels() {
                    let ids: Vec<PatchId> = level.patches().iter().map(|p| p.id()).collect();
                    let eff = effective_costs(&ids, costs);
                    let mut order: Vec<(f64, PatchId)> = eff.iter().copied().zip(ids).collect();
                    // Heaviest first; ties broken by id for determinism.
                    order.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1 .0.cmp(&b.1 .0))
                    });
                    let mut load = vec![0.0f64; nranks];
                    for (c, id) in order {
                        let r = argmin(&load);
                        rank_of[id.index()] = r as u32;
                        load[r] += c;
                    }
                }
            }
        }
        PatchDistribution::from_rank_of(nranks, rank_of)
    }

    /// One regrid decision: flag hot fine patches, derive the refinement
    /// proposal, and rebalance ownership.
    pub fn regrid(
        &self,
        grid: &Grid,
        costs: &PatchCosts,
        current: &PatchDistribution,
    ) -> RegridOutcome {
        let flags = self.flag_hot_patches(grid, costs);
        let refined = if flags.is_empty() {
            Vec::new()
        } else {
            Self::refine_regions(grid, grid.fine_level_index() - 1, &flags)
        };
        RegridOutcome {
            dist: self.rebalance(grid, costs, current),
            refined,
            flagged: flags.len(),
        }
    }

    /// The per-rank cost bound both costed policies guarantee:
    /// `Σ_levels (level_total / nranks + level_max)`. The SFC cut places
    /// every chunk's cumulative span inside one `total/nranks` window plus
    /// at most one straddling patch; greedy-LPT only ever raises the
    /// minimum load by one patch above the mean. `None` for
    /// [`RebalancePolicy::Rotate`], which advertises no bound (it preserves
    /// the load multiset).
    pub fn advertised_bound(&self, grid: &Grid, costs: &PatchCosts, nranks: usize) -> Option<f64> {
        if matches!(self.policy, RebalancePolicy::Rotate(_)) {
            return None;
        }
        let mut bound = 0.0;
        for level in grid.levels() {
            let ids: Vec<PatchId> = level.patches().iter().map(|p| p.id()).collect();
            let eff = effective_costs(&ids, costs);
            let total: f64 = eff.iter().sum();
            let max = eff.iter().copied().fold(0.0f64, f64::max);
            bound += total / nranks as f64 + max;
        }
        Some(bound)
    }
}

/// Morton order of a level's patches (the SFC the balancer cuts).
fn sfc_order(ids: impl Iterator<Item = PatchId>, grid: &Grid) -> Vec<PatchId> {
    let mut order: Vec<(u64, PatchId)> = ids
        .map(|id| (morton3(grid.patch(id).lattice_pos()), id))
        .collect();
    order.sort_unstable_by_key(|&(m, id)| (m, id.0));
    order.into_iter().map(|(_, id)| id).collect()
}

/// Costs with an all-zero fallback to uniform: a level that has not been
/// measured yet (or whose tasks were too fast to meter) still balances by
/// patch count instead of collapsing onto rank 0.
fn effective_costs(ids: &[PatchId], costs: &PatchCosts) -> Vec<f64> {
    let vals: Vec<f64> = ids.iter().map(|&id| costs.get(id).max(0.0)).collect();
    if vals.iter().sum::<f64>() > 0.0 {
        vals
    } else {
        vec![1.0; ids.len()]
    }
}

fn argmin(load: &[f64]) -> usize {
    let mut best = 0;
    for (i, &l) in load.iter().enumerate().skip(1) {
        if l < load[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::DistributionPolicy;

    fn grid2() -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(8))
            .build()
    }

    fn valid(dist: &PatchDistribution, grid: &Grid) {
        let mut seen = vec![false; grid.num_patches()];
        for r in 0..dist.nranks() {
            for &p in dist.owned_by(r) {
                assert!(!seen[p.index()], "{p:?} owned twice");
                seen[p.index()] = true;
                assert_eq!(dist.rank_of(p), r);
            }
        }
        assert!(seen.iter().all(|&s| s), "unowned patch");
    }

    #[test]
    fn rotate_moves_every_patch() {
        let g = grid2();
        let cur = PatchDistribution::new(&g, 3, DistributionPolicy::MortonSfc);
        let next = Regridder::new(RebalancePolicy::Rotate(1)).rebalance(
            &g,
            &PatchCosts::uniform(&g),
            &cur,
        );
        valid(&next, &g);
        for p in g.all_patches() {
            assert_eq!(next.rank_of(p.id()), (cur.rank_of(p.id()) + 1) % 3);
        }
        assert_ne!(next, cur);
        assert_eq!(next, next.clone());
    }

    #[test]
    fn costed_sfc_respects_advertised_bound() {
        let g = grid2();
        let cur = PatchDistribution::new(&g, 4, DistributionPolicy::MortonSfc);
        // Skewed costs: patch id squared.
        let mut costs = PatchCosts::uniform(&g);
        for p in g.all_patches() {
            costs.set(p.id(), (p.id().0 as f64 + 1.0).powi(2));
        }
        for policy in [RebalancePolicy::CostedSfc, RebalancePolicy::CostedLpt] {
            let rg = Regridder::new(policy);
            let next = rg.rebalance(&g, &costs, &cur);
            valid(&next, &g);
            let bound = rg.advertised_bound(&g, &costs, 4).unwrap();
            for r in 0..4 {
                let load: f64 = next.owned_by(r).iter().map(|&p| costs.get(p)).sum();
                assert!(
                    load <= bound + 1e-9,
                    "{policy:?}: rank {r} load {load} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn zero_costs_fall_back_to_uniform() {
        let g = grid2();
        let cur = PatchDistribution::new(&g, 4, DistributionPolicy::MortonSfc);
        let costs = PatchCosts::from_values(vec![0.0; g.num_patches()]);
        let next =
            Regridder::new(RebalancePolicy::CostedSfc).rebalance(&g, &costs, &cur);
        valid(&next, &g);
        assert!(
            next.max_load() - next.min_load() <= 2,
            "uniform fallback must still balance"
        );
    }

    #[test]
    fn refine_regions_aligned_disjoint_covering() {
        let g = grid2();
        let flags = [
            IntVector::new(0, 0, 0),
            IntVector::new(1, 0, 0), // merges with the first along x
            IntVector::new(3, 2, 1),
            IntVector::new(0, 0, 0),    // duplicate: ignored
            IntVector::new(99, 99, 99), // outside the level: ignored
        ];
        let regions = Regridder::refine_regions(&g, 0, &flags);
        assert_eq!(regions.len(), 2, "x-run merged, outlier separate");
        assert_eq!(
            regions[0],
            Region::new(IntVector::ZERO, IntVector::new(8, 4, 4))
        );
        assert_eq!(
            regions[1],
            Region::new(IntVector::new(12, 8, 4), IntVector::new(16, 12, 8))
        );
    }

    #[test]
    fn hot_patches_raise_flags() {
        let g = grid2();
        let mut costs = PatchCosts::uniform(&g);
        let hot = g.fine_level().patches()[0].id();
        costs.set(hot, 1000.0);
        let rg = Regridder::new(RebalancePolicy::CostedSfc);
        let flags = rg.flag_hot_patches(&g, &costs);
        let rr = g.fine_level().ratio_to_coarser().as_ivec();
        let expected = g.patch(hot).interior().coarsened(rr);
        assert_eq!(flags.len(), expected.volume());
        assert!(flags.iter().all(|&c| expected.contains(c)));
        let outcome = rg.regrid(&g, &costs, &PatchDistribution::new(&g, 2, DistributionPolicy::MortonSfc));
        assert_eq!(outcome.flagged, flags.len());
        assert!(!outcome.refined.is_empty());
        valid(&outcome.dist, &g);
    }

    #[test]
    fn uniform_costs_with_no_hot_patch_raise_no_flags() {
        let g = grid2();
        let rg = Regridder::new(RebalancePolicy::CostedSfc);
        assert!(rg.flag_hot_patches(&g, &PatchCosts::uniform(&g)).is_empty());
    }
}
