//! Cartesian mesh patches — the unit of work distribution.

use crate::index::IntVector;
use crate::region::Region;

/// Globally unique patch identifier.
///
/// Uintah numbers patches consecutively across levels; we do the same:
/// patch ids are dense `0..grid.num_patches()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PatchId(pub u32);

impl PatchId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rectangular patch of cells on one level.
///
/// The *interior* region is exclusive: patches on a level tile the level's
/// cell space without overlap. Ghost data for stencils/ray origins comes from
/// neighbouring patches (or boundary conditions) via the data warehouse.
#[derive(Clone, Debug)]
pub struct Patch {
    id: PatchId,
    level: u8,
    interior: Region,
    /// Position of this patch in the level's patch lattice.
    lattice_pos: IntVector,
}

impl Patch {
    pub fn new(id: PatchId, level: u8, interior: Region, lattice_pos: IntVector) -> Self {
        assert!(!interior.is_empty(), "patch {id:?} with empty interior");
        Self {
            id,
            level,
            interior,
            lattice_pos,
        }
    }

    #[inline]
    pub fn id(&self) -> PatchId {
        self.id
    }

    /// Index of the level this patch lives on (0 = coarsest).
    #[inline]
    pub fn level_index(&self) -> u8 {
        self.level
    }

    /// Cells owned by this patch.
    #[inline]
    pub fn interior(&self) -> Region {
        self.interior
    }

    /// Interior grown by `g` ghost cells per face.
    #[inline]
    pub fn with_ghosts(&self, g: i32) -> Region {
        self.interior.grown(g)
    }

    /// Position in the level's patch lattice (patch-granular coordinates).
    #[inline]
    pub fn lattice_pos(&self) -> IntVector {
        self.lattice_pos
    }

    /// Number of interior cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.interior.volume()
    }

    /// True if `other`'s interior intersects our ghost halo of width `g` —
    /// i.e. `other` must send us data for a `g`-ghost requirement.
    pub fn needs_from(&self, other: &Patch, g: i32) -> bool {
        other.id != self.id && self.with_ghosts(g).overlaps(&other.interior)
    }

    /// The footprint `other` must send for our `g`-ghost requirement.
    pub fn ghost_footprint_from(&self, other: &Patch, g: i32) -> Region {
        self.with_ghosts(g).intersect(&other.interior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patch(id: u32, lo: i32, n: i32) -> Patch {
        Patch::new(
            PatchId(id),
            0,
            Region::new(IntVector::splat(lo), IntVector::splat(lo + n)),
            IntVector::ZERO,
        )
    }

    #[test]
    fn ghost_halo_neighbour_detection() {
        let a = patch(0, 0, 16);
        let b = patch(1, 16, 16); // face neighbour in every axis (corner)
        assert!(a.needs_from(&b, 1));
        assert!(!a.needs_from(&b, 0));
        assert!(!a.needs_from(&a, 1), "patch never needs from itself");
        let fp = a.ghost_footprint_from(&b, 1);
        assert_eq!(fp.volume(), 1); // single corner cell
    }

    #[test]
    fn footprint_volume_face_neighbour() {
        let a = patch(0, 0, 16);
        let b = Patch::new(
            PatchId(1),
            0,
            Region::new(IntVector::new(16, 0, 0), IntVector::new(32, 16, 16)),
            IntVector::new(1, 0, 0),
        );
        let fp = a.ghost_footprint_from(&b, 2);
        assert_eq!(fp.extent(), IntVector::new(2, 16, 16));
        assert_eq!(fp.volume(), 2 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "empty interior")]
    fn empty_patch_rejected() {
        Patch::new(PatchId(0), 0, Region::EMPTY, IntVector::ZERO);
    }
}
