//! The AMR grid: a hierarchy of levels, coarsest first.

use crate::geom::{Point, Vector};
use crate::index::IntVector;
use crate::level::{Level, LevelIndex, RefinementRatio};
use crate::patch::{Patch, PatchId};
use crate::region::Region;

/// A structured AMR grid.
///
/// Level 0 is the coarsest and the last level the finest (Uintah convention).
/// For the RMCRT multi-level scheme, *every* level spans the full physical
/// domain: a coarse level is a whole-domain low-resolution replica that rays
/// fall back to outside their region of interest.
#[derive(Clone, Debug)]
pub struct Grid {
    levels: Vec<Level>,
    /// First patch id on each level (dense ids across levels).
    level_patch_offset: Vec<u32>,
    num_patches: usize,
}

impl Grid {
    pub fn builder() -> GridBuilder {
        GridBuilder::default()
    }

    #[inline]
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    #[inline]
    pub fn level(&self, i: LevelIndex) -> &Level {
        &self.levels[i as usize]
    }

    /// The finest level (where ∇·q is computed).
    #[inline]
    pub fn fine_level(&self) -> &Level {
        self.levels.last().expect("grid has no levels")
    }

    /// Index of the finest level.
    #[inline]
    pub fn fine_level_index(&self) -> LevelIndex {
        (self.levels.len() - 1) as LevelIndex
    }

    #[inline]
    pub fn coarsest_level(&self) -> &Level {
        &self.levels[0]
    }

    /// Total number of patches across all levels.
    #[inline]
    pub fn num_patches(&self) -> usize {
        self.num_patches
    }

    /// Total number of cells across all levels.
    pub fn num_cells(&self) -> usize {
        self.levels.iter().map(|l| l.num_cells()).sum()
    }

    /// Look a patch up by its dense id.
    pub fn patch(&self, id: PatchId) -> &Patch {
        let li = match self.level_patch_offset.binary_search(&id.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let level = &self.levels[li];
        &level.patches()[(id.0 - self.level_patch_offset[li]) as usize]
    }

    /// Iterate all patches, coarsest level first.
    pub fn all_patches(&self) -> impl Iterator<Item = &Patch> {
        self.levels.iter().flat_map(|l| l.patches().iter())
    }
}

/// Builder for regular multi-level grids matching the paper's benchmarks.
///
/// ```
/// use uintah_grid::{Grid, IntVector, Point};
/// // The MEDIUM benchmark: 2 levels, RR 4, fine 256^3 / coarse 64^3, 16^3 patches.
/// let grid = Grid::builder()
///     .physical_domain(Point::ORIGIN, Point::new(1.0, 1.0, 1.0))
///     .fine_cells(IntVector::splat(256))
///     .num_levels(2)
///     .refinement_ratio(4)
///     .fine_patch_size(IntVector::splat(16))
///     .build();
/// assert_eq!(grid.fine_level().num_cells(), 256 * 256 * 256);
/// assert_eq!(grid.coarsest_level().num_cells(), 64 * 64 * 64);
/// ```
#[derive(Clone, Debug)]
pub struct GridBuilder {
    lo: Point,
    hi: Point,
    fine_cells: IntVector,
    num_levels: usize,
    refinement_ratio: i32,
    fine_patch_size: IntVector,
    coarse_patch_size: Option<IntVector>,
}

impl Default for GridBuilder {
    fn default() -> Self {
        Self {
            lo: Point::ORIGIN,
            hi: Point::new(1.0, 1.0, 1.0),
            fine_cells: IntVector::splat(64),
            num_levels: 1,
            refinement_ratio: 4,
            fine_patch_size: IntVector::splat(16),
            coarse_patch_size: None,
        }
    }
}

impl GridBuilder {
    /// Physical extents of the domain (all levels span it fully).
    pub fn physical_domain(mut self, lo: Point, hi: Point) -> Self {
        assert!(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z, "degenerate domain");
        self.lo = lo;
        self.hi = hi;
        self
    }

    /// Cell count of the finest level.
    pub fn fine_cells(mut self, cells: IntVector) -> Self {
        self.fine_cells = cells;
        self
    }

    pub fn num_levels(mut self, n: usize) -> Self {
        assert!(n >= 1, "grid needs at least one level");
        self.num_levels = n;
        self
    }

    /// Isotropic cell ratio between adjacent levels (paper uses 2 or 4).
    pub fn refinement_ratio(mut self, r: i32) -> Self {
        self.refinement_ratio = r;
        self
    }

    /// Patch size on the finest level (the paper sweeps 16^3 / 32^3 / 64^3).
    pub fn fine_patch_size(mut self, s: IntVector) -> Self {
        self.fine_patch_size = s;
        self
    }

    /// Patch size on coarser levels. Defaults to the fine patch size clamped
    /// to the coarse level extent.
    pub fn coarse_patch_size(mut self, s: IntVector) -> Self {
        self.coarse_patch_size = Some(s);
        self
    }

    pub fn build(self) -> Grid {
        let rr = RefinementRatio::isotropic(self.refinement_ratio);
        // Work out cell counts per level, finest known, coarser by division.
        let mut cells_per_level = vec![self.fine_cells];
        for _ in 1..self.num_levels {
            let prev = *cells_per_level.last().unwrap();
            for a in 0..3 {
                assert!(
                    prev[a] % self.refinement_ratio == 0,
                    "cells {prev:?} not divisible by refinement ratio {}",
                    self.refinement_ratio
                );
            }
            cells_per_level.push(prev / IntVector::splat(self.refinement_ratio));
        }
        cells_per_level.reverse(); // now coarsest first

        let domain = self.hi - self.lo;
        let mut levels = Vec::with_capacity(self.num_levels);
        let mut offsets = Vec::with_capacity(self.num_levels);
        let mut next_id = 0u32;
        for (li, &cells) in cells_per_level.iter().enumerate() {
            let dx = Vector::new(
                domain.x / cells.x as f64,
                domain.y / cells.y as f64,
                domain.z / cells.z as f64,
            );
            let is_finest = li == self.num_levels - 1;
            let ratio = if li == 0 {
                RefinementRatio::isotropic(1)
            } else {
                rr
            };
            let psize = if is_finest {
                self.fine_patch_size
            } else {
                let want = self.coarse_patch_size.unwrap_or(self.fine_patch_size);
                clamp_patch_size(want, cells)
            };
            let level = Level::new(
                li as LevelIndex,
                Region::new(IntVector::ZERO, cells),
                self.lo,
                dx,
                ratio,
                psize,
                next_id,
            );
            offsets.push(next_id);
            next_id += level.num_patches() as u32;
            levels.push(level);
        }
        let num_patches = next_id as usize;
        Grid {
            levels,
            level_patch_offset: offsets,
            num_patches,
        }
    }
}

/// Shrink a desired patch size so it tiles `cells` exactly: per axis, the
/// largest divisor of the extent that is `<=` the desired size.
fn clamp_patch_size(want: IntVector, cells: IntVector) -> IntVector {
    let mut out = IntVector::ONE;
    for a in 0..3 {
        let mut s = want[a].min(cells[a]).max(1);
        while cells[a] % s != 0 {
            s -= 1;
        }
        out[a] = s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(256))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(16))
            .build()
    }

    #[test]
    fn medium_benchmark_shape() {
        let g = medium();
        assert_eq!(g.num_levels(), 2);
        assert_eq!(g.coarsest_level().num_cells(), 64usize.pow(3));
        assert_eq!(g.fine_level().num_cells(), 256usize.pow(3));
        // Paper: total cells in MEDIUM problem = 17.04M.
        let total = g.num_cells();
        assert_eq!(total, 256usize.pow(3) + 64usize.pow(3));
        assert!((total as f64 - 17.04e6).abs() / 17.04e6 < 0.01);
    }

    #[test]
    fn large_benchmark_shape() {
        let g = Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(32))
            .build();
        // Paper: total cells in LARGE problem = 136.31M.
        let total = g.num_cells();
        assert_eq!(total, 512usize.pow(3) + 128usize.pow(3));
        assert!((total as f64 - 136.31e6).abs() / 136.31e6 < 0.01);
    }

    #[test]
    fn comm_census_patch_count_matches_paper() {
        // §IV-B: 512^3 fine + 128^3 coarse with 8^3 patches -> 262k patches.
        let g = Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(8))
            .build();
        assert_eq!(g.fine_level().num_patches(), 64usize.pow(3)); // 262,144
        assert!(g.num_patches() >= 262_144);
    }

    #[test]
    fn dense_patch_ids_lookup() {
        let g = medium();
        assert_eq!(g.num_patches(), 64 + 16usize.pow(3));
        for p in g.all_patches() {
            let q = g.patch(p.id());
            assert_eq!(q.id(), p.id());
            assert_eq!(q.interior(), p.interior());
        }
    }

    #[test]
    fn level_spacing_ratio() {
        let g = medium();
        let coarse_dx = g.coarsest_level().dx();
        let fine_dx = g.fine_level().dx();
        assert!((coarse_dx.x / fine_dx.x - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_level_grid() {
        let g = Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(16))
            .build();
        assert_eq!(g.num_levels(), 1);
        assert_eq!(g.num_patches(), 8);
        assert!(std::ptr::eq(g.fine_level(), g.coarsest_level()));
    }

    #[test]
    fn clamp_patch_size_divides() {
        assert_eq!(
            clamp_patch_size(IntVector::splat(16), IntVector::splat(64)),
            IntVector::splat(16)
        );
        // 24 does not divide 64; largest divisor <= 24 is 16.
        assert_eq!(
            clamp_patch_size(IntVector::splat(24), IntVector::splat(64)),
            IntVector::splat(16)
        );
        // Desired larger than extent clamps to extent.
        assert_eq!(
            clamp_patch_size(IntVector::splat(128), IntVector::splat(64)),
            IntVector::splat(64)
        );
    }

    #[test]
    fn anisotropic_domain() {
        let g = Grid::builder()
            .physical_domain(Point::ORIGIN, Point::new(2.0, 1.0, 1.0))
            .fine_cells(IntVector::new(128, 64, 64))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(16))
            .build();
        let dx = g.fine_level().dx();
        assert!((dx.x - 2.0 / 128.0).abs() < 1e-15);
        assert!((dx.y - 1.0 / 64.0).abs() < 1e-15);
        assert_eq!(g.coarsest_level().cell_region().extent(), IntVector::new(32, 16, 16));
    }
}
