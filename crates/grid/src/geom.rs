//! Double-precision points and vectors.

use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A position in physical space (metres).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A direction / displacement in physical space.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Vector {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point {
    pub const ORIGIN: Point = Point::new(0.0, 0.0, 0.0);

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    #[inline]
    pub fn to_vector(self) -> Vector {
        Vector::new(self.x, self.y, self.z)
    }
}

impl Vector {
    pub const ZERO: Vector = Vector::new(0.0, 0.0, 0.0);

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction. Panics on the zero vector in debug.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        debug_assert!(len > 0.0, "normalizing zero vector");
        self / len
    }

    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Component-wise reciprocal; maps 0 to `f64::INFINITY` (useful for DDA).
    #[inline]
    pub fn recip(self) -> Self {
        Self::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    #[inline]
    pub fn comp_mul(self, o: Self) -> Self {
        Self::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    #[inline]
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y, self.z + v.z)
    }
}

impl Sub<Point> for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, o: Point) -> Vector {
        Vector::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y, self.z - v.z)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, o: Vector) -> Vector {
        Vector::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, o: Vector) {
        *self = *self + o;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, o: Vector) -> Vector {
        Vector::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, s: f64) -> Vector {
        Vector::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, s: f64) -> Vector {
        Vector::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vector index {i} out of range"),
        }
    }
}

impl Index<usize> for Point {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Point index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_algebra() {
        let p = Point::new(1.0, 2.0, 3.0);
        let v = Vector::new(0.5, 0.5, 0.5);
        let q = p + v;
        assert_eq!(q, Point::new(1.5, 2.5, 3.5));
        assert_eq!(q - p, v);
        assert_eq!(p - v, Point::new(0.5, 1.5, 2.5));
    }

    #[test]
    fn dot_cross_length() {
        let a = Vector::new(1.0, 0.0, 0.0);
        let b = Vector::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vector::new(0.0, 0.0, 1.0));
        assert!((Vector::new(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_is_unit() {
        let n = Vector::new(1.0, 2.0, -2.0).normalized();
        assert!((n.length() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn recip_maps_zero_to_inf() {
        let r = Vector::new(2.0, 0.0, -4.0).recip();
        assert_eq!(r.x, 0.5);
        assert!(r.y.is_infinite());
        assert_eq!(r.z, -0.25);
    }
}
