//! Variable labels.

use std::fmt;

/// Identifies a simulation variable ("abskg", "sigmaT4", "divQ", ...).
///
/// The numeric id is used when composing message tags, so it must be unique
/// among the variables of one simulation (applications define their labels
/// as constants; the RMCRT labels live in `rmcrt-core`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarLabel {
    name: &'static str,
    id: u8,
}

impl VarLabel {
    pub const fn new(name: &'static str, id: u8) -> Self {
        Self { name, id }
    }

    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    pub fn id(&self) -> u8 {
        self.id
    }
}

impl fmt::Debug for VarLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.id)
    }
}

impl fmt::Display for VarLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_compare_by_name_and_id() {
        const A: VarLabel = VarLabel::new("abskg", 0);
        const B: VarLabel = VarLabel::new("sigmaT4", 1);
        assert_ne!(A, B);
        assert_eq!(A, VarLabel::new("abskg", 0));
        assert_eq!(A.name(), "abskg");
        assert_eq!(B.id(), 1);
    }
}
