//! Cell-centered grid variables.

use crate::index::IntVector;
use crate::region::Region;
use std::ops::{Index, IndexMut};

/// A cell-centered variable over a region (Uintah's `CCVariable<T>`).
///
/// The backing region may include ghost cells: a patch task allocates its
/// variable over `patch.with_ghosts(g)` and the data warehouse fills the halo
/// from neighbouring patches. Storage is a dense x-fastest array.
#[derive(Clone, Debug, PartialEq)]
pub struct CcVariable<T> {
    region: Region,
    data: Vec<T>,
}

impl<T: Clone + Default> CcVariable<T> {
    /// Allocate over `region`, default-initialized.
    pub fn new(region: Region) -> Self {
        Self {
            region,
            data: vec![T::default(); region.volume()],
        }
    }

    /// Allocate over `region`, filled with `value`.
    pub fn filled(region: Region, value: T) -> Self {
        Self {
            region,
            data: vec![value; region.volume()],
        }
    }
}

impl<T> CcVariable<T> {
    /// Build from raw storage; `data.len()` must equal `region.volume()`.
    pub fn from_vec(region: Region, data: Vec<T>) -> Self {
        assert_eq!(data.len(), region.volume(), "data/region size mismatch");
        Self { region, data }
    }

    #[inline]
    pub fn region(&self) -> Region {
        self.region
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Checked access.
    #[inline]
    pub fn get(&self, c: IntVector) -> Option<&T> {
        if self.region.contains(c) {
            Some(&self.data[self.region.linear_index(c)])
        } else {
            None
        }
    }

    /// Fill the variable by evaluating `f` at every cell.
    pub fn fill_with(&mut self, mut f: impl FnMut(IntVector) -> T) {
        for (i, c) in self.region.cells().enumerate() {
            self.data[i] = f(c);
        }
    }

    /// Iterate `(cell, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (IntVector, &T)> {
        self.region.cells().zip(self.data.iter())
    }

    /// Size of the payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Consume the variable, returning its backing storage (for recycling
    /// into a buffer pool at timestep boundaries).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy> CcVariable<T> {
    /// Copy the cells of `window ∩ self.region ∩ src.region` from `src`.
    /// Returns the number of cells copied. Used for ghost-cell gathers and
    /// message unpacking.
    pub fn copy_window(&mut self, src: &CcVariable<T>, window: &Region) -> usize {
        let w = window.intersect(&self.region).intersect(&src.region);
        if w.is_empty() {
            return 0;
        }
        // Copy x-rows at a time for efficiency.
        let mut n = 0;
        for z in w.lo().z..w.hi().z {
            for y in w.lo().y..w.hi().y {
                let lo = IntVector::new(w.lo().x, y, z);
                let row = w.extent().x as usize;
                let di = self.region.linear_index(lo);
                let si = src.region.linear_index(lo);
                self.data[di..di + row].copy_from_slice(&src.data[si..si + row]);
                n += row;
            }
        }
        n
    }

    /// Pack `window ∩ self.region` into a flat buffer (message payload).
    pub fn pack_window(&self, window: &Region) -> (Region, Vec<T>) {
        let w = window.intersect(&self.region);
        let mut out = Vec::with_capacity(w.volume());
        for z in w.lo().z..w.hi().z {
            for y in w.lo().y..w.hi().y {
                let lo = IntVector::new(w.lo().x, y, z);
                let row = w.extent().x as usize;
                let si = self.region.linear_index(lo);
                out.extend_from_slice(&self.data[si..si + row]);
            }
        }
        (w, out)
    }

    /// Unpack a buffer produced by [`Self::pack_window`] into this variable.
    pub fn unpack_window(&mut self, window: &Region, buf: &[T]) {
        assert_eq!(buf.len(), window.volume(), "packed buffer size mismatch");
        let mut si = 0;
        for z in window.lo().z..window.hi().z {
            for y in window.lo().y..window.hi().y {
                let lo = IntVector::new(window.lo().x, y, z);
                let row = window.extent().x as usize;
                let w = window.intersect(&self.region);
                if w.contains(lo) || self.region.contains(lo) {
                    let di = self.region.linear_index(lo);
                    self.data[di..di + row].copy_from_slice(&buf[si..si + row]);
                }
                si += row;
            }
        }
    }
}

/// A dynamically-typed cell-centered field, the currency of the data
/// warehouses (host and GPU). RMCRT needs `f64` fields (`abskg`, `sigmaT4`,
/// `divQ`) and the `u8` `cellType` flag field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldData {
    F64(CcVariable<f64>),
    U8(CcVariable<u8>),
}

impl FieldData {
    pub fn region(&self) -> Region {
        match self {
            FieldData::F64(v) => v.region(),
            FieldData::U8(v) => v.region(),
        }
    }

    pub fn size_bytes(&self) -> usize {
        match self {
            FieldData::F64(v) => v.size_bytes(),
            FieldData::U8(v) => v.size_bytes(),
        }
    }

    /// View as `f64`; panics on type mismatch (an application task-
    /// declaration error).
    pub fn as_f64(&self) -> &CcVariable<f64> {
        match self {
            FieldData::F64(v) => v,
            FieldData::U8(_) => panic!("field is u8, requested f64"),
        }
    }

    pub fn as_u8(&self) -> &CcVariable<u8> {
        match self {
            FieldData::U8(v) => v,
            FieldData::F64(_) => panic!("field is f64, requested u8"),
        }
    }

    /// Bytes that differ between two fields of the same shape, counted in
    /// whole elements (the granularity a real `cudaMemcpy` diff upload would
    /// transfer). Fields of different type or region differ entirely:
    /// returns `other.size_bytes()`.
    ///
    /// Drives incremental re-upload of persistent device-resident level
    /// replicas: an unchanged replica diffs to 0 and costs no PCIe traffic.
    pub fn diff_bytes(&self, other: &FieldData) -> usize {
        match (self, other) {
            (FieldData::F64(a), FieldData::F64(b)) if a.region() == b.region() => {
                let n = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count();
                n * std::mem::size_of::<f64>()
            }
            (FieldData::U8(a), FieldData::U8(b)) if a.region() == b.region() => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .filter(|(x, y)| x != y)
                .count(),
            _ => other.size_bytes(),
        }
    }
}

impl From<CcVariable<f64>> for FieldData {
    fn from(v: CcVariable<f64>) -> Self {
        FieldData::F64(v)
    }
}

impl From<CcVariable<u8>> for FieldData {
    fn from(v: CcVariable<u8>) -> Self {
        FieldData::U8(v)
    }
}

impl<T> Index<IntVector> for CcVariable<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: IntVector) -> &T {
        &self.data[self.region.linear_index(c)]
    }
}

impl<T> IndexMut<IntVector> for CcVariable<T> {
    #[inline]
    fn index_mut(&mut self, c: IntVector) -> &mut T {
        let i = self.region.linear_index(c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_index() {
        let r = Region::cube(4);
        let mut v = CcVariable::<f64>::new(r);
        assert_eq!(v.len(), 64);
        v[IntVector::new(1, 2, 3)] = 42.0;
        assert_eq!(v[IntVector::new(1, 2, 3)], 42.0);
        assert_eq!(v.get(IntVector::splat(9)), None);
        assert_eq!(*v.get(IntVector::new(1, 2, 3)).unwrap(), 42.0);
    }

    #[test]
    fn fill_with_cell_function() {
        let r = Region::cube(3);
        let mut v = CcVariable::<i32>::new(r);
        v.fill_with(|c| c.x + 10 * c.y + 100 * c.z);
        assert_eq!(v[IntVector::new(2, 1, 0)], 12);
        assert_eq!(v[IntVector::new(0, 2, 2)], 220);
    }

    #[test]
    fn copy_window_ghost_gather() {
        // Destination with 1 ghost layer around [0,4)^3.
        let mut dst = CcVariable::<f64>::new(Region::cube(4).grown(1));
        // Source patch to the +x side: [4,8) x [0,4) x [0,4).
        let src_r = Region::new(IntVector::new(4, 0, 0), IntVector::new(8, 4, 4));
        let mut src = CcVariable::<f64>::new(src_r);
        src.fill_with(|c| (c.x * 100 + c.y * 10 + c.z) as f64);
        let copied = dst.copy_window(&src, &dst.region());
        assert_eq!(copied, 16); // the x=4 ghost face: 1 x 4 x 4
        assert_eq!(dst[IntVector::new(4, 2, 3)], 423.0);
        // Untouched interior stays default.
        assert_eq!(dst[IntVector::new(0, 0, 0)], 0.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let r = Region::cube(6);
        let mut a = CcVariable::<u32>::new(r);
        a.fill_with(|c| (c.x + 7 * c.y + 41 * c.z) as u32);
        let w = Region::new(IntVector::new(1, 2, 0), IntVector::new(5, 6, 3));
        let (wr, buf) = a.pack_window(&w);
        assert_eq!(wr, w);
        assert_eq!(buf.len(), w.volume());
        let mut b = CcVariable::<u32>::new(r);
        b.unpack_window(&wr, &buf);
        for c in w.cells() {
            assert_eq!(b[c], a[c]);
        }
        // Outside the window untouched.
        assert_eq!(b[IntVector::ZERO], 0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_size_checked() {
        CcVariable::from_vec(Region::cube(2), vec![0.0f64; 7]);
    }

    #[test]
    fn size_bytes() {
        let v = CcVariable::<f64>::new(Region::cube(16));
        assert_eq!(v.size_bytes(), 16 * 16 * 16 * 8);
    }

    #[test]
    fn diff_bytes_counts_changed_elements() {
        let r = Region::cube(4);
        let mut a = CcVariable::<f64>::new(r);
        a.fill_with(|c| c.x as f64);
        let mut b = a.clone();
        let fa = FieldData::from(a.clone());
        assert_eq!(fa.diff_bytes(&FieldData::from(b.clone())), 0);
        b[IntVector::new(1, 1, 1)] += 1.0;
        b[IntVector::new(2, 0, 3)] += 1.0;
        assert_eq!(fa.diff_bytes(&FieldData::from(b)), 2 * 8);
        // Shape mismatch: everything differs.
        let other = FieldData::from(CcVariable::<f64>::new(Region::cube(2)));
        assert_eq!(fa.diff_bytes(&other), other.size_bytes());
        // Type mismatch likewise.
        let u = FieldData::from(CcVariable::<u8>::new(r));
        assert_eq!(fa.diff_bytes(&u), u.size_bytes());
        // NaN-safe: bitwise comparison treats equal NaNs as unchanged.
        a[IntVector::ZERO] = f64::NAN;
        let fnan = FieldData::from(a.clone());
        assert_eq!(fnan.diff_bytes(&FieldData::from(a)), 0);
    }
}
