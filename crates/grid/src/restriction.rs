//! Fine→coarse projection (restriction) operators.
//!
//! The multi-level RMCRT algorithm projects the fine CFD mesh's radiative
//! properties (`abskg`, `sigmaT4`, `cellType`) onto every coarser level
//! (paper §III-B/C). Continuous fields use volume-weighted averaging; the
//! integer `cellType` uses a majority/any-boundary rule so coarse cells never
//! lose wall information.

use crate::index::IntVector;
use crate::level::Level;
use crate::region::Region;
use crate::variable::CcVariable;

/// Per-cell restriction kernel: volume-weighted average of the `rr³` fine
/// children of coarse cell `cc`. The region versions here and the
/// exec-dispatched versions in `uintah-exec::ops` are both thin wrappers
/// over this kernel, so every execution space runs identical arithmetic.
#[inline]
pub fn restrict_average_cell(fine: &CcVariable<f64>, rr: IntVector, cc: IntVector) -> f64 {
    let child_lo = cc.comp_mul(rr);
    let child = Region::new(child_lo, child_lo + rr);
    let mut sum = 0.0;
    for fc in child.cells() {
        sum += fine[fc];
    }
    sum / rr.volume() as f64
}

/// Per-cell kernel for integer cell types: the first non-zero fine child
/// wins (any-boundary rule), so coarse cells never lose wall information.
#[inline]
pub fn restrict_cell_type_cell(fine: &CcVariable<u8>, rr: IntVector, cc: IntVector) -> u8 {
    let child_lo = cc.comp_mul(rr);
    let child = Region::new(child_lo, child_lo + rr);
    for fc in child.cells() {
        let t = fine[fc];
        if t != 0 {
            return t;
        }
    }
    0
}

/// Volume-weighted average of the fine cells under each coarse cell.
///
/// `fine` must cover `coarse_window.refined(rr)`; the output variable covers
/// `coarse_window`. For a regular refinement ratio every fine child has equal
/// volume, so this is the arithmetic mean of the `rr³` children.
///
/// Serial reference; hot paths dispatch the same kernel through
/// `uintah-exec::ops::restrict_average`.
pub fn restrict_average(
    fine: &CcVariable<f64>,
    rr: IntVector,
    coarse_window: Region,
) -> CcVariable<f64> {
    let mut out = CcVariable::new(coarse_window);
    out.fill_with(|cc| restrict_average_cell(fine, rr, cc));
    out
}

/// Restriction for integer cell types: a coarse cell is a boundary
/// (non-zero) if *any* of its fine children is, reproducing Uintah's
/// conservative treatment of walls on the coarse radiation mesh.
///
/// Serial reference; hot paths dispatch the same kernel through
/// `uintah-exec::ops::restrict_cell_type`.
pub fn restrict_cell_type(
    fine: &CcVariable<u8>,
    rr: IntVector,
    coarse_window: Region,
) -> CcVariable<u8> {
    let mut out = CcVariable::new(coarse_window);
    out.fill_with(|cc| restrict_cell_type_cell(fine, rr, cc));
    out
}

/// Restrict a whole fine level onto a whole coarse level.
///
/// Convenience for the benchmark setup where the coarse radiation mesh is a
/// full-domain replica of the fine data.
pub fn restrict_level(fine_level: &Level, coarse_level: &Level, fine: &CcVariable<f64>) -> CcVariable<f64> {
    let rr = fine_level.ratio_to_coarser().as_ivec();
    debug_assert_eq!(
        coarse_level.cell_region().refined(rr),
        fine_level.cell_region(),
        "levels are not related by the refinement ratio"
    );
    restrict_average(fine, rr, coarse_level.cell_region())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Vector};
    use crate::level::RefinementRatio;

    #[test]
    fn average_conserves_integral() {
        let rr = IntVector::splat(4);
        let fine_r = Region::cube(8);
        let mut fine = CcVariable::<f64>::new(fine_r);
        fine.fill_with(|c| (c.x + c.y * 2 + c.z * 3) as f64 + 0.25);
        let coarse = restrict_average(&fine, rr, Region::cube(2));
        // Each coarse cell is 64x the fine volume: integral must match.
        let fine_sum: f64 = fine.as_slice().iter().sum();
        let coarse_sum: f64 = coarse.as_slice().iter().sum::<f64>() * rr.volume() as f64;
        assert!((fine_sum - coarse_sum).abs() < 1e-9 * fine_sum.abs());
    }

    #[test]
    fn constant_field_restricts_to_constant() {
        let rr = IntVector::splat(2);
        let fine = CcVariable::filled(Region::cube(4), 7.5f64);
        let coarse = restrict_average(&fine, rr, Region::cube(2));
        for (_, &v) in coarse.iter() {
            assert_eq!(v, 7.5);
        }
    }

    #[test]
    fn cell_type_any_boundary_wins() {
        let rr = IntVector::splat(2);
        let mut fine = CcVariable::<u8>::new(Region::cube(4));
        fine[IntVector::new(3, 3, 3)] = 1; // one wall cell in the corner octant
        let coarse = restrict_cell_type(&fine, rr, Region::cube(2));
        assert_eq!(coarse[IntVector::splat(1)], 1);
        assert_eq!(coarse[IntVector::ZERO], 0);
    }

    #[test]
    fn level_restriction() {
        let coarse_level = Level::new(
            0,
            Region::cube(4),
            Point::ORIGIN,
            Vector::splat(0.25),
            RefinementRatio::isotropic(1),
            IntVector::splat(4),
            0,
        );
        let fine_level = Level::new(
            1,
            Region::cube(16),
            Point::ORIGIN,
            Vector::splat(0.0625),
            RefinementRatio::isotropic(4),
            IntVector::splat(8),
            1,
        );
        let mut fine = CcVariable::<f64>::new(fine_level.cell_region());
        fine.fill_with(|c| c.x as f64);
        let coarse = restrict_level(&fine_level, &coarse_level, &fine);
        // Children along x of coarse cell 0 have x in 0..4 -> mean 1.5.
        assert!((coarse[IntVector::ZERO] - 1.5).abs() < 1e-12);
        assert!((coarse[IntVector::new(3, 0, 0)] - 13.5).abs() < 1e-12);
    }
}
