//! Integer cell indices.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component integer vector indexing cells, nodes or patches.
///
/// Mirrors Uintah's `IntVector`. Components are `i32`; grids of up to
/// 2^31 cells per axis are far beyond anything the paper runs (512³ fine).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IntVector {
    pub x: i32,
    pub y: i32,
    pub z: i32,
}

impl IntVector {
    pub const ZERO: IntVector = IntVector::new(0, 0, 0);
    pub const ONE: IntVector = IntVector::new(1, 1, 1);

    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        Self { x, y, z }
    }

    /// All three components equal to `v`.
    #[inline]
    pub const fn splat(v: i32) -> Self {
        Self::new(v, v, v)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Product of the components as `usize`; panics on negative components.
    #[inline]
    pub fn volume(self) -> usize {
        assert!(
            self.x >= 0 && self.y >= 0 && self.z >= 0,
            "volume of negative extent {self:?}"
        );
        self.x as usize * self.y as usize * self.z as usize
    }

    /// True if every component of `self` is strictly less than `o`'s.
    #[inline]
    pub fn all_lt(self, o: Self) -> bool {
        self.x < o.x && self.y < o.y && self.z < o.z
    }

    /// True if every component of `self` is `<=` `o`'s.
    #[inline]
    pub fn all_le(self, o: Self) -> bool {
        self.x <= o.x && self.y <= o.y && self.z <= o.z
    }

    /// Component-wise Euclidean-floor division (rounds toward -inf), used to
    /// map fine cell indices to coarse cell indices for any sign.
    #[inline]
    pub fn div_floor(self, d: Self) -> Self {
        Self::new(
            self.x.div_euclid(d.x),
            self.y.div_euclid(d.y),
            self.z.div_euclid(d.z),
        )
    }

    /// Component-wise ceiling division for positive divisors.
    #[inline]
    pub fn div_ceil(self, d: Self) -> Self {
        Self::new(
            (self.x + d.x - 1).div_euclid(d.x),
            (self.y + d.y - 1).div_euclid(d.y),
            (self.z + d.z - 1).div_euclid(d.z),
        )
    }

    /// Component-wise product.
    #[inline]
    pub fn comp_mul(self, o: Self) -> Self {
        Self::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    #[inline]
    pub fn as_array(self) -> [i32; 3] {
        [self.x, self.y, self.z]
    }
}

impl fmt::Debug for IntVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

impl fmt::Display for IntVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

impl Add for IntVector {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for IntVector {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for IntVector {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for IntVector {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Neg for IntVector {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<i32> for IntVector {
    type Output = Self;
    #[inline]
    fn mul(self, s: i32) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<IntVector> for IntVector {
    type Output = Self;
    #[inline]
    fn mul(self, o: IntVector) -> Self {
        self.comp_mul(o)
    }
}

impl Div<IntVector> for IntVector {
    type Output = Self;
    /// Component-wise truncating division. For coarsening of possibly
    /// negative indices use [`IntVector::div_floor`].
    #[inline]
    fn div(self, o: IntVector) -> Self {
        Self::new(self.x / o.x, self.y / o.y, self.z / o.z)
    }
}

impl Index<usize> for IntVector {
    type Output = i32;
    #[inline]
    fn index(&self, i: usize) -> &i32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("IntVector index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for IntVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("IntVector index {i} out of range"),
        }
    }
}

impl From<[i32; 3]> for IntVector {
    fn from(a: [i32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = IntVector::new(1, 2, 3);
        let b = IntVector::new(4, 5, 6);
        assert_eq!(a + b, IntVector::new(5, 7, 9));
        assert_eq!(b - a, IntVector::new(3, 3, 3));
        assert_eq!(a * 2, IntVector::new(2, 4, 6));
        assert_eq!(a.comp_mul(b), IntVector::new(4, 10, 18));
        assert_eq!(-a, IntVector::new(-1, -2, -3));
    }

    #[test]
    fn volume_and_ordering() {
        assert_eq!(IntVector::splat(4).volume(), 64);
        assert_eq!(IntVector::ZERO.volume(), 0);
        assert!(IntVector::ZERO.all_lt(IntVector::ONE));
        assert!(!IntVector::ONE.all_lt(IntVector::ONE));
        assert!(IntVector::ONE.all_le(IntVector::ONE));
    }

    #[test]
    #[should_panic(expected = "volume of negative extent")]
    fn negative_volume_panics() {
        IntVector::new(-1, 2, 3).volume();
    }

    #[test]
    fn floor_division_handles_negatives() {
        let rr = IntVector::splat(4);
        assert_eq!(IntVector::new(-1, -4, -5).div_floor(rr), IntVector::new(-1, -1, -2));
        assert_eq!(IntVector::new(7, 8, 0).div_floor(rr), IntVector::new(1, 2, 0));
    }

    #[test]
    fn ceil_division() {
        let d = IntVector::splat(16);
        assert_eq!(IntVector::new(256, 255, 257).div_ceil(d), IntVector::new(16, 16, 17));
    }

    #[test]
    fn min_max() {
        let a = IntVector::new(1, 9, 3);
        let b = IntVector::new(4, 2, 3);
        assert_eq!(a.min(b), IntVector::new(1, 2, 3));
        assert_eq!(a.max(b), IntVector::new(4, 9, 3));
    }

    #[test]
    fn indexing() {
        let mut a = IntVector::new(1, 2, 3);
        assert_eq!(a[0], 1);
        assert_eq!(a[2], 3);
        a[1] = 7;
        assert_eq!(a.y, 7);
    }
}
