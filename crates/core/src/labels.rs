//! Variable labels and physical constants used by the RMCRT model.

use uintah_grid::VarLabel;

/// Absorption coefficient of the participating medium, κ (1/m). For wall
/// (boundary) cells this stores the wall emissivity, as in Uintah.
pub const ABSKG: VarLabel = VarLabel::new("abskg", 1);

/// Emissive source σT⁴/π (W/m²/sr).
pub const SIGMA_T4_OVER_PI: VarLabel = VarLabel::new("sigmaT4overPi", 2);

/// Cell type: [`crate::FLOW_CELL`] or [`crate::WALL_CELL`].
pub const CELLTYPE: VarLabel = VarLabel::new("cellType", 3);

/// Divergence of the radiative heat flux (W/m³), positive = net emission.
pub const DIVQ: VarLabel = VarLabel::new("divQ", 4);

/// Temperature field (K) — input from the CFD side.
pub const TEMPERATURE: VarLabel = VarLabel::new("temperature", 5);

/// Stefan–Boltzmann constant (W·m⁻²·K⁻⁴).
pub const SIGMA: f64 = 5.670373e-8;

/// σT⁴/π for a temperature `t` in kelvin.
#[inline]
pub fn sigma_t4_over_pi(t: f64) -> f64 {
    SIGMA * t * t * t * t / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_have_unique_ids() {
        let ids = [ABSKG.id(), SIGMA_T4_OVER_PI.id(), CELLTYPE.id(), DIVQ.id(), TEMPERATURE.id()];
        let set: std::collections::HashSet<u8> = ids.into_iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn benchmark_temperature_gives_unit_emissive_power() {
        // Burns & Christon use σT⁴ = 1 W/m²; T ≈ 64.804 K.
        let st4 = sigma_t4_over_pi(64.804) * std::f64::consts::PI;
        assert!((st4 - 1.0).abs() < 1e-4, "σT⁴ = {st4}");
    }
}
