//! The ray marcher: Uintah's `updateSumI` / `updateSumI_ML`.
//!
//! A ray is marched cell-by-cell with an Amanatides–Woo DDA. Crossing a cell
//! of length `ds` adds `κ·ds` to the accumulated optical depth `τ`, and the
//! cell contributes its emission attenuated by everything in front of it:
//!
//! ```text
//! sumI += (σT⁴/π)[cell] · (e^{-τ_prev} − e^{-τ})
//! ```
//!
//! (the telescoping form of the formal solution of the RTE along the ray
//! with no scattering, fs = 1). Marching stops when the remaining
//! transmissivity drops below the intensity threshold, when the ray hits a
//! wall cell (which contributes `ε·σT⁴/π·e^{-τ}`), or when it leaves the
//! enclosure (cold black wall: no contribution).
//!
//! In multi-level mode the ray marches the finest level while inside its
//! region of interest and transitions to the next-coarser whole-domain
//! replica when it leaves — the mechanism that removes the fine-mesh
//! all-to-all (paper §III-B/C).
//!
//! The marching itself lives in [`crate::packet`]: one SoA packet stepper
//! serves the ∇·q solver, the spectral loop, scattering, wall flux and the
//! radiometer. This module keeps the level-stack types and the single-ray
//! convenience wrappers.

use crate::props::LevelProps;
use uintah_grid::{Point, Region, Vector};

/// One level of the trace stack.
#[derive(Clone, Copy)]
pub struct TraceLevel<'a> {
    pub props: &'a LevelProps,
    /// Cells of this level the ray may march. For the finest level this is
    /// the ROI (patch + halo); for the coarsest it is the whole level.
    pub roi: Region,
}

/// Options for [`trace_ray_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Intensity threshold below which a ray is extinguished.
    pub threshold: f64,
    /// Specular wall reflections for walls with emissivity < 1 (Uintah's
    /// reflection support). `0` treats every wall hit as terminal.
    pub max_reflections: u32,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            threshold: 0.05,
            max_reflections: 0,
        }
    }
}

/// Trace one ray through a stack of levels (coarsest first, finest last),
/// starting on the finest, and return its incoming-intensity integral
/// `sumI` (per steradian, fs = 1).
///
/// Leaving the coarsest level's ROI terminates the ray against a cold black
/// enclosure (zero contribution), which is the Burns & Christon boundary
/// condition; warm or reflective enclosures are modeled with explicit wall
/// cells instead.
///
/// One-off convenience over the packet engine: batched consumers should
/// prepare a [`crate::packet::PacketTracer`] once and march whole
/// [`crate::packet::RayPacket`]s instead.
///
/// ```
/// use rmcrt_core::{trace_ray, LevelProps, TraceLevel};
/// use uintah_grid::{Point, Region, Vector};
///
/// // Uniform medium (κ = 2, σT⁴/π = 0.7) in a unit cube, cold black walls:
/// // a +x ray from the centre sees sumI = S · (1 − e^{-κ·0.5}).
/// let props = LevelProps::uniform(Region::cube(32), Vector::splat(1.0 / 32.0), 2.0, 0.7);
/// let stack = [TraceLevel { props: &props, roi: props.region }];
/// let sum_i = trace_ray(&stack, Point::new(0.5, 0.5, 0.5), Vector::new(1.0, 0.0, 0.0), 1e-12);
/// let expect = 0.7 * (1.0 - (-2.0f64 * 0.5).exp());
/// assert!((sum_i - expect).abs() < 1e-10);
/// ```
pub fn trace_ray(levels: &[TraceLevel<'_>], origin: Point, dir: Vector, threshold: f64) -> f64 {
    trace_ray_with_options(
        levels,
        origin,
        dir,
        TraceOptions {
            threshold,
            max_reflections: 0,
        },
    )
}

/// [`trace_ray`] with specular wall reflections enabled.
///
/// A wall with emissivity `ε < 1` contributes `ε·σT⁴/π` of its emission and
/// specularly reflects the remaining `1 − ε` of the ray's sensitivity, up
/// to `opts.max_reflections` bounces or until the ray's remaining weight
/// falls below the threshold.
pub fn trace_ray_with_options(
    levels: &[TraceLevel<'_>],
    origin: Point,
    dir: Vector,
    opts: TraceOptions,
) -> f64 {
    debug_assert!(!levels.is_empty());
    crate::packet::PacketTracer::new(levels, opts).trace_one(origin, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::WALL_CELL;
    use uintah_grid::{CcVariable, IntVector};

    fn single(props: &LevelProps) -> [TraceLevel<'_>; 1] {
        [TraceLevel {
            props,
            roi: props.region,
        }]
    }

    /// Uniform medium, cold black walls: sumI = S·(1 − e^{-κL}) where L is
    /// the chord length from the origin to the boundary.
    #[test]
    fn uniform_medium_matches_analytic_transmission() {
        let n = 32;
        let kappa = 2.0;
        let s = 0.7;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, s);
        let origin = Point::new(0.5, 0.5, 0.5);
        for dir in [
            Vector::new(1.0, 0.0, 0.0),
            Vector::new(0.0, -1.0, 0.0),
            Vector::new(0.0, 0.0, 1.0),
            Vector::new(1.0, 1.0, 1.0).normalized(),
        ] {
            let sum_i = trace_ray(&single(&props), origin, dir, 1e-12);
            // Chord length from the centre to the unit-cube boundary.
            let l = [dir.x, dir.y, dir.z]
                .iter()
                .filter(|d| d.abs() > 0.0)
                .map(|d| 0.5 / d.abs())
                .fold(f64::INFINITY, f64::min);
            let expect = s * (1.0 - (-kappa * l).exp());
            assert!(
                (sum_i - expect).abs() < 1e-10,
                "dir {dir:?}: {sum_i} vs {expect}"
            );
        }
    }

    /// Optically thick medium: sumI → S (the ray sees only the local
    /// emission, black-body limit).
    #[test]
    fn optically_thick_limit() {
        let props = LevelProps::uniform(Region::cube(16), Vector::splat(1.0 / 16.0), 1e4, 0.3);
        let sum_i = trace_ray(
            &single(&props),
            Point::new(0.5, 0.5, 0.5),
            Vector::new(1.0, 0.0, 0.0),
            1e-12,
        );
        assert!((sum_i - 0.3).abs() < 1e-6, "sumI {sum_i}");
    }

    /// Transparent medium: sumI = 0 against cold walls.
    #[test]
    fn transparent_medium_contributes_nothing() {
        let props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 0.0, 0.9);
        let sum_i = trace_ray(
            &single(&props),
            Point::new(0.51, 0.52, 0.53),
            Vector::new(0.0, 1.0, 0.0),
            1e-12,
        );
        assert_eq!(sum_i, 0.0);
    }

    /// A hot wall cell contributes ε·S_wall·e^{-τ}.
    #[test]
    fn hot_wall_contribution() {
        let n = 8;
        let kappa = 1.0;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, 0.0);
        // Wall slab at x = 7 (emissivity 0.8, S_wall = 2.0).
        for c in Region::new(IntVector::new(7, 0, 0), IntVector::new(8, 8, 8)).cells() {
            props.cell_type[c] = WALL_CELL;
            props.abskg[c] = 0.8;
            props.sigma_t4_over_pi[c] = 2.0;
        }
        let origin = Point::new(0.5 / n as f64, 0.5, 0.5); // centre of cell x=0
        let sum_i = trace_ray(&single(&props), origin, Vector::new(1.0, 0.0, 0.0), 1e-12);
        // Distance to the wall face (x = 7/8) through κ=1 medium.
        let l = 7.0 / n as f64 - 0.5 / n as f64;
        let expect = 0.8 * 2.0 * (-kappa * l).exp();
        assert!((sum_i - expect).abs() < 1e-12, "{sum_i} vs {expect}");
    }

    /// The threshold terminates deep rays early.
    #[test]
    fn threshold_extinguishes() {
        let props = LevelProps::uniform(Region::cube(64), Vector::splat(1.0 / 64.0), 50.0, 1.0);
        // With threshold 1e-2, the ray should stop once e^{-τ} < 0.01, so
        // sumI ≈ S·(1-0.01) rather than S·(1 - e^{-25}).
        let sum_i = trace_ray(
            &single(&props),
            Point::new(0.5, 0.5, 0.5),
            Vector::new(1.0, 0.0, 0.0),
            1e-2,
        );
        assert!(sum_i < 1.0 - 0.009, "threshold not applied: {sum_i}");
        assert!(sum_i > 0.95, "terminated too early: {sum_i}");
    }

    /// Two-level trace of a *uniform* field must agree with single-level
    /// exactly up to the discretization of the coarse replica (uniform ⇒
    /// identical contributions regardless of cell size).
    #[test]
    fn two_level_uniform_equals_single_level() {
        let kappa = 3.0;
        let s = 0.4;
        let nf = 32;
        let fine = LevelProps::uniform(Region::cube(nf), Vector::splat(1.0 / nf as f64), kappa, s);
        let coarse = LevelProps::uniform(Region::cube(nf / 4), Vector::splat(4.0 / nf as f64), kappa, s);
        // ROI: a small box around the origin cell.
        let origin_cell = IntVector::splat(nf / 2);
        let roi = Region::new(origin_cell - IntVector::splat(4), origin_cell + IntVector::splat(4));
        let stack = [
            TraceLevel {
                props: &coarse,
                roi: coarse.region,
            },
            TraceLevel {
                props: &fine,
                roi,
            },
        ];
        let origin = fine.cell_center(origin_cell);
        for dir in [
            Vector::new(1.0, 0.0, 0.0),
            Vector::new(-0.3, 0.9, 0.3).normalized(),
            Vector::new(0.5, -0.5, std::f64::consts::FRAC_1_SQRT_2).normalized(),
        ] {
            let ml = trace_ray(&stack, origin, dir, 1e-12);
            let sl = trace_ray(
                &[TraceLevel {
                    props: &fine,
                    roi: fine.region,
                }],
                origin,
                dir,
                1e-12,
            );
            assert!((ml - sl).abs() < 1e-8, "dir {dir:?}: ml {ml} vs sl {sl}");
        }
    }

    /// Rays leaving the fine ROI must continue (not terminate) — a ray
    /// pointing at a hot far wall sees it through the coarse level.
    #[test]
    fn ml_ray_sees_far_wall_through_coarse_level() {
        let nf = 32;
        let mut fine = LevelProps::uniform(Region::cube(nf), Vector::splat(1.0 / nf as f64), 0.0, 0.0);
        let mut coarse = LevelProps::uniform(Region::cube(nf / 4), Vector::splat(4.0 / nf as f64), 0.0, 0.0);
        // Hot wall at the +x face of both levels.
        for c in Region::new(IntVector::new(nf - 1, 0, 0), IntVector::new(nf, nf, nf)).cells() {
            fine.cell_type[c] = WALL_CELL;
            fine.abskg[c] = 1.0;
            fine.sigma_t4_over_pi[c] = 5.0;
        }
        let m = nf / 4;
        for c in Region::new(IntVector::new(m - 1, 0, 0), IntVector::new(m, m, m)).cells() {
            coarse.cell_type[c] = WALL_CELL;
            coarse.abskg[c] = 1.0;
            coarse.sigma_t4_over_pi[c] = 5.0;
        }
        let origin_cell = IntVector::new(2, nf / 2, nf / 2);
        let roi = Region::new(IntVector::ZERO, IntVector::new(6, nf, nf));
        let stack = [
            TraceLevel {
                props: &coarse,
                roi: coarse.region,
            },
            TraceLevel {
                props: &fine,
                roi,
            },
        ];
        let sum_i = trace_ray(&stack, fine.cell_center(origin_cell), Vector::new(1.0, 0.0, 0.0), 1e-12);
        assert!((sum_i - 5.0).abs() < 1e-9, "far wall seen through coarse: {sum_i}");
    }

    /// Path-length property: the per-cell segment lengths of a DDA traverse
    /// must sum to the chord length (checked via τ with κ = 1).
    #[test]
    fn dda_path_lengths_sum_to_chord() {
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let origin = Point::new(0.1234, 0.567, 0.891);
        let dir = Vector::new(0.3, -0.8, 0.52).normalized();
        let sum_i = trace_ray(&single(&props), origin, dir, 1e-300);
        // sumI = 1 − e^{-L}; recover L and compare with geometric chord.
        let l_measured = -(1.0 - sum_i).ln();
        let mut l_geom = f64::INFINITY;
        for a in 0..3 {
            let d = dir[a];
            if d > 0.0 {
                l_geom = l_geom.min((1.0 - origin[a]) / d);
            } else if d < 0.0 {
                l_geom = l_geom.min((0.0 - origin[a]) / d);
            }
        }
        assert!(
            (l_measured - l_geom).abs() < 1e-9,
            "path {l_measured} vs chord {l_geom}"
        );
    }

    /// A ray exiting the ROI exactly at the domain boundary must not panic
    /// and contributes only what it saw inside.
    #[test]
    fn roi_touching_domain_edge() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let coarse = LevelProps::uniform(Region::cube(n / 4), Vector::splat(4.0 / n as f64), 1.0, 1.0);
        let roi = Region::new(IntVector::new(6, 0, 0), IntVector::new(8, 8, 8));
        let stack = [
            TraceLevel {
                props: &coarse,
                roi: coarse.region,
            },
            TraceLevel {
                props: &props,
                roi,
            },
        ];
        let origin = props.cell_center(IntVector::new(7, 4, 4));
        let sum_i = trace_ray(&stack, origin, Vector::new(1.0, 0.0, 0.0), 1e-12);
        let expect = 1.0 - (-(0.5 / n as f64)).exp();
        assert!((sum_i - expect).abs() < 1e-9, "{sum_i} vs {expect}");
    }

    /// Gray walls: a ray bouncing between two ε=0.5 walls through vacuum
    /// accumulates εS·(1 + r + r² + …) → S_w.
    #[test]
    fn gray_wall_reflections_geometric_series() {
        let n = 8;
        let s_wall = 2.0;
        let eps_w = 0.5;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 0.0, 0.0);
        for c in props.region.cells() {
            if c.x == 0 || c.x == n - 1 {
                props.cell_type[c] = WALL_CELL;
                props.abskg[c] = eps_w;
                props.sigma_t4_over_pi[c] = s_wall;
            }
        }
        let stack = single(&props);
        let origin = Point::new(0.5, 0.5, 0.5);
        let dir = Vector::new(1.0, 0.0, 0.0);
        // No reflections: only the first wall's ε·S.
        let first = trace_ray(&stack, origin, dir, 1e-9);
        assert!((first - eps_w * s_wall).abs() < 1e-12);
        // Many reflections: geometric series to S_w.
        let full = trace_ray_with_options(
            &stack,
            origin,
            dir,
            TraceOptions {
                threshold: 1e-9,
                max_reflections: 64,
            },
        );
        assert!((full - s_wall).abs() < 1e-6, "series sum {full} vs {s_wall}");
    }

    /// Perfect mirrors (ε=0) around an absorbing hot medium: the ray keeps
    /// bouncing until the medium extinguishes it, so sumI → S_medium.
    #[test]
    fn mirror_box_reaches_blackbody_limit() {
        let n = 8;
        let s = 0.7;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 2.0, s);
        for c in props.region.cells() {
            let e = props.region.extent();
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = WALL_CELL;
                props.abskg[c] = 0.0; // emissivity 0 = perfect mirror
                props.sigma_t4_over_pi[c] = 0.0;
            }
        }
        let got = trace_ray_with_options(
            &single(&props),
            Point::new(0.5, 0.5, 0.5),
            Vector::new(1.0, 0.0, 0.0).normalized(),
            TraceOptions {
                threshold: 1e-8,
                max_reflections: 1000,
            },
        );
        assert!((got - s).abs() < 1e-4, "mirror box sumI {got} vs S {s}");
    }

    #[test]
    fn zero_reflections_matches_plain_trace() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 0.4);
        let origin = Point::new(0.3, 0.4, 0.5);
        let dir = Vector::new(0.6, -0.5, 0.62).normalized();
        let a = trace_ray(&single(&props), origin, dir, 1e-6);
        let b = trace_ray_with_options(
            &single(&props),
            origin,
            dir,
            TraceOptions {
                threshold: 1e-6,
                max_reflections: 0,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn nonuniform_field_telescoping_is_exact() {
        // κ varies per cell; compare against a direct segment integration.
        let n = 8;
        let dx = 1.0 / n as f64;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(dx), 0.0, 0.0);
        let mut kappa_of_x = vec![0.0; n as usize];
        let mut s_of_x = vec![0.0; n as usize];
        for i in 0..n as usize {
            kappa_of_x[i] = 0.2 + 0.3 * i as f64;
            s_of_x[i] = 1.0 + (i as f64) * 0.5;
        }
        props.abskg = {
            let mut v = CcVariable::new(Region::cube(n));
            v.fill_with(|c| kappa_of_x[c.x as usize]);
            v
        };
        props.sigma_t4_over_pi = {
            let mut v = CcVariable::new(Region::cube(n));
            v.fill_with(|c| s_of_x[c.x as usize]);
            v
        };
        let origin = Point::new(0.5 * dx, 0.5, 0.5);
        let got = trace_ray(&single(&props), origin, Vector::new(1.0, 0.0, 0.0), 1e-300);
        // Direct integration: first segment is half a cell (origin at centre).
        let mut tau = 0.0;
        let mut expect = 0.0;
        let mut exp_prev = 1.0;
        for i in 0..n as usize {
            let seg = if i == 0 { 0.5 * dx } else { dx };
            tau += kappa_of_x[i] * seg;
            let e = (-tau).exp();
            expect += s_of_x[i] * (exp_prev - e);
            exp_prev = e;
        }
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }
}
