//! ∇·q solvers: per cell, per region, per patch; serial and threaded.

use crate::props::LevelProps;
use crate::rng::CellRng;
use crate::sampling::{DirectionSampler, RaySampling};
use crate::trace::{trace_ray, TraceLevel};
use std::f64::consts::PI;
use uintah_grid::{CcVariable, IntVector, Region};

/// Monte Carlo parameters of an RMCRT solve.
#[derive(Clone, Copy, Debug)]
pub struct RmcrtParams {
    /// Rays per cell (the paper's benchmarks use 100).
    pub nrays: u32,
    /// Intensity threshold below which a ray is extinguished.
    pub threshold: f64,
    /// Global seed (combined with cell/ray/timestep for determinism).
    pub seed: u64,
    /// Timestep index, so successive radiation solves decorrelate.
    pub timestep: u32,
    /// Direction sampling strategy (independent or Latin-hypercube).
    pub sampling: RaySampling,
}

impl Default for RmcrtParams {
    fn default() -> Self {
        Self {
            nrays: 100,
            threshold: 0.05,
            seed: 0x5EED,
            timestep: 0,
            sampling: RaySampling::Independent,
        }
    }
}

/// Compute `∇·q` for one fine-level cell by tracing `nrays` rays.
///
/// Sign convention: positive = net emission (hot medium between cold
/// walls loses energy). Uintah's `divQ` variable stores the negated value;
/// see EXPERIMENTS.md.
pub fn div_q_for_cell(levels: &[TraceLevel<'_>], cell: IntVector, params: &RmcrtParams) -> f64 {
    let fine = levels.last().expect("empty level stack").props;
    let kappa = fine.abskg[cell];
    if kappa == 0.0 {
        return 0.0; // transparent cells exchange no energy
    }
    // The sampler's stratification permutation draws from a dedicated
    // stream (ray index u32::MAX) so per-ray streams stay untouched.
    let mut perm_rng = CellRng::new(params.seed, cell, u32::MAX, params.timestep);
    let sampler = DirectionSampler::new(params.sampling, params.nrays, &mut perm_rng);
    let mut sum_i = 0.0;
    for r in 0..params.nrays {
        let mut rng = CellRng::new(params.seed, cell, r, params.timestep);
        let dir = sampler.direction(r, &mut rng);
        let origin = rng.point_in_cell(fine.cell_lo(cell), fine.dx);
        sum_i += trace_ray(levels, origin, dir, params.threshold);
    }
    let mean_i = sum_i / params.nrays as f64;
    4.0 * PI * kappa * (fine.sigma_t4_over_pi[cell] - mean_i)
}

/// Solve `∇·q` over `region` of the finest level in the stack on the
/// calling thread. Equivalent to [`solve_region_exec`] with
/// [`ExecSpace::Serial`](uintah_exec::ExecSpace::Serial).
pub fn solve_region(levels: &[TraceLevel<'_>], region: Region, params: &RmcrtParams) -> CcVariable<f64> {
    solve_region_exec(levels, region, params, &uintah_exec::ExecSpace::Serial)
}

/// Solve `∇·q` over `region` on a Kokkos-style execution space.
/// Deterministic: bit-identical to [`solve_region`] on any space,
/// including `Device`.
pub fn solve_region_exec(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
    space: &uintah_exec::ExecSpace,
) -> CcVariable<f64> {
    uintah_exec::parallel_fill(space, region, |c| div_q_for_cell(levels, c, params))
}

/// Solve `∇·q` over `region` using `nthreads` host threads (z-slab
/// decomposition). Deterministic: identical to [`solve_region`].
pub fn solve_region_threaded(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
    nthreads: usize,
) -> CcVariable<f64> {
    solve_region_exec(levels, region, params, &uintah_exec::ExecSpace::host(nthreads))
}

/// Build the standard 2-level trace stack for a fine patch: coarse
/// whole-domain replica below, fine ROI (patch + halo) on top.
pub fn two_level_stack<'a>(
    coarse: &'a LevelProps,
    fine: &'a LevelProps,
    fine_roi: Region,
) -> [TraceLevel<'a>; 2] {
    [
        TraceLevel {
            props: coarse,
            roi: coarse.region,
        },
        TraceLevel {
            props: fine,
            roi: fine_roi,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Vector;

    fn single(props: &LevelProps) -> [TraceLevel<'_>; 1] {
        [TraceLevel {
            props,
            roi: props.region,
        }]
    }

    /// Isothermal medium in an isothermal *hot-wall* enclosure is in
    /// radiative equilibrium: ∇·q ≈ 0 (every ray eventually sees either
    /// medium or wall at the same σT⁴/π).
    #[test]
    fn equilibrium_enclosure_has_zero_div_q() {
        let n = 16;
        let s = 0.8;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, s);
        // Black hot walls on all faces.
        for c in props.region.cells() {
            let e = props.region.extent();
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = crate::props::WALL_CELL;
                props.abskg[c] = 1.0;
            }
        }
        let params = RmcrtParams {
            nrays: 64,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(n / 2);
        let dq = div_q_for_cell(&single(&props), c, &params);
        // Emission 4πκs exactly cancels absorption in equilibrium.
        let scale = 4.0 * PI * s;
        assert!(dq.abs() / scale < 1e-9, "divQ {dq}");
    }

    /// Hot medium, cold walls: net emission, ∇·q > 0, bounded by 4πκσT⁴/π.
    #[test]
    fn cold_wall_enclosure_emits() {
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let params = RmcrtParams {
            nrays: 128,
            threshold: 1e-6,
            ..Default::default()
        };
        let dq = div_q_for_cell(&single(&props), IntVector::splat(n / 2), &params);
        assert!(dq > 0.0);
        assert!(dq < 4.0 * PI * 1.0);
    }

    /// Transparent cells have exactly zero divergence.
    #[test]
    fn transparent_cell_zero() {
        let mut props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 1.0);
        props.abskg[IntVector::splat(4)] = 0.0;
        let dq = div_q_for_cell(&single(&props), IntVector::splat(4), &RmcrtParams::default());
        assert_eq!(dq, 0.0);
    }

    /// Results are a pure function of the cell identity, not the region
    /// decomposition: solving two half-regions equals solving the whole.
    #[test]
    fn decomposition_invariance() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.5, 0.9);
        let params = RmcrtParams {
            nrays: 16,
            ..Default::default()
        };
        let stack = single(&props);
        let whole = solve_region(&stack, Region::cube(n), &params);
        let left = solve_region(
            &stack,
            Region::new(IntVector::ZERO, IntVector::new(4, n, n)),
            &params,
        );
        let right = solve_region(
            &stack,
            Region::new(IntVector::new(4, 0, 0), IntVector::new(n, n, n)),
            &params,
        );
        for c in left.region().cells() {
            assert_eq!(whole[c], left[c]);
        }
        for c in right.region().cells() {
            assert_eq!(whole[c], right[c]);
        }
    }

    #[test]
    fn threaded_solve_is_bitwise_identical() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.5, 0.9);
        let params = RmcrtParams {
            nrays: 8,
            ..Default::default()
        };
        let stack = single(&props);
        let serial = solve_region(&stack, Region::cube(n), &params);
        let threaded = solve_region_threaded(&stack, Region::cube(n), &params, 4);
        assert_eq!(serial, threaded);
        // And through the Kokkos-style execution-space API.
        for space in [uintah_exec::ExecSpace::Serial, uintah_exec::ExecSpace::Threads(3)] {
            assert_eq!(serial, solve_region_exec(&stack, Region::cube(n), &params, &space));
        }
    }

    /// Different timesteps decorrelate the Monte Carlo noise.
    #[test]
    fn timesteps_change_noise_not_mean() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let stack = single(&props);
        let c = IntVector::splat(4);
        let a = div_q_for_cell(
            &stack,
            c,
            &RmcrtParams {
                nrays: 32,
                timestep: 0,
                sampling: crate::sampling::RaySampling::Independent,
                ..Default::default()
            },
        );
        let b = div_q_for_cell(
            &stack,
            c,
            &RmcrtParams {
                nrays: 32,
                timestep: 1,
                ..Default::default()
            },
        );
        assert_ne!(a, b, "different timesteps must resample");
        assert!((a - b).abs() < 0.5 * a.abs().max(b.abs()), "means wildly apart");
    }
}
