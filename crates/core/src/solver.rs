//! ∇·q solvers: per cell, per region, per patch; serial and threaded.

use crate::packet::{PacketTracer, RayPacket};
use crate::props::LevelProps;
use crate::rng::CellRng;
use crate::sampling::{DirectionSampler, RaySampling};
use crate::trace::{TraceLevel, TraceOptions};
use std::f64::consts::PI;
use uintah_grid::{CcVariable, IntVector, Region};

/// Per-cell ray-budget policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RayCountMode {
    /// Exactly `n` rays per cell — the bit-identity reference mode (the
    /// historical behavior; `tests/exec_spaces.rs` pins it across spaces).
    Fixed(u32),
    /// Variance-driven budgets in the style of adaptive ray counting:
    /// trace geometrically growing batches starting at `min` rays and stop
    /// once the relative standard error of the mean intensity falls to
    /// `rel_var_target`, or at `max` rays. Optically thick cells converge
    /// at `min` (their rays extinguish locally via the optical-depth
    /// threshold); high-variance cells escalate toward `max`.
    Adaptive {
        min: u32,
        max: u32,
        rel_var_target: f64,
    },
}

/// Monte Carlo parameters of an RMCRT solve.
#[derive(Clone, Copy, Debug)]
pub struct RmcrtParams {
    /// Rays per cell (the paper's benchmarks use 100). Used when
    /// `ray_count` is `None` (i.e. `Fixed(nrays)`).
    pub nrays: u32,
    /// Intensity threshold below which a ray is extinguished.
    pub threshold: f64,
    /// Global seed (combined with cell/ray/timestep for determinism).
    pub seed: u64,
    /// Timestep index, so successive radiation solves decorrelate.
    pub timestep: u32,
    /// Direction sampling strategy (independent or Latin-hypercube).
    pub sampling: RaySampling,
    /// Ray-budget policy; `None` means `Fixed(nrays)`.
    pub ray_count: Option<RayCountMode>,
}

impl Default for RmcrtParams {
    fn default() -> Self {
        Self {
            nrays: 100,
            threshold: 0.05,
            seed: 0x5EED,
            timestep: 0,
            sampling: RaySampling::Independent,
            ray_count: None,
        }
    }
}

impl RmcrtParams {
    /// The effective ray-count policy.
    pub fn ray_count_mode(&self) -> RayCountMode {
        self.ray_count.unwrap_or(RayCountMode::Fixed(self.nrays))
    }

    pub(crate) fn trace_options(&self) -> TraceOptions {
        TraceOptions {
            threshold: self.threshold,
            max_reflections: 0,
        }
    }
}

/// Ray-budget accounting of a solve (for the fixed-vs-adaptive comparison
/// in EXPERIMENTS E13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Rays actually traced across all cells.
    pub total_rays: u64,
    /// Cells solved (including transparent zero-ray cells).
    pub cells: u64,
}

/// Compute `∇·q` for one fine-level cell by tracing a packet of rays.
///
/// Sign convention: positive = net emission (hot medium between cold
/// walls loses energy). Uintah's `divQ` variable stores the negated value;
/// see EXPERIMENTS.md.
pub fn div_q_for_cell(levels: &[TraceLevel<'_>], cell: IntVector, params: &RmcrtParams) -> f64 {
    let tracer = PacketTracer::new(levels, params.trace_options());
    div_q_for_cell_with(&tracer, cell, params).0
}

/// [`div_q_for_cell`] against a prepared [`PacketTracer`] (the per-solve
/// hoisted form used by the `uintah-exec` dispatch paths); also returns the
/// number of rays traced.
pub fn div_q_for_cell_with(
    tracer: &PacketTracer<'_>,
    cell: IntVector,
    params: &RmcrtParams,
) -> (f64, u32) {
    let fine = tracer.fine_props();
    let kappa = fine.abskg[cell];
    if kappa == 0.0 {
        return (0.0, 0); // transparent cells exchange no energy
    }
    let (sum_i, rays) = match params.ray_count_mode() {
        RayCountMode::Fixed(n) => (mean_intensity_fixed(tracer, cell, params, n), n),
        RayCountMode::Adaptive {
            min,
            max,
            rel_var_target,
        } => mean_intensity_adaptive(tracer, cell, params, min, max, rel_var_target),
    };
    let mean_i = sum_i / rays as f64;
    (
        4.0 * PI * kappa * (fine.sigma_t4_over_pi[cell] - mean_i),
        rays,
    )
}

/// Fill one packet with this cell's rays `first..first+count` and trace it.
/// The RNG draw order per ray (direction, then origin) matches the
/// historical scalar loop exactly.
fn trace_cell_packet(
    tracer: &PacketTracer<'_>,
    packet: &mut RayPacket,
    cell: IntVector,
    params: &RmcrtParams,
    sampler: &DirectionSampler,
    first: u32,
    count: u32,
) {
    let fine = tracer.fine_props();
    packet.reset(count as usize);
    for k in 0..count {
        let r = first + k;
        let mut rng = CellRng::new(params.seed, cell, r, params.timestep);
        let dir = sampler.direction(k, &mut rng);
        let origin = rng.point_in_cell(fine.cell_lo(cell), fine.dx);
        packet.set_ray(k as usize, origin, dir);
    }
    tracer.trace(packet);
}

std::thread_local! {
    /// Per-thread scratch packet, reused across the cells of a dispatch so
    /// a region solve does no per-cell allocation.
    static SCRATCH_PACKET: std::cell::RefCell<RayPacket> =
        std::cell::RefCell::new(RayPacket::default());
}

/// Fixed-budget mean: one packet of `n` rays, summed in ray order (the
/// bit-identity reference path).
fn mean_intensity_fixed(
    tracer: &PacketTracer<'_>,
    cell: IntVector,
    params: &RmcrtParams,
    n: u32,
) -> f64 {
    // The sampler's stratification permutation draws from a dedicated
    // stream (ray index u32::MAX) so per-ray streams stay untouched.
    let mut perm_rng = CellRng::new(params.seed, cell, u32::MAX, params.timestep);
    let sampler = DirectionSampler::new(params.sampling, n, &mut perm_rng);
    SCRATCH_PACKET.with(|p| {
        let packet = &mut p.borrow_mut();
        trace_cell_packet(tracer, packet, cell, params, &sampler, 0, n);
        let mut sum_i = 0.0;
        for &v in &packet.sum_i {
            sum_i += v;
        }
        sum_i
    })
}

/// Adaptive budget: geometrically growing batches until the relative
/// standard error of the mean intensity reaches the target (or `max`).
/// Returns `(Σ sumI, rays traced)`.
fn mean_intensity_adaptive(
    tracer: &PacketTracer<'_>,
    cell: IntVector,
    params: &RmcrtParams,
    min: u32,
    max: u32,
    rel_var_target: f64,
) -> (f64, u32) {
    let max = max.max(1).max(min);
    let mut batch = min.clamp(1, max);
    let mut drawn = 0u32;
    let mut batch_id = 0u32;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    SCRATCH_PACKET.with(|p| {
    let packet = &mut p.borrow_mut();
    loop {
        let b = batch.min(max - drawn);
        // Per-batch stratification permutation from a reserved stream
        // below u32::MAX (Latin-hypercube stratifies within the batch).
        let mut perm_rng = CellRng::new(
            params.seed,
            cell,
            u32::MAX - 1 - batch_id,
            params.timestep,
        );
        let sampler = DirectionSampler::new(params.sampling, b, &mut perm_rng);
        trace_cell_packet(tracer, packet, cell, params, &sampler, drawn, b);
        for &v in &packet.sum_i {
            sum += v;
            sum_sq += v * v;
        }
        drawn += b;
        batch_id += 1;
        if drawn >= max {
            break;
        }
        let n = drawn as f64;
        let mean = sum / n;
        // Unbiased sample variance of the per-ray estimates.
        let var = ((sum_sq / n - mean * mean) * n / (n - 1.0).max(1.0)).max(0.0);
        let sem = (var / n).sqrt();
        if sem <= rel_var_target * mean.abs() {
            break;
        }
        batch = batch.saturating_mul(2);
    }
    (sum, drawn)
    })
}

/// Solve `∇·q` over `region` of the finest level in the stack on the
/// calling thread. Equivalent to [`solve_region_exec`] with
/// [`ExecSpace::Serial`](uintah_exec::ExecSpace::Serial).
pub fn solve_region(levels: &[TraceLevel<'_>], region: Region, params: &RmcrtParams) -> CcVariable<f64> {
    solve_region_exec(levels, region, params, &uintah_exec::ExecSpace::Serial)
}

/// Solve `∇·q` over `region` on a Kokkos-style execution space.
/// Deterministic: bit-identical to [`solve_region`] on any space,
/// including `Device`.
///
/// The trace stack is prepared once ([`PacketTracer`]) and each kernel
/// invocation marches one cell's whole [`RayPacket`], so `KernelStats`
/// meters batched packet dispatches rather than single rays.
pub fn solve_region_exec(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
    space: &uintah_exec::ExecSpace,
) -> CcVariable<f64> {
    let tracer = PacketTracer::new(levels, params.trace_options());
    uintah_exec::parallel_fill(space, region, |c| {
        div_q_for_cell_with(&tracer, c, params).0
    })
}

/// [`solve_region_exec`] that also returns the ray budget actually spent —
/// the measurement behind the fixed-vs-adaptive table in EXPERIMENTS E13.
/// Dispatched as a `parallel_map` over per-cell packets; deterministic and
/// bit-identical to [`solve_region_exec`] on every space.
pub fn solve_region_with_stats(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
    space: &uintah_exec::ExecSpace,
) -> (CcVariable<f64>, SolveStats) {
    let tracer = PacketTracer::new(levels, params.trace_options());
    let per_cell = uintah_exec::parallel_map(space, region.volume(), |i| {
        div_q_for_cell_with(&tracer, region.from_linear(i), params)
    });
    let mut out = CcVariable::<f64>::new(region);
    let mut stats = SolveStats {
        total_rays: 0,
        cells: region.volume() as u64,
    };
    for (i, (dq, rays)) in per_cell.into_iter().enumerate() {
        out.as_mut_slice()[i] = dq;
        stats.total_rays += rays as u64;
    }
    (out, stats)
}

/// Solve `∇·q` over `region` using `nthreads` host threads (z-slab
/// decomposition). Deterministic: identical to [`solve_region`].
pub fn solve_region_threaded(
    levels: &[TraceLevel<'_>],
    region: Region,
    params: &RmcrtParams,
    nthreads: usize,
) -> CcVariable<f64> {
    solve_region_exec(levels, region, params, &uintah_exec::ExecSpace::host(nthreads))
}

/// Build the standard 2-level trace stack for a fine patch: coarse
/// whole-domain replica below, fine ROI (patch + halo) on top.
pub fn two_level_stack<'a>(
    coarse: &'a LevelProps,
    fine: &'a LevelProps,
    fine_roi: Region,
) -> [TraceLevel<'a>; 2] {
    [
        TraceLevel {
            props: coarse,
            roi: coarse.region,
        },
        TraceLevel {
            props: fine,
            roi: fine_roi,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Vector;

    fn single(props: &LevelProps) -> [TraceLevel<'_>; 1] {
        [TraceLevel {
            props,
            roi: props.region,
        }]
    }

    /// Isothermal medium in an isothermal *hot-wall* enclosure is in
    /// radiative equilibrium: ∇·q ≈ 0 (every ray eventually sees either
    /// medium or wall at the same σT⁴/π).
    #[test]
    fn equilibrium_enclosure_has_zero_div_q() {
        let n = 16;
        let s = 0.8;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, s);
        // Black hot walls on all faces.
        for c in props.region.cells() {
            let e = props.region.extent();
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = crate::props::WALL_CELL;
                props.abskg[c] = 1.0;
            }
        }
        let params = RmcrtParams {
            nrays: 64,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(n / 2);
        let dq = div_q_for_cell(&single(&props), c, &params);
        // Emission 4πκs exactly cancels absorption in equilibrium.
        let scale = 4.0 * PI * s;
        assert!(dq.abs() / scale < 1e-9, "divQ {dq}");
    }

    /// Hot medium, cold walls: net emission, ∇·q > 0, bounded by 4πκσT⁴/π.
    #[test]
    fn cold_wall_enclosure_emits() {
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let params = RmcrtParams {
            nrays: 128,
            threshold: 1e-6,
            ..Default::default()
        };
        let dq = div_q_for_cell(&single(&props), IntVector::splat(n / 2), &params);
        assert!(dq > 0.0);
        assert!(dq < 4.0 * PI * 1.0);
    }

    /// Transparent cells have exactly zero divergence.
    #[test]
    fn transparent_cell_zero() {
        let mut props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 1.0);
        props.abskg[IntVector::splat(4)] = 0.0;
        let dq = div_q_for_cell(&single(&props), IntVector::splat(4), &RmcrtParams::default());
        assert_eq!(dq, 0.0);
    }

    /// Results are a pure function of the cell identity, not the region
    /// decomposition: solving two half-regions equals solving the whole.
    #[test]
    fn decomposition_invariance() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.5, 0.9);
        let params = RmcrtParams {
            nrays: 16,
            ..Default::default()
        };
        let stack = single(&props);
        let whole = solve_region(&stack, Region::cube(n), &params);
        let left = solve_region(
            &stack,
            Region::new(IntVector::ZERO, IntVector::new(4, n, n)),
            &params,
        );
        let right = solve_region(
            &stack,
            Region::new(IntVector::new(4, 0, 0), IntVector::new(n, n, n)),
            &params,
        );
        for c in left.region().cells() {
            assert_eq!(whole[c], left[c]);
        }
        for c in right.region().cells() {
            assert_eq!(whole[c], right[c]);
        }
    }

    #[test]
    fn threaded_solve_is_bitwise_identical() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.5, 0.9);
        let params = RmcrtParams {
            nrays: 8,
            ..Default::default()
        };
        let stack = single(&props);
        let serial = solve_region(&stack, Region::cube(n), &params);
        let threaded = solve_region_threaded(&stack, Region::cube(n), &params, 4);
        assert_eq!(serial, threaded);
        // And through the Kokkos-style execution-space API.
        for space in [uintah_exec::ExecSpace::Serial, uintah_exec::ExecSpace::Threads(3)] {
            assert_eq!(serial, solve_region_exec(&stack, Region::cube(n), &params, &space));
        }
    }

    /// Different timesteps decorrelate the Monte Carlo noise.
    #[test]
    fn timesteps_change_noise_not_mean() {
        let n = 8;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let stack = single(&props);
        let c = IntVector::splat(4);
        let a = div_q_for_cell(
            &stack,
            c,
            &RmcrtParams {
                nrays: 32,
                timestep: 0,
                sampling: crate::sampling::RaySampling::Independent,
                ..Default::default()
            },
        );
        let b = div_q_for_cell(
            &stack,
            c,
            &RmcrtParams {
                nrays: 32,
                timestep: 1,
                ..Default::default()
            },
        );
        assert_ne!(a, b, "different timesteps must resample");
        assert!((a - b).abs() < 0.5 * a.abs().max(b.abs()), "means wildly apart");
    }
}
