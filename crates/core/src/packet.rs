//! The SoA packet ray-march engine — the single stepper behind every tracer.
//!
//! Every consumer of ray marching (the ∇·q solver, the spectral band loop,
//! the scattering collision estimator, wall flux and the virtual
//! radiometer) used to drive its own copy of a scalar Amanatides–Woo DDA.
//! This module collapses them onto one engine:
//!
//! * [`RayPacket`] — a structure-of-arrays batch of rays: origins,
//!   directions, per-ray `τ`/`e^{-τ_prev}`/weight/
//!   `sumI`, level index and an active mask. One packet is one cell's (or
//!   one face's / one detector's) ray budget, dispatched as a unit through
//!   `uintah-exec`.
//! * [`PacketTracer`] — prepares each [`TraceLevel`] once per solve
//!   (hoisted DDA constants, raw field slices, linear-index strides, ROI
//!   slab planes) and then marches whole packets, compacting the active
//!   mask as rays extinguish, hit walls, or transition between levels.
//!
//! ## Stepping
//!
//! The DDA state (`side_dist`/`t_max`, `delta_dist`/`t_delta`, per SNIPPETS
//! §1) is set up once per level segment, and the per-step work is
//! branch-light:
//!
//! * the field lookups use a *stride-stepped linear index* into the dense
//!   per-level slices instead of re-deriving `region.linear_index(cell)`
//!   (three multiplies + bounds assert) on every access;
//! * the per-cell `roi.contains` test is replaced by the ROI's slab planes
//!   in index space: advancing along axis `a` can only cross the
//!   precomputed exit plane of axis `a`, so exit is a single integer
//!   compare, and the integer planes double as a step bound (a termination
//!   guarantee for degenerate directions). The physical-space twin of the
//!   same test, [`slabs`], serves box-entry queries.
//!
//! The *floating-point sequence* of the march (t_max recurrence, τ
//! accumulation, telescoped emission, threshold compare, axis tie-breaking)
//! is kept operation-for-operation identical to the historical scalar
//! marcher, so solves in `Fixed` ray-count mode remain bit-identical across
//! Serial/Threads/Device — the determinism contract `tests/exec_spaces.rs`
//! pins.
//!
//! ## Level transitions
//!
//! A ray leaving a level's ROI is snapped onto the crossed face plane and
//! nudged *one relative cell fraction* ([`FACE_NUDGE`]`·dx`) past it, then
//! re-homed on the next coarser level containing that point. The nudge is
//! proportional to the local cell size, so it survives any grid scale (the
//! historical absolute `1e-10` nudge vanished below the coordinate ulp on
//! large-`dx` grids and could land rays in the wrong coarse cell).

use crate::props::{LevelProps, FLOW_CELL};
use crate::trace::{TraceLevel, TraceOptions};
use uintah_grid::{Point, Region, Vector};

/// Relative (cell-fraction) nudge used to place a ray just past a crossed
/// face: scale-invariant, unlike an absolute epsilon.
pub const FACE_NUDGE: f64 = 1e-9;

/// Slab intersection of the ray `o + t·d` (given `inv_d = 1/d`) with the
/// axis-aligned box `[p0, p1]`: returns `(t_near, t_far)`; the ray crosses
/// the box iff `t_near <= t_far` (and `t_far >= 0` for the forward ray).
///
/// Degenerate components (`d[a] == 0` ⇒ `inv_d[a] = ±∞`) resolve correctly:
/// an origin outside the slab yields an empty interval, inside yields a
/// pass-through. An origin exactly *on* a slab plane of a degenerate axis
/// (0·∞ = NaN) is treated as inside that slab.
pub fn slabs(p0: Point, p1: Point, o: Point, inv_d: Vector) -> (f64, f64) {
    let mut t_near = f64::NEG_INFINITY;
    let mut t_far = f64::INFINITY;
    for a in 0..3 {
        let t0 = (p0[a] - o[a]) * inv_d[a];
        let t1 = (p1[a] - o[a]) * inv_d[a];
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        // NaN (origin on the plane of a zero-direction axis): axis is a
        // pass-through, skip it.
        if lo.is_nan() || hi.is_nan() {
            continue;
        }
        t_near = t_near.max(lo);
        t_far = t_far.min(hi);
    }
    (t_near, t_far)
}

/// Interleaved per-cell march payload: one cache line serves the
/// absorption update, emission update and wall test of a step, instead of
/// three separate array loads.
#[derive(Clone, Copy)]
struct CellPay {
    abskg: f64,
    sigma: f64,
    wall: bool,
}

/// One level of the trace stack, prepared for packet marching: hoisted
/// geometry, raw field slices and index strides.
struct PreparedLevel<'a> {
    anchor: [f64; 3],
    dx: [f64; 3],
    /// ROI slab planes in index space (exit plane per axis and sign).
    roi_lo: [i32; 3],
    roi_hi: [i32; 3],
    /// Low corner of the *data* region (slice index origin).
    reg_lo: [i32; 3],
    /// Linear-index strides (x fastest) of the data region.
    stride: [isize; 3],
    /// Integer step bound for one ROI crossing: each axis can be stepped
    /// at most `extent+1` times before its (integer) exit-plane compare
    /// fires, so a segment terminates within the summed extents no matter
    /// what the FP state does.
    step_bound: i64,
    abskg: &'a [f64],
    sigma: &'a [f64],
    ctype: &'a [u8],
    roi: Region,
}

impl<'a> PreparedLevel<'a> {
    fn new(level: &TraceLevel<'a>) -> Self {
        let props: &'a LevelProps = level.props;
        let region = props.region;
        debug_assert!(
            region.contains_region(&level.roi),
            "ROI {:?} escapes level region {:?}",
            level.roi,
            region
        );
        let e = region.extent();
        let roi = level.roi;
        let re = roi.extent();
        Self {
            anchor: [props.anchor.x, props.anchor.y, props.anchor.z],
            dx: [props.dx.x, props.dx.y, props.dx.z],
            roi_lo: [roi.lo().x, roi.lo().y, roi.lo().z],
            roi_hi: [roi.hi().x, roi.hi().y, roi.hi().z],
            reg_lo: [region.lo().x, region.lo().y, region.lo().z],
            stride: [1, e.x as isize, (e.x as isize) * (e.y as isize)],
            step_bound: (re.x as i64) + (re.y as i64) + (re.z as i64) + 8,
            abskg: props.abskg.as_slice(),
            sigma: props.sigma_t4_over_pi.as_slice(),
            ctype: props.cell_type.as_slice(),
            roi,
        }
    }

    /// Cell containing `p` — the same FP sequence as
    /// [`LevelProps::cell_containing`].
    #[inline]
    fn cell_containing(&self, p: Point) -> [i32; 3] {
        [
            ((p.x - self.anchor[0]) / self.dx[0]).floor() as i32,
            ((p.y - self.anchor[1]) / self.dx[1]).floor() as i32,
            ((p.z - self.anchor[2]) / self.dx[2]).floor() as i32,
        ]
    }

    #[inline]
    fn roi_contains(&self, c: [i32; 3]) -> bool {
        c[0] >= self.roi_lo[0]
            && c[1] >= self.roi_lo[1]
            && c[2] >= self.roi_lo[2]
            && c[0] < self.roi_hi[0]
            && c[1] < self.roi_hi[1]
            && c[2] < self.roi_hi[2]
    }

    /// Linear slice index of cell `c` (must be inside the data region).
    #[inline]
    fn index_of(&self, c: [i32; 3]) -> usize {
        let x = (c[0] - self.reg_lo[0]) as usize;
        let y = (c[1] - self.reg_lo[1]) as usize;
        let z = (c[2] - self.reg_lo[2]) as usize;
        x + (self.stride[1] as usize) * y + (self.stride[2] as usize) * z
    }

    /// Physical low face of cell index `ci` along `axis`.
    #[inline]
    fn face_coord(&self, axis: usize, ci: i32) -> f64 {
        self.anchor[axis] + (ci as f64) * self.dx[axis]
    }
}

/// Scalar per-ray accumulator state carried across level segments.
#[derive(Clone, Copy)]
struct RayCore {
    tau: f64,
    exp_prev: f64,
    sum_i: f64,
    weight: f64,
}

/// Why one level segment ended.
enum Seg {
    /// Remaining transmissivity fell below the threshold (or the defensive
    /// step guard tripped).
    Extinguished,
    /// Hit a wall cell (emission contribution already added).
    HitWall {
        hit: Point,
        axis: usize,
        /// Face-snapped restart coordinate along `axis`, just inside the
        /// flow cell the ray came from (for reflections).
        restart: f64,
        emissivity: f64,
    },
    /// Left the ROI: face-snapped physical exit point, just past the
    /// crossed slab plane.
    Exited(Point),
}

/// Per-axis DDA setup: step sign, initial `t_max`, `t_delta`, index-space
/// exit plane and signed linear-index stride. The FP expressions are the
/// historical scalar marcher's, verbatim (bit-identity contract).
#[inline]
fn axis_setup(
    d: f64,
    lo_a: f64,
    dx_a: f64,
    pos_a: f64,
    roi_lo: i32,
    roi_hi: i32,
    stride: isize,
) -> (i32, f64, f64, i32, isize) {
    let (s, tm, td) = if d > 0.0 {
        (1, (lo_a + dx_a - pos_a) / d, dx_a / d)
    } else if d < 0.0 {
        (-1, (lo_a - pos_a) / d, -dx_a / d)
    } else {
        (0, f64::INFINITY, f64::INFINITY)
    };
    let exit_plane = if s > 0 { roi_hi } else { roi_lo - 1 };
    (s, tm, td, exit_plane, (s as isize) * stride)
}

/// March one level segment from `pos`. The FP op sequence matches the
/// historical scalar marcher exactly (bit-identity contract).
///
/// This is the innermost loop of every tracer: the DDA state lives in
/// named locals (not arrays) so it stays in registers, the per-axis
/// advance is an explicit three-way branch, and the field loads skip
/// bounds checks — the index invariant (`cur` ∈ ROI ⊆ data region,
/// re-established before every load) is documented at each site.
fn march_segment(
    lvl: &PreparedLevel<'_>,
    pay: &[CellPay],
    pos: Point,
    dir: Vector,
    st: &mut RayCore,
    threshold: f64,
) -> Seg {
    let cur = lvl.cell_containing(pos);
    debug_assert!(
        lvl.roi_contains(cur),
        "march starts outside ROI: {cur:?} not in {:?}",
        lvl.roi
    );
    // Hoisted DDA setup, once per segment. Kept in small arrays indexed by
    // the stepped axis: the axis is data-dependent, so indexed accesses
    // beat a three-way branch (which would mispredict on most steps).
    let mut step = [0i32; 3];
    let mut t_max = [0f64; 3];
    let mut t_delta = [0f64; 3];
    let mut exit_plane = [0i32; 3];
    let mut idx_step = [0isize; 3];
    let mut cells = [cur[0], cur[1], cur[2]];
    for a in 0..3 {
        let (s, tm, td, ep, is) = axis_setup(
            dir[a],
            lvl.face_coord(a, cur[a]),
            lvl.dx[a],
            pos[a],
            lvl.roi_lo[a],
            lvl.roi_hi[a],
            lvl.stride[a],
        );
        step[a] = s;
        t_max[a] = tm;
        t_delta[a] = td;
        exit_plane[a] = ep;
        idx_step[a] = is;
    }

    // Integer step bound: each axis is stepped monotonically toward its
    // exit plane, so a segment terminates within the summed ROI extents no
    // matter what the FP state does (NaN comparisons included). Purely
    // defensive — it turns any pathology from a hang into an extinguished
    // ray without costing divisions per segment.
    let mut guard: i64 = lvl.step_bound;

    let nfields = pay.len();
    let mut traveled = 0.0f64;
    let mut idx = lvl.index_of(cur);
    loop {
        // Axis of the nearest cell face — the same comparison tree
        // (including tie behavior) as the scalar marcher.
        let axis = if t_max[0] < t_max[1] {
            if t_max[0] < t_max[2] {
                0
            } else {
                2
            }
        } else if t_max[1] < t_max[2] {
            1
        } else {
            2
        };
        let t_hit = t_max[axis];
        let dis = t_hit - traveled;
        traveled = t_hit;
        t_max[axis] += t_delta[axis];

        // The segment just traversed lies in the current cell.
        // SAFETY: `idx` indexes the cell in `cells`, which is inside the
        // ROI (checked on entry; every advance below either returns at the
        // ROI slab plane or stays inside), and ROI ⊆ data region.
        debug_assert!(idx < nfields);
        let p = unsafe { pay.get_unchecked(idx) };
        st.tau += p.abskg * dis;
        let exp_cur = (-st.tau).exp();
        st.sum_i += st.weight * p.sigma * (st.exp_prev - exp_cur);
        st.exp_prev = exp_cur;
        if st.weight * exp_cur < threshold {
            return Seg::Extinguished;
        }

        // Advance to the next cell: only the stepped axis can cross its
        // ROI slab plane, so exit is one integer compare.
        cells[axis] += step[axis];
        if cells[axis] == exit_plane[axis] {
            return seg_exited(lvl, pos, dir, traveled, axis, cells[axis], step[axis]);
        }
        idx = (idx as isize + idx_step[axis]) as usize;
        // SAFETY: the stepped axis did not reach its exit plane (checked
        // just above), so the cell is still inside the ROI ⊆ data region.
        debug_assert!(idx < nfields);
        let p = unsafe { pay.get_unchecked(idx) };
        if p.wall {
            // Wall emission: emissivity stored in abskg for wall cells.
            let emissivity = p.abskg;
            st.sum_i += st.weight * emissivity * p.sigma * st.exp_prev;
            let face = if step[axis] > 0 {
                lvl.face_coord(axis, cells[axis])
            } else {
                lvl.face_coord(axis, cells[axis] + 1)
            };
            let restart = face - (step[axis] as f64) * FACE_NUDGE * lvl.dx[axis];
            return Seg::HitWall {
                hit: pos + dir * traveled,
                axis,
                restart,
                emissivity,
            };
        }
        guard -= 1;
        if guard < 0 {
            return Seg::Extinguished;
        }
    }
}

/// Cold path of [`march_segment`]: build the face-snapped ROI exit point
/// for a ray that crossed the exit plane of `axis`.
#[cold]
fn seg_exited(
    lvl: &PreparedLevel<'_>,
    pos: Point,
    dir: Vector,
    traveled: f64,
    axis: usize,
    ci: i32,
    s: i32,
) -> Seg {
    let face = if s > 0 {
        lvl.face_coord(axis, ci)
    } else {
        lvl.face_coord(axis, ci + 1)
    };
    let snapped = face + (s as f64) * FACE_NUDGE * lvl.dx[axis];
    let mut exit = pos + dir * traveled;
    match axis {
        0 => exit.x = snapped,
        1 => exit.y = snapped,
        _ => exit.z = snapped,
    }
    Seg::Exited(exit)
}

/// A structure-of-arrays batch of rays marched as one unit.
///
/// Push rays with [`RayPacket::push`]; after [`PacketTracer::trace`] the
/// per-ray intensity integrals are in `sum_i` (ray order is preserved, so
/// folding `sum_i` left-to-right reproduces the historical sequential
/// accumulation bit-for-bit).
#[derive(Clone, Debug, Default)]
pub struct RayPacket {
    pub ox: Vec<f64>,
    pub oy: Vec<f64>,
    pub oz: Vec<f64>,
    pub dx: Vec<f64>,
    pub dy: Vec<f64>,
    pub dz: Vec<f64>,
    pub tau: Vec<f64>,
    pub exp_prev: Vec<f64>,
    pub weight: Vec<f64>,
    pub sum_i: Vec<f64>,
    /// Current level index into the trace stack (`u32::MAX` = not started).
    pub level: Vec<u32>,
    pub reflections: Vec<u32>,
    pub active: Vec<bool>,
}

impl RayPacket {
    pub fn with_capacity(n: usize) -> Self {
        let mut p = Self::default();
        p.reserve(n);
        p
    }

    pub fn reserve(&mut self, n: usize) {
        self.ox.reserve(n);
        self.oy.reserve(n);
        self.oz.reserve(n);
        self.dx.reserve(n);
        self.dy.reserve(n);
        self.dz.reserve(n);
        self.tau.reserve(n);
        self.exp_prev.reserve(n);
        self.weight.reserve(n);
        self.sum_i.reserve(n);
        self.level.reserve(n);
        self.reflections.reserve(n);
        self.active.reserve(n);
    }

    /// Append a fresh ray (unit `dir`).
    pub fn push(&mut self, origin: Point, dir: Vector) {
        self.ox.push(origin.x);
        self.oy.push(origin.y);
        self.oz.push(origin.z);
        self.dx.push(dir.x);
        self.dy.push(dir.y);
        self.dz.push(dir.z);
        self.tau.push(0.0);
        self.exp_prev.push(1.0);
        self.weight.push(1.0);
        self.sum_i.push(0.0);
        self.level.push(u32::MAX);
        self.reflections.push(0);
        self.active.push(true);
    }

    /// Reset to `n` fresh rays in one pass (bulk fills instead of
    /// per-ray pushes): origins/dirs are left to be set via
    /// [`RayPacket::set_ray`].
    pub fn reset(&mut self, n: usize) {
        self.ox.clear();
        self.ox.resize(n, 0.0);
        self.oy.clear();
        self.oy.resize(n, 0.0);
        self.oz.clear();
        self.oz.resize(n, 0.0);
        self.dx.clear();
        self.dx.resize(n, 0.0);
        self.dy.clear();
        self.dy.resize(n, 0.0);
        self.dz.clear();
        self.dz.resize(n, 0.0);
        self.tau.clear();
        self.tau.resize(n, 0.0);
        self.exp_prev.clear();
        self.exp_prev.resize(n, 1.0);
        self.weight.clear();
        self.weight.resize(n, 1.0);
        self.sum_i.clear();
        self.sum_i.resize(n, 0.0);
        self.level.clear();
        self.level.resize(n, u32::MAX);
        self.reflections.clear();
        self.reflections.resize(n, 0);
        self.active.clear();
        self.active.resize(n, true);
    }

    /// Set origin and (unit) direction of ray `i` after [`RayPacket::reset`].
    #[inline]
    pub fn set_ray(&mut self, i: usize, origin: Point, dir: Vector) {
        self.ox[i] = origin.x;
        self.oy[i] = origin.y;
        self.oz[i] = origin.z;
        self.dx[i] = dir.x;
        self.dy[i] = dir.y;
        self.dz[i] = dir.z;
    }

    pub fn len(&self) -> usize {
        self.sum_i.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sum_i.is_empty()
    }

    /// Reset to an empty packet, keeping allocations.
    pub fn clear(&mut self) {
        self.ox.clear();
        self.oy.clear();
        self.oz.clear();
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        self.tau.clear();
        self.exp_prev.clear();
        self.weight.clear();
        self.sum_i.clear();
        self.level.clear();
        self.reflections.clear();
        self.active.clear();
    }

    #[inline]
    pub fn origin(&self, i: usize) -> Point {
        Point::new(self.ox[i], self.oy[i], self.oz[i])
    }

    #[inline]
    pub fn dir(&self, i: usize) -> Vector {
        Vector::new(self.dx[i], self.dy[i], self.dz[i])
    }

    #[inline]
    pub(crate) fn set_dir(&mut self, i: usize, d: Vector) {
        self.dx[i] = d.x;
        self.dy[i] = d.y;
        self.dz[i] = d.z;
    }

    #[inline]
    pub(crate) fn set_origin(&mut self, i: usize, p: Point) {
        self.ox[i] = p.x;
        self.oy[i] = p.y;
        self.oz[i] = p.z;
    }
}

/// What to do with a ray after one level segment.
enum Resolution {
    Done,
    Continue { pos: Point, dir: Option<Vector>, level: usize },
}

/// The packet tracer: a trace stack prepared once, marched many times.
///
/// Read-only after construction (`Sync`), so one tracer is shared by every
/// cell kernel of a `uintah-exec` dispatch.
pub struct PacketTracer<'a> {
    levels: &'a [TraceLevel<'a>],
    prepared: Vec<PreparedLevel<'a>>,
    /// Interleaved per-cell march payload per level (built once per
    /// tracer, read on every step).
    pays: Vec<Vec<CellPay>>,
    opts: TraceOptions,
}

impl<'a> PacketTracer<'a> {
    /// Prepare a trace stack (coarsest first, finest last) for marching.
    pub fn new(levels: &'a [TraceLevel<'a>], opts: TraceOptions) -> Self {
        assert!(!levels.is_empty(), "empty level stack");
        let prepared: Vec<PreparedLevel<'a>> = levels.iter().map(PreparedLevel::new).collect();
        let pays = prepared
            .iter()
            .map(|lvl| {
                lvl.abskg
                    .iter()
                    .zip(lvl.sigma)
                    .zip(lvl.ctype)
                    .map(|((&abskg, &sigma), &ct)| CellPay {
                        abskg,
                        sigma,
                        wall: ct != FLOW_CELL,
                    })
                    .collect()
            })
            .collect();
        Self {
            levels,
            prepared,
            pays,
            opts,
        }
    }

    pub fn levels(&self) -> &'a [TraceLevel<'a>] {
        self.levels
    }

    pub fn options(&self) -> TraceOptions {
        self.opts
    }

    /// Fine-level (top-of-stack) properties.
    pub fn fine_props(&self) -> &'a LevelProps {
        self.levels.last().unwrap().props
    }

    /// March every active ray of the packet to completion. Rays advance one
    /// level segment per round; the active set is compacted between rounds
    /// as rays extinguish, terminate on walls, or leave the domain.
    pub fn trace(&self, packet: &mut RayPacket) {
        let finest = (self.prepared.len() - 1) as u32;
        let mut remaining = 0usize;
        for i in 0..packet.len() {
            if packet.active[i] {
                remaining += 1;
                if packet.level[i] == u32::MAX {
                    packet.level[i] = finest;
                }
            }
        }
        // Rounds over the active mask (allocation-free): finished rays
        // drop out of the mask and are skipped in later rounds.
        while remaining > 0 {
            for i in 0..packet.len() {
                if packet.active[i] && !self.advance_ray(packet, i) {
                    remaining -= 1;
                }
            }
        }
    }

    /// Trace a single ray (allocation-free convenience used by
    /// [`crate::trace::trace_ray_with_options`]).
    pub fn trace_one(&self, origin: Point, dir: Vector) -> f64 {
        debug_assert!((dir.length() - 1.0).abs() < 1e-9, "direction must be unit");
        let mut st = RayCore {
            tau: 0.0,
            exp_prev: 1.0,
            sum_i: 0.0,
            weight: 1.0,
        };
        let mut li = self.prepared.len() - 1;
        let mut pos = origin;
        let mut dir = dir;
        let mut reflections = 0u32;
        loop {
            let seg = march_segment(
                &self.prepared[li],
                &self.pays[li],
                pos,
                dir,
                &mut st,
                self.opts.threshold,
            );
            match self.resolve(seg, &mut st, dir, li, &mut reflections) {
                Resolution::Done => return st.sum_i,
                Resolution::Continue { pos: p, dir: d, level } => {
                    pos = p;
                    if let Some(d) = d {
                        dir = d;
                    }
                    li = level;
                }
            }
        }
    }

    /// Advance one packet ray by one level segment; returns whether the ray
    /// is still active.
    fn advance_ray(&self, p: &mut RayPacket, i: usize) -> bool {
        let li = p.level[i] as usize;
        let mut st = RayCore {
            tau: p.tau[i],
            exp_prev: p.exp_prev[i],
            sum_i: p.sum_i[i],
            weight: p.weight[i],
        };
        let seg = march_segment(
            &self.prepared[li],
            &self.pays[li],
            p.origin(i),
            p.dir(i),
            &mut st,
            self.opts.threshold,
        );
        let mut reflections = p.reflections[i];
        let res = self.resolve(seg, &mut st, p.dir(i), li, &mut reflections);
        p.tau[i] = st.tau;
        p.exp_prev[i] = st.exp_prev;
        p.sum_i[i] = st.sum_i;
        p.weight[i] = st.weight;
        p.reflections[i] = reflections;
        match res {
            Resolution::Done => {
                p.active[i] = false;
                false
            }
            Resolution::Continue { pos, dir, level } => {
                p.set_origin(i, pos);
                if let Some(d) = dir {
                    p.set_dir(i, d);
                }
                p.level[i] = level as u32;
                true
            }
        }
    }

    /// Shared wall/level-transition logic (the non-marching half of the
    /// historical `trace_ray_with_options` loop).
    fn resolve(
        &self,
        seg: Seg,
        st: &mut RayCore,
        dir: Vector,
        li: usize,
        reflections: &mut u32,
    ) -> Resolution {
        match seg {
            Seg::Extinguished => Resolution::Done,
            Seg::HitWall {
                hit,
                axis,
                restart,
                emissivity,
            } => {
                let reflectivity = 1.0 - emissivity;
                if *reflections >= self.opts.max_reflections
                    || reflectivity <= 0.0
                    || st.weight * st.exp_prev * reflectivity < self.opts.threshold
                {
                    return Resolution::Done;
                }
                *reflections += 1;
                st.weight *= reflectivity;
                // Specular bounce off the axis-aligned face; restart on the
                // face-snapped coordinate just inside the flow cell.
                let mut new_dir = dir;
                let mut pos = hit;
                match axis {
                    0 => {
                        new_dir.x = -new_dir.x;
                        pos.x = restart;
                    }
                    1 => {
                        new_dir.y = -new_dir.y;
                        pos.y = restart;
                    }
                    _ => {
                        new_dir.z = -new_dir.z;
                        pos.z = restart;
                    }
                }
                Resolution::Continue {
                    pos,
                    dir: Some(new_dir),
                    level: li,
                }
            }
            Seg::Exited(exit) => {
                let mut li = li;
                loop {
                    if li == 0 {
                        return Resolution::Done; // cold black enclosure
                    }
                    li -= 1;
                    let lvl = &self.prepared[li];
                    let cell = lvl.cell_containing(exit);
                    if lvl.roi_contains(cell) {
                        let idx = lvl.index_of(cell);
                        if lvl.ctype[idx] != FLOW_CELL {
                            st.sum_i +=
                                st.weight * lvl.abskg[idx] * lvl.sigma[idx] * st.exp_prev;
                            return Resolution::Done;
                        }
                        break;
                    }
                }
                Resolution::Continue {
                    pos: exit,
                    dir: None,
                    level: li,
                }
            }
        }
    }
}

/// How one collision-estimator flight leg ended (see
/// [`CollisionTracer::fly`]).
pub enum FlightEnd {
    /// Left the level region (cold black enclosure).
    Escaped,
    /// Entered a wall cell: its emissivity and `σT⁴/π`.
    Wall { emissivity: f64, s: f64 },
    /// The sampled optical depth was consumed inside a cell: the collision
    /// point, the extinction coefficient `β` there and the cell's `σT⁴/π`.
    Collision { pos: Point, beta: f64, s: f64 },
}

/// The cell-marching half of the scattering collision estimator
/// ([`crate::scatter`]), sharing the prepared-level machinery of the packet
/// engine. The physics (albedo weighting, Russian roulette, phase-function
/// sampling) stays in `scatter`; the geometry lives here, once.
///
/// The FP op sequence replicates the historical scalar collision march
/// exactly (the scattering bit-identity pin in `tests/ray_engine.rs`
/// depends on it), including its absolute per-level advance epsilon.
pub struct CollisionTracer<'a> {
    lvl: PreparedLevel<'a>,
    /// Historical face-advance nudge: `1e-10 · min(dx)`.
    eps: f64,
}

impl<'a> CollisionTracer<'a> {
    pub fn new(props: &'a LevelProps) -> Self {
        let level = TraceLevel {
            props,
            roi: props.region,
        };
        Self {
            lvl: PreparedLevel::new(&level),
            eps: 1e-10 * props.dx.min_component(),
        }
    }

    /// March from `pos` along `dir` until the sampled optical depth
    /// `tau_target` is consumed (a collision), a wall is entered, or the
    /// ray escapes the region. `sigma_s` is the (uniform) scattering
    /// coefficient entering the extinction `β = κ + σ_s`.
    pub fn fly(&self, mut pos: Point, dir: Vector, mut tau_target: f64, sigma_s: f64) -> FlightEnd {
        let lvl = &self.lvl;
        let mut cur = lvl.cell_containing(pos);
        if !lvl.roi_contains(cur) {
            return FlightEnd::Escaped;
        }
        loop {
            let idx = lvl.index_of(cur);
            if lvl.ctype[idx] != FLOW_CELL {
                return FlightEnd::Wall {
                    emissivity: lvl.abskg[idx],
                    s: lvl.sigma[idx],
                };
            }
            let beta = lvl.abskg[idx] + sigma_s;
            // Distance to the next face along dir (the historical fold).
            let mut t_exit = f64::INFINITY;
            for a in 0..3 {
                let d = dir[a];
                let lo_a = lvl.face_coord(a, cur[a]);
                if d > 0.0 {
                    t_exit = t_exit.min((lo_a + lvl.dx[a] - pos[a]) / d);
                } else if d < 0.0 {
                    t_exit = t_exit.min((lo_a - pos[a]) / d);
                }
            }
            let t_exit = t_exit.max(0.0);
            if beta * t_exit >= tau_target {
                let t_coll = tau_target / beta;
                return FlightEnd::Collision {
                    pos: pos + dir * t_coll,
                    beta,
                    s: lvl.sigma[idx],
                };
            }
            tau_target -= beta * t_exit;
            pos = pos + dir * (t_exit + self.eps);
            cur = lvl.cell_containing(pos);
            if !lvl.roi_contains(cur) {
                return FlightEnd::Escaped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Vector;

    #[test]
    fn slabs_hit_and_miss() {
        let p0 = Point::new(0.0, 0.0, 0.0);
        let p1 = Point::new(1.0, 1.0, 1.0);
        let d = Vector::new(1.0, 0.0, 0.0);
        let inv = Vector::new(1.0 / d.x, 1.0 / d.y, 1.0 / d.z);
        // From inside: entry behind, exit ahead.
        let (near, far) = slabs(p0, p1, Point::new(0.25, 0.5, 0.5), inv);
        assert!(near <= 0.0 && (far - 0.75).abs() < 1e-12, "{near} {far}");
        // Axis-aligned miss: y outside the slab, d.y == 0.
        let (near, far) = slabs(p0, p1, Point::new(0.25, 1.5, 0.5), inv);
        assert!(near > far, "must miss: {near} {far}");
        // Oblique hit from outside.
        let d = Vector::new(1.0, 1.0, 1.0).normalized();
        let inv = Vector::new(1.0 / d.x, 1.0 / d.y, 1.0 / d.z);
        let (near, far) = slabs(p0, p1, Point::new(-1.0, -1.0, -1.0), inv);
        assert!(near < far && near > 0.0);
    }

    #[test]
    fn slabs_origin_on_degenerate_plane_counts_as_inside() {
        // Origin exactly on the y = 0 plane with d.y == 0: 0·∞ would be
        // NaN; the axis must be treated as a pass-through, not a miss.
        let p0 = Point::new(0.0, 0.0, 0.0);
        let p1 = Point::new(1.0, 1.0, 1.0);
        let d = Vector::new(1.0, 0.0, 0.0);
        let inv = Vector::new(1.0 / d.x, 1.0 / d.y, 1.0 / d.z);
        let (near, far) = slabs(p0, p1, Point::new(0.5, 0.0, 0.5), inv);
        assert!(near <= far, "{near} {far}");
        assert!((far - 0.5).abs() < 1e-12);
    }

    #[test]
    fn packet_push_and_reset_initialize_ray_state() {
        let mut p = RayPacket::with_capacity(2);
        p.push(Point::new(0.0, 0.0, 0.0), Vector::new(1.0, 0.0, 0.0));
        assert_eq!(p.len(), 1);
        assert!(p.active[0]);
        assert_eq!(p.level[0], u32::MAX);
        p.clear();
        assert!(p.is_empty());
        // Bulk reset matches push-initialized state field for field.
        p.reset(3);
        p.set_ray(1, Point::new(0.5, 0.25, 0.125), Vector::new(0.0, 1.0, 0.0));
        assert_eq!(p.len(), 3);
        assert_eq!(p.oy[1], 0.25);
        assert_eq!(p.dy[1], 1.0);
        assert_eq!(p.exp_prev[2], 1.0);
        assert_eq!(p.weight[0], 1.0);
        assert_eq!(p.sum_i[1], 0.0);
        assert_eq!(p.level[2], u32::MAX);
        assert!(p.active.iter().all(|&a| a));
    }
}
