//! Reverse Monte Carlo Ray Tracing (RMCRT) with adaptive mesh refinement —
//! the primary contribution of Humphrey et al. (IPDPS 2016).
//!
//! RMCRT computes the divergence of the radiative heat flux, `∇·q`, for
//! every cell of the finest mesh by tracing rays *backwards* from each cell
//! (the detector) and integrating the incoming intensity absorbed at the
//! origin (Helmholtz reciprocity). Rays are mutually exclusive, which is
//! what makes the method embarrassingly parallel per cell — and what made it
//! the paper's GPU target.
//!
//! The multi-level algorithm marches each ray on the fine mesh while inside
//! the ray's *region of interest* (its patch plus halo) and on successively
//! coarser whole-domain replicas farther away, cutting the all-to-all
//! communication volume from `O(N²)` of the single fine mesh to the coarse
//! replicas' footprint.
//!
//! Modules:
//!
//! * [`labels`] — variable labels and physical constants,
//! * [`rng`] — counter-based deterministic RNG (per cell/ray/timestep), so
//!   results are bit-identical for any rank/thread decomposition,
//! * [`props`] — per-level radiative properties (`abskg`, `σT⁴/π`,
//!   `cellType`) and the [`props::LevelProps`] trace input,
//! * [`trace`] — the Amanatides–Woo DDA ray marcher: single-level and
//!   multi-level (`updateSumI` in Uintah's `Ray.cc`),
//! * [`solver`] — `∇·q` solvers over regions and whole levels,
//! * [`benchmark`] — the Burns & Christon benchmark problem (the paper's
//!   scaling workload),
//! * [`dom`] — the discrete-ordinates (S_N) baseline solver RMCRT is
//!   compared against,
//! * [`tasks`] — Uintah-runtime task declarations wiring RMCRT into the
//!   distributed scheduler (CPU and simulated-GPU variants),
//! * [`radiometer`] — a virtual radiometer measuring incident flux on a
//!   surface patch.

pub mod bc;
pub mod benchmark;
pub mod dom;
pub mod flux;
pub mod labels;
pub mod packet;
pub mod props;
pub mod radiometer;
pub mod rng;
pub mod sampling;
pub mod scatter;
pub mod solver;
pub mod spectral;
pub mod tasks;
pub mod trace;

pub use bc::{EnclosureBc, WallProps};
pub use benchmark::BurnsChriston;
pub use packet::{slabs, PacketTracer, RayPacket};
pub use props::{LevelProps, FLOW_CELL, WALL_CELL};
pub use rng::CellRng;
pub use sampling::RaySampling;
pub use scatter::{PhaseFunction, ScatteringMedium};
pub use solver::{
    div_q_for_cell, solve_region, solve_region_exec, solve_region_with_stats, RayCountMode,
    RmcrtParams, SolveStats,
};
pub use trace::{trace_ray, trace_ray_with_options, TraceLevel, TraceOptions};
