//! Ray-direction sampling strategies.
//!
//! Uintah's `Ray` component offers stratified ("ray direction hyper-cube" /
//! Latin-hypercube) sampling in addition to independent sampling: the
//! (cosθ, φ) unit square is divided into `N` strata per axis with one
//! sample in each row and column, which removes directional clumping and
//! lowers Monte Carlo variance at equal ray count.

use crate::rng::CellRng;
use uintah_grid::Vector;

/// How the `nrays` directions of one cell are drawn.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RaySampling {
    /// Independent uniform directions.
    #[default]
    Independent,
    /// Latin-hypercube stratification over (cosθ, φ).
    LatinHypercube,
}

/// A per-cell direction sampler: hands out `nrays` directions.
pub struct DirectionSampler {
    mode: RaySampling,
    nrays: u32,
    /// Shuffled stratum assignment for φ (cosθ uses the ray index itself).
    phi_perm: Vec<u32>,
}

impl DirectionSampler {
    pub fn new(mode: RaySampling, nrays: u32, rng: &mut CellRng) -> Self {
        let phi_perm = match mode {
            RaySampling::Independent => Vec::new(),
            RaySampling::LatinHypercube => {
                let mut perm: Vec<u32> = (0..nrays).collect();
                // Fisher–Yates with the cell RNG: deterministic per cell.
                for i in (1..perm.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                perm
            }
        };
        Self {
            mode,
            nrays,
            phi_perm,
        }
    }

    /// Direction for ray `r` (`0 <= r < nrays`).
    pub fn direction(&self, r: u32, rng: &mut CellRng) -> Vector {
        match self.mode {
            RaySampling::Independent => rng.direction(),
            RaySampling::LatinHypercube => {
                debug_assert!(r < self.nrays);
                let n = self.nrays as f64;
                // Stratum r on the cosθ axis, shuffled stratum on φ.
                let cos_theta = 2.0 * ((r as f64 + rng.next_f64()) / n) - 1.0;
                let phi_stratum = self.phi_perm[r as usize] as f64;
                let phi = 2.0 * std::f64::consts::PI * ((phi_stratum + rng.next_f64()) / n);
                let sin_theta = (1.0 - cos_theta * cos_theta).max(0.0).sqrt();
                Vector::new(sin_theta * phi.cos(), sin_theta * phi.sin(), cos_theta)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::IntVector;

    #[test]
    fn lhc_covers_every_stratum_once() {
        let n = 16u32;
        let mut rng = CellRng::new(1, IntVector::ZERO, 0, 0);
        let s = DirectionSampler::new(RaySampling::LatinHypercube, n, &mut rng);
        let mut cos_strata = vec![false; n as usize];
        let mut phi_strata = vec![false; n as usize];
        for r in 0..n {
            let d = s.direction(r, &mut rng);
            assert!((d.length() - 1.0).abs() < 1e-12);
            let ct = ((d.z + 1.0) / 2.0 * n as f64).floor() as usize;
            let phi = d.y.atan2(d.x).rem_euclid(2.0 * std::f64::consts::PI);
            let ps = (phi / (2.0 * std::f64::consts::PI) * n as f64).floor() as usize;
            cos_strata[ct.min(n as usize - 1)] = true;
            phi_strata[ps.min(n as usize - 1)] = true;
        }
        assert!(cos_strata.iter().all(|&x| x), "every cosθ stratum hit once");
        assert!(phi_strata.iter().all(|&x| x), "every φ stratum hit once");
    }

    #[test]
    fn lhc_reduces_variance_of_directional_integral() {
        // Estimate ∫ f dΩ with f = max(0, d·ẑ)² (smooth): the stratified
        // estimator's variance across seeds should be well below the
        // independent one's.
        let n = 32u32;
        let runs = 60;
        let estimate = |mode: RaySampling, seed: u64| -> f64 {
            let mut rng = CellRng::new(seed, IntVector::ZERO, 0, 0);
            let s = DirectionSampler::new(mode, n, &mut rng);
            let mut sum = 0.0;
            for r in 0..n {
                let d = s.direction(r, &mut rng);
                sum += d.z.max(0.0).powi(2);
            }
            sum / n as f64
        };
        let variance = |mode: RaySampling| -> f64 {
            let vals: Vec<f64> = (0..runs).map(|k| estimate(mode, 1000 + k)).collect();
            let mean = vals.iter().sum::<f64>() / runs as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / runs as f64
        };
        let v_ind = variance(RaySampling::Independent);
        let v_lhc = variance(RaySampling::LatinHypercube);
        assert!(
            v_lhc < v_ind * 0.5,
            "LHC variance {v_lhc} should be well under independent {v_ind}"
        );
    }

    #[test]
    fn independent_mode_unchanged_from_rng() {
        let mut r1 = CellRng::new(4, IntVector::ZERO, 0, 0);
        let mut r2 = CellRng::new(4, IntVector::ZERO, 0, 0);
        let s = DirectionSampler::new(RaySampling::Independent, 8, &mut r1);
        let a = s.direction(0, &mut r1);
        // Sampler construction consumes nothing in Independent mode.
        let b = r2.direction();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let dirs = |seed: u64| -> Vec<Vector> {
            let mut rng = CellRng::new(seed, IntVector::new(1, 2, 3), 0, 0);
            let s = DirectionSampler::new(RaySampling::LatinHypercube, 8, &mut rng);
            (0..8).map(|r| s.direction(r, &mut rng)).collect()
        };
        assert_eq!(dirs(9), dirs(9));
        assert_ne!(dirs(9), dirs(10));
    }
}
