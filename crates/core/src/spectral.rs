//! Multi-group ("banded") spectral RMCRT — the paper's stated future work.
//!
//! §III-A: "Though a method for modeling spectral effects has been
//! considered, currently we are using a mean absorption coefficient
//! approximation … Adding spectral frequencies to RMCRT would entail
//! adding a loop over wave-lengths, η, and is part of future work."
//!
//! This module implements that loop as a band model (the practical form of
//! full-spectrum k-distributions like Sun & Smith's FSK, ref. [2]): the
//! spectrum is split into `N` bands, each with its own absorption
//! coefficient field and a weight `a_k` (the fraction of the Planck
//! function in the band, Σ a_k = 1). Each band is traced independently —
//! the loop over η — and
//!
//! ```text
//! ∇·q = Σ_k a_k · 4π · κ_k · (σT⁴/π − mean I_k / a_k-normalized)
//!     = Σ_k 4π · κ_k · (a_k σT⁴/π − mean Î_k)
//! ```
//!
//! where band emission uses `a_k·σT⁴/π` as its source.

use crate::packet::PacketTracer;
use crate::props::LevelProps;
use crate::solver::RmcrtParams;
use crate::trace::TraceLevel;
use uintah_grid::{CcVariable, IntVector, Region};

/// One spectral band: a weight and its absorption-coefficient field.
#[derive(Clone, Debug)]
pub struct Band {
    /// Planck fraction of the band, `a_k`; the set must sum to 1.
    pub weight: f64,
    /// Band absorption coefficient κ_k over the same region as the grey
    /// properties.
    pub abskg: CcVariable<f64>,
}

/// A banded spectral model over a single level.
#[derive(Clone, Debug)]
pub struct SpectralProps {
    /// Grey base (geometry, σT⁴/π, cellType come from here).
    pub base: LevelProps,
    pub bands: Vec<Band>,
}

impl SpectralProps {
    /// Grey limit: one band of weight 1 with the base κ.
    pub fn grey(base: LevelProps) -> Self {
        let abskg = base.abskg.clone();
        Self {
            base,
            bands: vec![Band {
                weight: 1.0,
                abskg,
            }],
        }
    }

    /// Consistency checks: weights sum to 1, every band covers the region.
    pub fn validate(&self) {
        self.base.validate();
        let total: f64 = self.bands.iter().map(|b| b.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "band weights must sum to 1, got {total}"
        );
        for (k, b) in self.bands.iter().enumerate() {
            assert_eq!(
                b.abskg.region(),
                self.base.region,
                "band {k} κ region mismatch"
            );
            assert!(b.weight >= 0.0, "band {k} has negative weight");
        }
    }

    /// The Planck-weighted grey (mean) absorption coefficient field the
    /// paper's current model would use: `κ̄ = Σ a_k κ_k`.
    pub fn planck_mean_abskg(&self) -> CcVariable<f64> {
        let mut out = CcVariable::<f64>::new(self.base.region);
        for b in &self.bands {
            for (o, k) in out.as_mut_slice().iter_mut().zip(b.abskg.as_slice()) {
                *o += b.weight * k;
            }
        }
        out
    }
}

/// Band-local properties: κ_k and the band's share of emission, plus the
/// band-decorrelated parameter block. Shared by the one-cell and the
/// region-wide solves so both produce identical bits.
fn band_props(
    spectral: &SpectralProps,
    params: &RmcrtParams,
) -> Vec<(RmcrtParams, LevelProps)> {
    spectral
        .bands
        .iter()
        .enumerate()
        .filter(|(_, band)| band.weight != 0.0)
        .map(|(k, band)| {
            let mut props = spectral.base.clone();
            props.abskg = band.abskg.clone();
            for s in props.sigma_t4_over_pi.as_mut_slice() {
                *s *= band.weight;
            }
            // Decorrelate bands via the timestep stream.
            let band_params = RmcrtParams {
                timestep: params.timestep.wrapping_mul(131).wrapping_add(k as u32),
                ..*params
            };
            (band_params, props)
        })
        .collect()
}

/// ∇·q for one cell with the banded model: trace each band independently
/// (the "loop over η") and sum the band divergences.
pub fn div_q_spectral(spectral: &SpectralProps, cell: IntVector, params: &RmcrtParams) -> f64 {
    let mut total = 0.0;
    for (band_params, props) in &band_props(spectral, params) {
        if props.abskg[cell] == 0.0 {
            continue;
        }
        let stack = [TraceLevel {
            props,
            roi: props.region,
        }];
        total += crate::solver::div_q_for_cell(&stack, cell, band_params);
    }
    total
}

/// Banded solve over a region. Equivalent to [`solve_region_spectral_exec`]
/// on the serial space.
pub fn solve_region_spectral(
    spectral: &SpectralProps,
    region: Region,
    params: &RmcrtParams,
) -> CcVariable<f64> {
    solve_region_spectral_exec(spectral, region, params, &uintah_exec::ExecSpace::Serial)
}

/// Banded solve over a region, dispatched on an execution space.
/// Bit-identical across spaces (the band loop is inside the cell kernel).
///
/// The per-band property fields and packet tracers are prepared once here,
/// outside the cell loop — the historical implementation cloned the whole
/// property set per band *per cell*.
pub fn solve_region_spectral_exec(
    spectral: &SpectralProps,
    region: Region,
    params: &RmcrtParams,
    space: &uintah_exec::ExecSpace,
) -> CcVariable<f64> {
    spectral.validate();
    let bands = band_props(spectral, params);
    let stacks: Vec<[TraceLevel<'_>; 1]> = bands
        .iter()
        .map(|(_, props)| {
            [TraceLevel {
                props,
                roi: props.region,
            }]
        })
        .collect();
    let tracers: Vec<(&RmcrtParams, PacketTracer<'_>)> = bands
        .iter()
        .zip(&stacks)
        .map(|((band_params, _), stack)| {
            (band_params, PacketTracer::new(stack, band_params.trace_options()))
        })
        .collect();
    uintah_exec::parallel_fill(space, region, |c| {
        let mut total = 0.0;
        for (band_params, tracer) in &tracers {
            if tracer.fine_props().abskg[c] == 0.0 {
                continue;
            }
            total += crate::solver::div_q_for_cell_with(tracer, c, band_params).0;
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Vector;

    fn base(n: i32, kappa: f64, s: f64) -> LevelProps {
        LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, s)
    }

    #[test]
    fn grey_limit_matches_grey_solver() {
        let n = 8;
        let props = base(n, 1.5, 0.8);
        let spectral = SpectralProps::grey(props.clone());
        spectral.validate();
        let params = RmcrtParams {
            nrays: 32,
            ..Default::default()
        };
        let c = IntVector::splat(n / 2);
        let banded = div_q_spectral(&spectral, c, &params);
        let grey_params = RmcrtParams {
            timestep: params.timestep.wrapping_mul(131),
            ..params
        };
        let grey = crate::solver::div_q_for_cell(
            &[TraceLevel {
                props: &props,
                roi: props.region,
            }],
            c,
            &grey_params,
        );
        assert_eq!(banded, grey, "one band of weight 1 must be the grey solve");
    }

    #[test]
    fn identical_bands_reproduce_grey_answer() {
        // Two bands with the same κ and weights 0.5/0.5: emission splits,
        // absorption identical per band, so the sum equals the grey
        // answer in expectation (different noise per band).
        let n = 8;
        let props = base(n, 2.0, 1.0);
        let spectral = SpectralProps {
            base: props.clone(),
            bands: vec![
                Band {
                    weight: 0.5,
                    abskg: props.abskg.clone(),
                },
                Band {
                    weight: 0.5,
                    abskg: props.abskg.clone(),
                },
            ],
        };
        let params = RmcrtParams {
            nrays: 2048,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(n / 2);
        let banded = div_q_spectral(&spectral, c, &params);
        let grey = crate::solver::div_q_for_cell(
            &[TraceLevel {
                props: &props,
                roi: props.region,
            }],
            c,
            &params,
        );
        let rel = (banded - grey).abs() / grey.abs();
        assert!(rel < 0.05, "banded {banded} vs grey {grey} (rel {rel})");
    }

    #[test]
    fn spectral_differs_from_planck_mean_in_nongrey_medium() {
        // A strongly non-grey medium: one transparent band, one opaque.
        // The grey (Planck-mean) approximation *overestimates* net
        // emission loss at the centre because it lets all energy travel at
        // the mean opacity instead of trapping the opaque band — the
        // error the spectral loop exists to remove.
        let n = 12;
        let props = base(n, 0.0, 1.0);
        let spectral = SpectralProps {
            base: props.clone(),
            bands: vec![
                Band {
                    weight: 0.5,
                    abskg: CcVariable::filled(props.region, 0.05),
                },
                Band {
                    weight: 0.5,
                    abskg: CcVariable::filled(props.region, 20.0),
                },
            ],
        };
        spectral.validate();
        let params = RmcrtParams {
            nrays: 1024,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(n / 2);
        let banded = div_q_spectral(&spectral, c, &params);
        // Grey comparison with the Planck-mean κ.
        let mut grey_props = props.clone();
        grey_props.abskg = spectral.planck_mean_abskg();
        assert!((grey_props.abskg[c] - 10.025).abs() < 1e-9);
        let grey = crate::solver::div_q_for_cell(
            &[TraceLevel {
                props: &grey_props,
                roi: grey_props.region,
            }],
            c,
            &params,
        );
        assert!(
            grey > 1.2 * banded,
            "Planck-mean must overestimate the loss: grey {grey} vs banded {banded}"
        );
        assert!(banded > 0.0);
    }

    #[test]
    #[should_panic(expected = "band weights must sum to 1")]
    fn weight_sum_checked() {
        let props = base(4, 1.0, 1.0);
        let spectral = SpectralProps {
            base: props.clone(),
            bands: vec![Band {
                weight: 0.7,
                abskg: props.abskg.clone(),
            }],
        };
        spectral.validate();
    }

    #[test]
    fn solve_region_spectral_is_finite_everywhere() {
        let n = 6;
        let props = base(n, 1.0, 1.0);
        let spectral = SpectralProps {
            base: props.clone(),
            bands: vec![
                Band {
                    weight: 0.3,
                    abskg: CcVariable::filled(props.region, 0.2),
                },
                Band {
                    weight: 0.7,
                    abskg: CcVariable::filled(props.region, 3.0),
                },
            ],
        };
        let out = solve_region_spectral(
            &spectral,
            Region::cube(n),
            &RmcrtParams {
                nrays: 8,
                ..Default::default()
            },
        );
        for (_, &v) in out.iter() {
            assert!(v.is_finite());
        }
    }
}
