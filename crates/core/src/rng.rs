//! Counter-based deterministic random numbers.
//!
//! RMCRT results must not depend on how cells are distributed over ranks,
//! threads or GPUs (the paper's strong-scaling sweeps change the
//! decomposition at every point). We therefore seed a small, fast generator
//! from `(global seed, cell, ray index, timestep)`: every ray's randomness
//! is a pure function of *what* is being computed, never of *where*.
//!
//! The generator is SplitMix64 (Steele et al.), which passes BigCrush for
//! the stream lengths used per ray (a handful of draws) and costs a few
//! arithmetic ops per draw.

use uintah_grid::{IntVector, Point, Vector};

/// Per-ray deterministic RNG.
#[derive(Clone, Debug)]
pub struct CellRng {
    state: u64,
}

impl CellRng {
    /// Seed from the identity of the ray being traced.
    pub fn new(seed: u64, cell: IntVector, ray: u32, timestep: u32) -> Self {
        // Mix the coordinates with distinct odd constants, then scramble.
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
        for v in [
            cell.x as u64,
            cell.y as u64,
            cell.z as u64,
            ray as u64,
            timestep as u64,
        ] {
            s = (s ^ v.wrapping_mul(0xBF58_476D_1CE4_E5B9)).rotate_left(23);
            s = s.wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        let mut rng = Self { state: s };
        // One warm-up draw decorrelates neighbouring cells.
        rng.next_u64();
        rng
    }

    /// Raw 64 random bits (SplitMix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniformly random unit vector (direction over the full sphere,
    /// the emission distribution of an isotropic medium).
    #[inline]
    pub fn direction(&mut self) -> Vector {
        let cos_theta = 2.0 * self.next_f64() - 1.0;
        let phi = 2.0 * std::f64::consts::PI * self.next_f64();
        let sin_theta = (1.0 - cos_theta * cos_theta).max(0.0).sqrt();
        Vector::new(sin_theta * phi.cos(), sin_theta * phi.sin(), cos_theta)
    }

    /// Uniformly random point inside the cell whose low corner is `lo` and
    /// spacing is `dx`.
    #[inline]
    pub fn point_in_cell(&mut self, lo: Point, dx: Vector) -> Point {
        lo + Vector::new(
            self.next_f64() * dx.x,
            self.next_f64() * dx.y,
            self.next_f64() * dx.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_identity() {
        let mut a = CellRng::new(7, IntVector::new(1, 2, 3), 4, 5);
        let mut b = CellRng::new(7, IntVector::new(1, 2, 3), 4, 5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_identities_decorrelate() {
        let a = CellRng::new(7, IntVector::new(1, 2, 3), 4, 5).next_u64();
        assert_ne!(a, CellRng::new(7, IntVector::new(1, 2, 4), 4, 5).next_u64());
        assert_ne!(a, CellRng::new(7, IntVector::new(1, 2, 3), 5, 5).next_u64());
        assert_ne!(a, CellRng::new(7, IntVector::new(1, 2, 3), 4, 6).next_u64());
        assert_ne!(a, CellRng::new(8, IntVector::new(1, 2, 3), 4, 5).next_u64());
    }

    #[test]
    fn uniform_mean_and_range() {
        let mut rng = CellRng::new(1, IntVector::ZERO, 0, 0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn directions_are_unit_and_isotropic() {
        let mut rng = CellRng::new(2, IntVector::ZERO, 0, 0);
        let n = 20_000;
        let mut mean = Vector::ZERO;
        for _ in 0..n {
            let d = rng.direction();
            assert!((d.length() - 1.0).abs() < 1e-12);
            mean += d;
        }
        mean = mean / n as f64;
        assert!(mean.length() < 0.02, "directional bias {mean:?}");
    }

    #[test]
    fn points_stay_inside_cell() {
        let mut rng = CellRng::new(3, IntVector::ZERO, 0, 0);
        let lo = Point::new(1.0, 2.0, 3.0);
        let dx = Vector::new(0.5, 0.25, 0.125);
        for _ in 0..1000 {
            let p = rng.point_in_cell(lo, dx);
            assert!(p.x >= lo.x && p.x < lo.x + dx.x);
            assert!(p.y >= lo.y && p.y < lo.y + dx.y);
            assert!(p.z >= lo.z && p.z < lo.z + dx.z);
        }
    }
}
