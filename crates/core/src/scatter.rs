//! Scattering physics: the σ_s / phase-function terms of the RTE (Eq. 2).
//!
//! "RMCRT naturally incorporates scattering physics" (paper §I): a reverse
//! ray that encounters a scattering event simply changes direction, with no
//! structural change to the algorithm — in contrast to DOM, whose scattering
//! source couples all ordinates and forces source iteration (see
//! [`crate::dom::solve_with_scattering`]).
//!
//! The estimator is the standard backward *collision* estimator: sample the
//! free path from the extinction coefficient `β = κ + σ_s`; at each
//! collision add `weight · (1−ω) · σT⁴/π` (the absorption/emission branch,
//! `ω = σ_s/β` the single-scatter albedo), multiply the weight by `ω` and
//! continue in a direction drawn from the phase function. With `σ_s = 0`
//! this reduces (in expectation) to the deterministic path integral of
//! [`crate::trace`].

use crate::packet::{CollisionTracer, FlightEnd, RayPacket};
use crate::props::LevelProps;
use crate::rng::CellRng;
use std::f64::consts::PI;
use uintah_grid::{IntVector, Point, Vector};

/// The phase function Φ(ŝᵢ, ŝ) of Eq. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhaseFunction {
    /// Φ = 1: equal probability in all directions.
    Isotropic,
    /// Henyey–Greenstein with asymmetry `g ∈ (−1, 1)`; `g > 0` is
    /// forward-peaked (soot), `g < 0` back-scattering.
    HenyeyGreenstein(f64),
}

impl PhaseFunction {
    /// Sample a scattered direction given the incoming direction.
    pub fn sample(&self, incoming: Vector, rng: &mut CellRng) -> Vector {
        let cos_t = match *self {
            PhaseFunction::Isotropic => 2.0 * rng.next_f64() - 1.0,
            PhaseFunction::HenyeyGreenstein(g) => {
                if g.abs() < 1e-6 {
                    2.0 * rng.next_f64() - 1.0
                } else {
                    let sq = (1.0 - g * g) / (1.0 - g + 2.0 * g * rng.next_f64());
                    ((1.0 + g * g - sq * sq) / (2.0 * g)).clamp(-1.0, 1.0)
                }
            }
        };
        let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
        let phi = 2.0 * PI * rng.next_f64();
        // Orthonormal frame around the incoming direction.
        let w = incoming;
        let helper = if w.x.abs() < 0.9 {
            Vector::new(1.0, 0.0, 0.0)
        } else {
            Vector::new(0.0, 1.0, 0.0)
        };
        let u = w.cross(helper).normalized();
        let v = w.cross(u);
        (w * cos_t + u * (sin_t * phi.cos()) + v * (sin_t * phi.sin())).normalized()
    }
}

/// Scattering description of the medium (uniform σ_s; a per-cell field
/// would slot in the same way the absorption coefficient does).
#[derive(Clone, Copy, Debug)]
pub struct ScatteringMedium {
    /// Scattering coefficient σ_s (1/m).
    pub sigma_s: f64,
    pub phase: PhaseFunction,
}

/// Trace one backward ray with scattering through a single level;
/// returns its incoming-intensity estimate.
///
/// `threshold` terminates by Russian roulette (unbiased): when the weight
/// drops below it, the ray survives with probability ½ at doubled weight.
pub fn trace_ray_collision(
    props: &LevelProps,
    medium: &ScatteringMedium,
    origin: Point,
    dir: Vector,
    rng: &mut CellRng,
    threshold: f64,
) -> f64 {
    let tracer = CollisionTracer::new(props);
    trace_one_collision(&tracer, medium, origin, dir, rng, threshold)
}

/// One ray against a prepared [`CollisionTracer`]: the flight loop (free
/// paths sampled from β, albedo weighting, roulette, phase sampling). The
/// cell marching itself is the packet engine's [`CollisionTracer::fly`].
fn trace_one_collision(
    tracer: &CollisionTracer<'_>,
    medium: &ScatteringMedium,
    origin: Point,
    dir: Vector,
    rng: &mut CellRng,
    threshold: f64,
) -> f64 {
    let mut pos = origin;
    let mut dir = dir;
    let mut weight = 1.0f64;
    let mut sum_i = 0.0;
    loop {
        // Sample the optical distance to the next collision.
        let tau_target = -(1.0 - rng.next_f64()).max(f64::MIN_POSITIVE).ln();
        match tracer.fly(pos, dir, tau_target, medium.sigma_s) {
            FlightEnd::Escaped => return sum_i, // cold black enclosure
            FlightEnd::Wall { emissivity, s } => {
                sum_i += weight * emissivity * s;
                return sum_i; // black/gray wall terminal (no reflections here)
            }
            FlightEnd::Collision { pos: p, beta, s } => {
                pos = p;
                let omega = medium.sigma_s / beta;
                // Absorption/emission branch.
                sum_i += weight * (1.0 - omega) * s;
                // Scattering branch.
                weight *= omega;
                if weight <= 0.0 {
                    return sum_i;
                }
                if weight < threshold {
                    // Russian roulette.
                    if rng.next_f64() < 0.5 {
                        return sum_i;
                    }
                    weight *= 2.0;
                }
                dir = medium.phase.sample(dir, rng);
            }
        }
    }
}

/// March a whole packet of scattering rays, each with its own RNG stream.
/// Per-ray results land in `packet.sum_i` in ray order; the active mask is
/// compacted as rays terminate. One flight leg advances per round, so the
/// packet stays cache-resident across the batch.
pub fn trace_packet_collision(
    props: &LevelProps,
    medium: &ScatteringMedium,
    packet: &mut RayPacket,
    rngs: &mut [CellRng],
    threshold: f64,
) {
    assert_eq!(packet.len(), rngs.len(), "one RNG stream per packet ray");
    let tracer = CollisionTracer::new(props);
    let mut live: Vec<u32> = (0..packet.len() as u32)
        .filter(|&i| packet.active[i as usize])
        .collect();
    while !live.is_empty() {
        live.retain(|&i| {
            let i = i as usize;
            let rng = &mut rngs[i];
            let tau_target = -(1.0 - rng.next_f64()).max(f64::MIN_POSITIVE).ln();
            let end = tracer.fly(packet.origin(i), packet.dir(i), tau_target, medium.sigma_s);
            match end {
                FlightEnd::Escaped => {
                    packet.active[i] = false;
                    false
                }
                FlightEnd::Wall { emissivity, s } => {
                    packet.sum_i[i] += packet.weight[i] * emissivity * s;
                    packet.active[i] = false;
                    false
                }
                FlightEnd::Collision { pos, beta, s } => {
                    packet.set_origin(i, pos);
                    let omega = medium.sigma_s / beta;
                    packet.sum_i[i] += packet.weight[i] * (1.0 - omega) * s;
                    packet.weight[i] *= omega;
                    if packet.weight[i] <= 0.0 {
                        packet.active[i] = false;
                        return false;
                    }
                    if packet.weight[i] < threshold {
                        if rng.next_f64() < 0.5 {
                            packet.active[i] = false;
                            return false;
                        }
                        packet.weight[i] *= 2.0;
                    }
                    let d = medium.phase.sample(packet.dir(i), rng);
                    packet.set_dir(i, d);
                    true
                }
            }
        });
    }
}

/// ∇·q for one cell with scattering: `4π·κ·(σT⁴/π − mean I)`. Only the
/// absorption coefficient κ (not β) enters the divergence — scattering
/// redistributes but does not deposit energy.
pub fn div_q_with_scattering(
    props: &LevelProps,
    medium: &ScatteringMedium,
    cell: IntVector,
    nrays: u32,
    threshold: f64,
    seed: u64,
) -> f64 {
    let kappa = props.abskg[cell];
    if kappa == 0.0 {
        return 0.0;
    }
    let mut packet = RayPacket::with_capacity(nrays as usize);
    let mut rngs = Vec::with_capacity(nrays as usize);
    for r in 0..nrays {
        let mut rng = CellRng::new(seed, cell, r, 0);
        let dir = rng.direction();
        let origin = rng.point_in_cell(props.cell_lo(cell), props.dx);
        packet.push(origin, dir);
        rngs.push(rng);
    }
    trace_packet_collision(props, medium, &mut packet, &mut rngs, threshold);
    let mut sum = 0.0;
    for r in 0..nrays as usize {
        sum += packet.sum_i[r];
    }
    4.0 * PI * kappa * (props.sigma_t4_over_pi[cell] - sum / nrays as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::WALL_CELL;
    use crate::trace::{trace_ray, TraceLevel};
    use uintah_grid::Region;

    fn mean_collision_estimate(
        props: &LevelProps,
        medium: &ScatteringMedium,
        origin: Point,
        n: u32,
    ) -> f64 {
        let mut sum = 0.0;
        for r in 0..n {
            let mut rng = CellRng::new(31, IntVector::ZERO, r, 0);
            let dir = rng.direction();
            sum += trace_ray_collision(props, medium, origin, dir, &mut rng, 1e-4);
        }
        sum / n as f64
    }

    /// With σ_s = 0 the collision estimator agrees (in expectation) with
    /// the deterministic path integral.
    #[test]
    fn no_scattering_matches_path_integral() {
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 2.0, 0.8);
        let medium = ScatteringMedium {
            sigma_s: 0.0,
            phase: PhaseFunction::Isotropic,
        };
        let origin = Point::new(0.5, 0.5, 0.5);
        let collision = mean_collision_estimate(&props, &medium, origin, 20_000);
        // Deterministic reference: angular average of the path integral.
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let mut reference = 0.0;
        let nref = 5000;
        for r in 0..nref {
            let mut rng = CellRng::new(77, IntVector::ZERO, r, 1);
            reference += trace_ray(&stack, origin, rng.direction(), 1e-9);
        }
        reference /= nref as f64;
        let rel = (collision - reference).abs() / reference;
        assert!(rel < 0.03, "collision {collision} vs path {reference} (rel {rel})");
    }

    /// Isothermal enclosure (hot black walls at the same σT⁴/π as the
    /// medium): I = S exactly, for *any* scattering coefficient — the
    /// equilibrium invariance that validates the scattering machinery.
    #[test]
    fn equilibrium_invariant_under_scattering() {
        let n = 8;
        let s = 0.6;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, s);
        for c in props.region.cells() {
            let e = props.region.extent();
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = WALL_CELL;
                props.abskg[c] = 1.0;
            }
        }
        for sigma_s in [0.0, 1.0, 10.0] {
            let medium = ScatteringMedium {
                sigma_s,
                phase: PhaseFunction::Isotropic,
            };
            let got = mean_collision_estimate(&props, &medium, Point::new(0.5, 0.5, 0.5), 4000);
            assert!(
                (got - s).abs() / s < 0.05,
                "σs={sigma_s}: I {got} vs S {s}"
            );
        }
    }

    /// Scattering increases the escape path length, so a hot medium
    /// between cold walls cools *less* per unit volume as σ_s grows
    /// (radiation is trapped): divQ decreases with albedo.
    #[test]
    fn scattering_traps_radiation() {
        let n = 12;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let dq = |sigma_s: f64| {
            div_q_with_scattering(
                &props,
                &ScatteringMedium {
                    sigma_s,
                    phase: PhaseFunction::Isotropic,
                },
                IntVector::splat(n / 2),
                3000,
                1e-4,
                5,
            )
        };
        let clear = dq(0.0);
        let hazy = dq(5.0);
        assert!(clear > 0.0 && hazy > 0.0);
        assert!(
            hazy < clear * 0.95,
            "scattering should trap radiation: {hazy} vs {clear}"
        );
    }

    /// Henyey–Greenstein sampling reproduces its mean cosine g.
    #[test]
    fn hg_mean_cosine() {
        for g in [-0.5, 0.0, 0.3, 0.8] {
            let phase = PhaseFunction::HenyeyGreenstein(g);
            let incoming = Vector::new(0.0, 0.0, 1.0);
            let mut rng = CellRng::new(3, IntVector::ZERO, 0, 0);
            let n = 40_000;
            let mut mean = 0.0;
            for _ in 0..n {
                mean += phase.sample(incoming, &mut rng).dot(incoming);
            }
            mean /= n as f64;
            assert!((mean - g).abs() < 0.01, "g={g}: mean cosine {mean}");
        }
    }

    /// Sampled directions are always unit.
    #[test]
    fn sampled_directions_unit() {
        let mut rng = CellRng::new(9, IntVector::ZERO, 0, 0);
        for phase in [
            PhaseFunction::Isotropic,
            PhaseFunction::HenyeyGreenstein(0.7),
            PhaseFunction::HenyeyGreenstein(-0.9),
        ] {
            for _ in 0..200 {
                let incoming = rng.direction();
                let out = phase.sample(incoming, &mut rng);
                assert!((out.length() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Pure scatterer with a hot wall: energy still arrives by diffusion.
    #[test]
    fn pure_scattering_transports_wall_energy() {
        let n = 8;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 0.0, 0.0);
        for c in Region::new(IntVector::new(n - 1, 0, 0), IntVector::new(n, n, n)).cells() {
            props.cell_type[c] = WALL_CELL;
            props.abskg[c] = 1.0;
            props.sigma_t4_over_pi[c] = 3.0;
        }
        let medium = ScatteringMedium {
            sigma_s: 2.0,
            phase: PhaseFunction::Isotropic,
        };
        let got = mean_collision_estimate(&props, &medium, Point::new(0.2, 0.5, 0.5), 8000);
        assert!(got > 0.1, "scattered wall radiation must reach the detector: {got}");
        assert!(got < 3.0 + 1e-9);
    }
}
