//! Radiative properties of one mesh level as seen by the ray marcher.

use uintah_grid::{CcVariable, IntVector, Point, Region, Vector};

/// Cell type value for a participating-medium (flow) cell.
pub const FLOW_CELL: u8 = 0;
/// Cell type value for an opaque wall cell.
pub const WALL_CELL: u8 = 1;

/// The radiative state of (part of) one level: everything a ray needs.
///
/// For the finest level the variables cover the ray's region of interest
/// (its patch plus halo); for coarse levels they cover the whole domain
/// (the replicas the all-to-all produces). `anchor`/`dx` map the level's
/// cell indices to physical space.
#[derive(Clone, Debug)]
pub struct LevelProps {
    /// Cells with valid data (the ROI or the whole level).
    pub region: Region,
    /// Physical position of the low corner of cell (0,0,0) *of the level*.
    pub anchor: Point,
    /// Cell spacing.
    pub dx: Vector,
    /// Absorption coefficient (1/m); wall emissivity on wall cells.
    pub abskg: CcVariable<f64>,
    /// σT⁴/π (W/m²/sr).
    pub sigma_t4_over_pi: CcVariable<f64>,
    /// [`FLOW_CELL`] / [`WALL_CELL`] per cell.
    pub cell_type: CcVariable<u8>,
}

impl LevelProps {
    /// Uniform-property helper (tests, analytic checks).
    pub fn uniform(region: Region, dx: Vector, abskg: f64, sig_t4_over_pi: f64) -> Self {
        Self {
            region,
            anchor: Point::ORIGIN,
            dx,
            abskg: CcVariable::filled(region, abskg),
            sigma_t4_over_pi: CcVariable::filled(region, sig_t4_over_pi),
            cell_type: CcVariable::filled(region, FLOW_CELL),
        }
    }

    /// Cell index containing physical point `p`.
    #[inline]
    pub fn cell_containing(&self, p: Point) -> IntVector {
        let r = p - self.anchor;
        IntVector::new(
            (r.x / self.dx.x).floor() as i32,
            (r.y / self.dx.y).floor() as i32,
            (r.z / self.dx.z).floor() as i32,
        )
    }

    /// Physical low corner of cell `c`.
    #[inline]
    pub fn cell_lo(&self, c: IntVector) -> Point {
        self.anchor
            + Vector::new(
                c.x as f64 * self.dx.x,
                c.y as f64 * self.dx.y,
                c.z as f64 * self.dx.z,
            )
    }

    /// Physical centre of cell `c`.
    #[inline]
    pub fn cell_center(&self, c: IntVector) -> Point {
        self.cell_lo(c) + self.dx * 0.5
    }

    #[inline]
    pub fn is_wall(&self, c: IntVector) -> bool {
        self.cell_type[c] != FLOW_CELL
    }

    /// Consistency check: all variables cover `region`.
    pub fn validate(&self) {
        assert_eq!(self.abskg.region(), self.region, "abskg region mismatch");
        assert_eq!(
            self.sigma_t4_over_pi.region(),
            self.region,
            "sigmaT4OverPi region mismatch"
        );
        assert_eq!(self.cell_type.region(), self.region, "cellType region mismatch");
        assert!(self.dx.x > 0.0 && self.dx.y > 0.0 && self.dx.z > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_mapping() {
        let p = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 0.5);
        p.validate();
        assert_eq!(p.cell_containing(Point::new(0.0, 0.0, 0.0)), IntVector::ZERO);
        assert_eq!(p.cell_containing(Point::new(0.99, 0.5, 0.13)), IntVector::new(7, 4, 1));
        let c = IntVector::new(3, 2, 1);
        assert_eq!(p.cell_containing(p.cell_center(c)), c);
    }

    #[test]
    fn wall_flagging() {
        let mut p = LevelProps::uniform(Region::cube(4), Vector::splat(0.25), 1.0, 0.5);
        p.cell_type[IntVector::ZERO] = WALL_CELL;
        assert!(p.is_wall(IntVector::ZERO));
        assert!(!p.is_wall(IntVector::ONE));
    }

    #[test]
    #[should_panic(expected = "abskg region mismatch")]
    fn validate_catches_mismatch() {
        let mut p = LevelProps::uniform(Region::cube(4), Vector::splat(0.25), 1.0, 0.5);
        p.abskg = CcVariable::filled(Region::cube(3), 1.0);
        p.validate();
    }
}
