//! Boundary heat flux: the boiler designers' quantity of interest.
//!
//! "A critical quantity of interest for all boiler simulations is the heat
//! flux to the surrounding walls" (paper §III-A). Uintah's `Ray` component
//! computes per-face boundary-flux arrays alongside ∇·q; this module does
//! the same with cosine-weighted hemisphere sampling:
//!
//! ```text
//! q_in(face) = ∫_{2π} I(Ω) cosθ dΩ  ≈  π · mean(I over cosine-weighted Ω)
//! ```

use crate::packet::{PacketTracer, RayPacket};
use crate::rng::CellRng;
use crate::trace::{TraceLevel, TraceOptions};
use std::f64::consts::PI;
use uintah_grid::{CcVariable, IntVector, Region, Vector};

/// An axis-aligned face direction (+x, −x, …): the *inward* normal of a
/// wall face, pointing into the participating medium.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Face {
    XMinus,
    XPlus,
    YMinus,
    YPlus,
    ZMinus,
    ZPlus,
}

impl Face {
    pub const ALL: [Face; 6] = [
        Face::XMinus,
        Face::XPlus,
        Face::YMinus,
        Face::YPlus,
        Face::ZMinus,
        Face::ZPlus,
    ];

    /// The inward unit normal (into the domain) of a wall on this face of
    /// the enclosure: `XMinus` is the x = lo wall, so its inward normal is
    /// +x.
    pub fn inward_normal(self) -> Vector {
        match self {
            Face::XMinus => Vector::new(1.0, 0.0, 0.0),
            Face::XPlus => Vector::new(-1.0, 0.0, 0.0),
            Face::YMinus => Vector::new(0.0, 1.0, 0.0),
            Face::YPlus => Vector::new(0.0, -1.0, 0.0),
            Face::ZMinus => Vector::new(0.0, 0.0, 1.0),
            Face::ZPlus => Vector::new(0.0, 0.0, -1.0),
        }
    }
}

/// Parameters of a boundary-flux evaluation.
#[derive(Clone, Copy, Debug)]
pub struct FluxParams {
    pub nrays: u32,
    pub threshold: f64,
    pub seed: u64,
}

impl Default for FluxParams {
    fn default() -> Self {
        Self {
            nrays: 500,
            threshold: 1e-4,
            seed: 0xF1,
        }
    }
}

/// Incident radiative flux (W/m²) onto the wall face whose *flow-side*
/// neighbouring cell is `flow_cell`, with inward normal `n` (pointing away
/// from the wall into the medium).
///
/// Cosine-weighted hemisphere sampling: directions `d` with density
/// `cosθ/π`, so `q = π · mean(I(d))`.
pub fn face_incident_flux(
    levels: &[TraceLevel<'_>],
    flow_cell: IntVector,
    face: Face,
    params: &FluxParams,
) -> f64 {
    let tracer = PacketTracer::new(
        levels,
        TraceOptions {
            threshold: params.threshold,
            max_reflections: 0,
        },
    );
    face_incident_flux_with(&tracer, flow_cell, face, params)
}

/// [`face_incident_flux`] against a prepared [`PacketTracer`] — the form
/// the region-wide flux map uses so the trace stack is prepared once, not
/// once per face cell. The face's rays march as one packet.
pub fn face_incident_flux_with(
    tracer: &PacketTracer<'_>,
    flow_cell: IntVector,
    face: Face,
    params: &FluxParams,
) -> f64 {
    let props = tracer.fine_props();
    debug_assert!(!props.is_wall(flow_cell), "flux origin must be a flow cell");
    let n = face.inward_normal();
    // Point on the wall face: centre of the flow cell's face towards the
    // wall, nudged into the flow cell.
    let lo = props.cell_lo(flow_cell);
    let center = props.cell_center(flow_cell);
    let mut origin = center;
    let eps = 1e-6;
    match face {
        Face::XMinus => origin.x = lo.x + eps * props.dx.x,
        Face::XPlus => origin.x = lo.x + (1.0 - eps) * props.dx.x,
        Face::YMinus => origin.y = lo.y + eps * props.dx.y,
        Face::YPlus => origin.y = lo.y + (1.0 - eps) * props.dx.y,
        Face::ZMinus => origin.z = lo.z + eps * props.dx.z,
        Face::ZPlus => origin.z = lo.z + (1.0 - eps) * props.dx.z,
    }
    // Frame around the normal.
    let helper = if n.x.abs() < 0.9 {
        Vector::new(1.0, 0.0, 0.0)
    } else {
        Vector::new(0.0, 1.0, 0.0)
    };
    let u = n.cross(helper).normalized();
    let v = n.cross(u);
    let mut packet = RayPacket::with_capacity(params.nrays as usize);
    for r in 0..params.nrays {
        let mut rng = CellRng::new(params.seed, flow_cell, r, 0);
        // Cosine-weighted: cosθ = sqrt(ξ).
        let cos_t = rng.next_f64().sqrt();
        let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
        let phi = 2.0 * PI * rng.next_f64();
        let dir = (n * cos_t + u * (sin_t * phi.cos()) + v * (sin_t * phi.sin())).normalized();
        packet.push(origin, dir);
    }
    tracer.trace(&mut packet);
    let mut sum = 0.0;
    for r in 0..params.nrays as usize {
        sum += packet.sum_i[r];
    }
    PI * sum / params.nrays as f64
}

/// Incident flux over every cell of one wall of the enclosure (the 2-D
/// flux map of that wall). `face` names the wall; the returned variable is
/// defined on the layer of flow cells adjacent to it. Equivalent to
/// [`wall_flux_map_exec`] on the serial space.
pub fn wall_flux_map(
    levels: &[TraceLevel<'_>],
    face: Face,
    params: &FluxParams,
) -> CcVariable<f64> {
    wall_flux_map_exec(levels, face, params, &uintah_exec::ExecSpace::Serial)
}

/// [`wall_flux_map`] dispatched on an execution space; bit-identical across
/// spaces (wall cells evaluate to 0 in the kernel itself).
pub fn wall_flux_map_exec(
    levels: &[TraceLevel<'_>],
    face: Face,
    params: &FluxParams,
    space: &uintah_exec::ExecSpace,
) -> CcVariable<f64> {
    let props = levels.last().expect("empty stack").props;
    let r = props.region;
    let layer = match face {
        Face::XMinus => Region::new(r.lo(), IntVector::new(r.lo().x + 1, r.hi().y, r.hi().z)),
        Face::XPlus => Region::new(IntVector::new(r.hi().x - 1, r.lo().y, r.lo().z), r.hi()),
        Face::YMinus => Region::new(r.lo(), IntVector::new(r.hi().x, r.lo().y + 1, r.hi().z)),
        Face::YPlus => Region::new(IntVector::new(r.lo().x, r.hi().y - 1, r.lo().z), r.hi()),
        Face::ZMinus => Region::new(r.lo(), IntVector::new(r.hi().x, r.hi().y, r.lo().z + 1)),
        Face::ZPlus => Region::new(IntVector::new(r.lo().x, r.lo().y, r.hi().z - 1), r.hi()),
    };
    let tracer = PacketTracer::new(
        levels,
        TraceOptions {
            threshold: params.threshold,
            max_reflections: 0,
        },
    );
    uintah_exec::parallel_fill(space, layer, |c| {
        if props.is_wall(c) {
            0.0
        } else {
            face_incident_flux_with(&tracer, c, face, params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::LevelProps;

    fn single(props: &LevelProps) -> [TraceLevel<'_>; 1] {
        [TraceLevel {
            props,
            roi: props.region,
        }]
    }

    /// Optically thick isothermal medium: the wall sees a black body, so
    /// q = π·S = σT⁴.
    #[test]
    fn thick_medium_gives_sigma_t4() {
        let n = 8;
        let s = 0.9;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1e4, s);
        let st = single(&props);
        for face in Face::ALL {
            let cell = match face {
                Face::XMinus => IntVector::new(0, n / 2, n / 2),
                Face::XPlus => IntVector::new(n - 1, n / 2, n / 2),
                Face::YMinus => IntVector::new(n / 2, 0, n / 2),
                Face::YPlus => IntVector::new(n / 2, n - 1, n / 2),
                Face::ZMinus => IntVector::new(n / 2, n / 2, 0),
                Face::ZPlus => IntVector::new(n / 2, n / 2, n - 1),
            };
            let q = face_incident_flux(
                &st,
                cell,
                face,
                &FluxParams {
                    nrays: 800,
                    threshold: 1e-8,
                    ..Default::default()
                },
            );
            let expect = PI * s;
            assert!(
                (q - expect).abs() / expect < 0.02,
                "{face:?}: q {q} vs {expect}"
            );
        }
    }

    /// Transparent medium, cold enclosure: zero flux.
    #[test]
    fn vacuum_gives_zero() {
        let props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 0.0, 0.7);
        let q = face_incident_flux(
            &single(&props),
            IntVector::new(0, 4, 4),
            Face::XMinus,
            &FluxParams::default(),
        );
        assert_eq!(q, 0.0);
    }

    /// On the Burns & Christon benchmark the wall flux map must peak at
    /// the wall centre (facing the κ maximum) and be symmetric.
    #[test]
    fn benchmark_wall_map_peaks_at_center() {
        let n = 12;
        let grid = crate::BurnsChriston::small_grid(n, 4.min(n / 2));
        let props = crate::BurnsChriston::default().props_for_level(grid.fine_level());
        let st = single(&props);
        let map = wall_flux_map(
            &st,
            Face::XMinus,
            &FluxParams {
                nrays: 300,
                threshold: 1e-4,
                ..Default::default()
            },
        );
        let mid = n / 2;
        let center = map[IntVector::new(0, mid, mid)];
        let corner = map[IntVector::new(0, 1, 1)];
        assert!(center > corner, "center {center} vs corner {corner}");
        // All values physical.
        for (_, &q) in map.iter() {
            assert!(q >= 0.0 && q.is_finite());
        }
    }
}
