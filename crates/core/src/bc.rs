//! Enclosure boundary conditions.
//!
//! The Burns & Christon benchmark uses cold black walls, which the marcher
//! gets for free (rays leaving the domain contribute nothing). Boiler
//! calculations need more: water walls at a real temperature, refractory
//! with emissivity < 1. This module materializes such enclosures as a
//! layer of wall cells around the domain, carrying per-face emissivity and
//! temperature — the same convention Uintah uses (`cellType` boundary
//! cells with ε stored in `abskg`).

use crate::flux::Face;
use crate::labels::sigma_t4_over_pi;
use crate::props::{LevelProps, FLOW_CELL, WALL_CELL};
use uintah_grid::{CcVariable, Level};

/// One wall's radiative surface properties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WallProps {
    /// Surface emissivity ε ∈ [0, 1] (1 = black; < 1 reflects specularly
    /// when the trace enables reflections).
    pub emissivity: f64,
    /// Surface temperature (K).
    pub temperature: f64,
}

impl WallProps {
    pub fn cold_black() -> Self {
        Self {
            emissivity: 1.0,
            temperature: 0.0,
        }
    }
}

/// Per-face enclosure description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnclosureBc {
    pub faces: [WallProps; 6],
}

impl Default for EnclosureBc {
    fn default() -> Self {
        Self {
            faces: [WallProps::cold_black(); 6],
        }
    }
}

impl EnclosureBc {
    /// Uniform walls on all six faces.
    pub fn uniform(wall: WallProps) -> Self {
        Self { faces: [wall; 6] }
    }

    /// Set one face.
    pub fn with_face(mut self, face: Face, wall: WallProps) -> Self {
        self.faces[face_index(face)] = wall;
        self
    }

    pub fn face(&self, face: Face) -> WallProps {
        self.faces[face_index(face)]
    }

    /// Wrap interior properties in a one-cell wall layer: the result's
    /// region is `interior.region.grown(1)`, with the added cells flagged
    /// [`WALL_CELL`], ε in `abskg` and `σT⁴/π` from each face's
    /// temperature. Corner/edge cells take the properties of the dominant
    /// face (x over y over z) — they subtend negligible solid angle.
    ///
    /// The `level` argument supplies the geometry so positions stay
    /// consistent (`anchor`/`dx` are unchanged: wall cells sit outside the
    /// physical domain, as in Uintah's extra cells).
    pub fn wrap(&self, level: &Level, interior: &LevelProps) -> LevelProps {
        let inner = interior.region;
        let outer = inner.grown(1);
        let mut abskg = CcVariable::<f64>::new(outer);
        let mut sig = CcVariable::<f64>::new(outer);
        let mut ct = CcVariable::<u8>::filled(outer, FLOW_CELL);
        abskg.copy_window(&interior.abskg, &inner);
        sig.copy_window(&interior.sigma_t4_over_pi, &inner);
        ct.copy_window(&interior.cell_type, &inner);
        for c in outer.cells() {
            if inner.contains(c) {
                continue;
            }
            let face = if c.x < inner.lo().x {
                Face::XMinus
            } else if c.x >= inner.hi().x {
                Face::XPlus
            } else if c.y < inner.lo().y {
                Face::YMinus
            } else if c.y >= inner.hi().y {
                Face::YPlus
            } else if c.z < inner.lo().z {
                Face::ZMinus
            } else {
                Face::ZPlus
            };
            let w = self.face(face);
            ct[c] = WALL_CELL;
            abskg[c] = w.emissivity;
            sig[c] = sigma_t4_over_pi(w.temperature);
        }
        LevelProps {
            region: outer,
            anchor: level.anchor(),
            dx: level.dx(),
            abskg,
            sigma_t4_over_pi: sig,
            cell_type: ct,
        }
    }
}

fn face_index(face: Face) -> usize {
    match face {
        Face::XMinus => 0,
        Face::XPlus => 1,
        Face::YMinus => 2,
        Face::YPlus => 3,
        Face::ZMinus => 4,
        Face::ZPlus => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{div_q_for_cell, RmcrtParams};
    use crate::trace::TraceLevel;
    use crate::BurnsChriston;
    use std::f64::consts::PI;
    use uintah_grid::{IntVector, Region, Vector};

    fn setup(n: i32) -> (uintah_grid::Grid, LevelProps) {
        let grid = BurnsChriston::small_grid(n, (n / 2).min(8));
        let props = BurnsChriston::default().props_for_level(grid.fine_level());
        (grid, props)
    }

    #[test]
    fn wrap_grows_region_and_flags_walls() {
        let (grid, props) = setup(8);
        let bc = EnclosureBc::uniform(WallProps {
            emissivity: 0.8,
            temperature: 600.0,
        });
        let wrapped = bc.wrap(grid.fine_level(), &props);
        wrapped.validate();
        assert_eq!(wrapped.region, Region::cube(8).grown(1));
        assert_eq!(wrapped.cell_type[IntVector::splat(-1)], WALL_CELL);
        assert_eq!(wrapped.cell_type[IntVector::splat(4)], FLOW_CELL);
        assert_eq!(wrapped.abskg[IntVector::splat(-1)], 0.8);
        assert!((wrapped.sigma_t4_over_pi[IntVector::new(8, 4, 4)] - sigma_t4_over_pi(600.0)).abs() < 1e-15);
        // Interior untouched.
        assert_eq!(wrapped.abskg[IntVector::splat(4)], props.abskg[IntVector::splat(4)]);
    }

    #[test]
    fn cold_black_walls_match_open_domain() {
        // Cold black walls are exactly the marcher's domain-exit behaviour,
        // so wrapping with the default BC must not change divQ.
        let (grid, props) = setup(8);
        let wrapped = EnclosureBc::default().wrap(grid.fine_level(), &props);
        let params = RmcrtParams {
            nrays: 64,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(4);
        let open = div_q_for_cell(
            &[TraceLevel {
                props: &props,
                roi: props.region,
            }],
            c,
            &params,
        );
        let walled = div_q_for_cell(
            &[TraceLevel {
                props: &wrapped,
                roi: wrapped.region,
            }],
            c,
            &params,
        );
        assert_eq!(open, walled);
    }

    #[test]
    fn hot_walls_reduce_net_emission() {
        let (grid, props) = setup(8);
        let bc = EnclosureBc::uniform(WallProps {
            emissivity: 1.0,
            temperature: 64.804, // same σT⁴ as the medium -> equilibrium
        });
        let wrapped = bc.wrap(grid.fine_level(), &props);
        let params = RmcrtParams {
            nrays: 128,
            threshold: 1e-6,
            ..Default::default()
        };
        let c = IntVector::splat(4);
        let cold = div_q_for_cell(
            &[TraceLevel {
                props: &props,
                roi: props.region,
            }],
            c,
            &params,
        );
        let hot = div_q_for_cell(
            &[TraceLevel {
                props: &wrapped,
                roi: wrapped.region,
            }],
            c,
            &params,
        );
        assert!(cold > 0.0);
        // Equilibrium enclosure: net divergence collapses toward zero.
        assert!(
            hot.abs() < 0.05 * cold,
            "hot-wall divQ {hot} should be near zero vs cold {cold}"
        );
    }

    #[test]
    fn single_hot_face_biases_wall_flux() {
        use crate::flux::{face_incident_flux, FluxParams};
        let n = 8;
        let interior = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 0.01, 0.0);
        let grid = BurnsChriston::small_grid(n, 4);
        let bc = EnclosureBc::default().with_face(
            Face::XPlus,
            WallProps {
                emissivity: 1.0,
                temperature: 1000.0,
            },
        );
        let wrapped = bc.wrap(grid.fine_level(), &interior);
        let stack = [TraceLevel {
            props: &wrapped,
            roi: wrapped.region,
        }];
        let p = FluxParams {
            nrays: 1500,
            threshold: 1e-6,
            ..Default::default()
        };
        // Detector at the centre of the cold x=lo wall, facing the hot
        // x=hi wall: for unit squares at unit separation the analytic
        // centre-point view factor of the opposing plate is ≈ 0.2
        // (F = 2/π · [a/√(1+a²)·atan(b/√(1+a²)) + b/√(1+b²)·atan(a/√(1+b²))]
        //  with a = b = 1/2 per quadrant, × 4 quadrants).
        let q_facing = face_incident_flux(&stack, IntVector::new(0, n / 2, n / 2), Face::XMinus, &p);
        let sigma_t4 = sigma_t4_over_pi(1000.0) * PI;
        let view = q_facing / sigma_t4;
        // Analytic point-to-plate view factor for an element at the centre
        // of a unit plate opposing a unit plate at unit distance:
        // 4 × (1/2π)[X/√(1+X²)·atan(Y/√(1+X²)) + …] with X = Y = 0.5
        // ≈ 0.239. The detector here is half a cell off-centre and the
        // wrapped wall layer extends one cell past the face edges, so allow
        // a generous band around it.
        assert!(
            (0.17..0.30).contains(&view),
            "view factor {view} should be near the analytic ≈ 0.24"
        );
        // And a detector mounted on the hot wall itself looking inward
        // sees mostly cold walls: far less incident flux.
        let q_from_hot = face_incident_flux(&stack, IntVector::new(n - 1, n / 2, n / 2), Face::XPlus, &p);
        assert!(q_from_hot < q_facing * 0.2, "{q_from_hot} vs {q_facing}");
    }
}
