//! The Burns & Christon benchmark problem.
//!
//! Burns & Christon (1997) define the standard verification problem used by
//! every Uintah RMCRT paper, including this one: a unit cube of hot,
//! non-scattering participating medium with a spatially varying absorption
//! coefficient, enclosed by cold black walls:
//!
//! ```text
//! κ(x,y,z) = 0.9·(1 − 2|x−½|)·(1 − 2|y−½|)·(1 − 2|z−½|) + 0.1
//! σT⁴ = 1 W/m²  (T ≈ 64.804 K), walls at 0 K, ε = 1
//! ```
//!
//! The quantity of interest is ∇·q on the fine mesh. The paper's MEDIUM
//! (256³/64³) and LARGE (512³/128³) scaling problems are exactly this
//! benchmark on 2-level grids with refinement ratio 4 and 100 rays/cell.

use crate::labels::SIGMA;
use crate::props::LevelProps;
use std::f64::consts::PI;
use uintah_grid::{CcVariable, Grid, IntVector, Level, Point, Region};

/// The benchmark problem definition.
#[derive(Clone, Copy, Debug)]
pub struct BurnsChriston {
    /// Medium temperature (K). Default gives σT⁴ = 1 W/m².
    pub temperature: f64,
}

impl Default for BurnsChriston {
    fn default() -> Self {
        Self {
            temperature: 64.804,
        }
    }
}

impl BurnsChriston {
    /// The absorption coefficient at physical point `p` in the unit cube.
    pub fn kappa(&self, p: Point) -> f64 {
        0.9 * (1.0 - 2.0 * (p.x - 0.5).abs())
            * (1.0 - 2.0 * (p.y - 0.5).abs())
            * (1.0 - 2.0 * (p.z - 0.5).abs())
            + 0.1
    }

    /// σT⁴/π of the medium.
    pub fn sigma_t4_over_pi(&self) -> f64 {
        let t = self.temperature;
        SIGMA * t * t * t * t / PI
    }

    /// Fill the radiative properties of `level` over `region` (cell-centred
    /// evaluation of κ, uniform emissive power, all flow cells — the cold
    /// black enclosure is the domain boundary itself).
    pub fn props_for_region(&self, level: &Level, region: Region) -> LevelProps {
        let mut abskg = CcVariable::<f64>::new(region);
        abskg.fill_with(|c| self.kappa(level.cell_center(c)));
        LevelProps {
            region,
            anchor: level.anchor(),
            dx: level.dx(),
            abskg,
            sigma_t4_over_pi: CcVariable::filled(region, self.sigma_t4_over_pi()),
            cell_type: CcVariable::filled(region, crate::props::FLOW_CELL),
        }
    }

    /// Properties for a whole level.
    pub fn props_for_level(&self, level: &Level) -> LevelProps {
        self.props_for_region(level, level.cell_region())
    }

    /// The paper's MEDIUM benchmark grid: fine 256³, coarse 64³, RR 4.
    pub fn medium_grid(fine_patch: i32) -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(256))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(fine_patch))
            .build()
    }

    /// The paper's LARGE benchmark grid: fine 512³, coarse 128³, RR 4.
    pub fn large_grid(fine_patch: i32) -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(fine_patch))
            .build()
    }

    /// A scaled-down grid with the same 2-level, RR-4 structure for tests
    /// and laptop-scale examples.
    pub fn small_grid(fine_cells: i32, fine_patch: i32) -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(fine_cells))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(fine_patch))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{div_q_for_cell, RmcrtParams};
    use crate::trace::TraceLevel;

    #[test]
    fn kappa_field_shape() {
        let b = BurnsChriston::default();
        // Maximum at the centre: 0.9 + 0.1 = 1.0.
        assert!((b.kappa(Point::new(0.5, 0.5, 0.5)) - 1.0).abs() < 1e-12);
        // Minimum at corners: 0.1.
        assert!((b.kappa(Point::new(0.0, 0.0, 0.0)) - 0.1).abs() < 1e-12);
        assert!((b.kappa(Point::new(1.0, 1.0, 1.0)) - 0.1).abs() < 1e-12);
        // Symmetric.
        let p = b.kappa(Point::new(0.3, 0.7, 0.2));
        assert!((p - b.kappa(Point::new(0.7, 0.3, 0.8))).abs() < 1e-12);
    }

    #[test]
    fn emissive_power_is_unit() {
        let b = BurnsChriston::default();
        assert!((b.sigma_t4_over_pi() * PI - 1.0).abs() < 1e-4);
    }

    #[test]
    fn props_match_formula_at_cell_centres() {
        let grid = BurnsChriston::small_grid(16, 8);
        let b = BurnsChriston::default();
        let props = b.props_for_level(grid.fine_level());
        props.validate();
        let c = IntVector::new(8, 8, 8);
        let expect = b.kappa(grid.fine_level().cell_center(c));
        assert_eq!(props.abskg[c], expect);
    }

    #[test]
    fn centre_cell_div_q_positive_and_stable() {
        // Hot medium, cold enclosure: the centre cell emits more than it
        // absorbs (∇·q > 0 in our sign convention), magnitude of order
        // 4π·κ·σT⁴/π·(escape fraction) ≈ O(1) W/m³ for the unit problem.
        let grid = BurnsChriston::small_grid(32, 16);
        let b = BurnsChriston::default();
        let props = b.props_for_level(grid.fine_level());
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let params = RmcrtParams {
            nrays: 256,
            threshold: 1e-4,
            ..Default::default()
        };
        let dq = div_q_for_cell(&stack, IntVector::splat(16), &params);
        assert!(dq > 0.0, "centre must be a net emitter, got {dq}");
        assert!(dq < 4.0, "unreasonably large divQ {dq}");
    }

    #[test]
    fn benchmark_grids_match_paper_cell_counts() {
        let m = BurnsChriston::medium_grid(16);
        assert_eq!(m.num_cells(), 256usize.pow(3) + 64usize.pow(3)); // 17.04M
        let l = BurnsChriston::large_grid(32);
        assert_eq!(l.num_cells(), 512usize.pow(3) + 128usize.pow(3)); // 136.31M
    }
}
