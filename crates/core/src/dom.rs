//! Discrete ordinates (S_N) baseline solver.
//!
//! ARCHES historically computed the radiative source with a discrete
//! ordinates method (Krishnamoorthy et al.); the paper motivates RMCRT
//! against DOM's costs (global sweeps / linear solves) and its *false
//! scattering* (ray widening from spatial discretization error, §III-A).
//!
//! For a non-scattering grey medium the RTE along each ordinate is a pure
//! advection-absorption equation, so a single first-order upwind sweep per
//! ordinate is exact at the discrete level — no source iteration needed.
//! The incident radiation is `G = Σ_m w_m I_m` and
//! `∇·q = κ (4 σT⁴ − G) = 4π κ (σT⁴/π) − κ G`.

use crate::props::LevelProps;
use std::f64::consts::PI;
use uintah_exec::{parallel_fill, parallel_map, ExecSpace};
use uintah_grid::{CcVariable, IntVector, Region};

/// A discrete ordinate: unit direction and quadrature weight.
#[derive(Clone, Copy, Debug)]
pub struct Ordinate {
    pub mu: f64,
    pub eta: f64,
    pub xi: f64,
    pub weight: f64,
}

/// Level-symmetric quadrature order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnOrder {
    S2,
    S4,
    S6,
    S8,
}

impl SnOrder {
    /// Number of ordinates (N(N+2) for level-symmetric S_N).
    pub fn num_ordinates(self) -> usize {
        match self {
            SnOrder::S2 => 8,
            SnOrder::S4 => 24,
            SnOrder::S6 => 48,
            SnOrder::S8 => 80,
        }
    }
}

/// Build the level-symmetric (LQ_N) ordinate set, normalized so the weights
/// sum to 4π. Direction-cosine values are the standard LQ_N constants
/// (Lewis & Miller).
pub fn ordinates(order: SnOrder) -> Vec<Ordinate> {
    // Per-octant ordinate patterns: (mu index triplets, relative weight).
    let (mus, patterns): (&[f64], &[([usize; 3], f64)]) = match order {
        SnOrder::S2 => (&[0.577_350_3], &[([0, 0, 0], 1.0)]),
        SnOrder::S4 => (
            &[0.350_021_2, 0.868_890_3],
            // Permutations of (μ1, μ1, μ2): all equal weight.
            &[
                ([0, 0, 1], 1.0),
                ([0, 1, 0], 1.0),
                ([1, 0, 0], 1.0),
            ],
        ),
        SnOrder::S6 => (
            &[0.266_635_5, 0.681_507_6, 0.926_180_8],
            &[
                ([0, 0, 2], 0.176_126_3),
                ([0, 2, 0], 0.176_126_3),
                ([2, 0, 0], 0.176_126_3),
                ([0, 1, 1], 0.157_207_1),
                ([1, 0, 1], 0.157_207_1),
                ([1, 1, 0], 0.157_207_1),
            ],
        ),
        SnOrder::S8 => (
            &[0.218_217_9, 0.577_350_3, 0.786_795_6, 0.951_189_7],
            &[
                ([0, 0, 3], 0.120_987_7),
                ([0, 3, 0], 0.120_987_7),
                ([3, 0, 0], 0.120_987_7),
                ([0, 1, 2], 0.090_740_7),
                ([0, 2, 1], 0.090_740_7),
                ([1, 0, 2], 0.090_740_7),
                ([2, 0, 1], 0.090_740_7),
                ([1, 2, 0], 0.090_740_7),
                ([2, 1, 0], 0.090_740_7),
                ([1, 1, 1], 0.092_592_6),
            ],
        ),
    };
    let mut out = Vec::with_capacity(order.num_ordinates());
    for &(idx, w) in patterns {
        for sx in [1.0, -1.0] {
            for sy in [1.0, -1.0] {
                for sz in [1.0, -1.0] {
                    out.push(Ordinate {
                        mu: sx * mus[idx[0]],
                        eta: sy * mus[idx[1]],
                        xi: sz * mus[idx[2]],
                        weight: w,
                    });
                }
            }
        }
    }
    // Normalize weights to 4π.
    let total: f64 = out.iter().map(|o| o.weight).sum();
    let scale = 4.0 * PI / total;
    for o in &mut out {
        o.weight *= scale;
    }
    out
}

/// Result of a DOM solve.
pub struct DomSolution {
    /// Incident radiation G (W/m²).
    pub g: CcVariable<f64>,
    /// ∇·q (positive = net emission, same convention as the RMCRT solver).
    pub div_q: CcVariable<f64>,
    /// Work performed: cells × ordinates (the cost unit the comparison
    /// bench reports).
    pub cell_ordinate_updates: usize,
}

/// Solve the non-scattering grey RTE on a single level with first-order
/// upwind sweeps. Boundary condition: cold black walls (incoming I = 0),
/// plus any interior wall cells in `props` (treated as cold here).
/// Equivalent to [`solve_exec`] on [`ExecSpace::Serial`].
pub fn solve(props: &LevelProps, order: SnOrder) -> DomSolution {
    solve_exec(props, order, &ExecSpace::Serial)
}

/// [`solve`] dispatched on an execution space. Each ordinate's upwind
/// sweep is an independent recurrence, so the fan-out is per ordinate
/// ([`parallel_map`]); the incident radiation `G` is then accumulated in
/// canonical ordinate order, making the result bit-identical to the serial
/// solve on every space.
pub fn solve_exec(props: &LevelProps, order: SnOrder, space: &ExecSpace) -> DomSolution {
    props.validate();
    let region = props.region;
    let ords = ordinates(order);
    let intensities = parallel_map(space, ords.len(), |m| {
        let mut intensity = CcVariable::<f64>::new(region);
        sweep(props, &ords[m], &mut intensity);
        intensity
    });
    let mut g = CcVariable::<f64>::new(region);
    for (o, intensity) in ords.iter().zip(&intensities) {
        for (gi, ii) in g.as_mut_slice().iter_mut().zip(intensity.as_slice()) {
            *gi += o.weight * ii;
        }
    }

    let div_q = parallel_fill(space, region, |c| {
        let kappa = props.abskg[c];
        if props.is_wall(c) || kappa == 0.0 {
            0.0
        } else {
            4.0 * PI * kappa * props.sigma_t4_over_pi[c] - kappa * g[c]
        }
    });
    DomSolution {
        g,
        div_q,
        cell_ordinate_updates: region.volume() * ords.len(),
    }
}

/// One upwind sweep for a single ordinate; writes I into `intensity`.
fn sweep(props: &LevelProps, o: &Ordinate, intensity: &mut CcVariable<f64>) {
    let region = props.region;
    let e = region.extent();
    let dx = props.dx;
    let ax = o.mu.abs() / dx.x;
    let ay = o.eta.abs() / dx.y;
    let az = o.xi.abs() / dx.z;

    // Iterate in downwind order per axis.
    let xs: Vec<i32> = if o.mu >= 0.0 {
        (region.lo().x..region.hi().x).collect()
    } else {
        (region.lo().x..region.hi().x).rev().collect()
    };
    let ys: Vec<i32> = if o.eta >= 0.0 {
        (region.lo().y..region.hi().y).collect()
    } else {
        (region.lo().y..region.hi().y).rev().collect()
    };
    let zs: Vec<i32> = if o.xi >= 0.0 {
        (region.lo().z..region.hi().z).collect()
    } else {
        (region.lo().z..region.hi().z).rev().collect()
    };
    let upx = if o.mu >= 0.0 { -1 } else { 1 };
    let upy = if o.eta >= 0.0 { -1 } else { 1 };
    let upz = if o.xi >= 0.0 { -1 } else { 1 };

    let _ = e;
    for &z in &zs {
        for &y in &ys {
            for &x in &xs {
                let c = IntVector::new(x, y, z);
                if props.is_wall(c) {
                    // Wall cell: emits ε·σT⁴/π into all downstream cells.
                    intensity[c] = props.abskg[c] * props.sigma_t4_over_pi[c];
                    continue;
                }
                let up = |d: IntVector| -> f64 {
                    let u = c + d;
                    if region.contains(u) {
                        intensity[u]
                    } else {
                        0.0 // cold black enclosure
                    }
                };
                let kappa = props.abskg[c];
                let num = kappa * props.sigma_t4_over_pi[c]
                    + ax * up(IntVector::new(upx, 0, 0))
                    + ay * up(IntVector::new(0, upy, 0))
                    + az * up(IntVector::new(0, 0, upz));
                intensity[c] = num / (kappa + ax + ay + az);
            }
        }
    }
}

/// Solve the grey RTE *with isotropic scattering* by source iteration:
/// the scattering source `σ_s/(4π)·G` couples all ordinates, so DOM must
/// iterate sweeps until `G` converges — the cost structure the paper
/// contrasts with RMCRT (where scattering is just a direction change, see
/// [`crate::scatter`]).
///
/// Returns the solution and the number of source iterations performed.
pub fn solve_with_scattering(
    props: &LevelProps,
    order: SnOrder,
    sigma_s: f64,
    tol: f64,
    max_iters: usize,
) -> (DomSolution, usize) {
    solve_with_scattering_exec(props, order, sigma_s, tol, max_iters, &ExecSpace::Serial)
}

/// [`solve_with_scattering`] dispatched on an execution space. Within one
/// source iteration every ordinate sweeps against the *previous* `G`, so
/// the per-iteration fan-out is per ordinate, followed by a canonical-order
/// accumulation — bit-identical to the serial source iteration.
pub fn solve_with_scattering_exec(
    props: &LevelProps,
    order: SnOrder,
    sigma_s: f64,
    tol: f64,
    max_iters: usize,
    space: &ExecSpace,
) -> (DomSolution, usize) {
    props.validate();
    assert!(sigma_s >= 0.0);
    let region = props.region;
    let ords = ordinates(order);
    let mut g = CcVariable::<f64>::new(region);
    let mut iters = 0;
    loop {
        iters += 1;
        let intensities = parallel_map(space, ords.len(), |m| {
            let mut intensity = CcVariable::<f64>::new(region);
            sweep_scattering(props, &ords[m], sigma_s, &g, &mut intensity);
            intensity
        });
        let mut g_new = CcVariable::<f64>::new(region);
        for (o, intensity) in ords.iter().zip(&intensities) {
            for (gi, ii) in g_new.as_mut_slice().iter_mut().zip(intensity.as_slice()) {
                *gi += o.weight * ii;
            }
        }
        // Convergence on the incident radiation.
        let mut max_diff = 0.0f64;
        let mut max_g = 1e-300f64;
        for (a, b) in g_new.as_slice().iter().zip(g.as_slice()) {
            max_diff = max_diff.max((a - b).abs());
            max_g = max_g.max(a.abs());
        }
        g = g_new;
        if max_diff / max_g < tol || iters >= max_iters {
            break;
        }
    }
    let div_q = parallel_fill(space, region, |c| {
        let kappa = props.abskg[c];
        if props.is_wall(c) || kappa == 0.0 {
            0.0
        } else {
            // Only absorption deposits energy.
            4.0 * PI * kappa * props.sigma_t4_over_pi[c] - kappa * g[c]
        }
    });
    let updates = region.volume() * ords.len() * iters;
    (
        DomSolution {
            g,
            div_q,
            cell_ordinate_updates: updates,
        },
        iters,
    )
}

/// Upwind sweep with extinction β = κ + σ_s and source
/// `κS + σ_s/(4π)·G_prev`.
fn sweep_scattering(
    props: &LevelProps,
    o: &Ordinate,
    sigma_s: f64,
    g_prev: &CcVariable<f64>,
    intensity: &mut CcVariable<f64>,
) {
    let region = props.region;
    let dx = props.dx;
    let ax = o.mu.abs() / dx.x;
    let ay = o.eta.abs() / dx.y;
    let az = o.xi.abs() / dx.z;
    let xs: Vec<i32> = if o.mu >= 0.0 {
        (region.lo().x..region.hi().x).collect()
    } else {
        (region.lo().x..region.hi().x).rev().collect()
    };
    let ys: Vec<i32> = if o.eta >= 0.0 {
        (region.lo().y..region.hi().y).collect()
    } else {
        (region.lo().y..region.hi().y).rev().collect()
    };
    let zs: Vec<i32> = if o.xi >= 0.0 {
        (region.lo().z..region.hi().z).collect()
    } else {
        (region.lo().z..region.hi().z).rev().collect()
    };
    let upx = if o.mu >= 0.0 { -1 } else { 1 };
    let upy = if o.eta >= 0.0 { -1 } else { 1 };
    let upz = if o.xi >= 0.0 { -1 } else { 1 };
    for &z in &zs {
        for &y in &ys {
            for &x in &xs {
                let c = IntVector::new(x, y, z);
                if props.is_wall(c) {
                    intensity[c] = props.abskg[c] * props.sigma_t4_over_pi[c];
                    continue;
                }
                let up = |d: IntVector| -> f64 {
                    let u = c + d;
                    if region.contains(u) {
                        intensity[u]
                    } else {
                        0.0
                    }
                };
                let kappa = props.abskg[c];
                let beta = kappa + sigma_s;
                let source = kappa * props.sigma_t4_over_pi[c] + sigma_s / (4.0 * PI) * g_prev[c];
                let num = source
                    + ax * up(IntVector::new(upx, 0, 0))
                    + ay * up(IntVector::new(0, upy, 0))
                    + az * up(IntVector::new(0, 0, upz));
                intensity[c] = num / (beta + ax + ay + az);
            }
        }
    }
}

/// Quantify false scattering: trace a collimated beam (hot wall strip on
/// the x=lo face) through a transparent medium and report the fraction of
/// the exit-face energy that lies outside the geometric beam footprint.
/// DOM smears the beam (false scattering); RMCRT keeps it sharp.
pub fn beam_spread_dom(n: i32, order: SnOrder) -> f64 {
    let region = Region::cube(n);
    let dx = 1.0 / n as f64;
    let mut props = LevelProps::uniform(region, uintah_grid::Vector::splat(dx), 0.0, 0.0);
    // Hot wall strip: x = 0 face, central third in y/z.
    let third = n / 3;
    for c in region.cells() {
        if c.x == 0 {
            props.cell_type[c] = crate::props::WALL_CELL;
            props.abskg[c] = 1.0;
            let in_strip = c.y >= third && c.y < 2 * third && c.z >= third && c.z < 2 * third;
            props.sigma_t4_over_pi[c] = if in_strip { 1.0 } else { 0.0 };
        }
    }
    let sol = solve(&props, order);
    // Energy on the exit face (x = n-1) inside vs outside the strip shadow.
    let mut inside = 0.0;
    let mut outside = 0.0;
    for y in 0..n {
        for z in 0..n {
            let c = IntVector::new(n - 1, y, z);
            let e = sol.g[c];
            let in_strip = y >= third && y < 2 * third && z >= third && z < 2 * third;
            if in_strip {
                inside += e;
            } else {
                outside += e;
            }
        }
    }
    outside / (inside + outside).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Vector;

    #[test]
    fn ordinate_counts_and_normalization() {
        for order in [SnOrder::S2, SnOrder::S4, SnOrder::S6, SnOrder::S8] {
            let ords = ordinates(order);
            assert_eq!(ords.len(), order.num_ordinates());
            let total: f64 = ords.iter().map(|o| o.weight).sum();
            assert!((total - 4.0 * PI).abs() < 1e-10, "{order:?} weights {total}");
            for o in &ords {
                let len = (o.mu * o.mu + o.eta * o.eta + o.xi * o.xi).sqrt();
                assert!((len - 1.0).abs() < 1e-4, "{order:?} |Ω| = {len}");
            }
        }
    }

    #[test]
    fn first_moment_vanishes() {
        // Σ w Ω = 0 by symmetry (needed for flux consistency).
        for order in [SnOrder::S2, SnOrder::S4, SnOrder::S8] {
            let (mut sx, mut sy, mut sz) = (0.0, 0.0, 0.0);
            for o in ordinates(order) {
                sx += o.weight * o.mu;
                sy += o.weight * o.eta;
                sz += o.weight * o.xi;
            }
            assert!(sx.abs() < 1e-10 && sy.abs() < 1e-10 && sz.abs() < 1e-10);
        }
    }

    #[test]
    fn equilibrium_gives_zero_div_q() {
        // Isothermal medium with isothermal hot black walls: G = 4σT⁴,
        // ∇·q = 0 — exactly, because the upwind sweep is exact for
        // constant source.
        let n = 12;
        let s = 0.5;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, s);
        for c in props.region.cells() {
            let e = props.region.extent();
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = crate::props::WALL_CELL;
                props.abskg[c] = 1.0;
            }
        }
        let sol = solve(&props, SnOrder::S4);
        let c = IntVector::splat(n / 2);
        assert!(
            sol.div_q[c].abs() < 1e-9,
            "equilibrium divQ {}",
            sol.div_q[c]
        );
        assert!((sol.g[c] - 4.0 * PI * s).abs() < 1e-9);
    }

    #[test]
    fn cold_walls_net_emission_positive() {
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let sol = solve(&props, SnOrder::S4);
        let dq = sol.div_q[IntVector::splat(n / 2)];
        assert!(dq > 0.0, "hot medium between cold walls must emit: {dq}");
    }

    #[test]
    fn dom_and_rmcrt_agree_on_uniform_problem() {
        // Same physical setup; DOM S8 vs RMCRT with many rays should agree
        // within a few percent at the domain centre.
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let dom_dq = solve(&props, SnOrder::S8).div_q[IntVector::splat(n / 2)];
        let stack = [crate::trace::TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let mc_dq = crate::solver::div_q_for_cell(
            &stack,
            IntVector::splat(n / 2),
            &crate::solver::RmcrtParams {
                nrays: 4096,
                threshold: 1e-6,
                ..Default::default()
            },
        );
        let rel = (dom_dq - mc_dq).abs() / mc_dq.abs();
        assert!(rel < 0.08, "DOM {dom_dq} vs RMCRT {mc_dq} (rel {rel})");
    }

    #[test]
    fn false_scattering_decreases_with_order() {
        let s4 = beam_spread_dom(18, SnOrder::S4);
        let s8 = beam_spread_dom(18, SnOrder::S8);
        assert!(s4 > 0.05, "S4 should visibly smear the beam: {s4}");
        assert!(s8 <= s4 + 1e-12, "higher order smears no more: {s8} vs {s4}");
    }

    #[test]
    fn zero_scattering_reduces_to_plain_solve() {
        let props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 0.7);
        let plain = solve(&props, SnOrder::S4);
        let (scat, iters) = solve_with_scattering(&props, SnOrder::S4, 0.0, 1e-10, 50);
        // σ_s = 0 decouples the ordinates: converged after the 2nd sweep
        // confirms nothing changed.
        assert!(iters <= 2, "needless iterations: {iters}");
        for c in props.region.cells() {
            assert!((plain.div_q[c] - scat.div_q[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn scattering_requires_more_iterations_at_higher_albedo() {
        let props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 0.7);
        let (_, thin) = solve_with_scattering(&props, SnOrder::S2, 0.5, 1e-8, 200);
        let (_, thick) = solve_with_scattering(&props, SnOrder::S2, 8.0, 1e-8, 200);
        assert!(
            thick > thin,
            "higher albedo must slow source iteration: {thick} vs {thin}"
        );
    }

    #[test]
    fn dom_scattering_traps_radiation_like_rmcrt() {
        // Mirrors scatter::tests::scattering_traps_radiation: divQ at the
        // centre decreases as σ_s grows (radiation trapped).
        let n = 12;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let (clear, _) = solve_with_scattering(&props, SnOrder::S4, 0.0, 1e-8, 100);
        let (hazy, _) = solve_with_scattering(&props, SnOrder::S4, 5.0, 1e-8, 100);
        let c = IntVector::splat(n / 2);
        assert!(hazy.div_q[c] < clear.div_q[c] * 0.95);
        assert!(hazy.div_q[c] > 0.0);
    }

    #[test]
    fn dom_and_collision_mc_agree_with_scattering() {
        // Cross-validate the two scattering implementations.
        let n = 10;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let sigma_s = 2.0;
        let (dom, _) = solve_with_scattering(&props, SnOrder::S8, sigma_s, 1e-8, 200);
        let mc = crate::scatter::div_q_with_scattering(
            &props,
            &crate::scatter::ScatteringMedium {
                sigma_s,
                phase: crate::scatter::PhaseFunction::Isotropic,
            },
            IntVector::splat(n / 2),
            6000,
            1e-4,
            17,
        );
        let c = IntVector::splat(n / 2);
        let rel = (dom.div_q[c] - mc).abs() / mc.abs();
        assert!(rel < 0.1, "DOM {} vs MC {} (rel {rel})", dom.div_q[c], mc);
    }

    #[test]
    fn sweep_cost_scales_with_ordinates() {
        let props = LevelProps::uniform(Region::cube(8), Vector::splat(0.125), 1.0, 1.0);
        let a = solve(&props, SnOrder::S2).cell_ordinate_updates;
        let b = solve(&props, SnOrder::S4).cell_ordinate_updates;
        assert_eq!(b / a, 3, "S4 has 3x the ordinates of S2");
    }
}
