//! Uintah-runtime task declarations for the RMCRT pipelines.
//!
//! These are the library's equivalents of `Ray::sched_rayTrace` /
//! `Ray::sched_rayTrace_dataOnion` in Uintah: they wire the physics into
//! the distributed runtime so the benchmark runs across ranks, threads and
//! (simulated) GPUs.
//!
//! * [`multilevel_decls`] — the paper's data-onion algorithm: properties are
//!   computed on the fine mesh, restricted onto every coarse level, the
//!   coarse replicas are assembled by the all-to-all, and each fine patch
//!   traces rays on (fine ROI + coarse replicas).
//! * [`single_level_decls`] — the original single fine mesh algorithm whose
//!   `O(N²)` replication motivates the multi-level scheme.

use crate::benchmark::BurnsChriston;
use crate::labels::{ABSKG, CELLTYPE, DIVQ, SIGMA_T4_OVER_PI};
use crate::props::LevelProps;
use crate::solver::{solve_region, solve_region_exec, RmcrtParams};
use crate::trace::TraceLevel;
use std::sync::Arc;
use uintah_exec::ops;
use uintah_grid::{CcVariable, FieldData, Grid, LevelIndex, Region, VarLabel};
use uintah_runtime::graph::ratio_between;
use uintah_runtime::{Computes, Requirement, TaskContext, TaskDecl};

/// Configuration of an RMCRT pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RmcrtPipeline {
    pub params: RmcrtParams,
    /// Fine-level ROI halo in cells (ghost requirement of the trace task).
    pub halo: i32,
    pub problem: BurnsChriston,
}

impl Default for RmcrtPipeline {
    fn default() -> Self {
        Self {
            params: RmcrtParams::default(),
            halo: 4,
            problem: BurnsChriston::default(),
        }
    }
}

const PROP_LABELS: [VarLabel; 3] = [ABSKG, SIGMA_T4_OVER_PI, CELLTYPE];

/// Build the "initProperties" task: evaluate the benchmark's radiative
/// properties on each fine patch and deposit restriction windows for every
/// coarse level in `coarse_levels`.
fn init_props_decl(problem: BurnsChriston, fine_li: LevelIndex, coarse_levels: Vec<LevelIndex>) -> TaskDecl {
    let levels_for_windows = coarse_levels.clone();
    let mut decl = TaskDecl::new(
        "RMCRT::initProperties",
        fine_li,
        Arc::new(move |ctx: &mut TaskContext| {
            let level = ctx.grid().level(ctx.patch().level_index());
            let region = ctx.patch().interior();
            let props = problem.props_for_region(level, region);
            // Restriction windows onto every coarse level.
            for &li in &levels_for_windows {
                if li == ctx.patch().level_index() {
                    // Single-level mode: the "window" is the patch itself.
                    ctx.put_level_window(ABSKG, li, region, FieldData::F64(props.abskg.clone()));
                    ctx.put_level_window(
                        SIGMA_T4_OVER_PI,
                        li,
                        region,
                        FieldData::F64(props.sigma_t4_over_pi.clone()),
                    );
                    ctx.put_level_window(CELLTYPE, li, region, FieldData::U8(props.cell_type.clone()));
                } else {
                    let rr = ratio_between(ctx.grid(), ctx.patch().level_index(), li);
                    let window = region.coarsened(rr);
                    let space = ctx.exec_space();
                    ctx.put_level_window(
                        ABSKG,
                        li,
                        window,
                        FieldData::F64(ops::restrict_average(space, &props.abskg, rr, window)),
                    );
                    ctx.put_level_window(
                        SIGMA_T4_OVER_PI,
                        li,
                        window,
                        FieldData::F64(ops::restrict_average(
                            space,
                            &props.sigma_t4_over_pi,
                            rr,
                            window,
                        )),
                    );
                    ctx.put_level_window(
                        CELLTYPE,
                        li,
                        window,
                        FieldData::U8(ops::restrict_cell_type(space, &props.cell_type, rr, window)),
                    );
                }
            }
            ctx.put(ABSKG, FieldData::F64(props.abskg));
            ctx.put(SIGMA_T4_OVER_PI, FieldData::F64(props.sigma_t4_over_pi));
            ctx.put(CELLTYPE, FieldData::U8(props.cell_type));
        }),
    )
    .computes(Computes::PatchVar(ABSKG))
    .computes(Computes::PatchVar(SIGMA_T4_OVER_PI))
    .computes(Computes::PatchVar(CELLTYPE));
    for &li in &coarse_levels {
        for l in PROP_LABELS {
            decl = decl.computes(Computes::LevelWindow(l, li));
        }
    }
    decl
}

/// Assemble fine-ROI props from the (ghosted) data warehouse.
fn fine_roi_props(ctx: &TaskContext, halo: i32) -> LevelProps {
    let level = ctx.grid().level(ctx.patch().level_index());
    let abskg = ctx.get_ghosted_f64(ABSKG, halo);
    let region = abskg.region();
    LevelProps {
        region,
        anchor: level.anchor(),
        dx: level.dx(),
        abskg,
        sigma_t4_over_pi: ctx.get_ghosted_f64(SIGMA_T4_OVER_PI, halo),
        cell_type: ctx.get_ghosted_u8(CELLTYPE, halo),
    }
}

/// Assemble a coarse level's props from the sealed whole-level replicas.
fn coarse_level_props(ctx: &TaskContext, li: LevelIndex) -> LevelProps {
    let level = ctx.grid().level(li);
    LevelProps {
        region: level.cell_region(),
        anchor: level.anchor(),
        dx: level.dx(),
        abskg: ctx.get_level(ABSKG, li).as_f64().clone(),
        sigma_t4_over_pi: ctx.get_level(SIGMA_T4_OVER_PI, li).as_f64().clone(),
        cell_type: ctx.get_level(CELLTYPE, li).as_u8().clone(),
    }
}

/// The ray-trace body shared by the CPU and GPU task variants.
fn trace_patch(ctx: &TaskContext, pipeline: &RmcrtPipeline, coarse_levels: &[LevelIndex]) -> CcVariable<f64> {
    let fine = fine_roi_props(ctx, pipeline.halo);
    let coarse: Vec<LevelProps> = coarse_levels.iter().map(|&li| coarse_level_props(ctx, li)).collect();
    let grid = ctx.grid();
    let fine_li = ctx.patch().level_index();
    // Stack: coarsest .. finest. Intermediate levels use a coarsened-ROI
    // plus halo; the coarsest uses its whole region.
    let mut stack: Vec<TraceLevel> = Vec::with_capacity(coarse.len() + 1);
    for (k, props) in coarse.iter().enumerate() {
        let li = coarse_levels[k];
        let roi = if li == coarse_levels[0] {
            props.region
        } else {
            let rr = ratio_between(grid, fine_li, li);
            ctx.patch()
                .interior()
                .coarsened(rr)
                .grown(pipeline.halo)
                .intersect(&props.region)
        };
        stack.push(TraceLevel { props, roi });
    }
    stack.push(TraceLevel {
        props: &fine,
        roi: fine.region,
    });
    // Dispatch on the scheduler-picked space: the metered Device space for
    // GPU tasks (one kernel launch per patch), a host space otherwise.
    solve_region_exec(&stack, ctx.patch().interior(), &pipeline.params, ctx.exec_space())
}

/// The trace task: CPU variant computes directly; GPU variant stages fine
/// inputs into the patch DB and coarse replicas through the *level
/// database* (one shared copy per level — contribution ii), runs the
/// "kernel", and brings `divQ` back over the metered PCIe path.
fn trace_decl(pipeline: RmcrtPipeline, fine_li: LevelIndex, coarse_levels: Vec<LevelIndex>, gpu: bool) -> TaskDecl {
    let cl = coarse_levels.clone();
    let body: uintah_runtime::TaskFn = Arc::new(move |ctx: &mut TaskContext| {
        if let (true, Some(gdw)) = (gpu, ctx.gpu()) {
            // Stage coarse replicas via the level DB (uploaded at most once
            // per level per timestep, shared by all patch tasks). The
            // handles stay alive until the kernel completes — without the
            // level DB this is what multiplies device memory by the number
            // of resident patch tasks. The epoch-aware variant keeps the
            // replica device-resident across timesteps, re-uploading only
            // bytes that actually changed since the last radiation solve.
            // Replicas land on the device this task's kernels dispatch to
            // (its patch's home device in the fleet): one shared copy per
            // level per *device*, never one per patch task.
            let dev = ctx.device_id();
            let mut staged = Vec::new();
            for &li in &cl {
                for l in PROP_LABELS {
                    let host = ctx.get_level(l, li);
                    staged.push(
                        gdw.ensure_level_fresh_on(dev, l, li, || (*host).clone())
                            .expect("device OOM staging level replica"),
                    );
                }
            }
            // Stage fine ROI inputs per patch.
            let fine = fine_roi_props(ctx, pipeline.halo);
            let pid = ctx.patch().id();
            gdw.put_patch(ABSKG, pid, FieldData::F64(fine.abskg.clone()))
                .expect("device OOM staging abskg");
            gdw.put_patch(SIGMA_T4_OVER_PI, pid, FieldData::F64(fine.sigma_t4_over_pi.clone()))
                .expect("device OOM staging sigmaT4");
            gdw.put_patch(CELLTYPE, pid, FieldData::U8(fine.cell_type.clone()))
                .expect("device OOM staging cellType");
            // Kernel: same slab-ordered math, dispatched on the Device
            // space — one metered launch per patch task.
            let div_q = trace_patch(ctx, &pipeline, &cl);
            gdw.alloc_patch_output(DIVQ, pid, FieldData::F64(div_q))
                .expect("device OOM for divQ");
            // Output crosses PCIe back on the D2H copy engine: the drain is
            // posted asynchronously (or completed inline in the synchronous
            // ablation) and the task returns without blocking — the first
            // downstream consumer materializes the host data, paying only
            // the part of the drain compute didn't hide. Inputs are dropped
            // in place.
            let out = gdw
                .take_patch_to_host_async(DIVQ, pid)
                .expect("divQ staged above");
            for l in PROP_LABELS {
                gdw.drop_patch(l, pid);
            }
            drop(staged); // release this task's claim on the replicas
            ctx.put_pending(DIVQ, out);
        } else {
            let div_q = trace_patch(ctx, &pipeline, &cl);
            ctx.put(DIVQ, FieldData::F64(div_q));
        }
    });
    let mut decl = TaskDecl::new(
        if gpu { "RMCRT::rayTraceGPU" } else { "RMCRT::rayTrace" },
        fine_li,
        body,
    )
    .requires(Requirement::Ghost(ABSKG, pipeline.halo))
    .requires(Requirement::Ghost(SIGMA_T4_OVER_PI, pipeline.halo))
    .requires(Requirement::Ghost(CELLTYPE, pipeline.halo))
    .computes(Computes::PatchVar(DIVQ));
    if gpu {
        decl = decl.on_gpu();
    }
    for &li in &coarse_levels {
        for l in PROP_LABELS {
            decl = decl.requires(Requirement::WholeLevel(l, li));
        }
    }
    decl
}

/// The multi-level (data-onion) pipeline for `grid`: properties on the fine
/// mesh, restriction windows to every coarser level, trace on fine ROI +
/// coarse replicas.
pub fn multilevel_decls(grid: &Grid, pipeline: RmcrtPipeline, gpu: bool) -> Vec<TaskDecl> {
    let fine_li = grid.fine_level_index();
    assert!(grid.num_levels() >= 2, "multi-level RMCRT needs >= 2 levels");
    // Restriction windows must tile each coarse level exactly: the fine
    // patch size must be divisible by the cumulative refinement ratio to
    // every coarse level.
    let psize = grid.fine_level().patch_size();
    for li in 0..fine_li {
        let rr = ratio_between(grid, fine_li, li);
        for a in 0..3 {
            assert!(
                psize[a] % rr[a] == 0,
                "fine patch size {psize:?} not divisible by the cumulative \
                 refinement ratio {rr:?} to level {li}: restriction windows \
                 would overlap"
            );
        }
    }
    let coarse: Vec<LevelIndex> = (0..fine_li).collect();
    vec![
        init_props_decl(pipeline.problem, fine_li, coarse.clone()),
        trace_decl(pipeline, fine_li, coarse, gpu),
    ]
}

/// The single-level pipeline: the whole fine mesh is replicated on every
/// rank (the `O(N²)` scheme the paper replaced).
pub fn single_level_decls(grid: &Grid, pipeline: RmcrtPipeline, gpu: bool) -> Vec<TaskDecl> {
    let fine_li = grid.fine_level_index();
    vec![
        init_props_decl(pipeline.problem, fine_li, vec![fine_li]),
        single_level_trace_decl(pipeline, fine_li, gpu),
    ]
}

fn single_level_trace_decl(pipeline: RmcrtPipeline, fine_li: LevelIndex, gpu: bool) -> TaskDecl {
    let body: uintah_runtime::TaskFn = Arc::new(move |ctx: &mut TaskContext| {
        let level = ctx.grid().level(fine_li);
        if let (true, Some(gdw)) = (gpu, ctx.gpu()) {
            let dev = ctx.device_id();
            for l in PROP_LABELS {
                let host = ctx.get_level(l, fine_li);
                gdw.ensure_level_fresh_on(dev, l, fine_li, || (*host).clone())
                    .expect("device OOM staging fine replica");
            }
        }
        let props = LevelProps {
            region: level.cell_region(),
            anchor: level.anchor(),
            dx: level.dx(),
            abskg: ctx.get_level(ABSKG, fine_li).as_f64().clone(),
            sigma_t4_over_pi: ctx.get_level(SIGMA_T4_OVER_PI, fine_li).as_f64().clone(),
            cell_type: ctx.get_level(CELLTYPE, fine_li).as_u8().clone(),
        };
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let div_q = solve_region_exec(&stack, ctx.patch().interior(), &pipeline.params, ctx.exec_space());
        ctx.put(DIVQ, FieldData::F64(div_q));
    });
    let mut decl = TaskDecl::new(
        if gpu {
            "RMCRT::rayTrace1LGPU"
        } else {
            "RMCRT::rayTrace1L"
        },
        fine_li,
        body,
    )
    .computes(Computes::PatchVar(DIVQ));
    if gpu {
        decl = decl.on_gpu();
    }
    for l in PROP_LABELS {
        decl = decl.requires(Requirement::WholeLevel(l, fine_li));
    }
    decl
}

/// Reference solve: single-level RMCRT over the whole fine mesh, serial,
/// no runtime involved. Ground truth for the distributed tests.
pub fn reference_single_level(grid: &Grid, pipeline: &RmcrtPipeline) -> CcVariable<f64> {
    let level = grid.fine_level();
    let props = pipeline.problem.props_for_level(level);
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    solve_region(&stack, level.cell_region(), &pipeline.params)
}

/// Reference multi-level solve without the runtime: exact restriction of
/// the fine properties to each coarse level, per-patch ROI tracing.
pub fn reference_multilevel(grid: &Grid, pipeline: &RmcrtPipeline) -> CcVariable<f64> {
    let fine_level = grid.fine_level();
    let fine_li = grid.fine_level_index();
    let fine_props_all = pipeline.problem.props_for_level(fine_level);
    let serial = uintah_exec::ExecSpace::Serial;
    let mut coarse_props: Vec<LevelProps> = Vec::new();
    for li in 0..fine_li {
        let level = grid.level(li);
        let rr = ratio_between(grid, fine_li, li);
        let region = level.cell_region();
        coarse_props.push(LevelProps {
            region,
            anchor: level.anchor(),
            dx: level.dx(),
            abskg: ops::restrict_average(&serial, &fine_props_all.abskg, rr, region),
            sigma_t4_over_pi: ops::restrict_average(&serial, &fine_props_all.sigma_t4_over_pi, rr, region),
            cell_type: ops::restrict_cell_type(&serial, &fine_props_all.cell_type, rr, region),
        });
    }
    let mut out = CcVariable::new(fine_level.cell_region());
    for patch in fine_level.patches() {
        let roi: Region = patch
            .with_ghosts(pipeline.halo)
            .intersect(&fine_level.cell_region());
        let fine_roi = pipeline.problem.props_for_region(fine_level, roi);
        let mut stack: Vec<TraceLevel> = Vec::new();
        for (k, props) in coarse_props.iter().enumerate() {
            let roi_k = if k == 0 {
                props.region
            } else {
                let rr = ratio_between(grid, fine_li, k as LevelIndex);
                patch
                    .interior()
                    .coarsened(rr)
                    .grown(pipeline.halo)
                    .intersect(&props.region)
            };
            stack.push(TraceLevel {
                props,
                roi: roi_k,
            });
        }
        stack.push(TraceLevel {
            props: &fine_roi,
            roi,
        });
        let part = solve_region(&stack, patch.interior(), &pipeline.params);
        out.copy_window(&part, &part.region());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_shapes() {
        let grid = BurnsChriston::small_grid(16, 8);
        let p = RmcrtPipeline {
            params: RmcrtParams {
                nrays: 4,
                ..Default::default()
            },
            halo: 2,
            problem: BurnsChriston::default(),
        };
        let ml = multilevel_decls(&grid, p, false);
        assert_eq!(ml.len(), 2);
        assert_eq!(ml[0].computes.len(), 3 + 3); // patch vars + L0 windows
        assert_eq!(ml[1].requires.len(), 3 + 3); // ghosts + whole-level
        let sl = single_level_decls(&grid, p, true);
        assert_eq!(sl[1].kind, uintah_runtime::TaskKind::Gpu);
    }

    #[test]
    fn reference_solvers_agree_within_mc_error() {
        // Multi-level with a generous halo vs single-level on a smooth
        // problem: the coarse far field changes each ray slightly, but the
        // per-cell divQ must agree within a few percent.
        let grid = BurnsChriston::small_grid(16, 8);
        let p = RmcrtPipeline {
            params: RmcrtParams {
                nrays: 64,
                threshold: 1e-4,
                ..Default::default()
            },
            halo: 4,
            problem: BurnsChriston::default(),
        };
        let sl = reference_single_level(&grid, &p);
        let ml = reference_multilevel(&grid, &p);
        let mut max_rel: f64 = 0.0;
        let mut mean_sl = 0.0;
        for c in sl.region().cells() {
            mean_sl += sl[c].abs();
        }
        mean_sl /= sl.len() as f64;
        for c in sl.region().cells() {
            let rel = (sl[c] - ml[c]).abs() / mean_sl;
            max_rel = max_rel.max(rel);
        }
        assert!(
            max_rel < 0.35,
            "multi-level deviates {max_rel} (relative to mean |divQ| {mean_sl})"
        );
    }
}
