//! Virtual radiometer: incident radiative flux on a small detector.
//!
//! Uintah's `Radiometer` class reuses the RMCRT machinery to predict what a
//! physical radiometer mounted in the boiler wall would read: rays are
//! traced backwards from the detector into its viewing cone and the
//! incident flux is the cosine-weighted integral of the incoming intensity
//! over the cone solid angle.

use crate::packet::{PacketTracer, RayPacket};
use crate::rng::CellRng;
use crate::trace::{TraceLevel, TraceOptions};
use std::f64::consts::PI;
use uintah_grid::{IntVector, Point, Vector};

/// A virtual radiometer.
#[derive(Clone, Copy, Debug)]
pub struct Radiometer {
    /// Detector location (must lie in a flow cell of the finest level).
    pub position: Point,
    /// Unit normal of the detector (centre of the viewing cone).
    pub normal: Vector,
    /// Viewing half-angle θ_max in radians (π/2 = hemispherical).
    pub half_angle: f64,
    /// Rays to sample.
    pub nrays: u32,
    /// Monte Carlo seed.
    pub seed: u64,
}

impl Radiometer {
    /// Measure the incident flux (W/m²) through the detector:
    /// `q = ∫_cone I(Ω) cosθ dΩ`, estimated by uniform sampling of the cone
    /// solid angle `Ω_c = 2π(1 − cos θ_max)`.
    pub fn measure(&self, levels: &[TraceLevel<'_>], threshold: f64) -> f64 {
        let tracer = PacketTracer::new(
            levels,
            TraceOptions {
                threshold,
                max_reflections: 0,
            },
        );
        self.measure_with(&tracer)
    }

    /// [`measure`](Self::measure) against a prepared [`PacketTracer`]: the
    /// cone's rays are packed once and marched as a single packet.
    pub fn measure_with(&self, tracer: &PacketTracer<'_>) -> f64 {
        assert!((self.normal.length() - 1.0).abs() < 1e-9, "normal must be unit");
        assert!(self.half_angle > 0.0 && self.half_angle <= PI / 2.0 + 1e-12);
        let cos_max = self.half_angle.cos();
        let omega_c = 2.0 * PI * (1.0 - cos_max);
        // Orthonormal basis around the normal.
        let n = self.normal;
        let helper = if n.x.abs() < 0.9 {
            Vector::new(1.0, 0.0, 0.0)
        } else {
            Vector::new(0.0, 1.0, 0.0)
        };
        let u = n.cross(helper).normalized();
        let v = n.cross(u);
        let mut packet = RayPacket::with_capacity(self.nrays as usize);
        let mut cos_ts = Vec::with_capacity(self.nrays as usize);
        for r in 0..self.nrays {
            let mut rng = CellRng::new(self.seed, IntVector::ZERO, r, 0);
            // Uniform over the cone solid angle.
            let cos_t = 1.0 - rng.next_f64() * (1.0 - cos_max);
            let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
            let phi = 2.0 * PI * rng.next_f64();
            let dir = (n * cos_t + u * (sin_t * phi.cos()) + v * (sin_t * phi.sin())).normalized();
            packet.push(self.position, dir);
            cos_ts.push(cos_t);
        }
        tracer.trace(&mut packet);
        let mut sum = 0.0;
        for (cos_t, sum_i) in cos_ts.iter().zip(&packet.sum_i) {
            sum += sum_i * cos_t;
        }
        sum / self.nrays as f64 * omega_c
    }

    /// [`measure`](Self::measure) dispatched on an execution space: the
    /// packet is split into fixed chunks and each chunk marches as one
    /// `parallel_map` work item. Bit-identical to the serial measure (the
    /// per-ray estimates are reassembled in ray order before folding).
    pub fn measure_exec(
        &self,
        levels: &[TraceLevel<'_>],
        threshold: f64,
        space: &uintah_exec::ExecSpace,
    ) -> f64 {
        assert!((self.normal.length() - 1.0).abs() < 1e-9, "normal must be unit");
        assert!(self.half_angle > 0.0 && self.half_angle <= PI / 2.0 + 1e-12);
        let tracer = PacketTracer::new(
            levels,
            TraceOptions {
                threshold,
                max_reflections: 0,
            },
        );
        let cos_max = self.half_angle.cos();
        let omega_c = 2.0 * PI * (1.0 - cos_max);
        let n = self.normal;
        let helper = if n.x.abs() < 0.9 {
            Vector::new(1.0, 0.0, 0.0)
        } else {
            Vector::new(0.0, 1.0, 0.0)
        };
        let u = n.cross(helper).normalized();
        let v = n.cross(u);
        const CHUNK: u32 = 256;
        let chunks = self.nrays.div_ceil(CHUNK) as usize;
        let partial = uintah_exec::parallel_map(space, chunks, |ci| {
            let first = ci as u32 * CHUNK;
            let count = CHUNK.min(self.nrays - first);
            let mut packet = RayPacket::with_capacity(count as usize);
            let mut cos_ts = Vec::with_capacity(count as usize);
            for r in first..first + count {
                let mut rng = CellRng::new(self.seed, IntVector::ZERO, r, 0);
                let cos_t = 1.0 - rng.next_f64() * (1.0 - cos_max);
                let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
                let phi = 2.0 * PI * rng.next_f64();
                let dir =
                    (n * cos_t + u * (sin_t * phi.cos()) + v * (sin_t * phi.sin())).normalized();
                packet.push(self.position, dir);
                cos_ts.push(cos_t);
            }
            tracer.trace(&mut packet);
            packet
                .sum_i
                .iter()
                .zip(&cos_ts)
                .map(|(&s, &c)| s * c)
                .collect::<Vec<f64>>()
        });
        let mut sum = 0.0;
        for chunk in &partial {
            for &w in chunk {
                sum += w;
            }
        }
        sum / self.nrays as f64 * omega_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{LevelProps, WALL_CELL};
    use uintah_grid::Region;

    /// Detector facing an isothermal black enclosure filled with hot thick
    /// medium: I = σT⁴/π in every direction, so
    /// q = (σT⁴/π)·∫cosθ dΩ = σT⁴·sin²θ_max.
    #[test]
    fn isotropic_field_gives_sin2_law() {
        let s = 2.0; // σT⁴/π
        let props = LevelProps::uniform(Region::cube(16), Vector::splat(1.0 / 16.0), 1e4, s);
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        for half in [0.3f64, 0.8, PI / 2.0] {
            let r = Radiometer {
                position: Point::new(0.5, 0.5, 0.5),
                normal: Vector::new(0.0, 0.0, 1.0),
                half_angle: half,
                nrays: 4000,
                seed: 11,
            };
            let q = r.measure(&stack, 1e-9);
            let expect = s * PI * half.sin().powi(2);
            let rel = (q - expect).abs() / expect;
            assert!(rel < 0.05, "half {half}: q {q} vs {expect} (rel {rel})");
        }
    }

    /// Detector in vacuum looking at a hot wall that fills its cone: reads
    /// ε·σT⁴·sin²θ_max; looking away: reads 0.
    #[test]
    fn directional_sensitivity() {
        let n = 16;
        let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 0.0, 0.0);
        let s_wall = 3.0;
        for c in Region::new(IntVector::new(n - 1, 0, 0), IntVector::new(n, n, n)).cells() {
            props.cell_type[c] = WALL_CELL;
            props.abskg[c] = 1.0;
            props.sigma_t4_over_pi[c] = s_wall;
        }
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let toward = Radiometer {
            position: Point::new(0.5, 0.5, 0.5),
            normal: Vector::new(1.0, 0.0, 0.0),
            half_angle: 0.35,
            nrays: 2000,
            seed: 5,
        };
        let q = toward.measure(&stack, 1e-9);
        let expect = s_wall * PI * 0.35f64.sin().powi(2);
        assert!((q - expect).abs() / expect < 0.05, "toward: {q} vs {expect}");
        let away = Radiometer {
            normal: Vector::new(-1.0, 0.0, 0.0),
            ..toward
        };
        assert_eq!(away.measure(&stack, 1e-9), 0.0, "cold side must read zero");
    }

    /// The chunked exec dispatch reassembles per-ray estimates in ray
    /// order, so it is bit-identical to the serial measure on any space —
    /// including ray counts that do not divide the chunk size.
    #[test]
    fn measure_exec_bit_identical_across_spaces() {
        let props = LevelProps::uniform(Region::cube(12), Vector::splat(1.0 / 12.0), 2.0, 1.3);
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        let r = Radiometer {
            position: Point::new(0.4, 0.5, 0.6),
            normal: Vector::new(0.0, 1.0, 0.0),
            half_angle: 0.7,
            nrays: 300, // not a multiple of the chunk size
            seed: 21,
        };
        let serial = r.measure(&stack, 1e-6);
        for space in [uintah_exec::ExecSpace::Serial, uintah_exec::ExecSpace::Threads(3)] {
            let got = r.measure_exec(&stack, 1e-6, &space);
            assert_eq!(got.to_bits(), serial.to_bits(), "{space:?}");
        }
    }

    #[test]
    #[should_panic(expected = "normal must be unit")]
    fn non_unit_normal_rejected() {
        let props = LevelProps::uniform(Region::cube(4), Vector::splat(0.25), 1.0, 1.0);
        let stack = [TraceLevel {
            props: &props,
            roi: props.region,
        }];
        Radiometer {
            position: Point::new(0.5, 0.5, 0.5),
            normal: Vector::new(2.0, 0.0, 0.0),
            half_angle: 0.5,
            nrays: 10,
            seed: 0,
        }
        .measure(&stack, 1e-6);
    }
}
