//! Admission control: decide from the fleet's capacity meters whether a
//! job may start now, must queue, or can never run.
//!
//! The controller is deliberately conservative: it admits on an *upper
//! bound* of the job's device residency (level replicas on every device of
//! every rank's warehouse, plus fully ghosted per-patch staging on the
//! fine level), so an admitted job can always complete without tripping
//! hard OOM even when eviction is disabled. Jobs whose bound exceeds what
//! is currently free are **queued**, not failed; jobs whose bound exceeds
//! the fleet's *total* capacity are rejected up front with a typed error
//! ([`RejectCode::TooLarge`]) — they could never run, and queuing them
//! forever would wedge the tier behind them.
//!
//! [`RejectCode::TooLarge`]: crate::protocol::RejectCode::TooLarge

use uintah::config::RunConfig;
use uintah_grid::Grid;

/// Bytes per cell of the three level-replica fields a device keeps
/// resident per level: `abskg` (f64) + `sigmaT4OverPi` (f64) +
/// `cellType` (u8).
const REPLICA_BYTES_PER_CELL: u64 = 8 + 8 + 1;

/// Bytes per cell of a fine patch's ghosted input staging (same three
/// fields, over the halo-grown window).
const STAGING_BYTES_PER_CELL: u64 = 8 + 8 + 1;

/// Bytes per cell of a fine patch's divQ output window.
const OUTPUT_BYTES_PER_CELL: u64 = 8;

/// Upper bound on the device bytes a job can have resident at once on the
/// server's shared fleet.
///
/// * **Level replicas** — each rank's GPU warehouse keeps its own
///   replica entry per (level, device it stages patches on). With sticky
///   affinity spreading a rank's patches across the whole fleet, the
///   worst case is every rank replicating every level on every device:
///   `ranks × devices × Σ_levels cells × 17 B`.
/// * **Per-patch staging** — transient within a step, bounded by every
///   fine patch staged at once: halo-grown inputs plus the interior
///   output window.
///
/// CPU-only jobs have zero device footprint.
pub fn estimate_device_footprint(cfg: &RunConfig, grid: &Grid, ndevices: usize) -> u64 {
    if !cfg.gpu {
        return 0;
    }
    let mut replicas = 0u64;
    for level in grid.levels() {
        replicas += level.cell_region().volume() as u64 * REPLICA_BYTES_PER_CELL;
    }
    replicas *= (cfg.ranks as u64) * (ndevices as u64);
    let mut staging = 0u64;
    let fine = grid.fine_level_index();
    for patch in grid.all_patches() {
        if patch.level_index() != fine {
            continue;
        }
        let interior = patch.interior();
        let ghosted = interior.grown(cfg.halo);
        staging += ghosted.volume() as u64 * STAGING_BYTES_PER_CELL
            + interior.volume() as u64 * OUTPUT_BYTES_PER_CELL;
    }
    replicas + staging
}

/// The controller's verdict for one job at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run now: the footprint fits in what the meters say is free.
    Admit,
    /// Fits the fleet but not the current headroom — wait for a
    /// completion (or an idle-slot reclaim) to free device bytes.
    Defer,
    /// Exceeds the fleet's total capacity; can never run.
    TooLarge,
}

/// Decide admission for a job of `footprint` bytes.
///
/// * `total_capacity` — the fleet's summed device capacity;
/// * `reserved` — footprints of currently running jobs (the ledger of
///   future growth, since a job admitted a moment ago may not have
///   uploaded anything yet);
/// * `idle_resident` — bytes still resident in idle executor slots
///   (reclaimable by dropping those slots);
/// * `reusable_resident` — the portion of `idle_resident` held by a slot
///   this job would itself reuse. Those bytes are *part of* the job's
///   footprint (inherited replicas), not competition for it, so they are
///   credited back.
pub fn decide(
    footprint: u64,
    total_capacity: u64,
    reserved: u64,
    idle_resident: u64,
    reusable_resident: u64,
) -> Admission {
    if footprint > total_capacity {
        return Admission::TooLarge;
    }
    let committed = reserved + idle_resident.saturating_sub(reusable_resident);
    if footprint <= total_capacity.saturating_sub(committed) {
        Admission::Admit
    } else {
        Admission::Defer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_jobs_have_zero_footprint() {
        let cfg = RunConfig::default();
        assert!(!cfg.gpu);
        let (grid, _) = cfg.build_problem();
        assert_eq!(estimate_device_footprint(&cfg, &grid, 4), 0);
    }

    #[test]
    fn footprint_scales_with_ranks_and_devices() {
        let cfg = RunConfig {
            gpu: true,
            ..RunConfig::default()
        };
        let (grid, _) = cfg.build_problem();
        let f1 = estimate_device_footprint(&cfg, &grid, 1);
        let f2 = estimate_device_footprint(&cfg, &grid, 2);
        assert!(f1 > 0);
        assert!(f2 > f1, "more devices, more worst-case replicas");
        let cfg4 = RunConfig { ranks: 4, ..cfg };
        assert!(estimate_device_footprint(&cfg4, &grid, 1) > f1);
    }

    #[test]
    fn footprint_bounds_measured_residency() {
        // The bound must dominate what a real single-tenant run actually
        // keeps resident, or admission could let a job OOM.
        let cfg = RunConfig {
            gpu: true,
            fine_cells: 16,
            patch_size: 4,
            ranks: 1,
            threads: 1,
            nrays: 1,
            ..RunConfig::default()
        };
        let (grid, decls) = cfg.build_problem();
        let bound = estimate_device_footprint(&cfg, &grid, 1);
        let result =
            uintah_runtime::run_world(grid, decls, cfg.world_config());
        let peak: usize = result.ranks[0]
            .gpu
            .as_ref()
            .expect("gpu run")
            .fleet()
            .devices()
            .iter()
            .map(|d| d.peak())
            .sum();
        assert!(
            bound >= peak as u64,
            "estimate {bound} must bound measured peak {peak}"
        );
    }

    #[test]
    fn decision_tiers() {
        // Fits free space outright.
        assert_eq!(decide(100, 1000, 0, 0, 0), Admission::Admit);
        // Fits the fleet, not the headroom: queue.
        assert_eq!(decide(600, 1000, 500, 0, 0), Admission::Defer);
        // Idle residency counts against headroom...
        assert_eq!(decide(600, 1000, 0, 500, 0), Admission::Defer);
        // ...unless it belongs to the slot the job reuses.
        assert_eq!(decide(600, 1000, 0, 500, 500), Admission::Admit);
        // Bigger than the machine: typed rejection, never queued.
        assert_eq!(decide(1001, 1000, 0, 0, 0), Admission::TooLarge);
    }
}
