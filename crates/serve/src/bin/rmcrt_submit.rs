//! `rmcrt_submit` — submit a job to a running `rmcrt_serve` and wait for
//! its result.
//!
//! ```text
//! rmcrt_submit /tmp/rmcrt.sock run.cfg        # submit + wait + print report
//! rmcrt_submit /tmp/rmcrt.sock --stats        # server counters
//! rmcrt_submit /tmp/rmcrt.sock --shutdown     # ask the server to drain and exit
//! ```

use std::path::Path;
use uintah_serve::{JobOutcome, ServeClient};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (socket, rest) = match args.split_first() {
        Some((s, rest)) => (Path::new(s), rest),
        None => {
            usage();
            std::process::exit(2);
        }
    };
    let mut client = ServeClient::connect(socket).unwrap_or_else(|e| {
        die(&format!("cannot connect to {}: {e}", socket.display()));
    });
    match rest {
        [flag] if flag == "--stats" => {
            let s = client.stats().unwrap_or_else(|e| die(&e.to_string()));
            println!("{s:#?}");
        }
        [flag] if flag == "--shutdown" => {
            client.shutdown().unwrap_or_else(|e| die(&e.to_string()));
            println!("rmcrt_submit: shutdown acknowledged");
        }
        [cfg_path] => {
            let text = std::fs::read_to_string(cfg_path).unwrap_or_else(|e| {
                die(&format!("cannot read {cfg_path}: {e}"));
            });
            let job_id = client.submit(&text).unwrap_or_else(|e| {
                die(&format!("submit refused: {e}"));
            });
            println!("rmcrt_submit: accepted as job {job_id}, waiting…");
            match client.wait(job_id).unwrap_or_else(|e| die(&e.to_string())) {
                JobOutcome::Done(report) => {
                    let (min, mean, max) = report.divq.min_mean_max();
                    let s = &report.stats;
                    println!(
                        "{}: {} steps, {} tasks, {} messages ({} B); \
                         queued {:.1} ms, ran {:.1} ms{}",
                        report.run_id,
                        s.steps,
                        s.tasks,
                        s.messages,
                        s.bytes_sent,
                        s.queued_ns as f64 / 1e6,
                        s.exec_ns as f64 / 1e6,
                        if s.slot_reused { " (warm slot)" } else { "" },
                    );
                    if let Some(solve) = &report.solve {
                        println!("rays: {} over {} cells", solve.total_rays, solve.cells);
                    }
                    println!(
                        "divQ over {} fine cells: min {min:+.4}  mean {mean:+.4}  max {max:+.4} (W/m³)",
                        report.divq.data.len()
                    );
                }
                JobOutcome::Canceled => {
                    println!("job {job_id}: canceled");
                    std::process::exit(3);
                }
                JobOutcome::Failed(m) => {
                    println!("job {job_id}: FAILED: {m}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!("usage: rmcrt_submit <socket-path> <config-file> | --stats | --shutdown");
}

fn die(msg: &str) -> ! {
    eprintln!("rmcrt_submit: {msg}");
    std::process::exit(1);
}
