//! `rmcrt_serve` — run the multi-tenant radiation server on a Unix
//! socket.
//!
//! ```text
//! rmcrt_serve /tmp/rmcrt.sock [--workers N] [--gpus N] [--gpu-capacity-mb N]
//! ```
//!
//! Runs until a client sends `Shutdown` (e.g. `rmcrt_submit --shutdown`),
//! then drains queued and active jobs, drops warm state and exits with
//! the fleet meters at zero.

use std::path::PathBuf;
use std::sync::Arc;
use uintah_serve::{serve_on, RadiationServer, ServeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<PathBuf> = None;
    let mut cfg = ServeConfig::default();
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a numeric argument")))
        };
        match arg.as_str() {
            "--workers" => cfg.workers = numeric("--workers"),
            "--gpus" => cfg.gpus = numeric("--gpus"),
            "--gpu-capacity-mb" => cfg.gpu_capacity_mb = numeric("--gpu-capacity-mb"),
            "--graph-cache" => cfg.graph_cache_cap = numeric("--graph-cache"),
            "--max-idle-slots" => cfg.max_idle_slots = numeric("--max-idle-slots"),
            "--help" | "-h" => {
                usage();
                return;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other))
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else {
        usage();
        std::process::exit(2);
    };
    let server = Arc::new(RadiationServer::start(cfg.clone()));
    let socket = serve_on(Arc::clone(&server), &path).unwrap_or_else(|e| {
        die(&format!("cannot bind {}: {e}", path.display()));
    });
    println!(
        "rmcrt_serve: listening on {} ({} workers, {} device(s) × {} MiB)",
        path.display(),
        cfg.workers,
        cfg.gpus,
        cfg.gpu_capacity_mb
    );
    socket.wait_for_shutdown_request();
    println!("rmcrt_serve: shutdown requested, draining…");
    // Ordering: stop accepting new connections, finish queued + active
    // jobs, then drop warm state so the fleet meters read zero.
    socket.close();
    server.drain();
    let stats = server.stats();
    server.shutdown();
    let used = server.fleet().total_used();
    println!(
        "rmcrt_serve: done — {} completed, {} canceled, {} failed, {} rejected; \
         slot hits {}, shared graph hits {}; fleet used at exit: {} B",
        stats.completed,
        stats.canceled,
        stats.failed,
        stats.rejected,
        stats.slot_hits,
        stats.shared_graph_hits,
        used
    );
    if used != 0 {
        eprintln!("rmcrt_serve: WARNING: fleet meters nonzero after drain");
        std::process::exit(1);
    }
}

fn usage() {
    println!(
        "usage: rmcrt_serve <socket-path> [--workers N] [--gpus N] \
         [--gpu-capacity-mb N] [--graph-cache N] [--max-idle-slots N]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("rmcrt_serve: {msg}");
    std::process::exit(2);
}
