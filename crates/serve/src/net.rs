//! Socket transport: serve the protocol on a Unix-domain socket.
//!
//! One thread per connection, strict request/response (no pipelining);
//! concurrency comes from multiple connections. A connection that drops
//! mid-stream (client crash, `rmcrt_submit` killed) has every unfinished
//! job it submitted canceled — an abandoned tenant must not keep device
//! memory reserved.

use crate::job::{JobId, JobOutcome};
use crate::protocol::{
    self, decode_request, encode_response, read_frame, write_frame, RejectCode, Request, Response,
};
use crate::server::{RadiationServer, SubmitError};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A server bound to a Unix socket, accepting connections on a
/// background thread.
pub struct ServerSocket {
    path: PathBuf,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    shutdown_requested: Arc<ShutdownFlag>,
    stop: Arc<AtomicBool>,
}

struct ShutdownFlag {
    flag: Mutex<bool>,
    cv: std::sync::Condvar,
}

impl ShutdownFlag {
    fn set(&self) {
        *self.flag.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut f = self.flag.lock().unwrap();
        while !*f {
            f = self.cv.wait(f).unwrap();
        }
    }
}

/// Bind `server` to a Unix socket at `path` and start accepting.
pub fn serve_on(server: Arc<RadiationServer>, path: &Path) -> io::Result<ServerSocket> {
    // A stale socket file from a dead server would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let shutdown_requested = Arc::new(ShutdownFlag {
        flag: Mutex::new(false),
        cv: std::sync::Condvar::new(),
    });
    let accept_thread = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let shutdown_requested = Arc::clone(&shutdown_requested);
        std::thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let server = Arc::clone(&server);
                let shutdown_requested = Arc::clone(&shutdown_requested);
                conns.push(std::thread::spawn(move || {
                    handle_connection(&server, stream, &shutdown_requested)
                }));
            }
            for c in conns {
                let _ = c.join();
            }
        })
    };
    Ok(ServerSocket {
        path: path.to_path_buf(),
        accept_thread: Some(accept_thread),
        shutdown_requested,
        stop,
    })
}

impl ServerSocket {
    /// Block until a client sends `Shutdown` (the `rmcrt_serve` main
    /// loop).
    pub fn wait_for_shutdown_request(&self) {
        self.shutdown_requested.wait();
    }

    /// Stop accepting and join the transport threads. Does not touch the
    /// [`RadiationServer`] — drain/shutdown ordering is the caller's.
    pub fn close(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a no-op connection.
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ServerSocket {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn handle_connection(
    server: &RadiationServer,
    mut stream: UnixStream,
    shutdown_requested: &ShutdownFlag,
) {
    // Jobs this connection submitted and has not yet seen finish: canceled
    // on disconnect so an abandoned client cannot pin capacity.
    let mut owned: Vec<JobId> = Vec::new();
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let resp = match decode_request(&frame) {
            Err(e) => Response::Error {
                message: e.to_string(),
            },
            Ok(req) => handle_request(server, req, &mut owned, shutdown_requested),
        };
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            break;
        }
    }
    for id in owned {
        server.cancel(id);
    }
}

fn handle_request(
    server: &RadiationServer,
    req: Request,
    owned: &mut Vec<JobId>,
    shutdown_requested: &ShutdownFlag,
) -> Response {
    match req {
        Request::Submit { config_text } => match server.submit_text(&config_text) {
            Ok(handle) => {
                owned.push(handle.id());
                Response::Accepted {
                    job_id: handle.id(),
                }
            }
            Err(e) => {
                let code = match &e {
                    SubmitError::BadConfig(_) => RejectCode::BadConfig,
                    SubmitError::TooLarge { .. } => RejectCode::TooLarge,
                    SubmitError::ShuttingDown => RejectCode::ShuttingDown,
                };
                Response::Rejected {
                    code,
                    message: e.to_string(),
                }
            }
        },
        Request::Wait { job_id } => match server.job(job_id) {
            Some(handle) => {
                let outcome = handle.wait();
                owned.retain(|&id| id != job_id);
                Response::Finished { job_id, outcome }
            }
            None => Response::Error {
                message: format!("unknown job {job_id}"),
            },
        },
        Request::Cancel { job_id } => {
            let found = server.cancel(job_id);
            Response::CancelAck { job_id, found }
        }
        Request::Stats => Response::Stats(server.stats()),
        Request::Shutdown => {
            shutdown_requested.set();
            Response::ShutdownAck
        }
    }
}

/// Client side of the wire protocol: one connection, synchronous
/// request/response. Open one client per concurrent submitter.
pub struct ServeClient {
    stream: UnixStream,
}

/// A client-side failure: transport error or a server rejection.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Wire(protocol::WireError),
    Rejected { code: RejectCode, message: String },
    Server(String),
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({code:?}): {message}")
            }
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ServeClient {
    pub fn connect(path: &Path) -> io::Result<Self> {
        Ok(Self {
            stream: UnixStream::connect(path)?,
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &protocol::encode_request(req))?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let resp = protocol::decode_response(&frame).map_err(ClientError::Wire)?;
        if let Response::Error { message } = resp {
            return Err(ClientError::Server(message));
        }
        Ok(resp)
    }

    /// Submit config text; returns the accepted job id.
    pub fn submit(&mut self, config_text: &str) -> Result<JobId, ClientError> {
        match self.roundtrip(&Request::Submit {
            config_text: config_text.into(),
        })? {
            Response::Accepted { job_id } => Ok(job_id),
            Response::Rejected { code, message } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Block until the job finishes; returns its outcome.
    pub fn wait(&mut self, job_id: JobId) -> Result<JobOutcome, ClientError> {
        match self.roundtrip(&Request::Wait { job_id })? {
            Response::Finished {
                job_id: got,
                outcome,
            } if got == job_id => Ok(outcome),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Cancel a job; returns whether the server knew it.
    pub fn cancel(&mut self, job_id: JobId) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Cancel { job_id })? {
            Response::CancelAck { found, .. } => Ok(found),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetch server-wide counters.
    pub fn stats(&mut self) -> Result<crate::server::ServerStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
