//! The multi-tenant radiation server.
//!
//! [`RadiationServer`] owns one shared [`DeviceFleet`] (every tenant
//! meters against the same devices), one shared [`GraphCache`] (compiled
//! task graphs adopted across jobs), and a pool of warm executor
//! [`Slot`]s. Submitted jobs land in one of two queue tiers — `high`
//! drains before `normal`, FIFO within each — and a fixed pool of worker
//! threads pulls the first *admissible* job: one whose estimated device
//! footprint fits what the capacity meters say is free (see
//! [`crate::admission`]). Jobs that fit the fleet but not the current
//! headroom stay queued; jobs larger than the whole fleet are rejected
//! with a typed error at submission.
//!
//! Drain/shutdown ordering: stop admitting → run the queues dry → each
//! finishing job drains its D2H engines and clears per-patch staging →
//! workers exit → idle slots drop (freeing the retained level replicas)
//! → the fleet meters read zero.

use crate::admission::{self, Admission};
use crate::job::{DivqField, JobId, JobOutcome, JobReport, JobStats};
use crate::slot::{shape_signature, JobSpec, Slot};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use uintah::config::{JobPriority, RunConfig};
use uintah_grid::CcVariable;
use uintah_gpu::DeviceFleet;
use uintah_runtime::{GraphCache, GraphCacheStats};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads = maximum concurrently executing jobs.
    pub workers: usize,
    /// Devices in the shared fleet (tenants' `gpus_per_rank` is ignored;
    /// the fleet belongs to the server).
    pub gpus: usize,
    /// Capacity per device, MiB.
    pub gpu_capacity_mb: usize,
    /// Shared compiled-graph cache capacity (entries).
    pub graph_cache_cap: usize,
    /// Idle slots kept warm per server; excess slots drop at job finish.
    pub max_idle_slots: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            gpus: 1,
            gpu_capacity_mb: 6144,
            graph_cache_cap: 32,
            max_idle_slots: 4,
        }
    }
}

/// Why a submission was refused, as an in-process typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Config text failed to parse or validate.
    BadConfig(String),
    /// Estimated footprint exceeds the fleet's total capacity — the job
    /// could never run, so it is refused instead of queued forever.
    TooLarge { footprint: u64, capacity: u64 },
    /// The server is draining.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::BadConfig(m) => write!(f, "bad config: {m}"),
            SubmitError::TooLarge {
                footprint,
                capacity,
            } => write!(
                f,
                "job needs ~{footprint} device bytes, fleet capacity is {capacity}"
            ),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Server-wide counters (also served over the wire).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub canceled: u64,
    pub failed: u64,
    /// Times the admission controller deferred a queued job for capacity
    /// (counted once per job per deferral episode, not per poll).
    pub queued_for_capacity: u64,
    /// Jobs that started on a recycled slot.
    pub slot_hits: u64,
    /// Slots built cold.
    pub slot_builds: u64,
    /// Slots dropped (idle-pool overflow, admission reclaim, failure).
    pub slot_retired: u64,
    /// Sum of per-job shared-graph adoptions.
    pub shared_graph_hits: u64,
    pub graph_cache: GraphCacheStats,
    /// Footprint bytes reserved by currently running jobs.
    pub reserved_bytes: u64,
    pub fleet_used: u64,
    pub fleet_capacity: u64,
    pub active_jobs: usize,
    pub queued_jobs: usize,
    pub idle_slots: usize,
}

enum JobState {
    Queued,
    Running,
    Finished(JobOutcome),
}

struct JobEntry {
    id: JobId,
    cancel: AtomicBool,
    state: Mutex<JobState>,
    cv: Condvar,
    submitted_at: Instant,
    /// Set while queued; taken by the worker that admits the job.
    spec: Mutex<Option<JobSpec>>,
    footprint: u64,
}

impl JobEntry {
    fn finish(&self, outcome: JobOutcome) {
        *self.state.lock().unwrap() = JobState::Finished(outcome);
        self.cv.notify_all();
    }
}

struct ServerState {
    high: VecDeque<Arc<JobEntry>>,
    normal: VecDeque<Arc<JobEntry>>,
    /// Every job ever submitted (wire `Wait` looks ids up here).
    jobs: HashMap<JobId, Arc<JobEntry>>,
    active: usize,
    idle_slots: Vec<Slot>,
    reserved_bytes: u64,
    shutting_down: bool,
    stats: ServerStats,
    /// Ids of jobs whose most recent admission attempt deferred, so the
    /// `queued_for_capacity` counter ticks once per episode.
    deferred: std::collections::HashSet<JobId>,
    next_job: JobId,
}

struct ServerInner {
    cfg: ServeConfig,
    fleet: DeviceFleet,
    graph_cache: Arc<GraphCache>,
    state: Mutex<ServerState>,
    /// Workers park here for new work / freed capacity.
    work_cv: Condvar,
    /// `drain()` parks here for the system to empty.
    done_cv: Condvar,
}

/// Handle to one submitted job.
#[derive(Clone)]
pub struct JobHandle {
    entry: Arc<JobEntry>,
    inner: Arc<ServerInner>,
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.entry.id
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        let mut st = self.entry.state.lock().unwrap();
        loop {
            if let JobState::Finished(outcome) = &*st {
                return outcome.clone();
            }
            st = self.entry.cv.wait(st).unwrap();
        }
    }

    /// Request cancellation: a queued job is withdrawn immediately; a
    /// running job aborts at its next step boundary (collectively, across
    /// its ranks). Idempotent; a finished job is unaffected.
    pub fn cancel(&self) {
        self.inner.cancel_job(self.entry.id);
    }
}

/// The long-running multi-tenant radiation server.
pub struct RadiationServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl RadiationServer {
    /// Start the server: build the shared fleet and graph cache, spawn
    /// the worker pool.
    pub fn start(cfg: ServeConfig) -> Self {
        assert!(cfg.workers >= 1, "server needs at least one worker");
        assert!(cfg.gpus >= 1, "fleet needs at least one device");
        let fleet =
            DeviceFleet::with_capacity(cfg.gpus, "K20X-sim", cfg.gpu_capacity_mb << 20);
        let inner = Arc::new(ServerInner {
            graph_cache: Arc::new(GraphCache::new(cfg.graph_cache_cap.max(1))),
            fleet,
            state: Mutex::new(ServerState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                jobs: HashMap::new(),
                active: 0,
                idle_slots: Vec::new(),
                reserved_bytes: 0,
                shutting_down: false,
                stats: ServerStats::default(),
                deferred: std::collections::HashSet::new(),
                next_job: 1,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cfg,
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a parsed configuration. Admission may still queue the job;
    /// only structurally impossible jobs are rejected here.
    pub fn submit(&self, cfg: RunConfig) -> Result<JobHandle, SubmitError> {
        cfg.validate().map_err(SubmitError::BadConfig)?;
        let (grid, decls) = cfg.build_problem();
        let footprint =
            admission::estimate_device_footprint(&cfg, &grid, self.inner.cfg.gpus);
        let capacity = self.inner.fleet.total_capacity() as u64;
        let mut st = self.inner.state.lock().unwrap();
        st.stats.submitted += 1;
        if st.shutting_down {
            st.stats.rejected += 1;
            return Err(SubmitError::ShuttingDown);
        }
        if footprint > capacity {
            st.stats.rejected += 1;
            return Err(SubmitError::TooLarge {
                footprint,
                capacity,
            });
        }
        let id = st.next_job;
        st.next_job += 1;
        let run_id = format!("job-{id}");
        let entry = Arc::new(JobEntry {
            id,
            cancel: AtomicBool::new(false),
            state: Mutex::new(JobState::Queued),
            cv: Condvar::new(),
            submitted_at: Instant::now(),
            spec: Mutex::new(Some(JobSpec {
                id,
                run_id,
                cfg: cfg.clone(),
                grid,
                decls,
            })),
            footprint,
        });
        st.jobs.insert(id, Arc::clone(&entry));
        match cfg.priority {
            JobPriority::High => st.high.push_back(Arc::clone(&entry)),
            JobPriority::Normal => st.normal.push_back(Arc::clone(&entry)),
        }
        st.stats.accepted += 1;
        drop(st);
        self.inner.work_cv.notify_all();
        Ok(JobHandle {
            entry,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Submit raw `key = value` config text (the wire path).
    pub fn submit_text(&self, text: &str) -> Result<JobHandle, SubmitError> {
        let cfg = RunConfig::parse(text)
            .map_err(|e| SubmitError::BadConfig(e.to_string()))?;
        self.submit(cfg)
    }

    /// Look up a job by id (for wire `Wait`/`Cancel` from a different
    /// connection than the submitter's).
    pub fn job(&self, id: JobId) -> Option<JobHandle> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|entry| JobHandle {
            entry: Arc::clone(entry),
            inner: Arc::clone(&self.inner),
        })
    }

    /// Cancel by id; returns whether the job exists.
    pub fn cancel(&self, id: JobId) -> bool {
        self.inner.cancel_job(id)
    }

    /// Current server-wide counters.
    pub fn stats(&self) -> ServerStats {
        let st = self.inner.state.lock().unwrap();
        let mut s = st.stats;
        s.graph_cache = self.inner.graph_cache.stats();
        s.reserved_bytes = st.reserved_bytes;
        s.active_jobs = st.active;
        s.queued_jobs = st.high.len() + st.normal.len();
        s.idle_slots = st.idle_slots.len();
        s.fleet_used = self.inner.fleet.total_used() as u64;
        s.fleet_capacity = self.inner.fleet.total_capacity() as u64;
        s
    }

    /// The shared fleet (tests assert zero-drift on its meters).
    pub fn fleet(&self) -> &DeviceFleet {
        &self.inner.fleet
    }

    /// Block until no job is queued or running.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while st.active > 0 || !st.high.is_empty() || !st.normal.is_empty() {
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Drain, stop the workers, and drop all warm state (idle slots,
    /// hence every retained device byte). After this returns the fleet
    /// meters must read zero.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.inner.state.lock().unwrap();
        let retired = st.idle_slots.len() as u64;
        st.idle_slots.clear();
        st.stats.slot_retired += retired;
    }
}

impl Drop for RadiationServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServerInner {
    fn cancel_job(&self, id: JobId) -> bool {
        let mut st = self.state.lock().unwrap();
        let Some(entry) = st.jobs.get(&id).map(Arc::clone) else {
            return false;
        };
        entry.cancel.store(true, Ordering::Relaxed);
        // Withdraw from the queue immediately if still queued.
        let was_queued = {
            let in_high = st.high.iter().position(|e| e.id == id);
            let in_normal = st.normal.iter().position(|e| e.id == id);
            if let Some(i) = in_high {
                st.high.remove(i);
                true
            } else if let Some(i) = in_normal {
                st.normal.remove(i);
                true
            } else {
                false
            }
        };
        if was_queued {
            st.deferred.remove(&id);
            st.stats.canceled += 1;
            entry.finish(JobOutcome::Canceled);
            self.done_cv.notify_all();
        }
        true
    }

    /// Under the state lock: find the first admissible queued job (high
    /// tier first, FIFO within each) and the slot it will run on. Idle
    /// slots of other shapes are reclaimed (dropped) when that is what it
    /// takes to fit the job.
    fn take_runnable(&self, st: &mut ServerState) -> Option<(Arc<JobEntry>, Slot)> {
        let capacity = self.fleet.total_capacity() as u64;
        let tiers: [usize; 2] = [0, 1];
        for tier in tiers {
            let queue_len = if tier == 0 { st.high.len() } else { st.normal.len() };
            for idx in 0..queue_len {
                let entry = if tier == 0 {
                    Arc::clone(&st.high[idx])
                } else {
                    Arc::clone(&st.normal[idx])
                };
                let key = {
                    let spec = entry.spec.lock().unwrap();
                    let Some(spec) = spec.as_ref() else { continue };
                    shape_signature(&spec.cfg)
                };
                let reusable: u64 = st
                    .idle_slots
                    .iter()
                    .find(|s| s.key == key)
                    .map(|s| s.resident_bytes())
                    .unwrap_or(0);
                let idle_resident: u64 =
                    st.idle_slots.iter().map(|s| s.resident_bytes()).sum();
                let mut decision = admission::decide(
                    entry.footprint,
                    capacity,
                    st.reserved_bytes,
                    idle_resident,
                    reusable,
                );
                // Deferred for capacity, but idle slots of other shapes
                // hold reclaimable bytes: drop them (oldest first) until
                // the job fits or none remain.
                if decision == Admission::Defer {
                    let mut idle_resident = idle_resident;
                    while let Some(pos) = st
                        .idle_slots
                        .iter()
                        .position(|s| s.key != key && s.resident_bytes() > 0)
                    {
                        let freed = st.idle_slots[pos].resident_bytes();
                        st.idle_slots.remove(pos);
                        st.stats.slot_retired += 1;
                        idle_resident -= freed.min(idle_resident);
                        decision = admission::decide(
                            entry.footprint,
                            capacity,
                            st.reserved_bytes,
                            idle_resident,
                            reusable,
                        );
                        if decision != Admission::Defer {
                            break;
                        }
                    }
                }
                match decision {
                    Admission::Admit => {
                        if tier == 0 {
                            st.high.remove(idx);
                        } else {
                            st.normal.remove(idx);
                        }
                        st.deferred.remove(&entry.id);
                        let slot = match st.idle_slots.iter().position(|s| s.key == key) {
                            Some(pos) => {
                                st.stats.slot_hits += 1;
                                st.idle_slots.remove(pos)
                            }
                            None => {
                                st.stats.slot_builds += 1;
                                let spec = entry.spec.lock().unwrap();
                                let spec = spec.as_ref().expect("spec present while queued");
                                Slot::new(
                                    &spec.cfg,
                                    Arc::clone(&spec.grid),
                                    Arc::clone(&spec.decls),
                                    &self.fleet,
                                    &self.graph_cache,
                                )
                            }
                        };
                        st.reserved_bytes += entry.footprint;
                        st.active += 1;
                        *entry.state.lock().unwrap() = JobState::Running;
                        return Some((entry, slot));
                    }
                    Admission::Defer => {
                        if st.deferred.insert(entry.id) {
                            st.stats.queued_for_capacity += 1;
                        }
                        // Try the next job in FIFO order (first-fit): a
                        // smaller job behind may run meanwhile.
                    }
                    Admission::TooLarge => {
                        unreachable!("TooLarge rejected at submission")
                    }
                }
            }
        }
        None
    }

    fn finish_job(&self, entry: &Arc<JobEntry>, slot: Option<Slot>, outcome: JobOutcome) {
        let mut st = self.state.lock().unwrap();
        st.reserved_bytes -= entry.footprint;
        st.active -= 1;
        match &outcome {
            JobOutcome::Done(_) => st.stats.completed += 1,
            JobOutcome::Canceled => st.stats.canceled += 1,
            JobOutcome::Failed(_) => st.stats.failed += 1,
        }
        if let JobOutcome::Done(r) = &outcome {
            st.stats.shared_graph_hits += r.stats.shared_graph_hits;
        }
        match slot {
            Some(slot)
                if !st.shutting_down && st.idle_slots.len() < self.cfg.max_idle_slots =>
            {
                st.idle_slots.push(slot)
            }
            Some(_) => st.stats.slot_retired += 1,
            None => st.stats.slot_retired += 1,
        }
        entry.finish(outcome);
        drop(st);
        // A completion frees capacity and possibly a slot: wake admission
        // and any drain() waiter.
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }
}

fn worker_loop(inner: &Arc<ServerInner>) {
    loop {
        let (entry, mut slot) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(found) = inner.take_runnable(&mut st) {
                    break found;
                }
                if st.shutting_down && st.high.is_empty() && st.normal.is_empty() {
                    inner.done_cv.notify_all();
                    return;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        let spec = entry
            .spec
            .lock()
            .unwrap()
            .take()
            .expect("spec taken exactly once");
        let queued_ns = entry.submitted_at.elapsed().as_nanos() as u64;
        let slot_reused = slot.jobs_served > 0;
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            slot.run_job(&spec, &entry.cancel)
        }));
        match run {
            Ok(run) if run.canceled => {
                inner.finish_job(&entry, Some(slot), JobOutcome::Canceled);
            }
            Ok(run) => {
                let report = assemble_report(&spec, run, queued_ns, slot_reused);
                inner.finish_job(&entry, Some(slot), JobOutcome::Done(Arc::new(report)));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "job panicked".into());
                // A panicked job leaves its slot's schedulers and
                // warehouses in an unknown state: drop the slot rather
                // than recycle it.
                inner.finish_job(&entry, None, JobOutcome::Failed(msg));
            }
        }
    }
}

fn assemble_report(
    spec: &JobSpec,
    run: crate::slot::JobRun,
    queued_ns: u64,
    slot_reused: bool,
) -> JobReport {
    let fine = spec.grid.fine_level();
    let mut field = CcVariable::<f64>::new(fine.cell_region());
    for (window, data) in &run.divq_pieces {
        field.unpack_window(window, data);
    }
    let stats = JobStats {
        queued_ns,
        slot_reused,
        ..run.stats
    };
    // Ray accounting is exact for fixed-count jobs; adaptive per-cell
    // counts are not metered through the task graph.
    let solve = (!spec.cfg.adaptive_rays).then(|| {
        let cells = fine.num_cells() as u64 * stats.steps;
        rmcrt_core::SolveStats {
            total_rays: cells * spec.cfg.nrays as u64,
            cells,
        }
    });
    let region = fine.cell_region();
    JobReport {
        job_id: spec.id,
        run_id: spec.run_id.clone(),
        stats,
        solve,
        summaries: run.summaries,
        divq: DivqField {
            data: field.into_vec(),
            region,
        },
    }
}
