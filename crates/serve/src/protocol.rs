//! The length-prefixed wire protocol between `rmcrt_submit` and
//! `rmcrt_serve`.
//!
//! Frame layout (see DESIGN.md §11):
//!
//! ```text
//! [u32 LE payload length][payload]
//! payload = [u8 version][u8 kind][kind-specific fields]
//! ```
//!
//! Scalars are little-endian; strings are `u32` byte length + UTF-8;
//! `f64` fields travel as raw IEEE-754 bit patterns (`to_bits`), so a
//! `divQ` field served over the socket is bit-identical to the warehouse
//! contents it was read from. Every request receives exactly one response
//! on the same connection; concurrency comes from opening multiple
//! connections, not from pipelining.

use crate::job::{DivqField, JobId, JobOutcome, JobReport, JobStats};
use crate::server::ServerStats;
use std::io::{self, Read, Write};
use uintah_grid::{IntVector, Region};
use uintah_runtime::GraphCacheStats;

/// Protocol version stamped on every frame; mismatches are rejected.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame's payload (a 256³ fine level of f64
/// divQ is 128 MiB; anything bigger than this is a corrupt length).
pub const MAX_FRAME: usize = 256 << 20;

/// Why a submission was refused (typed — oversubscription must reject or
/// queue, never panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The config text failed to parse or validate.
    BadConfig,
    /// The job's estimated device footprint exceeds the server's *total*
    /// fleet capacity: it could never run, so it is refused up front
    /// rather than queued forever.
    TooLarge,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::BadConfig => 1,
            RejectCode::TooLarge => 2,
            RejectCode::ShuttingDown => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => RejectCode::BadConfig,
            2 => RejectCode::TooLarge,
            3 => RejectCode::ShuttingDown,
            _ => return Err(WireError::bad(format!("unknown reject code {v}"))),
        })
    }
}

/// Client → server.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job: the same `key = value` config text `rmcrt_app`
    /// consumes, parsed server-side (the `priority` key selects the
    /// queue tier).
    Submit { config_text: String },
    /// Block until the job reaches a terminal state.
    Wait { job_id: JobId },
    /// Cancel a queued or running job (idempotent).
    Cancel { job_id: JobId },
    /// Server-wide counters.
    Stats,
    /// Drain and stop: finish queued + active work, then exit.
    Shutdown,
}

/// Server → client.
#[derive(Clone, Debug)]
pub enum Response {
    Accepted { job_id: JobId },
    Rejected { code: RejectCode, message: String },
    Finished { job_id: JobId, outcome: JobOutcome },
    CancelAck { job_id: JobId, found: bool },
    Stats(ServerStats),
    ShutdownAck,
    /// Protocol-level error (unknown job id, malformed request).
    Error { message: String },
}

/// A malformed or truncated payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    pub message: String,
}

impl WireError {
    fn bad(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- framing

/// Write one `[u32 LE length][payload]` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF before the length word.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ----------------------------------------------------------------- codec

struct Enc(Vec<u8>);

impl Enc {
    fn new(kind: u8) -> Self {
        Self(vec![PROTOCOL_VERSION, kind])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn boolean(&mut self, v: bool) {
        self.0.push(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    fn region(&mut self, r: Region) {
        for v in [r.lo(), r.hi()] {
            self.i32(v.x);
            self.i32(v.y);
            self.i32(v.z);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Result<(u8, Self), WireError> {
        if buf.len() < 2 {
            return Err(WireError::bad("payload shorter than header".into()));
        }
        if buf[0] != PROTOCOL_VERSION {
            return Err(WireError::bad(format!(
                "protocol version {} (expected {PROTOCOL_VERSION})",
                buf[0]
            )));
        }
        Ok((buf[1], Self { buf, pos: 2 }))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::bad("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn f64_bits(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.bytes(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::bad("invalid UTF-8".into()))
    }

    fn region(&mut self) -> Result<Region, WireError> {
        let lo = IntVector::new(self.i32()?, self.i32()?, self.i32()?);
        let hi = IntVector::new(self.i32()?, self.i32()?, self.i32()?);
        Ok(Region::new(lo, hi))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::bad(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

const REQ_SUBMIT: u8 = 1;
const REQ_WAIT: u8 = 2;
const REQ_CANCEL: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

const RESP_ACCEPTED: u8 = 128;
const RESP_REJECTED: u8 = 129;
const RESP_FINISHED: u8 = 130;
const RESP_CANCEL_ACK: u8 = 131;
const RESP_STATS: u8 = 132;
const RESP_SHUTDOWN_ACK: u8 = 133;
const RESP_ERROR: u8 = 134;

const OUTCOME_DONE: u8 = 0;
const OUTCOME_CANCELED: u8 = 1;
const OUTCOME_FAILED: u8 = 2;

/// Encode a request payload (framing is the transport's job).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Submit { config_text } => {
            let mut e = Enc::new(REQ_SUBMIT);
            e.str(config_text);
            e.0
        }
        Request::Wait { job_id } => {
            let mut e = Enc::new(REQ_WAIT);
            e.u64(*job_id);
            e.0
        }
        Request::Cancel { job_id } => {
            let mut e = Enc::new(REQ_CANCEL);
            e.u64(*job_id);
            e.0
        }
        Request::Stats => Enc::new(REQ_STATS).0,
        Request::Shutdown => Enc::new(REQ_SHUTDOWN).0,
    }
}

/// Decode a request payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let (kind, mut d) = Dec::new(buf)?;
    let req = match kind {
        REQ_SUBMIT => Request::Submit {
            config_text: d.str()?,
        },
        REQ_WAIT => Request::Wait { job_id: d.u64()? },
        REQ_CANCEL => Request::Cancel { job_id: d.u64()? },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        k => return Err(WireError::bad(format!("unknown request kind {k}"))),
    };
    d.finish()?;
    Ok(req)
}

fn encode_report(e: &mut Enc, r: &JobReport) {
    e.u64(r.job_id);
    e.str(&r.run_id);
    let s = &r.stats;
    for v in [
        s.steps,
        s.tasks,
        s.messages,
        s.bytes_sent,
        s.gpu_h2d_bytes,
        s.gpu_d2h_bytes,
        s.gpu_evictions,
        s.regrids,
        s.graph_compiles,
        s.shared_graph_hits,
        s.level_replicas_inherited,
        s.queued_ns,
        s.exec_ns,
    ] {
        e.u64(v);
    }
    e.boolean(s.slot_reused);
    match &r.solve {
        Some(solve) => {
            e.boolean(true);
            e.u64(solve.total_rays);
            e.u64(solve.cells);
        }
        None => e.boolean(false),
    }
    e.u32(r.summaries.len() as u32);
    for s in &r.summaries {
        e.str(s);
    }
    e.region(r.divq.region);
    e.u64(r.divq.data.len() as u64);
    for &x in &r.divq.data {
        e.f64_bits(x);
    }
}

fn decode_report(d: &mut Dec<'_>) -> Result<JobReport, WireError> {
    let job_id = d.u64()?;
    let run_id = d.str()?;
    let mut nums = [0u64; 13];
    for n in &mut nums {
        *n = d.u64()?;
    }
    let slot_reused = d.boolean()?;
    let stats = JobStats {
        steps: nums[0],
        tasks: nums[1],
        messages: nums[2],
        bytes_sent: nums[3],
        gpu_h2d_bytes: nums[4],
        gpu_d2h_bytes: nums[5],
        gpu_evictions: nums[6],
        regrids: nums[7],
        graph_compiles: nums[8],
        shared_graph_hits: nums[9],
        level_replicas_inherited: nums[10],
        queued_ns: nums[11],
        exec_ns: nums[12],
        slot_reused,
    };
    let solve = if d.boolean()? {
        Some(rmcrt_core::SolveStats {
            total_rays: d.u64()?,
            cells: d.u64()?,
        })
    } else {
        None
    };
    let nsum = d.u32()? as usize;
    let mut summaries = Vec::with_capacity(nsum);
    for _ in 0..nsum {
        summaries.push(d.str()?);
    }
    let region = d.region()?;
    let ncells = d.u64()? as usize;
    if ncells != region.volume() {
        return Err(WireError::bad(format!(
            "divq cell count {ncells} does not match region volume {}",
            region.volume()
        )));
    }
    let mut data = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        data.push(d.f64_bits()?);
    }
    Ok(JobReport {
        job_id,
        run_id,
        stats,
        solve,
        summaries,
        divq: DivqField { region, data },
    })
}

fn encode_server_stats(e: &mut Enc, s: &ServerStats) {
    for v in [
        s.submitted,
        s.accepted,
        s.rejected,
        s.completed,
        s.canceled,
        s.failed,
        s.queued_for_capacity,
        s.slot_hits,
        s.slot_builds,
        s.slot_retired,
        s.shared_graph_hits,
        s.graph_cache.hits,
        s.graph_cache.misses,
        s.graph_cache.insertions,
        s.graph_cache.evictions,
        s.reserved_bytes,
        s.fleet_used,
        s.fleet_capacity,
    ] {
        e.u64(v);
    }
    e.u32(s.active_jobs as u32);
    e.u32(s.queued_jobs as u32);
    e.u32(s.idle_slots as u32);
}

fn decode_server_stats(d: &mut Dec<'_>) -> Result<ServerStats, WireError> {
    let mut nums = [0u64; 18];
    for n in &mut nums {
        *n = d.u64()?;
    }
    Ok(ServerStats {
        submitted: nums[0],
        accepted: nums[1],
        rejected: nums[2],
        completed: nums[3],
        canceled: nums[4],
        failed: nums[5],
        queued_for_capacity: nums[6],
        slot_hits: nums[7],
        slot_builds: nums[8],
        slot_retired: nums[9],
        shared_graph_hits: nums[10],
        graph_cache: GraphCacheStats {
            hits: nums[11],
            misses: nums[12],
            insertions: nums[13],
            evictions: nums[14],
        },
        reserved_bytes: nums[15],
        fleet_used: nums[16],
        fleet_capacity: nums[17],
        active_jobs: d.u32()? as usize,
        queued_jobs: d.u32()? as usize,
        idle_slots: d.u32()? as usize,
    })
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Accepted { job_id } => {
            let mut e = Enc::new(RESP_ACCEPTED);
            e.u64(*job_id);
            e.0
        }
        Response::Rejected { code, message } => {
            let mut e = Enc::new(RESP_REJECTED);
            e.u8(code.to_u8());
            e.str(message);
            e.0
        }
        Response::Finished { job_id, outcome } => {
            let mut e = Enc::new(RESP_FINISHED);
            e.u64(*job_id);
            match outcome {
                JobOutcome::Done(report) => {
                    e.u8(OUTCOME_DONE);
                    encode_report(&mut e, report);
                }
                JobOutcome::Canceled => e.u8(OUTCOME_CANCELED),
                JobOutcome::Failed(m) => {
                    e.u8(OUTCOME_FAILED);
                    e.str(m);
                }
            }
            e.0
        }
        Response::CancelAck { job_id, found } => {
            let mut e = Enc::new(RESP_CANCEL_ACK);
            e.u64(*job_id);
            e.boolean(*found);
            e.0
        }
        Response::Stats(s) => {
            let mut e = Enc::new(RESP_STATS);
            encode_server_stats(&mut e, s);
            e.0
        }
        Response::ShutdownAck => Enc::new(RESP_SHUTDOWN_ACK).0,
        Response::Error { message } => {
            let mut e = Enc::new(RESP_ERROR);
            e.str(message);
            e.0
        }
    }
}

/// Decode a response payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let (kind, mut d) = Dec::new(buf)?;
    let resp = match kind {
        RESP_ACCEPTED => Response::Accepted { job_id: d.u64()? },
        RESP_REJECTED => Response::Rejected {
            code: RejectCode::from_u8(d.u8()?)?,
            message: d.str()?,
        },
        RESP_FINISHED => {
            let job_id = d.u64()?;
            let outcome = match d.u8()? {
                OUTCOME_DONE => JobOutcome::Done(std::sync::Arc::new(decode_report(&mut d)?)),
                OUTCOME_CANCELED => JobOutcome::Canceled,
                OUTCOME_FAILED => JobOutcome::Failed(d.str()?),
                o => return Err(WireError::bad(format!("unknown outcome {o}"))),
            };
            Response::Finished { job_id, outcome }
        }
        RESP_CANCEL_ACK => Response::CancelAck {
            job_id: d.u64()?,
            found: d.boolean()?,
        },
        RESP_STATS => Response::Stats(decode_server_stats(&mut d)?),
        RESP_SHUTDOWN_ACK => Response::ShutdownAck,
        RESP_ERROR => Response::Error { message: d.str()? },
        k => return Err(WireError::bad(format!("unknown response kind {k}"))),
    };
    d.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_report() -> JobReport {
        let region = Region::new(IntVector::new(0, 0, 0), IntVector::new(2, 2, 1));
        let data: Vec<f64> = (0..region.volume())
            .map(|i| (i as f64).sqrt() * -1.25 + f64::EPSILON)
            .collect();
        JobReport {
            job_id: 42,
            run_id: "job-42".into(),
            stats: JobStats {
                steps: 3,
                tasks: 96,
                messages: 12,
                bytes_sent: 4096,
                gpu_h2d_bytes: 1024,
                gpu_d2h_bytes: 512,
                gpu_evictions: 1,
                regrids: 1,
                graph_compiles: 2,
                shared_graph_hits: 1,
                level_replicas_inherited: 2,
                slot_reused: true,
                queued_ns: 1_000,
                exec_ns: 2_000_000,
            },
            solve: Some(rmcrt_core::SolveStats {
                total_rays: 8 * 16,
                cells: 16,
            }),
            summaries: vec!["[job-42/r0] step 0: ok".into(), "[job-42/r1] step 0: ok".into()],
            divq: DivqField { region, data },
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Submit {
                config_text: "nrays = 8\npriority = high".into(),
            },
            Request::Wait { job_id: 7 },
            Request::Cancel { job_id: 9 },
            Request::Stats,
            Request::Shutdown,
        ] {
            let buf = encode_request(&req);
            assert_eq!(decode_request(&buf).unwrap(), req);
        }
    }

    #[test]
    fn report_roundtrip_preserves_f64_bits() {
        let report = sample_report();
        let buf = encode_response(&Response::Finished {
            job_id: 42,
            outcome: JobOutcome::Done(Arc::new(report.clone())),
        });
        let Response::Finished { job_id, outcome } = decode_response(&buf).unwrap() else {
            panic!("wrong response kind");
        };
        assert_eq!(job_id, 42);
        let got = outcome.expect_done();
        assert_eq!(**got, report);
        // Bit-level equality, not just PartialEq: the field must survive
        // the wire exactly.
        for (a, b) in got.divq.data.iter().zip(&report.divq.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejected_and_error_roundtrip() {
        let buf = encode_response(&Response::Rejected {
            code: RejectCode::TooLarge,
            message: "needs 12 GiB, fleet has 6 GiB".into(),
        });
        match decode_response(&buf).unwrap() {
            Response::Rejected { code, message } => {
                assert_eq!(code, RejectCode::TooLarge);
                assert!(message.contains("12 GiB"));
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let buf = encode_response(&Response::Error {
            message: "unknown job 99".into(),
        });
        assert!(matches!(decode_response(&buf).unwrap(), Response::Error { .. }));
    }

    #[test]
    fn truncated_and_versioned_frames_rejected() {
        let mut buf = encode_request(&Request::Wait { job_id: 1 });
        buf.truncate(buf.len() - 1);
        assert!(decode_request(&buf).is_err());
        let mut buf = encode_request(&Request::Stats);
        buf[0] = 99;
        assert!(decode_request(&buf).is_err());
        // Trailing garbage is an error, not silently ignored.
        let mut buf = encode_request(&Request::Stats);
        buf.push(0);
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn framing_roundtrip_and_eof() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        let mut r = &pipe[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // EOF inside the length word is an error.
        let mut r = &pipe[..2];
        assert!(read_frame(&mut r).is_err());
    }
}
