//! Job identities, per-job statistics and the completed-job report.

use std::sync::Arc;
use uintah_grid::Region;

/// Server-assigned job identifier (monotonic per server instance).
pub type JobId = u64;

/// Counters accumulated over one job's execution on the server, summed
/// across its ranks and timesteps. The serve-side analogue of folding a
/// run's `ExecStats` — plus the multi-tenant sharing counters (shared
/// graph adoptions, slot reuse) that only exist on the server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Timesteps actually executed (less than requested when canceled).
    pub steps: u64,
    /// Task bodies executed across ranks and steps.
    pub tasks: u64,
    /// Point-to-point messages sent across ranks and steps.
    pub messages: u64,
    /// Payload bytes across those messages.
    pub bytes_sent: u64,
    pub gpu_h2d_bytes: u64,
    pub gpu_d2h_bytes: u64,
    pub gpu_evictions: u64,
    /// Mid-run ownership rebalances folded into this job's steps.
    pub regrids: u64,
    /// Task graphs compiled by this job's executors (0 when every rank's
    /// graph came from the slot's local cache or the shared tier).
    pub graph_compiles: u64,
    /// Graphs adopted from the server's shared [`GraphCache`] instead of
    /// compiled — cross-job sharing paying off.
    ///
    /// [`GraphCache`]: uintah_runtime::GraphCache
    pub shared_graph_hits: u64,
    /// Device-resident level-replica entries already present when the job
    /// started (inherited from a previous tenant of the same slot).
    pub level_replicas_inherited: u64,
    /// The job ran on a recycled executor slot (warm warehouses and
    /// recycler pools) rather than a freshly built one.
    pub slot_reused: bool,
    /// Nanoseconds between submission and the job starting to execute.
    pub queued_ns: u64,
    /// Nanoseconds spent executing (slot acquisition through final drain).
    pub exec_ns: u64,
}

/// The assembled fine-level `divQ` field of a completed job: one dense
/// window over the whole fine level, gathered from every rank's warehouse.
#[derive(Clone, Debug, PartialEq)]
pub struct DivqField {
    pub region: Region,
    /// Row-major cell data in the region's linear order; `f64` bits are
    /// preserved exactly through the wire protocol so a served job can be
    /// compared bit-for-bit against a standalone run.
    pub data: Vec<f64>,
}

impl DivqField {
    /// `(min, mean, max)` over the field (NaN-free by construction).
    pub fn min_mean_max(&self) -> (f64, f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in &self.data {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        (min, sum / self.data.len().max(1) as f64, max)
    }
}

/// Everything a completed job hands back to its submitter.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    pub job_id: JobId,
    /// The identifier stamped on every summary line: `job-<id>`.
    pub run_id: String,
    pub stats: JobStats,
    /// Ray-budget accounting. Exact for fixed ray-count jobs (rays/cell ×
    /// cells × steps); `None` for adaptive jobs, whose per-cell counts are
    /// not metered through the task graph.
    pub solve: Option<rmcrt_core::SolveStats>,
    /// One [`ExecStats::summary`] per (timestep, rank), every line
    /// prefixed with `[job-<id>/r<rank>]`.
    ///
    /// [`ExecStats::summary`]: uintah_runtime::ExecStats::summary
    pub summaries: Vec<String>,
    pub divq: DivqField,
}

/// Terminal state of a job as seen by a waiter.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    Done(Arc<JobReport>),
    Canceled,
    Failed(String),
}

impl JobOutcome {
    /// The report, if the job completed.
    pub fn report(&self) -> Option<&Arc<JobReport>> {
        match self {
            JobOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Unwrap a completed job's report; panics with the failure otherwise.
    pub fn expect_done(&self) -> &Arc<JobReport> {
        match self {
            JobOutcome::Done(r) => r,
            JobOutcome::Canceled => panic!("job was canceled"),
            JobOutcome::Failed(m) => panic!("job failed: {m}"),
        }
    }
}
