//! RMCRT-as-a-service: a long-running, multi-tenant radiation server.
//!
//! The paper's RMCRT solver runs as a batch job — one problem, one
//! allocation, one exit. This crate wraps the same stack as a *service*:
//! concurrent tenants submit scene + [`RunConfig`] jobs (in process, or
//! over a length-prefixed Unix-socket protocol via `rmcrt_serve` /
//! `rmcrt_submit`) and get back the solved `divQ` field, ray accounting
//! and per-step execution summaries. Inside:
//!
//! * [`server`] — tiered job queue (high before normal, FIFO within
//!   each), a fixed worker pool, and per-job outcomes;
//! * [`admission`] — capacity-meter-driven admission: jobs that fit the
//!   fleet but not the current headroom queue; jobs larger than the fleet
//!   reject with a typed error;
//! * [`slot`] (internal) — warm executor slots recycled across
//!   same-shape jobs: compiled graphs (shared via
//!   [`uintah_runtime::GraphCache`]), warehouse recycler pools, and
//!   device-resident level replicas all survive tenant turnover;
//! * [`protocol`] / [`net`] — the wire format and the Unix-socket
//!   transport (f64 fields travel as raw bits, so served results are
//!   bit-identical to standalone runs).
//!
//! [`RunConfig`]: uintah::config::RunConfig

pub mod admission;
pub mod job;
pub mod net;
pub mod protocol;
pub mod server;
mod slot;

pub use job::{DivqField, JobId, JobOutcome, JobReport, JobStats};
pub use net::{serve_on, ClientError, ServeClient, ServerSocket};
pub use protocol::{Request, Response, RejectCode};
pub use server::{JobHandle, RadiationServer, ServeConfig, ServerStats, SubmitError};
