//! Executor slots: the per-shape pool of warm multi-rank execution state
//! the server recycles across jobs.
//!
//! A slot is everything `run_world` would build from scratch for one job
//! — a [`CommWorld`], and per rank a [`Scheduler`], a host
//! [`DataWarehouse`] and (for GPU jobs) a [`GpuDataWarehouse`] over the
//! *server's shared* [`DeviceFleet`] — wrapped in per-rank
//! [`PersistentExecutor`]s. Two jobs with the same *shape* (grid
//! structure, world size, store kind, GPU options) can run back to back
//! on the same slot: the second job swaps in its own task declarations
//! ([`PersistentExecutor::set_decls`]) and inherits
//!
//! * the compiled task graph (signature hashes declaration *shape*, not
//!   captured parameters — a different ray count reuses the graph);
//! * the warehouse recycler pools (warm storage, no fresh allocations);
//! * the device-resident level replicas (the diff-based
//!   `ensure_level_fresh` re-uploads only changed bytes).
//!
//! Shape keying is strict on anything baked into the slot's structures
//! and deliberately loose on per-job parameters (ray counts, thresholds,
//! halos, timestep counts, regrid schedules), which flow through
//! declarations and per-step calls.

use crate::job::{JobId, JobStats};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uintah::config::RunConfig;
use uintah_comm::{AllReduceVec, CommWorld};
use uintah_gpu::{lpt_assign, DeviceFleet, GpuAffinity, GpuDataWarehouse};
use uintah_grid::{
    DistributionPolicy, Grid, PatchCosts, PatchDistribution, Region, Regridder,
};
use uintah_runtime::{DataWarehouse, GraphCache, PersistentExecutor, Scheduler, TaskDecl};

/// Everything the server needs to run one job: identity plus the
/// materialized problem (grid and declarations are built once, at
/// submission, and shared with admission).
pub(crate) struct JobSpec {
    pub id: JobId,
    pub run_id: String,
    pub cfg: RunConfig,
    pub grid: Arc<Grid>,
    pub decls: Arc<Vec<TaskDecl>>,
}

/// The slot-compatibility key: hashes exactly the configuration a slot's
/// structures bake in at construction. Jobs with equal keys can share a
/// slot; anything else (ray counts, halos, priorities, timesteps, regrid
/// schedules) deliberately stays out.
pub(crate) fn shape_signature(cfg: &RunConfig) -> u64 {
    let mut h = DefaultHasher::new();
    cfg.fine_cells.hash(&mut h);
    cfg.patch_size.hash(&mut h);
    cfg.levels.hash(&mut h);
    cfg.refinement_ratio.hash(&mut h);
    cfg.ranks.hash(&mut h);
    cfg.threads.hash(&mut h);
    (cfg.store as u8).hash(&mut h);
    cfg.gpu.hash(&mut h);
    cfg.gpu_eviction.hash(&mut h);
    cfg.gpu_async_h2d.hash(&mut h);
    (cfg.gpu_affinity == GpuAffinity::CostBalanced).hash(&mut h);
    cfg.aggregate.hash(&mut h);
    h.finish()
}

/// What one job's execution on a slot produced.
pub(crate) struct JobRun {
    pub stats: JobStats,
    pub summaries: Vec<String>,
    /// Fine-level divQ as per-patch packed windows (assembled by the
    /// server into one dense field). Empty when no step completed.
    pub divq_pieces: Vec<(Region, Vec<f64>)>,
    pub canceled: bool,
}

/// A warm multi-rank execution world, reusable across same-shape jobs.
pub(crate) struct Slot {
    pub key: u64,
    grid: Arc<Grid>,
    /// The canonical initial distribution every job starts from; a job
    /// that regridded mid-run is reset here before the next job, so
    /// graph-cache signatures stay stable across tenants.
    initial_dist: Arc<PatchDistribution>,
    execs: Vec<PersistentExecutor>,
    /// Per-step cancel agreement for multi-rank jobs: all ranks abort at
    /// the same step boundary or none do (a one-sided abort would strand
    /// the others' receives).
    cancel_reduce: AllReduceVec,
    /// Cost exchange for mid-run rebalances (same role as in the driver).
    cost_reduce: AllReduceVec,
    pub jobs_served: u64,
}

impl Slot {
    /// Build a cold slot for `cfg`'s shape. GPU warehouses attach to the
    /// *server's* fleet — every tenant meters against the same devices.
    pub fn new(
        cfg: &RunConfig,
        grid: Arc<Grid>,
        decls: Arc<Vec<TaskDecl>>,
        fleet: &DeviceFleet,
        graph_cache: &Arc<GraphCache>,
    ) -> Self {
        let nranks = cfg.ranks;
        let world = CommWorld::new(nranks);
        let initial_dist =
            Arc::new(PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc));
        let mut execs = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let comm = world.communicator(rank);
            let dw = Arc::new(DataWarehouse::new(Arc::clone(&grid)));
            let gpu = cfg.gpu.then(|| {
                Arc::new(GpuDataWarehouse::with_fleet_full(
                    fleet.clone(),
                    true,
                    true,
                    cfg.gpu_async_h2d,
                    cfg.gpu_eviction,
                ))
            });
            let sched = Scheduler::new(comm, cfg.threads, cfg.store);
            let mut exec = PersistentExecutor::new(
                Arc::clone(&grid),
                Arc::clone(&decls),
                Arc::clone(&initial_dist),
                sched,
                dw,
                gpu,
                cfg.aggregate,
            );
            exec.set_graph_cache(Arc::clone(graph_cache));
            execs.push(exec);
        }
        Self {
            key: shape_signature(cfg),
            grid,
            initial_dist,
            execs,
            cancel_reduce: AllReduceVec::new(nranks),
            cost_reduce: AllReduceVec::new(nranks),
            jobs_served: 0,
        }
    }

    /// Device bytes this slot still holds while idle (level replicas kept
    /// warm for the next same-shape tenant). Dropping the slot frees them.
    pub fn resident_bytes(&self) -> u64 {
        self.execs
            .iter()
            .filter_map(|e| e.gpu())
            .map(|g| g.resident_bytes() as u64)
            .sum()
    }

    /// Device-resident level-replica entries across the slot's ranks.
    pub fn level_entries(&self) -> u64 {
        self.execs
            .iter()
            .filter_map(|e| e.gpu())
            .map(|g| g.level_entries() as u64)
            .sum()
    }

    /// Run one job to completion (or cancellation) on this slot. All
    /// ranks execute concurrently on scoped threads, exactly like
    /// `run_world`, but against the slot's persistent state. On return
    /// the slot is clean for the next tenant: D2H engines drained,
    /// per-patch device staging cleared (level replicas intentionally
    /// kept), ownership reset to the canonical initial distribution.
    pub fn run_job(&mut self, job: &JobSpec, cancel: &AtomicBool) -> JobRun {
        let t0 = Instant::now();
        let nranks = self.execs.len();
        let cfg = &job.cfg;
        let grid = Arc::clone(&self.grid);
        let initial = Arc::clone(&self.initial_dist);
        let cancel_reduce = &self.cancel_reduce;
        let cost_reduce = &self.cost_reduce;
        let inherited: u64 = self.level_entries();
        let regridder = Regridder::new(cfg.regrid_policy);
        let per_rank: Vec<RankRun> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, exec) in self.execs.iter_mut().enumerate() {
                let grid = Arc::clone(&grid);
                let initial = Arc::clone(&initial);
                let decls = Arc::clone(&job.decls);
                let regridder = &regridder;
                handles.push(scope.spawn(move || {
                    exec.set_decls(decls);
                    exec.set_run_id(Some(Arc::from(
                        format!("{}/r{rank}", job.run_id).as_str(),
                    )));
                    // A previous tenant may have regridded: restore the
                    // canonical ownership so every job sees the same
                    // initial distribution a standalone run would
                    // (collective — every rank takes this branch or none,
                    // since they all compare the same maps).
                    if exec.dist().rank_map() != initial.rank_map() {
                        exec.regrid(Arc::clone(&initial));
                    }
                    let compiles0 = exec.compiles() as u64;
                    let shared0 = exec.shared_graph_hits();
                    let mut rr = RankRun::default();
                    let mut step_cost = vec![0.0f64; grid.num_patches()];
                    for ts in 0..cfg.timesteps {
                        // Cancel agreement at the step boundary: the flag
                        // is all-reduced so every rank aborts at the same
                        // step (a lone abort would strand peers' receives).
                        let want = cancel.load(Ordering::Relaxed);
                        let abort = if nranks > 1 {
                            cancel_reduce.sum(&[if want { 1.0 } else { 0.0 }])[0] > 0.0
                        } else {
                            want
                        };
                        if abort {
                            rr.canceled = true;
                            break;
                        }
                        if cfg.regrid_interval > 0 && ts > 0 && ts % cfg.regrid_interval == 0 {
                            let global = cost_reduce.sum(&step_cost);
                            let costs = if global.iter().sum::<f64>() > 0.0 {
                                PatchCosts::from_values((*global).clone())
                            } else {
                                PatchCosts::from_cells(&grid)
                            };
                            step_cost.fill(0.0);
                            let next =
                                Arc::new(regridder.rebalance(&grid, &costs, exec.dist()));
                            exec.regrid(next);
                        }
                        let s = exec.step();
                        for &(pid, d) in &s.per_patch {
                            step_cost[pid.index()] += d.as_secs_f64();
                        }
                        if cfg.gpu_affinity == GpuAffinity::CostBalanced {
                            if let Some(g) = exec.gpu() {
                                if g.num_devices() > 1 && !s.per_patch.is_empty() {
                                    g.set_affinity(&lpt_assign(&s.per_patch, g.num_devices()));
                                }
                            }
                        }
                        rr.steps += 1;
                        rr.tasks += s.tasks_executed as u64;
                        rr.messages += s.messages_sent as u64;
                        rr.bytes_sent += s.bytes_sent;
                        rr.gpu_h2d_bytes += s.gpu_h2d_bytes;
                        rr.gpu_d2h_bytes += s.gpu_d2h_bytes;
                        rr.gpu_evictions += s.gpu_evictions;
                        rr.regrids += s.regrids as u64;
                        rr.summaries.push(s.summary());
                    }
                    rr.graph_compiles = exec.compiles() as u64 - compiles0;
                    rr.shared_graph_hits = exec.shared_graph_hits() - shared0;
                    // End-of-job hygiene: settle in-flight traffic in both
                    // directions and drop per-patch device staging. Level
                    // replicas stay resident — they are the cross-job
                    // sharing the next same-shape tenant inherits — and so
                    // do posted level-replica prefetches (the next tenant's
                    // first `ensure_level_fresh` verifies them against its
                    // own sealed data before serving).
                    exec.dw().drain_pending_d2h();
                    if let Some(g) = exec.gpu() {
                        g.sync_h2d_all();
                        g.sync_d2h_all();
                        g.clear_patch_db();
                    }
                    if rr.steps > 0 && !rr.canceled {
                        let fine = grid.fine_level_index();
                        for &pid in exec.dist().owned_by(rank) {
                            if grid.patch(pid).level_index() != fine {
                                continue;
                            }
                            let interior = grid.patch(pid).interior();
                            let v = exec
                                .dw()
                                .get_patch(rmcrt_core::labels::DIVQ, pid)
                                .expect("divQ computed for owned fine patch");
                            rr.divq_pieces.push(v.as_f64().pack_window(&interior));
                        }
                    }
                    rr
                }));
            }
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        });
        self.jobs_served += 1;

        let mut stats = JobStats {
            level_replicas_inherited: inherited,
            ..JobStats::default()
        };
        let mut summaries = Vec::new();
        let mut divq_pieces = Vec::new();
        let mut canceled = false;
        for rr in per_rank {
            stats.steps = stats.steps.max(rr.steps);
            stats.tasks += rr.tasks;
            stats.messages += rr.messages;
            stats.bytes_sent += rr.bytes_sent;
            stats.gpu_h2d_bytes += rr.gpu_h2d_bytes;
            stats.gpu_d2h_bytes += rr.gpu_d2h_bytes;
            stats.gpu_evictions += rr.gpu_evictions;
            stats.regrids += rr.regrids;
            stats.graph_compiles += rr.graph_compiles;
            stats.shared_graph_hits += rr.shared_graph_hits;
            canceled |= rr.canceled;
            summaries.extend(rr.summaries);
            divq_pieces.extend(rr.divq_pieces);
        }
        stats.exec_ns = t0.elapsed().as_nanos() as u64;
        JobRun {
            stats,
            summaries,
            divq_pieces,
            canceled,
        }
    }
}

#[derive(Default)]
struct RankRun {
    steps: u64,
    tasks: u64,
    messages: u64,
    bytes_sent: u64,
    gpu_h2d_bytes: u64,
    gpu_d2h_bytes: u64,
    gpu_evictions: u64,
    regrids: u64,
    graph_compiles: u64,
    shared_graph_hits: u64,
    summaries: Vec<String>,
    divq_pieces: Vec<(Region, Vec<f64>)>,
    canceled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_signature_ignores_per_job_parameters() {
        let a = RunConfig::default();
        let mut b = a.clone();
        b.nrays = 999;
        b.threshold = 0.5;
        b.halo = 2;
        b.timesteps = 7;
        b.regrid_interval = 3;
        assert_eq!(shape_signature(&a), shape_signature(&b));
        let mut c = a.clone();
        c.ranks = 4;
        assert_ne!(shape_signature(&a), shape_signature(&c));
        let mut d = a.clone();
        d.fine_cells = 64;
        d.patch_size = 16;
        assert_ne!(shape_signature(&a), shape_signature(&d));
        let mut e = a.clone();
        e.gpu = true;
        assert_ne!(shape_signature(&a), shape_signature(&e));
        // The upload pipeline is baked into the slot's warehouses: a sync
        // tenant must not land on an async slot or vice versa.
        let mut f = a.clone();
        f.gpu_async_h2d = false;
        assert_ne!(shape_signature(&a), shape_signature(&f));
    }
}
