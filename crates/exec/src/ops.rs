//! Exec-dispatched AMR operators.
//!
//! `uintah-grid` exports the pure per-cell kernels (`restrict_average_cell`
//! & friends) plus serial reference wrappers; this module is the dispatch
//! layer the hot paths use, running the identical kernels through
//! [`parallel_fill`](crate::parallel_fill) on any [`ExecSpace`]. Results
//! are bit-identical to the serial references on every space.

use crate::{parallel_fill, ExecSpace};
use uintah_grid::{prolongation, restriction, CcVariable, IntVector, Region};

/// Volume-weighted fine→coarse averaging over `coarse_window`, dispatched
/// on `space`. See [`restriction::restrict_average`].
pub fn restrict_average(
    space: &ExecSpace,
    fine: &CcVariable<f64>,
    rr: IntVector,
    coarse_window: Region,
) -> CcVariable<f64> {
    parallel_fill(space, coarse_window, |cc| {
        restriction::restrict_average_cell(fine, rr, cc)
    })
}

/// Any-boundary-wins cell-type restriction over `coarse_window`, dispatched
/// on `space`. See [`restriction::restrict_cell_type`].
pub fn restrict_cell_type(
    space: &ExecSpace,
    fine: &CcVariable<u8>,
    rr: IntVector,
    coarse_window: Region,
) -> CcVariable<u8> {
    parallel_fill(space, coarse_window, |cc| {
        restriction::restrict_cell_type_cell(fine, rr, cc)
    })
}

/// Piecewise-constant coarse→fine prolongation over `fine_window`,
/// dispatched on `space`. See [`prolongation::prolong_constant`].
pub fn prolong_constant(
    space: &ExecSpace,
    coarse: &CcVariable<f64>,
    rr: IntVector,
    fine_window: Region,
) -> CcVariable<f64> {
    parallel_fill(space, fine_window, |fc| {
        prolongation::prolong_constant_cell(coarse, rr, fc)
    })
}

/// Trilinear coarse→fine prolongation over `fine_window`, dispatched on
/// `space`. See [`prolongation::prolong_linear`].
pub fn prolong_linear(
    space: &ExecSpace,
    coarse: &CcVariable<f64>,
    rr: IntVector,
    fine_window: Region,
) -> CcVariable<f64> {
    parallel_fill(space, fine_window, |fc| {
        prolongation::prolong_linear_cell(coarse, rr, fc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_gpu::GpuDevice;

    fn spaces() -> Vec<ExecSpace> {
        vec![
            ExecSpace::Serial,
            ExecSpace::Threads(3),
            ExecSpace::device(GpuDevice::with_capacity("test", 1 << 20)),
        ]
    }

    #[test]
    fn dispatched_operators_match_serial_references() {
        let rr = IntVector::splat(2);
        let fine_r = Region::cube(8);
        let mut fine = CcVariable::<f64>::new(fine_r);
        fine.fill_with(|c| ((c.x * 7 + c.y * 3 + c.z) as f64).sin());
        let mut types = CcVariable::<u8>::new(fine_r);
        types.fill_with(|c| u8::from(c.x == 0 || c.y == 7));
        let coarse_r = Region::cube(4);
        let mut coarse = CcVariable::<f64>::new(coarse_r);
        coarse.fill_with(|c| (c.x - c.y + 2 * c.z) as f64 * 0.25);

        let avg_ref = restriction::restrict_average(&fine, rr, coarse_r);
        let ty_ref = restriction::restrict_cell_type(&types, rr, coarse_r);
        let pc_ref = prolongation::prolong_constant(&coarse, rr, fine_r);
        let pl_ref = prolongation::prolong_linear(&coarse, rr, fine_r);
        for space in spaces() {
            assert_eq!(restrict_average(&space, &fine, rr, coarse_r), avg_ref);
            assert_eq!(restrict_cell_type(&space, &types, rr, coarse_r), ty_ref);
            assert_eq!(prolong_constant(&space, &coarse, rr, fine_r), pc_ref);
            assert_eq!(prolong_linear(&space, &coarse, rr, fine_r), pl_ref);
        }
    }
}
