//! Kokkos-style execution spaces — the paper's last future-work item.
//!
//! §VII: "Work is currently underway to address coprocessor architectures
//! … This work will leverage the Kokkos library to achieve performance
//! portability, requiring the extension of the Uintah runtime system to
//! support multi-threaded task execution."
//!
//! Kokkos' core idea is that a kernel is written once against an abstract
//! *execution space* and dispatched to serial, multi-threaded or device
//! back-ends. This crate is the **mandatory kernel-dispatch layer** of the
//! stack: every cell-region hot loop (ray trace, DOM sweeps, restriction /
//! prolongation, spectral banding, boundary-flux maps, the arches-lite
//! energy RHS) runs through these entry points:
//!
//! * [`ExecSpace`] — `Serial`, `Threads(n)`, or `Device` (the simulated
//!   GPU: same slab-ordered kernels, one metered kernel launch per
//!   dispatch on the device's stream queues);
//! * [`parallel_for`] — apply a kernel to every cell of a region;
//! * [`parallel_reduce`] — map-reduce over a region with a deterministic
//!   combination order (slab-ordered, so floating-point results are
//!   identical for any thread count);
//! * [`parallel_fill`] — produce a [`CcVariable`] by evaluating a kernel
//!   per cell (the common "compute a field" pattern);
//! * [`parallel_map`] — a 1-D index range (Kokkos `RangePolicy`), used for
//!   non-cell fan-out such as the DOM ordinate sweeps;
//! * [`ops`] — exec-dispatched AMR operators (restriction / prolongation)
//!   over the per-cell kernels exported by `uintah-grid`.
//!
//! Determinism is a hard requirement inherited from the RMCRT solvers:
//! every entry point yields results that are bit-identical across
//! execution spaces. The `Device` back-end preserves this by executing the
//! identical slab/plane-canonical code while metering kernel launches,
//! invocation counts, logical bytes and wall time into [`KernelStats`] —
//! the numbers that feed `ExecStats` and the `titan-sim` cost-model
//! calibration. Device *input staging* (H2D) is the GPU DataWarehouse's
//! job and is metered there; a dispatch itself never touches the PCIe
//! counters, so byte-accounting experiments (E4) see exactly the traffic
//! the staging layer creates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah_gpu::GpuDevice;
use uintah_grid::{CcVariable, IntVector, Region};

pub mod ops;

/// Aggregate kernel metering for one device execution space: launch
/// counts, kernel invocations (cells or indices dispatched), logical bytes
/// produced by fill kernels, and wall time inside dispatches.
///
/// Snapshots of this struct feed `uintah-runtime::ExecStats`, fold into
/// the per-device totals of `uintah-runtime`'s `CalibrationSnapshot`, and
/// through it drive the single `titan-sim` calibration path
/// (`MachineParams::from_snapshot`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel launches (one per dispatch; slabs are thread blocks of one
    /// launch, not separate launches).
    pub launches: u64,
    /// Kernel invocations dispatched (cells for region entry points,
    /// indices for [`parallel_map`]).
    pub invocations: u64,
    /// Logical bytes written by fill kernels (output-field bytes; transfer
    /// bytes live on the device's copy-engine counters, not here).
    pub bytes_moved: u64,
    /// Wall time spent inside device dispatches, in nanoseconds.
    pub wall_ns: u64,
}

impl KernelStats {
    /// Wall time as a [`Duration`].
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// Fold another snapshot into this one (per-device stats rolling up
    /// into a fleet aggregate).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.invocations += other.invocations;
        self.bytes_moved += other.bytes_moved;
        self.wall_ns += other.wall_ns;
    }

    /// Sum a set of per-device snapshots into one aggregate.
    pub fn sum<'a>(stats: impl IntoIterator<Item = &'a KernelStats>) -> KernelStats {
        let mut total = KernelStats::default();
        for s in stats {
            total.accumulate(s);
        }
        total
    }
}

#[derive(Debug, Default)]
struct KernelStatsAccum {
    launches: AtomicU64,
    invocations: AtomicU64,
    bytes_moved: AtomicU64,
    wall_ns: AtomicU64,
}

impl KernelStatsAccum {
    fn record(&self, invocations: u64, bytes: u64, wall_ns: u64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.invocations.fetch_add(invocations, Ordering::Relaxed);
        self.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
        self.wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KernelStats {
        KernelStats {
            launches: self.launches.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            bytes_moved: self.bytes_moved.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
        }
    }
}

/// The device execution space: a handle on a simulated [`GpuDevice`], its
/// index within the rank's device fleet, plus a shared [`KernelStats`]
/// accumulator. Cheap to clone — clones share the device and the stats, so
/// a scheduler can hand one space per device to the GPU tasks of a
/// timestep and read one per-device snapshot afterwards. Stream
/// round-robin state lives on the *device* (its `next_stream` counter), so
/// clones of one space share a stream sequence while spaces over different
/// devices advance independently — exactly the CUDA queue model.
#[derive(Clone, Debug)]
pub struct DeviceSpace {
    device: GpuDevice,
    index: usize,
    stats: Arc<KernelStatsAccum>,
}

impl DeviceSpace {
    /// A space over fleet device 0 (the single-GPU configuration).
    pub fn new(device: GpuDevice) -> Self {
        Self::with_index(device, 0)
    }

    /// A space over the fleet device at `index`, with a fresh stats
    /// accumulator (one per device per timestep in the scheduler).
    pub fn with_index(device: GpuDevice, index: usize) -> Self {
        Self {
            device,
            index,
            stats: Arc::new(KernelStatsAccum::default()),
        }
    }

    #[inline]
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// This space's device index within the rank's fleet.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Snapshot of everything dispatched through this space (and its
    /// clones) so far.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats.snapshot()
    }

    /// Execute one kernel launch: record it on the device (consuming a
    /// stream slot, as one CUDA kernel launches on one stream), run the
    /// body on the calling thread — the simulated device executes kernels
    /// host-side; concurrency comes from concurrent patch tasks — and
    /// meter the dispatch.
    fn launch<R>(&self, invocations: u64, bytes: u64, body: impl FnOnce() -> R) -> R {
        let _stream = self.device.launch_kernel();
        let t0 = Instant::now();
        let out = body();
        self.stats
            .record(invocations, bytes, t0.elapsed().as_nanos() as u64);
        out
    }
}

/// Where a kernel runs.
#[derive(Clone, Debug, Default)]
pub enum ExecSpace {
    /// The calling thread.
    #[default]
    Serial,
    /// A scoped pool of `n` host threads (z-slab decomposition).
    Threads(usize),
    /// The (simulated) GPU: identical slab-ordered kernels, one metered
    /// launch per dispatch, stats recorded into the space's
    /// [`KernelStats`].
    Device(DeviceSpace),
}

impl ExecSpace {
    /// The host space for `n` workers: `Serial` for `n <= 1`, otherwise
    /// `Threads(n)`.
    pub fn host(n: usize) -> Self {
        if n <= 1 {
            ExecSpace::Serial
        } else {
            ExecSpace::Threads(n)
        }
    }

    /// A fresh device space over `device`.
    pub fn device(device: GpuDevice) -> Self {
        ExecSpace::Device(DeviceSpace::new(device))
    }

    /// Effective worker count (streams for the device space).
    pub fn concurrency(&self) -> usize {
        match self {
            ExecSpace::Serial => 1,
            ExecSpace::Threads(n) => (*n).max(1),
            ExecSpace::Device(d) => d.device().num_streams() as usize,
        }
    }

    #[inline]
    pub fn is_device(&self) -> bool {
        matches!(self, ExecSpace::Device(_))
    }

    /// The fleet device index this space dispatches to; `None` for host
    /// spaces.
    pub fn device_index(&self) -> Option<usize> {
        match self {
            ExecSpace::Device(d) => Some(d.index()),
            _ => None,
        }
    }

    /// Kernel metering snapshot; `None` for host spaces (host dispatches
    /// are not kernel launches).
    pub fn kernel_stats(&self) -> Option<KernelStats> {
        match self {
            ExecSpace::Device(d) => Some(d.kernel_stats()),
            _ => None,
        }
    }
}

/// Split `region` into at most `n` contiguous z-slabs.
///
/// A degenerate region (zero or negative extent on any axis) yields **no**
/// slabs: every entry point dispatches zero kernel invocations for it, on
/// every space — callers never rely on downstream clamping.
fn slabs(region: Region, n: usize) -> Vec<Region> {
    if region.is_empty() {
        return Vec::new();
    }
    let nz = region.extent().z as usize;
    let n = n.clamp(1, nz);
    (0..n)
        .map(|i| {
            let z0 = region.lo().z + (nz * i / n) as i32;
            let z1 = region.lo().z + (nz * (i + 1) / n) as i32;
            Region::new(
                IntVector::new(region.lo().x, region.lo().y, z0),
                IntVector::new(region.hi().x, region.hi().y, z1),
            )
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Run `kernel` for every cell of `region`.
///
/// ```
/// use uintah_exec::{parallel_reduce, ExecSpace};
/// use uintah_grid::Region;
///
/// let region = Region::cube(8);
/// let serial = parallel_reduce(&ExecSpace::Serial, region, 0.0f64,
///     |c| (c.x + c.y + c.z) as f64 * 0.1, |a, b| a + b);
/// let threaded = parallel_reduce(&ExecSpace::Threads(4), region, 0.0f64,
///     |c| (c.x + c.y + c.z) as f64 * 0.1, |a, b| a + b);
/// assert_eq!(serial.to_bits(), threaded.to_bits()); // bit-identical
/// ```
pub fn parallel_for<F>(space: &ExecSpace, region: Region, kernel: F)
where
    F: Fn(IntVector) + Sync,
{
    if region.is_empty() {
        return;
    }
    match space {
        ExecSpace::Serial => {
            for c in region.cells() {
                kernel(c);
            }
        }
        ExecSpace::Threads(n) => {
            let kernel = &kernel;
            std::thread::scope(|s| {
                for slab in slabs(region, (*n).max(1)) {
                    s.spawn(move || {
                        for c in slab.cells() {
                            kernel(c);
                        }
                    });
                }
            });
        }
        ExecSpace::Device(d) => d.launch(region.volume() as u64, 0, || {
            // Slab-ordered on-device execution: ascending z-slabs are the
            // kernel's thread blocks, visited in canonical order.
            for c in region.cells() {
                kernel(c);
            }
        }),
    }
}

/// Map-reduce over `region` with a *canonical fold structure*: a partial
/// accumulator is computed per z-plane (cell order within a plane is fixed)
/// and the plane partials are folded left-to-right. Because the structure
/// does not depend on the execution space, results are **bit-identical**
/// for any thread count — and on the device — even for non-associative
/// combines (floating-point sums), the property the RMCRT solvers require.
pub fn parallel_reduce<T, M, C>(
    space: &ExecSpace,
    region: Region,
    identity: T,
    map: M,
    combine: C,
) -> T
where
    T: Send + Sync + Clone,
    M: Fn(IntVector) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    if region.is_empty() {
        return identity;
    }
    let planes: Vec<Region> = (region.lo().z..region.hi().z)
        .map(|z| {
            Region::new(
                IntVector::new(region.lo().x, region.lo().y, z),
                IntVector::new(region.hi().x, region.hi().y, z + 1),
            )
        })
        .collect();
    let plane_partial = |plane: &Region| -> T {
        let mut acc = identity.clone();
        for c in plane.cells() {
            acc = combine(acc, map(c));
        }
        acc
    };
    let partials: Vec<T> = match space {
        ExecSpace::Serial => planes.iter().map(plane_partial).collect(),
        ExecSpace::Threads(n) => {
            let mut out: Vec<Option<T>> = (0..planes.len()).map(|_| None).collect();
            let chunk = planes.len().div_ceil((*n).max(1));
            let plane_partial = &plane_partial;
            std::thread::scope(|s| {
                for (planes_chunk, out_chunk) in planes.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (p, slot) in planes_chunk.iter().zip(out_chunk.iter_mut()) {
                            *slot = Some(plane_partial(p));
                        }
                    });
                }
            });
            out.into_iter().map(|p| p.expect("plane computed")).collect()
        }
        ExecSpace::Device(d) => d.launch(region.volume() as u64, 0, || {
            planes.iter().map(plane_partial).collect()
        }),
    };
    // Canonical left-to-right fold over plane partials.
    let mut acc = identity;
    for p in partials {
        acc = combine(acc, p);
    }
    acc
}

/// Evaluate `kernel` at every cell of `region` into a new variable.
pub fn parallel_fill<T, F>(space: &ExecSpace, region: Region, kernel: F) -> CcVariable<T>
where
    T: Copy + Default + Send + Sync,
    F: Fn(IntVector) -> T + Sync,
{
    if region.is_empty() {
        return CcVariable::new(region);
    }
    match space {
        ExecSpace::Serial => {
            let mut out = CcVariable::new(region);
            out.fill_with(kernel);
            out
        }
        ExecSpace::Threads(n) => {
            let chunks = slabs(region, (*n).max(1));
            let mut parts: Vec<Option<CcVariable<T>>> = (0..chunks.len()).map(|_| None).collect();
            let kernel = &kernel;
            std::thread::scope(|s| {
                for (slab, slot) in chunks.iter().zip(parts.iter_mut()) {
                    let slab = *slab;
                    s.spawn(move || {
                        let mut v = CcVariable::new(slab);
                        v.fill_with(kernel);
                        *slot = Some(v);
                    });
                }
            });
            let mut out = CcVariable::new(region);
            for p in parts.into_iter().flatten() {
                out.copy_window(&p, &p.region());
            }
            out
        }
        ExecSpace::Device(d) => {
            let cells = region.volume() as u64;
            d.launch(cells, cells * std::mem::size_of::<T>() as u64, || {
                let mut out = CcVariable::new(region);
                out.fill_with(kernel);
                out
            })
        }
    }
}

/// Map a 1-D index range through `f` (Kokkos `RangePolicy<0, n>`): the
/// entry point for fan-out that is not cell-shaped, e.g. DOM ordinate
/// sweeps or per-band spectral traces. Results come back in index order,
/// so any subsequent fold the caller does is canonical by construction.
pub fn parallel_map<T, F>(space: &ExecSpace, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    match space {
        ExecSpace::Serial => (0..n).map(f).collect(),
        ExecSpace::Threads(t) => {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            let chunk = n.div_ceil((*t).max(1));
            let f = &f;
            std::thread::scope(|s| {
                for (start, out_chunk) in (0..n).step_by(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (k, slot) in out_chunk.iter_mut().enumerate() {
                            *slot = Some(f(start + k));
                        }
                    });
                }
            });
            out.into_iter().map(|v| v.expect("index computed")).collect()
        }
        ExecSpace::Device(d) => d.launch(n as u64, 0, || (0..n).map(f).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn all_spaces() -> Vec<ExecSpace> {
        vec![
            ExecSpace::Serial,
            ExecSpace::Threads(4),
            ExecSpace::Threads(64),
            ExecSpace::device(GpuDevice::with_capacity("test", 1 << 30)),
        ]
    }

    #[test]
    fn parallel_for_visits_every_cell_once() {
        for space in all_spaces() {
            let region = Region::cube(8);
            let counts: Vec<AtomicUsize> =
                (0..region.volume()).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(&space, region, |c| {
                counts[region.linear_index(c)].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{space:?} missed or duplicated cells"
            );
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_spaces() {
        let region = Region::new(IntVector::new(-3, 0, 2), IntVector::new(5, 7, 11));
        // A float map whose sum depends on association order if slabs were
        // combined nondeterministically.
        let map = |c: IntVector| ((c.x * 37 + c.y * 11 + c.z) as f64).sin() * 1e3;
        let serial = parallel_reduce(&ExecSpace::Serial, region, 0.0f64, map, |a, b| a + b);
        for n in [2usize, 3, 8, 32] {
            let par = parallel_reduce(&ExecSpace::Threads(n), region, 0.0f64, map, |a, b| a + b);
            assert_eq!(serial.to_bits(), par.to_bits(), "Threads({n}) diverged");
        }
        let dev = parallel_reduce(
            &ExecSpace::device(GpuDevice::with_capacity("test", 1 << 20)),
            region,
            0.0f64,
            map,
            |a, b| a + b,
        );
        assert_eq!(serial.to_bits(), dev.to_bits(), "Device diverged");
    }

    #[test]
    fn fill_matches_serial_fill() {
        let region = Region::cube(9);
        let f = |c: IntVector| (c.x + 100 * c.y + 10_000 * c.z) as f64 * 0.1;
        let serial = parallel_fill(&ExecSpace::Serial, region, f);
        let par = parallel_fill(&ExecSpace::Threads(5), region, f);
        assert_eq!(serial, par);
        let dev = parallel_fill(
            &ExecSpace::device(GpuDevice::with_capacity("test", 1 << 20)),
            region,
            f,
        );
        assert_eq!(serial, dev);
    }

    #[test]
    fn max_reduce() {
        let region = Region::cube(6);
        let m = parallel_reduce(
            &ExecSpace::Threads(3),
            region,
            i64::MIN,
            |c| (c.x * c.y * c.z) as i64,
            i64::max,
        );
        assert_eq!(m, 5 * 5 * 5);
    }

    #[test]
    fn map_is_order_preserving_on_every_space() {
        for space in all_spaces() {
            for n in [0usize, 1, 5, 17] {
                let out = parallel_map(&space, n, |i| i * i);
                assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>(), "{space:?}");
            }
        }
    }

    #[test]
    fn degenerate_and_thin_regions() {
        // Fewer z-planes than threads, and a single-plane region.
        let thin = Region::new(IntVector::ZERO, IntVector::new(4, 4, 1));
        let sum = parallel_reduce(&ExecSpace::Threads(16), thin, 0usize, |_| 1usize, |a, b| a + b);
        assert_eq!(sum, 16);
        let count = std::sync::atomic::AtomicUsize::new(0);
        parallel_for(&ExecSpace::Threads(9), thin, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_and_negative_extent_regions_dispatch_nothing() {
        // Regression (satellite): a zero- or negative-extent region must
        // dispatch zero kernel invocations on every space — explicitly,
        // not via downstream clamping — and must not record a device
        // kernel launch.
        let degenerate = [
            Region::new(IntVector::ZERO, IntVector::ZERO),
            Region::new(IntVector::ZERO, IntVector::new(4, 4, 0)),
            Region::new(IntVector::ZERO, IntVector::new(0, 4, 4)),
            Region::new(IntVector::splat(3), IntVector::splat(-3)),
            Region::new(IntVector::new(0, 0, 5), IntVector::new(8, 8, 2)),
        ];
        for region in degenerate {
            assert!(slabs(region, 8).is_empty(), "{region:?} produced slabs");
            let device = GpuDevice::with_capacity("test", 1 << 20);
            let spaces = [
                ExecSpace::Serial,
                ExecSpace::Threads(7),
                ExecSpace::device(device.clone()),
            ];
            for space in &spaces {
                let count = AtomicUsize::new(0);
                parallel_for(space, region, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(count.load(Ordering::Relaxed), 0, "{space:?} {region:?}");
                let sum = parallel_reduce(space, region, 0usize, |_| 1usize, |a, b| a + b);
                assert_eq!(sum, 0);
                let filled = parallel_fill(space, region, |_| 1.0f64);
                assert_eq!(filled.len(), 0);
            }
            assert_eq!(
                device.counters().kernels,
                0,
                "degenerate dispatch must not launch kernels"
            );
        }
    }

    #[test]
    fn device_dispatch_meters_kernel_stats() {
        let device = GpuDevice::with_capacity("test", 1 << 20);
        let space = ExecSpace::device(device.clone());
        let region = Region::cube(4);
        let _ = parallel_fill(&space, region, |c| (c.x + c.y + c.z) as f64);
        parallel_for(&space, region, |_| {});
        let _ = parallel_reduce(&space, region, 0.0f64, |_| 1.0, |a, b| a + b);
        let _ = parallel_map(&space, 10, |i| i);
        let ks = space.kernel_stats().expect("device space has stats");
        assert_eq!(ks.launches, 4);
        assert_eq!(ks.invocations, 3 * 64 + 10);
        assert_eq!(ks.bytes_moved, 64 * 8, "fill output bytes only");
        // One launch per dispatch is also what the device counted.
        assert_eq!(device.counters().kernels, 4);
        // Host spaces have no kernel stats.
        assert!(ExecSpace::Serial.kernel_stats().is_none());
        assert!(ExecSpace::Threads(4).kernel_stats().is_none());
    }

    #[test]
    fn cloned_device_spaces_share_stats() {
        let space = DeviceSpace::new(GpuDevice::with_capacity("test", 1 << 20));
        let clone = ExecSpace::Device(space.clone());
        let _ = parallel_fill(&clone, Region::cube(2), |_| 0u8);
        assert_eq!(space.kernel_stats().launches, 1);
        assert_eq!(space.kernel_stats().invocations, 8);
    }

    #[test]
    fn stream_round_robin_is_per_device_not_per_space() {
        // Regression (satellite audit): stream assignment state lives on
        // the device, not the space. Clones of one space — and *distinct*
        // spaces over the same device — must share one round-robin
        // sequence, while spaces over different devices each start at
        // stream 0 and advance independently.
        let dev_a = GpuDevice::with_capacity("a", 1 << 20);
        let dev_b = GpuDevice::with_capacity("b", 1 << 20);
        let space_a = DeviceSpace::with_index(dev_a.clone(), 0);
        let space_a2 = space_a.clone();
        let space_b = DeviceSpace::with_index(dev_b.clone(), 1);
        assert_eq!(space_a.index(), 0);
        assert_eq!(space_a2.index(), 0, "clone keeps its device index");
        assert_eq!(space_b.index(), 1);
        // Three launches on device A (two via the clone) consume streams
        // 0, 1, 2 of A's queue — the clone does not restart the sequence.
        let exec_a = ExecSpace::Device(space_a);
        let exec_a2 = ExecSpace::Device(space_a2);
        parallel_for(&exec_a, Region::cube(2), |_| {});
        parallel_for(&exec_a2, Region::cube(2), |_| {});
        parallel_for(&exec_a2, Region::cube(2), |_| {});
        assert_eq!(dev_a.next_stream().0, 3, "device A consumed streams 0..3");
        // Device B's sequence is untouched by A's launches.
        let exec_b = ExecSpace::Device(space_b.clone());
        parallel_for(&exec_b, Region::cube(2), |_| {});
        assert_eq!(dev_b.next_stream().0, 1, "device B advanced independently");
        assert_eq!(exec_b.device_index(), Some(1));
        assert_eq!(ExecSpace::Serial.device_index(), None);
        assert_eq!(ExecSpace::Threads(4).device_index(), None);
        // Stats stayed per-space: A's accumulator saw 3 launches, B's 1.
        assert_eq!(exec_a.kernel_stats().unwrap().launches, 3);
        assert_eq!(space_b.kernel_stats().launches, 1);
    }

    #[test]
    fn kernel_stats_accumulate_and_sum() {
        let a = KernelStats {
            launches: 2,
            invocations: 100,
            bytes_moved: 800,
            wall_ns: 50,
        };
        let b = KernelStats {
            launches: 3,
            invocations: 50,
            bytes_moved: 0,
            wall_ns: 25,
        };
        let mut acc = a;
        acc.accumulate(&b);
        assert_eq!(acc.launches, 5);
        assert_eq!(acc.invocations, 150);
        assert_eq!(acc.bytes_moved, 800);
        assert_eq!(acc.wall_ns, 75);
        assert_eq!(KernelStats::sum([&a, &b]), acc);
        assert_eq!(KernelStats::sum([]), KernelStats::default());
    }

    #[test]
    fn concurrency_reporting() {
        assert_eq!(ExecSpace::Serial.concurrency(), 1);
        assert_eq!(ExecSpace::Threads(8).concurrency(), 8);
        assert_eq!(ExecSpace::Threads(0).concurrency(), 1);
        assert_eq!(ExecSpace::host(1).concurrency(), 1);
        assert!(matches!(ExecSpace::host(1), ExecSpace::Serial));
        assert!(matches!(ExecSpace::host(6), ExecSpace::Threads(6)));
        let d = ExecSpace::device(GpuDevice::with_capacity("test", 1024));
        assert_eq!(d.concurrency(), 16); // one lane per device stream
        assert!(d.is_device());
    }
}
