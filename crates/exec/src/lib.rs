//! Kokkos-style execution spaces — the paper's last future-work item.
//!
//! §VII: "Work is currently underway to address coprocessor architectures
//! … This work will leverage the Kokkos library to achieve performance
//! portability, requiring the extension of the Uintah runtime system to
//! support multi-threaded task execution."
//!
//! Kokkos' core idea is that a kernel is written once against an abstract
//! *execution space* and dispatched to serial, multi-threaded or device
//! back-ends. This crate provides that shape for cell-region kernels:
//!
//! * [`ExecSpace`] — `Serial` or `Threads(n)` (the device back-end of the
//!   simulated GPU is byte-accounting, so kernels "on device" also run
//!   through these host spaces);
//! * [`parallel_for`] — apply a kernel to every cell of a region;
//! * [`parallel_reduce`] — map-reduce over a region with a deterministic
//!   combination order (slab-ordered, so floating-point results are
//!   identical for any thread count);
//! * [`parallel_fill`] — produce a [`CcVariable`] by evaluating a kernel
//!   per cell (the common "compute a field" pattern).
//!
//! Determinism is a hard requirement inherited from the RMCRT solvers:
//! every entry point yields results that are bit-identical across
//! execution spaces.

use uintah_grid::{CcVariable, IntVector, Region};

/// Where a kernel runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecSpace {
    /// The calling thread.
    #[default]
    Serial,
    /// A scoped pool of `n` host threads (z-slab decomposition).
    Threads(usize),
}

impl ExecSpace {
    /// Effective worker count.
    pub fn concurrency(self) -> usize {
        match self {
            ExecSpace::Serial => 1,
            ExecSpace::Threads(n) => n.max(1),
        }
    }
}

/// Split `region` into at most `n` contiguous z-slabs.
fn slabs(region: Region, n: usize) -> Vec<Region> {
    let nz = region.extent().z.max(0) as usize;
    let n = n.clamp(1, nz.max(1));
    (0..n)
        .map(|i| {
            let z0 = region.lo().z + (nz * i / n) as i32;
            let z1 = region.lo().z + (nz * (i + 1) / n) as i32;
            Region::new(
                IntVector::new(region.lo().x, region.lo().y, z0),
                IntVector::new(region.hi().x, region.hi().y, z1),
            )
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Run `kernel` for every cell of `region`.
///
/// ```
/// use uintah_exec::{parallel_reduce, ExecSpace};
/// use uintah_grid::Region;
///
/// let region = Region::cube(8);
/// let serial = parallel_reduce(ExecSpace::Serial, region, 0.0f64,
///     |c| (c.x + c.y + c.z) as f64 * 0.1, |a, b| a + b);
/// let threaded = parallel_reduce(ExecSpace::Threads(4), region, 0.0f64,
///     |c| (c.x + c.y + c.z) as f64 * 0.1, |a, b| a + b);
/// assert_eq!(serial.to_bits(), threaded.to_bits()); // bit-identical
/// ```
pub fn parallel_for<F>(space: ExecSpace, region: Region, kernel: F)
where
    F: Fn(IntVector) + Sync,
{
    match space {
        ExecSpace::Serial => {
            for c in region.cells() {
                kernel(c);
            }
        }
        ExecSpace::Threads(n) => {
            let kernel = &kernel;
            std::thread::scope(|s| {
                for slab in slabs(region, n.max(1)) {
                    s.spawn(move || {
                        for c in slab.cells() {
                            kernel(c);
                        }
                    });
                }
            });
        }
    }
}

/// Map-reduce over `region` with a *canonical fold structure*: a partial
/// accumulator is computed per z-plane (cell order within a plane is fixed)
/// and the plane partials are folded left-to-right. Because the structure
/// does not depend on the execution space, results are **bit-identical**
/// for any thread count even for non-associative combines (floating-point
/// sums) — the property the RMCRT solvers require.
pub fn parallel_reduce<T, M, C>(space: ExecSpace, region: Region, identity: T, map: M, combine: C) -> T
where
    T: Send + Sync + Clone,
    M: Fn(IntVector) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    if region.is_empty() {
        return identity;
    }
    let planes: Vec<Region> = (region.lo().z..region.hi().z)
        .map(|z| {
            Region::new(
                IntVector::new(region.lo().x, region.lo().y, z),
                IntVector::new(region.hi().x, region.hi().y, z + 1),
            )
        })
        .collect();
    let plane_partial = |plane: &Region| -> T {
        let mut acc = identity.clone();
        for c in plane.cells() {
            acc = combine(acc, map(c));
        }
        acc
    };
    let partials: Vec<T> = match space {
        ExecSpace::Serial => planes.iter().map(plane_partial).collect(),
        ExecSpace::Threads(n) => {
            let mut out: Vec<Option<T>> = (0..planes.len()).map(|_| None).collect();
            let chunk = planes.len().div_ceil(n.max(1));
            let plane_partial = &plane_partial;
            std::thread::scope(|s| {
                for (planes_chunk, out_chunk) in planes.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (p, slot) in planes_chunk.iter().zip(out_chunk.iter_mut()) {
                            *slot = Some(plane_partial(p));
                        }
                    });
                }
            });
            out.into_iter().map(|p| p.expect("plane computed")).collect()
        }
    };
    // Canonical left-to-right fold over plane partials.
    let mut acc = identity;
    for p in partials {
        acc = combine(acc, p);
    }
    acc
}

/// Evaluate `kernel` at every cell of `region` into a new variable.
pub fn parallel_fill<T, F>(space: ExecSpace, region: Region, kernel: F) -> CcVariable<T>
where
    T: Copy + Default + Send + Sync,
    F: Fn(IntVector) -> T + Sync,
{
    match space {
        ExecSpace::Serial => {
            let mut out = CcVariable::new(region);
            out.fill_with(kernel);
            out
        }
        ExecSpace::Threads(n) => {
            let chunks = slabs(region, n.max(1));
            let mut parts: Vec<Option<CcVariable<T>>> = (0..chunks.len()).map(|_| None).collect();
            let kernel = &kernel;
            std::thread::scope(|s| {
                for (slab, slot) in chunks.iter().zip(parts.iter_mut()) {
                    let slab = *slab;
                    s.spawn(move || {
                        let mut v = CcVariable::new(slab);
                        v.fill_with(kernel);
                        *slot = Some(v);
                    });
                }
            });
            let mut out = CcVariable::new(region);
            for p in parts.into_iter().flatten() {
                out.copy_window(&p, &p.region());
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_cell_once() {
        for space in [ExecSpace::Serial, ExecSpace::Threads(4), ExecSpace::Threads(64)] {
            let region = Region::cube(8);
            let counts: Vec<AtomicUsize> = (0..region.volume()).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(space, region, |c| {
                counts[region.linear_index(c)].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{space:?} missed or duplicated cells"
            );
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_spaces() {
        let region = Region::new(IntVector::new(-3, 0, 2), IntVector::new(5, 7, 11));
        // A float map whose sum depends on association order if slabs were
        // combined nondeterministically.
        let map = |c: IntVector| ((c.x * 37 + c.y * 11 + c.z) as f64).sin() * 1e3;
        let serial = parallel_reduce(ExecSpace::Serial, region, 0.0f64, map, |a, b| a + b);
        for n in [2usize, 3, 8, 32] {
            let par = parallel_reduce(ExecSpace::Threads(n), region, 0.0f64, map, |a, b| a + b);
            assert_eq!(serial.to_bits(), par.to_bits(), "Threads({n}) diverged");
        }
    }

    #[test]
    fn fill_matches_serial_fill() {
        let region = Region::cube(9);
        let f = |c: IntVector| (c.x + 100 * c.y + 10_000 * c.z) as f64 * 0.1;
        let serial = parallel_fill(ExecSpace::Serial, region, f);
        let par = parallel_fill(ExecSpace::Threads(5), region, f);
        assert_eq!(serial, par);
    }

    #[test]
    fn max_reduce() {
        let region = Region::cube(6);
        let m = parallel_reduce(
            ExecSpace::Threads(3),
            region,
            i64::MIN,
            |c| (c.x * c.y * c.z) as i64,
            i64::max,
        );
        assert_eq!(m, 5 * 5 * 5);
    }

    #[test]
    fn degenerate_and_thin_regions() {
        // Fewer z-planes than threads, and a single-plane region.
        let thin = Region::new(IntVector::ZERO, IntVector::new(4, 4, 1));
        let sum = parallel_reduce(ExecSpace::Threads(16), thin, 0usize, |_| 1usize, |a, b| a + b);
        assert_eq!(sum, 16);
        let count = std::sync::atomic::AtomicUsize::new(0);
        parallel_for(ExecSpace::Threads(9), thin, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn concurrency_reporting() {
        assert_eq!(ExecSpace::Serial.concurrency(), 1);
        assert_eq!(ExecSpace::Threads(8).concurrency(), 8);
        assert_eq!(ExecSpace::Threads(0).concurrency(), 1);
    }
}
