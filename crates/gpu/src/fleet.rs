//! The per-rank device fleet and the patch→device affinity policies.
//!
//! The paper runs one K20X per Titan node, but its central memory design —
//! one shared per-level replica *per GPU* — was built to generalize to fat
//! nodes (Summit packs 6 GPUs per rank). A [`DeviceFleet`] is the rank's
//! set of [`GpuDevice`]s: each device keeps its own capacity meter, its own
//! pair of copy-engine timelines and (in the data warehouse) its own patch
//! and level databases, so kernel launches and D2H drains on different
//! devices proceed concurrently — the same patch-level parallelism the
//! paper wins across nodes, recovered inside one node.
//!
//! Scheduling onto the fleet is governed by [`GpuAffinity`]:
//!
//! * [`GpuAffinity::Sticky`] — a deterministic multiplicative hash of the
//!   patch id pins each patch to one device for the whole run. Sticky
//!   assignment is what makes the per-device level databases pay off: a
//!   patch task always finds its coarse replicas resident on *its* device.
//! * [`GpuAffinity::CostBalanced`] — the driver periodically re-assigns
//!   patches to devices with an LPT (longest-processing-time) pass over
//!   the measured per-patch task costs (`ExecStats.per_patch`), mirroring
//!   the regrid rebalance policies at intra-node scale.

use crate::device::{DeviceCounters, GpuDevice};
use std::time::Duration;
use uintah_grid::PatchId;

/// Index of a device within a rank's fleet.
pub type DeviceId = usize;

/// How GPU patch tasks are assigned to the devices of a fleet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GpuAffinity {
    /// Deterministic hash of the patch id — every rank, every step, every
    /// run maps a patch to the same device.
    #[default]
    Sticky,
    /// Re-balance the patch→device map from measured per-patch costs
    /// (LPT over `ExecStats.per_patch`), keeping each device's kernel
    /// timeline equally loaded.
    CostBalanced,
}

/// A rank's set of simulated GPUs. Cheap to clone (devices share their
/// accounting internally).
#[derive(Clone, Debug)]
pub struct DeviceFleet {
    devices: Vec<GpuDevice>,
}

impl DeviceFleet {
    /// A fleet of `n` identical devices with `capacity` bytes each.
    /// `n == 1` reproduces the single-K20X Titan node exactly.
    pub fn with_capacity(n: usize, name: &'static str, capacity: usize) -> Self {
        assert!(n >= 1, "a fleet needs at least one device");
        Self {
            devices: (0..n).map(|_| GpuDevice::with_capacity(name, capacity)).collect(),
        }
    }

    /// A Summit-style fleet: `n` K20X-capacity devices (the simulated
    /// budget stays 6 GB per device regardless of fleet size).
    pub fn k20x(n: usize) -> Self {
        Self::with_capacity(n, "Tesla K20X", 6 * 1024 * 1024 * 1024)
    }

    /// Wrap an existing device as a single-device fleet.
    pub fn single(device: GpuDevice) -> Self {
        Self {
            devices: vec![device],
        }
    }

    #[inline]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    #[inline]
    pub fn device(&self, id: DeviceId) -> &GpuDevice {
        &self.devices[id]
    }

    #[inline]
    pub fn devices(&self) -> &[GpuDevice] {
        &self.devices
    }

    /// The sticky home device for `patch`: a deterministic multiplicative
    /// hash (Fibonacci hashing) of the patch id, identical on every rank.
    pub fn sticky_device(&self, patch: PatchId) -> DeviceId {
        sticky_device(patch, self.devices.len())
    }

    /// Block until every device's D2H copy-engine timeline is empty (the
    /// fleet-wide `cudaDeviceSynchronize` analogue at step boundaries).
    pub fn sync_d2h_all(&self) {
        for d in &self.devices {
            d.sync_d2h();
        }
    }

    /// Block until every device's H2D copy-engine timeline is empty —
    /// every posted upload burst has landed (not necessarily consumed).
    pub fn sync_h2d_all(&self) {
        for d in &self.devices {
            d.sync_h2d();
        }
    }

    /// One counter snapshot per device, in device order.
    pub fn counters_per_device(&self) -> Vec<DeviceCounters> {
        self.devices.iter().map(|d| d.counters()).collect()
    }

    /// Bytes currently allocated across the whole fleet.
    pub fn total_used(&self) -> usize {
        self.devices.iter().map(|d| d.used()).sum()
    }

    /// Total capacity across the fleet's devices.
    pub fn total_capacity(&self) -> usize {
        self.devices.iter().map(|d| d.capacity()).sum()
    }

    /// Per-device headroom right now: `(available, largest contiguous
    /// hole)` for each device in fleet order. The admission controller's
    /// view of the meters: `available` bounds a tenant's total residency,
    /// the hole bounds its largest single window.
    pub fn availability(&self) -> Vec<(usize, usize)> {
        self.devices
            .iter()
            .map(|d| (d.available(), d.largest_free_block()))
            .collect()
    }
}

/// Deterministic sticky patch→device hash shared by every rank: Fibonacci
/// multiplicative hashing of the patch id folded onto `n` devices.
pub fn sticky_device(patch: PatchId, n: usize) -> DeviceId {
    if n <= 1 {
        return 0;
    }
    let h = (patch.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (h % n as u64) as DeviceId
}

/// LPT (longest-processing-time) assignment of patches to `n` devices from
/// measured per-patch costs: heaviest patch first onto the least-loaded
/// device, ties broken by device index so the result is deterministic on
/// identical inputs. Returns `(patch, device)` pairs for exactly the
/// patches present in `costs`.
pub fn lpt_assign(costs: &[(PatchId, Duration)], n: usize) -> Vec<(PatchId, DeviceId)> {
    if n <= 1 {
        return costs.iter().map(|&(p, _)| (p, 0)).collect();
    }
    let mut order: Vec<(PatchId, Duration)> = costs.to_vec();
    // Heaviest first; equal costs fall back to patch id so the assignment
    // never depends on the caller's ordering.
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    let mut load = vec![Duration::ZERO; n];
    let mut out = Vec::with_capacity(order.len());
    for (p, c) in order {
        let dev = (0..n).min_by_key(|&d| (load[d], d)).expect("n >= 1");
        load[dev] += c;
        out.push((p, dev));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_devices_are_independent() {
        let fleet = DeviceFleet::with_capacity(3, "test", 1000);
        fleet.device(0).try_reserve(800).unwrap();
        // Device 1's capacity meter is untouched by device 0's reservation.
        fleet.device(1).try_reserve(800).unwrap();
        assert!(fleet.device(0).try_reserve(800).is_err());
        assert_eq!(fleet.total_used(), 1600);
        fleet.device(0).release(800);
        fleet.device(1).release(800);
        assert_eq!(fleet.total_used(), 0);
        assert_eq!(fleet.counters_per_device().len(), 3);
    }

    #[test]
    fn sticky_hash_is_deterministic_and_spreads() {
        let fleet = DeviceFleet::k20x(4);
        let mut seen = vec![0usize; 4];
        for p in 0..64u32 {
            let d = fleet.sticky_device(PatchId(p));
            assert_eq!(d, fleet.sticky_device(PatchId(p)), "hash must be stable");
            assert!(d < 4);
            seen[d] += 1;
        }
        // 64 patches over 4 devices: every device gets a share.
        assert!(seen.iter().all(|&c| c > 0), "hash left a device idle: {seen:?}");
        // Single-device fleets trivially map everything to device 0.
        assert_eq!(sticky_device(PatchId(7), 1), 0);
    }

    #[test]
    fn lpt_balances_measured_costs() {
        let ms = Duration::from_millis;
        let costs = vec![
            (PatchId(0), ms(8)),
            (PatchId(1), ms(5)),
            (PatchId(2), ms(4)),
            (PatchId(3), ms(3)),
            (PatchId(4), ms(2)),
        ];
        let assign = lpt_assign(&costs, 2);
        let mut load = [Duration::ZERO; 2];
        for &(p, d) in &assign {
            load[d] += costs.iter().find(|&&(q, _)| q == p).unwrap().1;
        }
        // LPT: {8, 3} vs {5, 4, 2} = 11 vs 11 — perfectly balanced here.
        assert_eq!(load[0], load[1], "LPT should balance {load:?}");
        // Deterministic regardless of input order.
        let mut shuffled = costs.clone();
        shuffled.reverse();
        assert_eq!(lpt_assign(&shuffled, 2), assign);
    }

    #[test]
    fn lpt_single_device_pins_everything_to_zero() {
        let costs = vec![(PatchId(3), Duration::from_millis(1))];
        assert_eq!(lpt_assign(&costs, 1), vec![(PatchId(3), 0)]);
    }
}
