//! The simulated GPU device: memory capacity, copy engines, streams.
//!
//! The K20X has one copy engine per PCIe direction, which is what lets a
//! device→host drain of one patch overlap the kernels (and host→device
//! staging) of others. [`GpuDevice`] models each direction as a *timeline*:
//! a FIFO of transfers with measured per-engine occupancy (`busy_ns`), an
//! in-flight count, and a real worker thread per direction that drains
//! posted transfers asynchronously ([`GpuDevice::post_d2h`] /
//! [`GpuDevice::post_h2d`] — the upload twin added for the prefetch
//! pipeline). Every in-flight transfer is tagged with the [`Stream`] it was
//! issued on, mirroring how Uintah pins one CUDA stream per resident patch
//! task.
//!
//! Device memory is no longer a bytes-only meter: every reservation is
//! carved from a [`SubAllocator`] free list over `[0, capacity)`, so the
//! device can distinguish *capacity* exhaustion from *fragmentation*
//! (`frag_failures`), reject double-releases instead of wrapping `used`
//! to ~2^64 (`release_underflows`), and give the data warehouse real
//! block handles ([`DeviceBlock`]) whose drop is the one legal free.
//! Eviction/spill/re-upload traffic driven by the warehouse's LRU policy
//! is metered here too so [`DeviceCounters`] stays the one-stop snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uintah_mem::{FitPolicy, SubAllocError, SubAllocator};

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Allocation would exceed device global memory (the K20X 6 GB wall the
    /// level database exists to avoid).
    OutOfMemory {
        requested: usize,
        used: usize,
        capacity: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {used}/{capacity} B in use"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

/// Counters for one copy engine (the K20X has two: one per direction, which
/// is what lets transfers for some patches overlap kernels of others).
///
/// `busy_ns` is the engine's measured *occupancy*: wall time it spent
/// actually moving bytes (the drain memcpy for D2H, the staging window for
/// H2D). `inflight` counts transfers posted to the engine timeline but not
/// yet drained — nonzero only on the asynchronous D2H path.
#[derive(Debug, Default)]
pub struct CopyEngineStats {
    pub transfers: AtomicU64,
    pub bytes: AtomicU64,
    pub busy_ns: AtomicU64,
    pub inflight: AtomicU64,
}

/// A transfer job executed by a copy-engine worker: the memcpy plus
/// completion signalling, boxed by [`GpuDevice::post_d2h`] /
/// [`GpuDevice::post_h2d`].
type TransferJob = (Stream, Box<dyn FnOnce() + Send + 'static>);

/// A CUDA-stream-like handle. Operations issued on different streams may
/// interleave; the Uintah infrastructure assigns each GPU patch task its own
/// stream (round-robin here via [`GpuDevice::next_stream`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Stream(pub u32);

/// One coherent snapshot of a device's counters, taken with
/// [`GpuDevice::counters`] — the one-stop replacement for the former
/// per-counter getters. Harness binaries print these tables directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Kernel launches.
    pub kernels: u64,
    /// Host→device bytes through copy engine 0.
    pub h2d_bytes: u64,
    /// Host→device transfer count.
    pub h2d_transfers: u64,
    /// Device→host bytes through copy engine 1.
    pub d2h_bytes: u64,
    /// Device→host transfer count.
    pub d2h_transfers: u64,
    /// Host→device engine occupancy: nanoseconds copy engine 0 spent
    /// moving bytes (the staging window metered by the data warehouse).
    pub h2d_busy_ns: u64,
    /// Device→host engine occupancy: nanoseconds copy engine 1 spent
    /// draining transfers (measured around the drain memcpy, on whichever
    /// thread performed it).
    pub d2h_busy_ns: u64,
    /// H2D transfers posted but not yet staged at snapshot time.
    pub h2d_inflight: u64,
    /// D2H transfers posted but not yet drained at snapshot time.
    pub d2h_inflight: u64,
    /// Nanoseconds consumers stalled materializing posted uploads: in
    /// async mode the residual wait at first use, in the synchronous
    /// fallback the full inline upload wall (paid at post time).
    pub h2d_wait_ns: u64,
    /// Nanoseconds of posted-upload engine time hidden behind other work
    /// (`burst - wait`, summed over materialized uploads; zero by
    /// construction in the synchronous fallback).
    pub h2d_overlap_ns: u64,
    /// Allocations rejected (capacity *or* fragmentation; the latter is
    /// also counted in `frag_failures`).
    pub alloc_failures: u64,
    /// Allocations that failed with free bytes to spare but no contiguous
    /// hole — visible only because the meter is a real free list now.
    pub frag_failures: u64,
    /// Releases of bytes the allocator has no live block for: the
    /// double-release that used to wrap `used` to ~2^64. Rejected and
    /// counted, meter untouched.
    pub release_underflows: u64,
    /// Warehouse entries evicted under memory pressure (LRU).
    pub evictions: u64,
    /// Device bytes recovered by those evictions.
    pub evicted_bytes: u64,
    /// Evicted patch variables spilled to host (level replicas are
    /// regenerable from the host warehouse and are dropped, not spilled).
    pub spills: u64,
    /// Bytes moved device→host by spills (also metered in `d2h_bytes`).
    pub spilled_bytes: u64,
    /// Spilled variables transparently re-uploaded on next access.
    pub reuploads: u64,
    /// Bytes moved host→device by re-uploads (also metered in `h2d_bytes`).
    pub reuploads_bytes: u64,
    /// Extents on the allocator free list at snapshot time (1 = fully
    /// coalesced).
    pub free_blocks: u64,
    /// Largest single free extent — the biggest reservation that can
    /// currently succeed.
    pub largest_free: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// High-water mark of device memory.
    pub peak: u64,
}

#[derive(Debug)]
struct DeviceInner {
    name: &'static str,
    capacity: usize,
    /// Mirrors of the allocator's used/peak so the hot read paths
    /// (`used()`, scheduler snapshots) stay lock-free.
    used: AtomicUsize,
    peak: AtomicUsize,
    /// The real meter: a coalescing free list over `[0, capacity)`.
    /// `align = 1` keeps `used` bit-exact with the sum of requested bytes,
    /// which the accounting tests and the divQ bit-identity gate rely on.
    suballoc: Mutex<SubAllocator>,
    /// Blocks reserved through the legacy `try_reserve`/`release` pair,
    /// which has no offset in its signature: `(bytes, offset)` in
    /// reservation order. `release(b)` pops the most recent entry of `b`
    /// bytes; a release with no matching entry is an underflow.
    reserve_ledger: Mutex<Vec<(usize, u64)>>,
    h2d: Arc<CopyEngineStats>,
    d2h: Arc<CopyEngineStats>,
    kernels: AtomicU64,
    num_streams: u32,
    next_stream: AtomicU64,
    alloc_failures: AtomicU64,
    frag_failures: AtomicU64,
    release_underflows: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    spills: AtomicU64,
    spilled_bytes: AtomicU64,
    reuploads: AtomicU64,
    reuploads_bytes: AtomicU64,
    /// Consumer stall materializing posted H2D uploads (see
    /// [`DeviceCounters::h2d_wait_ns`]).
    h2d_wait_ns: AtomicU64,
    /// Posted-upload engine time hidden behind other work (see
    /// [`DeviceCounters::h2d_overlap_ns`]).
    h2d_overlap_ns: AtomicU64,
    /// The D2H copy-engine timeline: a FIFO worker thread, spawned lazily
    /// on the first posted transfer. Jobs execute in post order (one
    /// engine serializes its transfers, exactly like the hardware). The
    /// worker holds only the engine-stats Arc, so it exits when the last
    /// device handle drops and the channel closes.
    d2h_queue: Mutex<Option<mpsc::Sender<TransferJob>>>,
    /// Streams of transfers currently in flight on the D2H engine — one
    /// entry per transfer (stream ids recycle round-robin, so the same id
    /// may appear more than once).
    d2h_streams: Mutex<Vec<Stream>>,
    /// The H2D copy-engine timeline: same lazy-worker FIFO design as the
    /// D2H queue, draining posted uploads (copy engine 0).
    h2d_queue: Mutex<Option<mpsc::Sender<TransferJob>>>,
    /// Streams of transfers currently in flight on the H2D engine.
    h2d_streams: Mutex<Vec<Stream>>,
}

/// A simulated GPU. Cheap to clone (shared accounting).
#[derive(Clone, Debug)]
pub struct GpuDevice {
    inner: Arc<DeviceInner>,
}

/// Sentinel offset for zero-byte reservations, which never touch the
/// allocator (a zero-size `cudaMalloc` returns a unique pointer the
/// allocator need not track; here it is simply a no-op).
const ZERO_SENTINEL: u64 = u64::MAX;

/// An owned extent of device memory: offset + rounded size, freed back to
/// the device's [`SubAllocator`] exactly once, on drop. The data warehouse
/// holds one of these per [`DeviceVar`](crate::DeviceVar), which is what
/// makes the `used` meter immune to double-release by construction.
#[derive(Debug)]
pub struct DeviceBlock {
    device: GpuDevice,
    offset: u64,
    bytes: usize,
}

impl DeviceBlock {
    /// The extent's offset in device memory (sentinel for zero-byte blocks).
    #[inline]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reserved size in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The device this block lives on.
    #[inline]
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }
}

impl Drop for DeviceBlock {
    fn drop(&mut self) {
        self.device.free_raw(self.offset, self.bytes);
    }
}

impl GpuDevice {
    /// A Titan-node K20X: 6 GB GDDR5, two copy engines, 16 streams.
    pub fn k20x() -> Self {
        Self::with_capacity("Tesla K20X", 6 * 1024 * 1024 * 1024)
    }

    pub fn with_capacity(name: &'static str, capacity: usize) -> Self {
        // Two-ended size-class split: blocks up to 16 KiB (level replicas,
        // scalar outputs — the long-lived pinned allocations) stack
        // top-down so the bottom of the arena stays contiguous for large
        // patch windows. Without the split, an oversubscribed capacity a
        // few times the largest request OOMs on fragmentation with most of
        // its bytes free, because pinned replicas land mid-arena between
        // evictable patch data.
        const SMALL_CLASS: u64 = 16 << 10;
        Self {
            inner: Arc::new(DeviceInner {
                name,
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                suballoc: Mutex::new(SubAllocator::with_small_class(
                    capacity as u64,
                    1,
                    FitPolicy::FirstFit,
                    SMALL_CLASS,
                )),
                reserve_ledger: Mutex::new(Vec::new()),
                h2d: Arc::new(CopyEngineStats::default()),
                d2h: Arc::new(CopyEngineStats::default()),
                kernels: AtomicU64::new(0),
                num_streams: 16,
                next_stream: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
                frag_failures: AtomicU64::new(0),
                release_underflows: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                evicted_bytes: AtomicU64::new(0),
                spills: AtomicU64::new(0),
                spilled_bytes: AtomicU64::new(0),
                reuploads: AtomicU64::new(0),
                reuploads_bytes: AtomicU64::new(0),
                h2d_wait_ns: AtomicU64::new(0),
                h2d_overlap_ns: AtomicU64::new(0),
                d2h_queue: Mutex::new(None),
                d2h_streams: Mutex::new(Vec::new()),
                h2d_queue: Mutex::new(None),
                h2d_streams: Mutex::new(Vec::new()),
            }),
        }
    }

    #[inline]
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated on the device.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of device memory.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Bytes not currently allocated (`capacity - used`). An upper bound
    /// on what a new tenant could reserve — fragmentation may make any
    /// single allocation smaller; see [`Self::largest_free_block`].
    pub fn available(&self) -> usize {
        self.inner.capacity.saturating_sub(self.used())
    }

    /// The largest single allocation the device heap can satisfy right
    /// now (the suballocator's biggest contiguous hole). Admission control
    /// reads this alongside [`Self::available`]: a job whose biggest
    /// window exceeds it would fail with `Fragmentation` even though the
    /// byte total fits.
    pub fn largest_free_block(&self) -> usize {
        self.inner.suballoc.lock().unwrap().largest_free() as usize
    }

    /// Carve `bytes` from the device free list; returns the block offset.
    /// Any failure — capacity, fragmentation, or a request so large the
    /// internal arithmetic would overflow — is a clean `OutOfMemory`, never
    /// a wrap.
    pub(crate) fn alloc_raw(&self, bytes: usize) -> Result<u64, GpuError> {
        if bytes == 0 {
            return Ok(ZERO_SENTINEL);
        }
        let mut sa = self.inner.suballoc.lock().unwrap();
        match sa.alloc(bytes as u64) {
            Ok(offset) => {
                let used = sa.used() as usize;
                self.inner.used.store(used, Ordering::Relaxed);
                self.inner.peak.fetch_max(used, Ordering::Relaxed);
                Ok(offset)
            }
            Err(e) => {
                self.inner.alloc_failures.fetch_add(1, Ordering::Relaxed);
                if matches!(e, SubAllocError::Fragmentation { .. }) {
                    self.inner.frag_failures.fetch_add(1, Ordering::Relaxed);
                }
                Err(GpuError::OutOfMemory {
                    requested: bytes,
                    used: sa.used() as usize,
                    capacity: self.inner.capacity,
                })
            }
        }
    }

    /// Return the block at `offset` to the free list. An offset with no
    /// live block (double-free, stray release) is rejected and counted in
    /// `release_underflows`; the meter is untouched.
    pub(crate) fn free_raw(&self, offset: u64, bytes: usize) {
        if bytes == 0 && offset == ZERO_SENTINEL {
            return;
        }
        let mut sa = self.inner.suballoc.lock().unwrap();
        match sa.free(offset) {
            Ok(_) => self.inner.used.store(sa.used() as usize, Ordering::Relaxed),
            Err(()) => {
                self.inner
                    .release_underflows
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Reserve `bytes` as an owned [`DeviceBlock`] whose drop is the one
    /// legal free — the warehouse path, immune to double-release.
    pub(crate) fn alloc_block(&self, bytes: usize) -> Result<DeviceBlock, GpuError> {
        let offset = self.alloc_raw(bytes)?;
        Ok(DeviceBlock {
            device: self.clone(),
            offset,
            bytes,
        })
    }

    /// Reserve `bytes` of device memory (fails cleanly at capacity or
    /// fragmentation). Legacy offset-less API: the block is remembered in
    /// an internal ledger so [`release`](Self::release) can find it.
    pub fn try_reserve(&self, bytes: usize) -> Result<(), GpuError> {
        let offset = self.alloc_raw(bytes)?;
        if bytes > 0 {
            self.inner.reserve_ledger.lock().unwrap().push((bytes, offset));
        }
        Ok(())
    }

    /// Release a reservation made with [`try_reserve`](Self::try_reserve).
    /// A release with no matching live reservation — the double-release
    /// that used to wrap `used` to ~2^64 via unchecked `fetch_sub` — is
    /// rejected and counted in `release_underflows`.
    pub fn release(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let popped = {
            let mut ledger = self.inner.reserve_ledger.lock().unwrap();
            let at = ledger.iter().rposition(|&(b, _)| b == bytes);
            at.map(|i| ledger.remove(i))
        };
        match popped {
            Some((b, offset)) => self.free_raw(offset, b),
            None => {
                self.inner
                    .release_underflows
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Meter a host→device transfer on copy engine 0.
    pub fn record_h2d(&self, bytes: usize) {
        self.inner.h2d.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.h2d.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter a device→host transfer on copy engine 1.
    pub fn record_d2h(&self, bytes: usize) {
        self.inner.d2h.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.d2h.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter H2D engine occupancy: wall time copy engine 0 spent staging.
    pub fn record_h2d_busy(&self, busy: Duration) {
        self.inner
            .h2d
            .busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Meter D2H engine occupancy directly (used by the synchronous
    /// fallback path, which drains inline on the calling thread).
    pub fn record_d2h_busy(&self, busy: Duration) {
        self.inner
            .d2h
            .busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Meter an LRU eviction that recovered `bytes` of device memory.
    pub fn record_eviction(&self, bytes: usize) {
        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
        self.inner
            .evicted_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter a spill-to-host of an evicted patch variable. The transfer
    /// itself is additionally metered via [`record_d2h`](Self::record_d2h)
    /// by the caller — this counts the *policy* event.
    pub fn record_spill(&self, bytes: usize) {
        self.inner.spills.fetch_add(1, Ordering::Relaxed);
        self.inner
            .spilled_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter a transparent re-upload of a previously spilled variable.
    pub fn record_reupload(&self, bytes: usize) {
        self.inner.reuploads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .reuploads_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter consumer stall materializing a posted H2D upload: how long a
    /// first-use `wait` blocked (async mode), or the full inline upload
    /// wall in the synchronous fallback, where the stall is paid at post.
    pub fn record_h2d_wait(&self, wait: Duration) {
        self.inner
            .h2d_wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Meter posted-upload engine time hidden behind other work: the part
    /// of a staged burst that had already landed when its first consumer
    /// asked for it.
    pub fn record_h2d_overlap(&self, overlap: Duration) {
        self.inner
            .h2d_overlap_ns
            .fetch_add(overlap.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Open an *inline* (synchronous-fallback) D2H transfer: meters the
    /// transfer, bumps `inflight`, and tags a stream on the engine timeline
    /// exactly like [`post_d2h`](Self::post_d2h) — so `sync_d2h` /
    /// [`inflight_d2h_streams`](Self::inflight_d2h_streams) accounting is
    /// identical whether the async engine is on or off. Pair with
    /// [`end_inline_d2h`](Self::end_inline_d2h) after the drain memcpy.
    pub fn begin_inline_d2h(&self, bytes: usize) -> Stream {
        self.record_d2h(bytes);
        self.inner.d2h.inflight.fetch_add(1, Ordering::Relaxed);
        let stream = self.next_stream();
        self.inner.d2h_streams.lock().unwrap().push(stream);
        stream
    }

    /// Close an inline D2H transfer opened with
    /// [`begin_inline_d2h`](Self::begin_inline_d2h): meters the drain
    /// occupancy and retires the stream tag and in-flight count.
    pub fn end_inline_d2h(&self, stream: Stream, busy: Duration) {
        self.record_d2h_busy(busy);
        let mut streams = self.inner.d2h_streams.lock().unwrap();
        if let Some(i) = streams.iter().rposition(|s| *s == stream) {
            streams.remove(i);
        }
        drop(streams);
        self.inner.d2h.inflight.fetch_sub(1, Ordering::Release);
    }

    /// Post a device→host transfer to copy engine 1's timeline and return
    /// the stream it was tagged with. The engine worker (a real thread,
    /// spawned lazily on first use) executes `job` — the drain memcpy plus
    /// completion signalling — in FIFO order, timing it into the engine's
    /// `busy_ns` occupancy counter. The caller returns immediately, which
    /// is exactly the overlap the two-copy-engine K20X provides: the
    /// scheduler keeps launching kernels while the drain proceeds.
    pub fn post_d2h(&self, bytes: usize, job: impl FnOnce() + Send + 'static) -> Stream {
        self.record_d2h(bytes);
        self.inner.d2h.inflight.fetch_add(1, Ordering::Relaxed);
        let stream = self.next_stream();
        self.inner.d2h_streams.lock().unwrap().push(stream);
        let mut q = self.inner.d2h_queue.lock().unwrap();
        if q.is_none() {
            let (tx, rx) = mpsc::channel::<TransferJob>();
            // The worker captures only the engine-stats Arc — holding the
            // full DeviceInner would keep the sender alive forever and the
            // thread could never observe channel close.
            let stats = Arc::clone(&self.inner.d2h);
            std::thread::Builder::new()
                .name("d2h-copy-engine".into())
                .spawn(move || {
                    while let Ok((_stream, job)) = rx.recv() {
                        let t0 = Instant::now();
                        job();
                        stats
                            .busy_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        stats.inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn d2h copy-engine worker");
            *q = Some(tx);
        }
        let this = self.clone();
        q.as_ref()
            .expect("d2h engine queue just initialized")
            .send((
                stream,
                Box::new(move || {
                    job();
                    // Retire exactly this transfer's tag: stream ids
                    // recycle, so remove one occurrence, not all.
                    let mut streams = this.inner.d2h_streams.lock().unwrap();
                    if let Some(i) = streams.iter().position(|s| *s == stream) {
                        streams.remove(i);
                    }
                }),
            ))
            .expect("d2h copy-engine worker alive while device handles exist");
        stream
    }

    /// Streams with transfers currently in flight on the D2H engine
    /// (snapshot; the engine drains them in FIFO order).
    pub fn inflight_d2h_streams(&self) -> Vec<Stream> {
        self.inner.d2h_streams.lock().unwrap().clone()
    }

    /// Block until the D2H engine timeline is empty — the
    /// `cudaDeviceSynchronize` analogue the scheduler calls at the end of a
    /// timestep so counters are coherent at step boundaries.
    pub fn sync_d2h(&self) {
        while self.inner.d2h.inflight.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Open an *inline* (synchronous-fallback) H2D transfer: meters the
    /// transfer, bumps `inflight`, and tags a stream on the engine timeline
    /// exactly like [`post_h2d`](Self::post_h2d) — so `sync_h2d` /
    /// [`inflight_h2d_streams`](Self::inflight_h2d_streams) accounting is
    /// identical whether the async engine is on or off. Pair with
    /// [`end_inline_h2d`](Self::end_inline_h2d) after the staging memcpy.
    pub fn begin_inline_h2d(&self, bytes: usize) -> Stream {
        self.record_h2d(bytes);
        self.inner.h2d.inflight.fetch_add(1, Ordering::Relaxed);
        let stream = self.next_stream();
        self.inner.h2d_streams.lock().unwrap().push(stream);
        stream
    }

    /// Close an inline H2D transfer opened with
    /// [`begin_inline_h2d`](Self::begin_inline_h2d): meters the staging
    /// occupancy and retires the stream tag and in-flight count.
    pub fn end_inline_h2d(&self, stream: Stream, busy: Duration) {
        self.record_h2d_busy(busy);
        let mut streams = self.inner.h2d_streams.lock().unwrap();
        if let Some(i) = streams.iter().rposition(|s| *s == stream) {
            streams.remove(i);
        }
        drop(streams);
        self.inner.h2d.inflight.fetch_sub(1, Ordering::Release);
    }

    /// Post a host→device transfer to copy engine 0's timeline and return
    /// the stream it was tagged with — the upload twin of
    /// [`post_d2h`](Self::post_d2h). The engine worker (a real thread,
    /// spawned lazily on first use) executes `job` — the staged upload plus
    /// completion signalling — in FIFO order, timing it into the engine's
    /// `busy_ns` occupancy counter. The caller returns immediately: this is
    /// what lets next-step prefetch uploads proceed while current-step CPU
    /// tasks drain.
    pub fn post_h2d(&self, bytes: usize, job: impl FnOnce() + Send + 'static) -> Stream {
        self.record_h2d(bytes);
        self.inner.h2d.inflight.fetch_add(1, Ordering::Relaxed);
        let stream = self.next_stream();
        self.inner.h2d_streams.lock().unwrap().push(stream);
        let mut q = self.inner.h2d_queue.lock().unwrap();
        if q.is_none() {
            let (tx, rx) = mpsc::channel::<TransferJob>();
            // The worker captures only the engine-stats Arc — holding the
            // full DeviceInner would keep the sender alive forever and the
            // thread could never observe channel close.
            let stats = Arc::clone(&self.inner.h2d);
            std::thread::Builder::new()
                .name("h2d-copy-engine".into())
                .spawn(move || {
                    while let Ok((_stream, job)) = rx.recv() {
                        let t0 = Instant::now();
                        job();
                        stats
                            .busy_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        stats.inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn h2d copy-engine worker");
            *q = Some(tx);
        }
        let this = self.clone();
        q.as_ref()
            .expect("h2d engine queue just initialized")
            .send((
                stream,
                Box::new(move || {
                    job();
                    // Retire exactly this transfer's tag: stream ids
                    // recycle, so remove one occurrence, not all.
                    let mut streams = this.inner.h2d_streams.lock().unwrap();
                    if let Some(i) = streams.iter().position(|s| *s == stream) {
                        streams.remove(i);
                    }
                }),
            ))
            .expect("h2d copy-engine worker alive while device handles exist");
        stream
    }

    /// Streams with transfers currently in flight on the H2D engine
    /// (snapshot; the engine drains them in FIFO order).
    pub fn inflight_h2d_streams(&self) -> Vec<Stream> {
        self.inner.h2d_streams.lock().unwrap().clone()
    }

    /// Block until the H2D engine timeline is empty — uploads posted for
    /// prefetch are either installed or cancelled past this point, so
    /// regrid/eviction can re-key residency safely.
    pub fn sync_h2d(&self) {
        while self.inner.h2d.inflight.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Record a kernel launch and return its stream. The actual work runs on
    /// the calling host thread (concurrent kernels = concurrent patch tasks).
    pub fn launch_kernel(&self) -> Stream {
        self.inner.kernels.fetch_add(1, Ordering::Relaxed);
        self.next_stream()
    }

    /// Round-robin stream assignment (one stream per in-flight patch task).
    pub fn next_stream(&self) -> Stream {
        let s = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Stream((s % self.inner.num_streams as u64) as u32)
    }

    /// Number of hardware stream queues.
    #[inline]
    pub fn num_streams(&self) -> u32 {
        self.inner.num_streams
    }

    /// Structural self-check: the free list's invariants hold and the
    /// lock-free `used` mirror agrees with the allocator. Used by the
    /// oversubscription gate to prove zero meter drift at exit.
    /// One-line arena map (live/free extents in address order) for OOM
    /// diagnostics.
    pub fn dump_allocator(&self) -> String {
        self.inner.suballoc.lock().unwrap().dump()
    }

    pub fn validate_allocator(&self) -> Result<(), String> {
        let sa = self.inner.suballoc.lock().unwrap();
        sa.check_invariants()?;
        let mirror = self.inner.used.load(Ordering::Relaxed) as u64;
        if mirror != sa.used() {
            return Err(format!(
                "used mirror {} disagrees with allocator {}",
                mirror,
                sa.used()
            ));
        }
        Ok(())
    }

    /// Snapshot every counter at once.
    pub fn counters(&self) -> DeviceCounters {
        let (free_blocks, largest_free) = {
            let sa = self.inner.suballoc.lock().unwrap();
            (sa.free_blocks() as u64, sa.largest_free())
        };
        DeviceCounters {
            kernels: self.inner.kernels.load(Ordering::Relaxed),
            h2d_bytes: self.inner.h2d.bytes.load(Ordering::Relaxed),
            h2d_transfers: self.inner.h2d.transfers.load(Ordering::Relaxed),
            d2h_bytes: self.inner.d2h.bytes.load(Ordering::Relaxed),
            d2h_transfers: self.inner.d2h.transfers.load(Ordering::Relaxed),
            h2d_busy_ns: self.inner.h2d.busy_ns.load(Ordering::Relaxed),
            d2h_busy_ns: self.inner.d2h.busy_ns.load(Ordering::Relaxed),
            h2d_inflight: self.inner.h2d.inflight.load(Ordering::Relaxed),
            d2h_inflight: self.inner.d2h.inflight.load(Ordering::Relaxed),
            alloc_failures: self.inner.alloc_failures.load(Ordering::Relaxed),
            frag_failures: self.inner.frag_failures.load(Ordering::Relaxed),
            release_underflows: self.inner.release_underflows.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.inner.evicted_bytes.load(Ordering::Relaxed),
            spills: self.inner.spills.load(Ordering::Relaxed),
            spilled_bytes: self.inner.spilled_bytes.load(Ordering::Relaxed),
            reuploads: self.inner.reuploads.load(Ordering::Relaxed),
            reuploads_bytes: self.inner.reuploads_bytes.load(Ordering::Relaxed),
            h2d_wait_ns: self.inner.h2d_wait_ns.load(Ordering::Relaxed),
            h2d_overlap_ns: self.inner.h2d_overlap_ns.load(Ordering::Relaxed),
            free_blocks,
            largest_free,
            used: self.inner.used.load(Ordering::Relaxed) as u64,
            peak: self.inner.peak.load(Ordering::Relaxed) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20x_has_6gb() {
        let d = GpuDevice::k20x();
        assert_eq!(d.capacity(), 6 * 1024 * 1024 * 1024);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn reserve_release_accounting() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(600).unwrap();
        assert_eq!(d.used(), 600);
        let err = d.try_reserve(500).unwrap_err();
        assert_eq!(
            err,
            GpuError::OutOfMemory {
                requested: 500,
                used: 600,
                capacity: 1000
            }
        );
        d.release(600);
        assert_eq!(d.used(), 0);
        assert_eq!(d.peak(), 600);
        assert_eq!(d.counters().alloc_failures, 1);
        d.validate_allocator().unwrap();
    }

    #[test]
    fn double_release_is_rejected_not_wrapped() {
        // Regression: release used to be an unchecked fetch_sub — a
        // double-release wrapped `used` to ~2^64 and every subsequent
        // try_reserve reported spurious OOM.
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(400).unwrap();
        d.release(400);
        assert_eq!(d.used(), 0);
        d.release(400); // double-release: rejected, counted, meter intact
        assert_eq!(d.used(), 0, "used must not wrap");
        assert_eq!(d.counters().release_underflows, 1);
        d.release(123); // never-reserved size: same treatment
        assert_eq!(d.counters().release_underflows, 2);
        // The meter still works after the bad releases.
        d.try_reserve(1000).unwrap();
        assert_eq!(d.used(), 1000);
        d.release(1000);
        assert_eq!(d.used(), 0);
        d.validate_allocator().unwrap();
    }

    #[test]
    fn huge_request_fails_cleanly_instead_of_overflowing() {
        // Regression: try_reserve computed `used + bytes` unchecked — a
        // huge request wrapped past the capacity test.
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(600).unwrap();
        let err = d.try_reserve(usize::MAX).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { requested, .. } if requested == usize::MAX));
        assert_eq!(d.used(), 600, "failed reserve must not touch the meter");
        assert_eq!(d.counters().alloc_failures, 1);
        d.validate_allocator().unwrap();
    }

    #[test]
    fn fragmentation_failures_are_distinguished() {
        let d = GpuDevice::with_capacity("test", 1000);
        // Carve four 250 B blocks, free the 1st and 3rd: 500 B free in two
        // 250 B holes.
        let blocks: Vec<DeviceBlock> = (0..4).map(|_| d.alloc_block(250).unwrap()).collect();
        let mut blocks = blocks;
        let b2 = blocks.remove(2);
        let b0 = blocks.remove(0);
        drop(b0);
        drop(b2);
        assert_eq!(d.used(), 500);
        let err = d.alloc_block(400).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        let c = d.counters();
        assert_eq!(c.alloc_failures, 1);
        assert_eq!(c.frag_failures, 1, "free bytes sufficed; the hole did not");
        assert_eq!(c.free_blocks, 2);
        assert_eq!(c.largest_free, 250);
        drop(blocks);
        assert_eq!(d.used(), 0);
        assert_eq!(d.counters().free_blocks, 1, "frees coalesce");
        d.validate_allocator().unwrap();
    }

    #[test]
    fn device_block_frees_exactly_once_on_drop() {
        let d = GpuDevice::with_capacity("test", 1000);
        let b = d.alloc_block(300).unwrap();
        assert_eq!(d.used(), 300);
        assert_eq!(b.bytes(), 300);
        drop(b);
        assert_eq!(d.used(), 0);
        assert_eq!(d.counters().release_underflows, 0);
        // Zero-byte blocks are sentinel-backed no-ops.
        let z = d.alloc_block(0).unwrap();
        assert_eq!(d.used(), 0);
        drop(z);
        assert_eq!(d.counters().release_underflows, 0);
        d.validate_allocator().unwrap();
    }

    #[test]
    fn copy_engines_are_per_direction() {
        let d = GpuDevice::k20x();
        d.record_h2d(100);
        d.record_h2d(50);
        d.record_d2h(7);
        let c = d.counters();
        assert_eq!(c.h2d_transfers, 2);
        assert_eq!(c.h2d_bytes, 150);
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 7);
    }

    #[test]
    fn counter_snapshot_is_complete() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(300).unwrap();
        d.record_h2d(300);
        d.launch_kernel();
        let c = d.counters();
        assert_eq!(
            c,
            DeviceCounters {
                kernels: 1,
                h2d_bytes: 300,
                h2d_transfers: 1,
                d2h_bytes: 0,
                d2h_transfers: 0,
                h2d_busy_ns: 0,
                d2h_busy_ns: 0,
                h2d_inflight: 0,
                d2h_inflight: 0,
                alloc_failures: 0,
                frag_failures: 0,
                release_underflows: 0,
                evictions: 0,
                evicted_bytes: 0,
                spills: 0,
                spilled_bytes: 0,
                reuploads: 0,
                reuploads_bytes: 0,
                h2d_wait_ns: 0,
                h2d_overlap_ns: 0,
                free_blocks: 1,
                largest_free: 700,
                used: 300,
                peak: 300,
            }
        );
    }

    #[test]
    fn eviction_spill_reupload_counters_accumulate() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.record_eviction(128);
        d.record_eviction(64);
        d.record_spill(128);
        d.record_reupload(128);
        let c = d.counters();
        assert_eq!(c.evictions, 2);
        assert_eq!(c.evicted_bytes, 192);
        assert_eq!(c.spills, 1);
        assert_eq!(c.spilled_bytes, 128);
        assert_eq!(c.reuploads, 1);
        assert_eq!(c.reuploads_bytes, 128);
    }

    #[test]
    fn inline_d2h_matches_posted_bookkeeping() {
        // Regression: the sync-fallback path used to burn a stream without
        // tagging it in d2h_streams, so inflight accounting depended on
        // the async mode. begin/end must mirror post_d2h exactly.
        let d = GpuDevice::k20x();
        let s = d.begin_inline_d2h(4096);
        assert_eq!(d.counters().d2h_inflight, 1);
        assert!(d.inflight_d2h_streams().contains(&s));
        d.end_inline_d2h(s, Duration::from_micros(3));
        let c = d.counters();
        assert_eq!(c.d2h_inflight, 0);
        assert!(d.inflight_d2h_streams().is_empty());
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 4096);
        assert_eq!(c.d2h_busy_ns, 3_000);
        d.sync_d2h(); // must not hang: inline transfers fully retire
    }

    #[test]
    fn inline_d2h_retires_one_tag_when_stream_ids_recycle() {
        let d = GpuDevice::k20x();
        // Drive the round-robin so two inline transfers share a stream id.
        let s0 = d.begin_inline_d2h(10);
        for _ in 0..15 {
            d.next_stream();
        }
        let s1 = d.begin_inline_d2h(10);
        assert_eq!(s0, s1, "16-stream round robin recycled the id");
        assert_eq!(d.inflight_d2h_streams().len(), 2);
        d.end_inline_d2h(s0, Duration::ZERO);
        assert_eq!(d.inflight_d2h_streams().len(), 1, "only one tag retired");
        d.end_inline_d2h(s1, Duration::ZERO);
        assert!(d.inflight_d2h_streams().is_empty());
    }

    #[test]
    fn posted_d2h_drains_on_the_engine_thread_and_meters_occupancy() {
        let d = GpuDevice::k20x();
        let (tx, rx) = mpsc::channel();
        let s = d.post_d2h(4096, move || {
            // A drain long enough that busy_ns is observably nonzero.
            std::thread::sleep(Duration::from_millis(2));
            tx.send(std::thread::current().name().map(String::from)).unwrap();
        });
        let worker = rx.recv().unwrap();
        assert_eq!(worker.as_deref(), Some("d2h-copy-engine"));
        d.sync_d2h();
        let c = d.counters();
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 4096);
        assert_eq!(c.d2h_inflight, 0);
        assert!(c.d2h_busy_ns >= 1_000_000, "busy_ns {} too small", c.d2h_busy_ns);
        assert!(
            !d.inflight_d2h_streams().contains(&s) || d.inflight_d2h_streams().is_empty()
        );
    }

    #[test]
    fn inflight_transfers_are_stream_tagged_and_fifo() {
        let d = GpuDevice::k20x();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        // First job blocks the engine; the rest queue behind it.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut streams = Vec::new();
        for i in 0..3 {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            streams.push(d.post_d2h(100, move || {
                if i == 0 {
                    drop(gate.lock().unwrap());
                }
                order.lock().unwrap().push(i);
            }));
        }
        // All three posted transfers are tagged in flight while the engine
        // is stalled on the first.
        let inflight = d.inflight_d2h_streams();
        for s in &streams {
            assert!(inflight.contains(s), "stream {s:?} not tagged in flight");
        }
        assert_eq!(d.counters().d2h_inflight, 3);
        drop(hold);
        d.sync_d2h();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "engine is FIFO");
        assert!(d.inflight_d2h_streams().is_empty());
        assert_eq!(d.counters().d2h_transfers, 3);
        assert_eq!(d.counters().d2h_bytes, 300);
    }

    #[test]
    fn engine_worker_exits_when_last_device_handle_drops() {
        let d = GpuDevice::with_capacity("test", 1000);
        let (tx, rx) = mpsc::channel();
        d.post_d2h(10, move || {
            tx.send(std::thread::current().id()).unwrap();
        });
        let tid = rx.recv().unwrap();
        d.sync_d2h();
        drop(d);
        // The worker held only the stats Arc; with the sender gone its recv
        // errors and it exits. Spin briefly until the thread is no longer
        // findable — we can't join a detached thread, so assert indirectly:
        // a fresh device spawns a fresh worker with a different thread id.
        let d2 = GpuDevice::with_capacity("test2", 1000);
        let (tx2, rx2) = mpsc::channel();
        d2.post_d2h(10, move || {
            tx2.send(std::thread::current().id()).unwrap();
        });
        assert_ne!(rx2.recv().unwrap(), tid);
        d2.sync_d2h();
    }

    #[test]
    fn inline_h2d_matches_posted_bookkeeping() {
        // The upload twin of the inline-D2H regression: the sync-fallback
        // upload path must tag its stream and bump inflight exactly like
        // post_h2d, so accounting is mode-independent.
        let d = GpuDevice::k20x();
        let s = d.begin_inline_h2d(4096);
        assert_eq!(d.counters().h2d_inflight, 1);
        assert!(d.inflight_h2d_streams().contains(&s));
        d.end_inline_h2d(s, Duration::from_micros(3));
        let c = d.counters();
        assert_eq!(c.h2d_inflight, 0);
        assert!(d.inflight_h2d_streams().is_empty());
        assert_eq!(c.h2d_transfers, 1);
        assert_eq!(c.h2d_bytes, 4096);
        assert_eq!(c.h2d_busy_ns, 3_000);
        d.sync_h2d(); // must not hang: inline transfers fully retire
    }

    #[test]
    fn inline_h2d_retires_one_tag_when_stream_ids_recycle() {
        let d = GpuDevice::k20x();
        let s0 = d.begin_inline_h2d(10);
        for _ in 0..15 {
            d.next_stream();
        }
        let s1 = d.begin_inline_h2d(10);
        assert_eq!(s0, s1, "16-stream round robin recycled the id");
        assert_eq!(d.inflight_h2d_streams().len(), 2);
        d.end_inline_h2d(s0, Duration::ZERO);
        assert_eq!(d.inflight_h2d_streams().len(), 1, "only one tag retired");
        d.end_inline_h2d(s1, Duration::ZERO);
        assert!(d.inflight_h2d_streams().is_empty());
    }

    #[test]
    fn posted_h2d_drains_on_the_engine_thread_and_meters_occupancy() {
        let d = GpuDevice::k20x();
        let (tx, rx) = mpsc::channel();
        let s = d.post_h2d(4096, move || {
            std::thread::sleep(Duration::from_millis(2));
            tx.send(std::thread::current().name().map(String::from)).unwrap();
        });
        let worker = rx.recv().unwrap();
        assert_eq!(worker.as_deref(), Some("h2d-copy-engine"));
        d.sync_h2d();
        let c = d.counters();
        assert_eq!(c.h2d_transfers, 1);
        assert_eq!(c.h2d_bytes, 4096);
        assert_eq!(c.h2d_inflight, 0);
        assert!(c.h2d_busy_ns >= 1_000_000, "busy_ns {} too small", c.h2d_busy_ns);
        assert!(
            !d.inflight_h2d_streams().contains(&s) || d.inflight_h2d_streams().is_empty()
        );
    }

    #[test]
    fn inflight_h2d_transfers_are_stream_tagged_and_fifo() {
        let d = GpuDevice::k20x();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut streams = Vec::new();
        for i in 0..3 {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            streams.push(d.post_h2d(100, move || {
                if i == 0 {
                    drop(gate.lock().unwrap());
                }
                order.lock().unwrap().push(i);
            }));
        }
        let inflight = d.inflight_h2d_streams();
        for s in &streams {
            assert!(inflight.contains(s), "stream {s:?} not tagged in flight");
        }
        assert_eq!(d.counters().h2d_inflight, 3);
        drop(hold);
        d.sync_h2d();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "engine is FIFO");
        assert!(d.inflight_h2d_streams().is_empty());
        assert_eq!(d.counters().h2d_transfers, 3);
        assert_eq!(d.counters().h2d_bytes, 300);
    }

    #[test]
    fn h2d_and_d2h_engines_are_independent_timelines() {
        // Two copy engines: a stalled upload must not delay drains (and
        // vice versa) — the K20X duplex-overlap property the prefetch
        // pipeline depends on.
        let d = GpuDevice::k20x();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        {
            let gate = Arc::clone(&gate);
            d.post_h2d(64, move || {
                drop(gate.lock().unwrap());
            });
        }
        let (tx, rx) = mpsc::channel();
        d.post_d2h(64, move || {
            tx.send(()).unwrap();
        });
        // The drain completes while the upload engine is still stalled.
        rx.recv_timeout(Duration::from_secs(5))
            .expect("d2h engine blocked behind a stalled h2d upload");
        assert_eq!(d.counters().h2d_inflight, 1);
        drop(hold);
        d.sync_h2d();
        d.sync_d2h();
        assert_eq!(d.counters().h2d_inflight, 0);
        assert_eq!(d.counters().d2h_inflight, 0);
    }

    #[test]
    fn busy_helpers_accumulate_occupancy() {
        let d = GpuDevice::k20x();
        d.record_h2d_busy(Duration::from_micros(5));
        d.record_h2d_busy(Duration::from_micros(7));
        d.record_d2h_busy(Duration::from_micros(3));
        let c = d.counters();
        assert_eq!(c.h2d_busy_ns, 12_000);
        assert_eq!(c.d2h_busy_ns, 3_000);
    }

    #[test]
    fn streams_round_robin() {
        let d = GpuDevice::k20x();
        let s0 = d.next_stream();
        let s1 = d.next_stream();
        assert_ne!(s0, s1);
        // 16 streams wrap around.
        for _ in 0..14 {
            d.next_stream();
        }
        assert_eq!(d.next_stream(), s0);
    }

    #[test]
    fn concurrent_reserve_never_exceeds_capacity() {
        let d = GpuDevice::with_capacity("test", 10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if d.try_reserve(100).is_ok() {
                            assert!(d.used() <= d.capacity());
                            d.release(100);
                        }
                    }
                });
            }
        });
        assert_eq!(d.used(), 0);
        assert!(d.peak() <= d.capacity());
        assert_eq!(d.counters().release_underflows, 0);
        d.validate_allocator().unwrap();
    }
}
