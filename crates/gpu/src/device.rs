//! The simulated GPU device: memory capacity, copy engines, streams.
//!
//! The K20X has one copy engine per PCIe direction, which is what lets a
//! device→host drain of one patch overlap the kernels (and host→device
//! staging) of others. [`GpuDevice`] models each direction as a *timeline*:
//! a FIFO of transfers with measured per-engine occupancy (`busy_ns`), an
//! in-flight count, and — for the D2H direction — a real worker thread
//! that drains posted transfers asynchronously ([`GpuDevice::post_d2h`]).
//! Every in-flight transfer is tagged with the [`Stream`] it was issued
//! on, mirroring how Uintah pins one CUDA stream per resident patch task.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Allocation would exceed device global memory (the K20X 6 GB wall the
    /// level database exists to avoid).
    OutOfMemory {
        requested: usize,
        used: usize,
        capacity: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {used}/{capacity} B in use"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

/// Counters for one copy engine (the K20X has two: one per direction, which
/// is what lets transfers for some patches overlap kernels of others).
///
/// `busy_ns` is the engine's measured *occupancy*: wall time it spent
/// actually moving bytes (the drain memcpy for D2H, the staging window for
/// H2D). `inflight` counts transfers posted to the engine timeline but not
/// yet drained — nonzero only on the asynchronous D2H path.
#[derive(Debug, Default)]
pub struct CopyEngineStats {
    pub transfers: AtomicU64,
    pub bytes: AtomicU64,
    pub busy_ns: AtomicU64,
    pub inflight: AtomicU64,
}

/// A transfer job executed by the D2H copy-engine worker: the drain memcpy
/// plus completion signalling, boxed by [`GpuDevice::post_d2h`].
type TransferJob = (Stream, Box<dyn FnOnce() + Send + 'static>);

/// A CUDA-stream-like handle. Operations issued on different streams may
/// interleave; the Uintah infrastructure assigns each GPU patch task its own
/// stream (round-robin here via [`GpuDevice::next_stream`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Stream(pub u32);

/// One coherent snapshot of a device's counters, taken with
/// [`GpuDevice::counters`] — the one-stop replacement for the former
/// per-counter getters. Harness binaries print these tables directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Kernel launches.
    pub kernels: u64,
    /// Host→device bytes through copy engine 0.
    pub h2d_bytes: u64,
    /// Host→device transfer count.
    pub h2d_transfers: u64,
    /// Device→host bytes through copy engine 1.
    pub d2h_bytes: u64,
    /// Device→host transfer count.
    pub d2h_transfers: u64,
    /// Host→device engine occupancy: nanoseconds copy engine 0 spent
    /// moving bytes (the staging window metered by the data warehouse).
    pub h2d_busy_ns: u64,
    /// Device→host engine occupancy: nanoseconds copy engine 1 spent
    /// draining transfers (measured around the drain memcpy, on whichever
    /// thread performed it).
    pub d2h_busy_ns: u64,
    /// D2H transfers posted but not yet drained at snapshot time.
    pub d2h_inflight: u64,
    /// Allocations rejected at capacity.
    pub alloc_failures: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// High-water mark of device memory.
    pub peak: u64,
}

#[derive(Debug)]
struct DeviceInner {
    name: &'static str,
    capacity: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    h2d: Arc<CopyEngineStats>,
    d2h: Arc<CopyEngineStats>,
    kernels: AtomicU64,
    num_streams: u32,
    next_stream: AtomicU64,
    alloc_failures: AtomicU64,
    /// The D2H copy-engine timeline: a FIFO worker thread, spawned lazily
    /// on the first posted transfer. Jobs execute in post order (one
    /// engine serializes its transfers, exactly like the hardware). The
    /// worker holds only the engine-stats Arc, so it exits when the last
    /// device handle drops and the channel closes.
    d2h_queue: Mutex<Option<mpsc::Sender<TransferJob>>>,
    /// Streams of transfers currently in flight on the D2H engine.
    d2h_streams: Mutex<Vec<Stream>>,
}

/// A simulated GPU. Cheap to clone (shared accounting).
#[derive(Clone, Debug)]
pub struct GpuDevice {
    inner: Arc<DeviceInner>,
}

impl GpuDevice {
    /// A Titan-node K20X: 6 GB GDDR5, two copy engines, 16 streams.
    pub fn k20x() -> Self {
        Self::with_capacity("Tesla K20X", 6 * 1024 * 1024 * 1024)
    }

    pub fn with_capacity(name: &'static str, capacity: usize) -> Self {
        Self {
            inner: Arc::new(DeviceInner {
                name,
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                h2d: Arc::new(CopyEngineStats::default()),
                d2h: Arc::new(CopyEngineStats::default()),
                kernels: AtomicU64::new(0),
                num_streams: 16,
                next_stream: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
                d2h_queue: Mutex::new(None),
                d2h_streams: Mutex::new(Vec::new()),
            }),
        }
    }

    #[inline]
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated on the device.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of device memory.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` of device memory (atomic; fails cleanly at capacity).
    pub(crate) fn try_reserve(&self, bytes: usize) -> Result<(), GpuError> {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let new = used + bytes;
            if new > self.inner.capacity {
                self.inner.alloc_failures.fetch_add(1, Ordering::Relaxed);
                return Err(GpuError::OutOfMemory {
                    requested: bytes,
                    used,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(u) => used = u,
            }
        }
    }

    pub(crate) fn release(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Meter a host→device transfer on copy engine 0.
    pub fn record_h2d(&self, bytes: usize) {
        self.inner.h2d.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.h2d.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter a device→host transfer on copy engine 1.
    pub fn record_d2h(&self, bytes: usize) {
        self.inner.d2h.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.d2h.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter H2D engine occupancy: wall time copy engine 0 spent staging.
    pub fn record_h2d_busy(&self, busy: Duration) {
        self.inner
            .h2d
            .busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Meter D2H engine occupancy directly (used by the synchronous
    /// fallback path, which drains inline on the calling thread).
    pub fn record_d2h_busy(&self, busy: Duration) {
        self.inner
            .d2h
            .busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Post a device→host transfer to copy engine 1's timeline and return
    /// the stream it was tagged with. The engine worker (a real thread,
    /// spawned lazily on first use) executes `job` — the drain memcpy plus
    /// completion signalling — in FIFO order, timing it into the engine's
    /// `busy_ns` occupancy counter. The caller returns immediately, which
    /// is exactly the overlap the two-copy-engine K20X provides: the
    /// scheduler keeps launching kernels while the drain proceeds.
    pub fn post_d2h(&self, bytes: usize, job: impl FnOnce() + Send + 'static) -> Stream {
        self.record_d2h(bytes);
        self.inner.d2h.inflight.fetch_add(1, Ordering::Relaxed);
        let stream = self.next_stream();
        self.inner.d2h_streams.lock().unwrap().push(stream);
        let mut q = self.inner.d2h_queue.lock().unwrap();
        if q.is_none() {
            let (tx, rx) = mpsc::channel::<TransferJob>();
            // The worker captures only the engine-stats Arc — holding the
            // full DeviceInner would keep the sender alive forever and the
            // thread could never observe channel close.
            let stats = Arc::clone(&self.inner.d2h);
            std::thread::Builder::new()
                .name("d2h-copy-engine".into())
                .spawn(move || {
                    while let Ok((_stream, job)) = rx.recv() {
                        let t0 = Instant::now();
                        job();
                        stats
                            .busy_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        stats.inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn d2h copy-engine worker");
            *q = Some(tx);
        }
        let this = self.clone();
        q.as_ref()
            .expect("d2h engine queue just initialized")
            .send((
                stream,
                Box::new(move || {
                    job();
                    this.inner
                        .d2h_streams
                        .lock()
                        .unwrap()
                        .retain(|s| *s != stream);
                }),
            ))
            .expect("d2h copy-engine worker alive while device handles exist");
        stream
    }

    /// Streams with transfers currently in flight on the D2H engine
    /// (snapshot; the engine drains them in FIFO order).
    pub fn inflight_d2h_streams(&self) -> Vec<Stream> {
        self.inner.d2h_streams.lock().unwrap().clone()
    }

    /// Block until the D2H engine timeline is empty — the
    /// `cudaDeviceSynchronize` analogue the scheduler calls at the end of a
    /// timestep so counters are coherent at step boundaries.
    pub fn sync_d2h(&self) {
        while self.inner.d2h.inflight.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Record a kernel launch and return its stream. The actual work runs on
    /// the calling host thread (concurrent kernels = concurrent patch tasks).
    pub fn launch_kernel(&self) -> Stream {
        self.inner.kernels.fetch_add(1, Ordering::Relaxed);
        self.next_stream()
    }

    /// Round-robin stream assignment (one stream per in-flight patch task).
    pub fn next_stream(&self) -> Stream {
        let s = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Stream((s % self.inner.num_streams as u64) as u32)
    }

    /// Number of hardware stream queues.
    #[inline]
    pub fn num_streams(&self) -> u32 {
        self.inner.num_streams
    }

    /// Snapshot every counter at once.
    pub fn counters(&self) -> DeviceCounters {
        DeviceCounters {
            kernels: self.inner.kernels.load(Ordering::Relaxed),
            h2d_bytes: self.inner.h2d.bytes.load(Ordering::Relaxed),
            h2d_transfers: self.inner.h2d.transfers.load(Ordering::Relaxed),
            d2h_bytes: self.inner.d2h.bytes.load(Ordering::Relaxed),
            d2h_transfers: self.inner.d2h.transfers.load(Ordering::Relaxed),
            h2d_busy_ns: self.inner.h2d.busy_ns.load(Ordering::Relaxed),
            d2h_busy_ns: self.inner.d2h.busy_ns.load(Ordering::Relaxed),
            d2h_inflight: self.inner.d2h.inflight.load(Ordering::Relaxed),
            alloc_failures: self.inner.alloc_failures.load(Ordering::Relaxed),
            used: self.inner.used.load(Ordering::Relaxed) as u64,
            peak: self.inner.peak.load(Ordering::Relaxed) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20x_has_6gb() {
        let d = GpuDevice::k20x();
        assert_eq!(d.capacity(), 6 * 1024 * 1024 * 1024);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn reserve_release_accounting() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(600).unwrap();
        assert_eq!(d.used(), 600);
        let err = d.try_reserve(500).unwrap_err();
        assert_eq!(
            err,
            GpuError::OutOfMemory {
                requested: 500,
                used: 600,
                capacity: 1000
            }
        );
        d.release(600);
        assert_eq!(d.used(), 0);
        assert_eq!(d.peak(), 600);
        assert_eq!(d.counters().alloc_failures, 1);
    }

    #[test]
    fn copy_engines_are_per_direction() {
        let d = GpuDevice::k20x();
        d.record_h2d(100);
        d.record_h2d(50);
        d.record_d2h(7);
        let c = d.counters();
        assert_eq!(c.h2d_transfers, 2);
        assert_eq!(c.h2d_bytes, 150);
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 7);
    }

    #[test]
    fn counter_snapshot_is_complete() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(300).unwrap();
        d.record_h2d(300);
        d.launch_kernel();
        let c = d.counters();
        assert_eq!(
            c,
            DeviceCounters {
                kernels: 1,
                h2d_bytes: 300,
                h2d_transfers: 1,
                d2h_bytes: 0,
                d2h_transfers: 0,
                h2d_busy_ns: 0,
                d2h_busy_ns: 0,
                d2h_inflight: 0,
                alloc_failures: 0,
                used: 300,
                peak: 300,
            }
        );
    }

    #[test]
    fn posted_d2h_drains_on_the_engine_thread_and_meters_occupancy() {
        let d = GpuDevice::k20x();
        let (tx, rx) = mpsc::channel();
        let s = d.post_d2h(4096, move || {
            // A drain long enough that busy_ns is observably nonzero.
            std::thread::sleep(Duration::from_millis(2));
            tx.send(std::thread::current().name().map(String::from)).unwrap();
        });
        let worker = rx.recv().unwrap();
        assert_eq!(worker.as_deref(), Some("d2h-copy-engine"));
        d.sync_d2h();
        let c = d.counters();
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 4096);
        assert_eq!(c.d2h_inflight, 0);
        assert!(c.d2h_busy_ns >= 1_000_000, "busy_ns {} too small", c.d2h_busy_ns);
        assert!(
            !d.inflight_d2h_streams().contains(&s) || d.inflight_d2h_streams().is_empty()
        );
    }

    #[test]
    fn inflight_transfers_are_stream_tagged_and_fifo() {
        let d = GpuDevice::k20x();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        // First job blocks the engine; the rest queue behind it.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut streams = Vec::new();
        for i in 0..3 {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            streams.push(d.post_d2h(100, move || {
                if i == 0 {
                    drop(gate.lock().unwrap());
                }
                order.lock().unwrap().push(i);
            }));
        }
        // All three posted transfers are tagged in flight while the engine
        // is stalled on the first.
        let inflight = d.inflight_d2h_streams();
        for s in &streams {
            assert!(inflight.contains(s), "stream {s:?} not tagged in flight");
        }
        assert_eq!(d.counters().d2h_inflight, 3);
        drop(hold);
        d.sync_d2h();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "engine is FIFO");
        assert!(d.inflight_d2h_streams().is_empty());
        assert_eq!(d.counters().d2h_transfers, 3);
        assert_eq!(d.counters().d2h_bytes, 300);
    }

    #[test]
    fn engine_worker_exits_when_last_device_handle_drops() {
        let d = GpuDevice::with_capacity("test", 1000);
        let (tx, rx) = mpsc::channel();
        d.post_d2h(10, move || {
            tx.send(std::thread::current().id()).unwrap();
        });
        let tid = rx.recv().unwrap();
        d.sync_d2h();
        drop(d);
        // The worker held only the stats Arc; with the sender gone its recv
        // errors and it exits. Spin briefly until the thread is no longer
        // findable — we can't join a detached thread, so assert indirectly:
        // a fresh device spawns a fresh worker with a different thread id.
        let d2 = GpuDevice::with_capacity("test2", 1000);
        let (tx2, rx2) = mpsc::channel();
        d2.post_d2h(10, move || {
            tx2.send(std::thread::current().id()).unwrap();
        });
        assert_ne!(rx2.recv().unwrap(), tid);
        d2.sync_d2h();
    }

    #[test]
    fn busy_helpers_accumulate_occupancy() {
        let d = GpuDevice::k20x();
        d.record_h2d_busy(Duration::from_micros(5));
        d.record_h2d_busy(Duration::from_micros(7));
        d.record_d2h_busy(Duration::from_micros(3));
        let c = d.counters();
        assert_eq!(c.h2d_busy_ns, 12_000);
        assert_eq!(c.d2h_busy_ns, 3_000);
    }

    #[test]
    fn streams_round_robin() {
        let d = GpuDevice::k20x();
        let s0 = d.next_stream();
        let s1 = d.next_stream();
        assert_ne!(s0, s1);
        // 16 streams wrap around.
        for _ in 0..14 {
            d.next_stream();
        }
        assert_eq!(d.next_stream(), s0);
    }

    #[test]
    fn concurrent_reserve_never_exceeds_capacity() {
        let d = GpuDevice::with_capacity("test", 10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if d.try_reserve(100).is_ok() {
                            assert!(d.used() <= d.capacity());
                            d.release(100);
                        }
                    }
                });
            }
        });
        assert_eq!(d.used(), 0);
        assert!(d.peak() <= d.capacity());
    }
}
